#!/usr/bin/env python
"""Defragmentation soak: the self-healing fabric runtime under churn.

Replays one seeded job stream on a deliberately tight 14-CLB-column
strip device through four arms — defragmentation on/off, with and
without a Poisson permanent-column-fault process — plus two safety
soaks:

* **crash soak** — a scripted admit/retire/defrag loop with a crash
  injected at every migration phase boundary in rotation; counts
  module-loss events (a module missing after crash recovery), which
  must be zero;
* **static equivalence** — a fault-free, churn-free ``admit_group`` on
  the catalog XC5VLX110T must reproduce the static ``floorplan()``
  layout region-for-region.

The workload is narrow resident modules (widths 2+2+2+3) churned by
idle retirement, plus a sparse width-5 task whose re-admission needs 5
*contiguous* healthy columns — exactly what fragmentation denies and
defragmentation restores.  Every arm replays the same stream with the
same injector seed, so rows are deterministic.  Writes
``BENCH_defrag.json`` at the repo root.  Run from the repo root::

    PYTHONPATH=src python scripts/bench_defrag.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.floorplanner import floorplan  # noqa: E402
from repro.core.params import PRMRequirements  # noqa: E402
from repro.devices import XC5VLX110T, synthetic_device  # noqa: E402
from repro.fabric import (  # noqa: E402
    FabricConfig,
    FabricRuntime,
    simulate_on_fabric,
)
from repro.faults import FaultInjector  # noqa: E402
from repro.multitask.tasks import HwTask, Job, poisson_arrivals  # noqa: E402

SEED = 2015
NARROW_WIDTHS = (2, 2, 2, 3)
WIDE_WIDTH = 5
NARROW_RATE_PER_S = 400.0
WIDE_RATE_PER_S = 80.0
IDLE_RETIRE_S = 0.01
EXEC_SECONDS = 1e-3
PERMANENT_RATE_PER_S = 2.0
HORIZON_S = 1.0
QUICK_HORIZON_S = 0.4

SOAK_DEVICE = synthetic_device(rows=1, clb_runs=(14,), name="soak-strip")


def clb_demand(name: str, columns: int) -> PRMRequirements:
    cells = (
        columns
        * SOAK_DEVICE.family.clb_per_col
        * SOAK_DEVICE.family.luts_per_clb
    )
    return PRMRequirements(name, cells, cells, cells)


def job_stream(horizon_s: float) -> list[Job]:
    """Narrow high-rate round-robin stream plus sparse wide arrivals."""
    narrow = [
        HwTask(clb_demand(f"n{i}_w{w}", w), exec_seconds=EXEC_SECONDS)
        for i, w in enumerate(NARROW_WIDTHS)
    ]
    wide = HwTask(
        clb_demand(f"wide{WIDE_WIDTH}", WIDE_WIDTH), exec_seconds=EXEC_SECONDS
    )
    jobs: list[Job] = []
    for i, t in enumerate(
        poisson_arrivals(NARROW_RATE_PER_S, horizon_s, seed=SEED)
    ):
        jobs.append(
            Job(task=narrow[i % len(narrow)], arrival_seconds=t, job_id=len(jobs))
        )
    for t in poisson_arrivals(WIDE_RATE_PER_S, horizon_s, seed=SEED + 99):
        jobs.append(Job(task=wide, arrival_seconds=t, job_id=len(jobs)))
    return jobs


def run_arm(jobs, *, defrag: bool, permanent_rate: float) -> dict:
    injector = (
        FaultInjector.from_rates(
            seed=SEED, permanent_rate_per_s=permanent_rate
        )
        if permanent_rate > 0
        else None
    )
    runtime = FabricRuntime(
        SOAK_DEVICE,
        config=FabricConfig(auto_defrag=defrag),
        injector=injector,
    )
    result = simulate_on_fabric(jobs, runtime, idle_retire_s=IDLE_RETIRE_S)
    runtime.check_invariants()
    return {
        "completion_rate": result.completion_rate,
        "dropped_jobs": result.dropped_jobs,
        "makespan_s": result.makespan_seconds,
        "migrations": runtime.migrations,
        "rollbacks": runtime.rollbacks,
        "defrag_passes": runtime.defrag_passes,
        "columns_retired": runtime.columns_retired,
        "evictions": runtime.evictions,
        "fragmentation": round(runtime.fragmentation_index(), 4),
    }


def crash_soak(rounds: int = 24) -> dict:
    """Scripted churn with a crash at every migration phase, in rotation.

    Each round fragments the strip (admit 4, retire the middle two),
    then defragments with a crash injected at one of the four phase
    boundaries.  After recovery the surviving module set must be exactly
    the admitted-minus-retired set — any mismatch is a module-loss
    event.
    """
    phases = ("copy", "verify", "activate", "free")
    losses = 0
    crashes = 0
    completed = 0
    aborted = 0
    runtime = FabricRuntime(SOAK_DEVICE, config=FabricConfig(verify="crc"))
    for round_index in range(rounds):
        for name, width in (("a", 3), ("b", 3), ("c", 3), ("d", 3)):
            runtime.admit(name, clb_demand(name, width))
        runtime.retire("a")
        runtime.retire("c")
        phase = phases[round_index % len(phases)]

        def crash(p, step, _phase=phase):
            if p == _phase:
                raise RuntimeError("injected crash")

        runtime.crash_hook = crash
        try:
            runtime.defrag()
        except RuntimeError:
            crashes += 1
        finally:
            runtime.crash_hook = None
        outcome = runtime.recover()
        if outcome == "completed":
            completed += 1
        elif outcome == "aborted":
            aborted += 1
        if runtime.module_names() != {"b", "d"}:
            losses += 1
        runtime.check_invariants()
        runtime.retire("b")
        runtime.retire("d")
    return {
        "rounds": rounds,
        "crashes": crashes,
        "recovered_completed": completed,
        "recovered_aborted": aborted,
        "module_loss_events": losses,
    }


def static_equivalence() -> dict:
    """Fault-free, churn-free admit_group vs the static floorplanner."""
    family = XC5VLX110T.family
    per_col = family.clb_per_col * family.luts_per_clb
    groups = [
        [PRMRequirements(f"m{i}", c * per_col, c * per_col, c * per_col)]
        for i, c in enumerate((2, 3, 4))
    ]
    names = [f"m{i}" for i in range(len(groups))]
    plan = floorplan(XC5VLX110T, groups)
    runtime = FabricRuntime(XC5VLX110T)
    modules = runtime.admit_group(list(zip(names, groups)))
    matches = [
        module.region == prr.region
        for module, prr in zip(modules, plan.prrs)
    ]
    return {
        "modules": len(modules),
        "regions_match": all(matches),
        "layout": [str(m.region) for m in modules],
    }


def sweep(quick: bool = False) -> dict:
    horizon = QUICK_HORIZON_S if quick else HORIZON_S
    jobs = job_stream(horizon)
    arms = {}
    for defrag in (True, False):
        for permanent_rate in (0.0, PERMANENT_RATE_PER_S):
            key = (
                f"defrag_{'on' if defrag else 'off'}"
                f"_faults_{'on' if permanent_rate > 0 else 'off'}"
            )
            arms[key] = run_arm(
                jobs, defrag=defrag, permanent_rate=permanent_rate
            )
    return {
        "seed": SEED,
        "horizon_s": horizon,
        "jobs": len(jobs),
        "device": SOAK_DEVICE.name,
        "arms": arms,
        "crash_soak": crash_soak(8 if quick else 24),
        "static_equivalence": static_equivalence(),
    }


def render(results: dict) -> str:
    lines = [
        f"seed {results['seed']}, {results['jobs']} jobs over "
        f"{results['horizon_s']:g}s on {results['device']}",
        "",
        "| arm | completion | dropped | migrations | rollbacks | cols retired | frag |",
        "|---|---|---|---|---|---|---|",
    ]
    for key, row in results["arms"].items():
        lines.append(
            f"| {key} | {row['completion_rate']:.4f} | {row['dropped_jobs']} "
            f"| {row['migrations']} | {row['rollbacks']} "
            f"| {row['columns_retired']} | {row['fragmentation']:.3f} |"
        )
    crash = results["crash_soak"]
    lines += [
        "",
        f"crash soak: {crash['crashes']} crashes over {crash['rounds']} "
        f"rounds -> {crash['recovered_completed']} completed, "
        f"{crash['recovered_aborted']} aborted, "
        f"{crash['module_loss_events']} module-loss events",
        f"static equivalence: regions_match="
        f"{results['static_equivalence']['regions_match']}",
    ]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="shorter soak")
    parser.add_argument("--output", default=str(ROOT / "BENCH_defrag.json"))
    args = parser.parse_args()
    results = sweep(quick=args.quick)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(render(results))
    print(f"\nwrote {args.output}")
    failures = []
    arms = results["arms"]
    for key in ("defrag_on_faults_off", "defrag_on_faults_on"):
        if arms[key]["completion_rate"] < 0.95:
            failures.append(f"{key} completion below 0.95")
    if (
        arms["defrag_off_faults_off"]["completion_rate"]
        >= arms["defrag_on_faults_off"]["completion_rate"]
    ):
        failures.append("defrag-off did not degrade vs defrag-on")
    if results["crash_soak"]["module_loss_events"] != 0:
        failures.append("crash soak lost a module")
    if not results["static_equivalence"]["regions_match"]:
        failures.append("admit_group diverged from static floorplan")
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

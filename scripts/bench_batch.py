#!/usr/bin/env python
"""Microbenchmark: batch (numpy columnar) vs scalar cost-model evaluation.

Times the ISSUE 6 tentpole end to end: for batches of N distinct PRM
requirement vectors on one device, compare

* **scalar** — ``evaluate_prm`` called N times (geometry search,
  bitstream model and reconfiguration time per call), stripped to the
  selection outputs so both paths produce the same information;
* **batch** — one ``batch_evaluate`` array call producing the columnar
  selection for all N PRMs at once.

Scalar caches (geometry / bitstream memoization) are cleared before each
scalar repetition so the comparison measures the models, not a warm
cache.  Each timing is the best of ``--repeats`` runs.  Writes
``BENCH_batch.json`` at the repo root::

    PYTHONPATH=src python scripts/bench_batch.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.api import batch_evaluate, evaluate_prm  # noqa: E402
from repro.core.bitstream_model import clear_bitstream_cache  # noqa: E402
from repro.core.params import PRMRequirements  # noqa: E402
from repro.core.placement_search import PlacementNotFoundError  # noqa: E402
from repro.core.prr_model import clear_geometry_cache  # noqa: E402
from repro.devices.catalog import DEVICES  # noqa: E402


def synthetic_batch(count: int) -> list[PRMRequirements]:
    """*count* distinct PRM vectors spanning the feasibility envelope."""
    prms = []
    for i in range(count):
        pairs = 40 + (i * 97) % 24_000
        prms.append(
            PRMRequirements(
                name=f"prm{i}",
                lut_ff_pairs=pairs,
                luts=pairs,
                ffs=pairs // 2,
                dsps=(i * 13) % 48 if i % 4 == 0 else 0,
                brams=(i * 7) % 24 if i % 4 == 1 else 0,
            )
        )
    return prms


def time_scalar(prms, device, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        clear_geometry_cache()
        clear_bitstream_cache()
        start = time.perf_counter()
        for prm in prms:
            try:
                evaluate_prm(prm, device)
            except PlacementNotFoundError:
                pass
        best = min(best, time.perf_counter() - start)
    return best


def time_batch(prms, device, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        batch_evaluate(prms, device)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes and one repeat (CI smoke)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output",
        type=Path,
        default=ROOT / "BENCH_batch.json",
        help="where to write the JSON summary",
    )
    args = parser.parse_args()
    repeats = 1 if args.quick else args.repeats
    sizes = [100, 1000] if args.quick else [100, 1000, 10_000, 20_000]
    device = DEVICES["xc5vlx110t"]

    runs = []
    for size in sizes:
        prms = synthetic_batch(size)
        scalar_s = time_scalar(prms, device, repeats)
        batch_s = time_batch(prms, device, repeats)
        speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
        per_pair_us = batch_s / size * 1e6
        runs.append(
            {
                "device": device.name,
                "n_prms": size,
                "pairs_evaluated": size,  # one (PRM, device) pair per PRM
                "scalar_s": scalar_s,
                "batch_s": batch_s,
                "speedup": speedup,
                "batch_us_per_pair": per_pair_us,
                "repeats": repeats,
            }
        )
        print(
            f"N={size:>6}  scalar={scalar_s * 1e3:9.1f} ms  "
            f"batch={batch_s * 1e3:7.2f} ms  speedup={speedup:7.1f}x  "
            f"({per_pair_us:.2f} us/pair)"
        )

    summary = {
        "benchmark": "batch_vs_scalar_cost_models",
        "quick": args.quick,
        "device": device.name,
        "runs": runs,
        "max_speedup": max(run["speedup"] for run in runs),
        "speedup_at_largest_n": runs[-1]["speedup"],
    }
    args.output.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Reliability ablation: makespan / throughput / completion vs fault rate.

Sweeps the fault-tolerant runtime (ISSUE 2) along three axes on the
paper's FIR+SDRAM workload sharing one PRR (maximal reconfiguration
churn, so every transfer is exposed to the write path):

* **fault rate** — per-transfer write-path bit-flip probability;
* **retry policy** — verified-write retry/backoff on vs. first-failure
  no-retry, with spilling disabled so losses are visible;
* **scrub period** — how quickly periodic scrubbing returns quarantined
  PRRs to service under a no-retry policy.

Every arm replays the *same* seeded job stream with the same seeded
injector, so rows are deterministic and directly comparable.  Writes
``BENCH_reliability.json`` at the repo root and prints the markdown
tables recorded in EXPERIMENTS.md.  Run from the repo root::

    PYTHONPATH=src python scripts/bench_reliability.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.placement_search import find_prr  # noqa: E402
from repro.devices.catalog import XC5VLX110T  # noqa: E402
from repro.faults import (  # noqa: E402
    DegradedModePolicy,
    FaultInjector,
    RetryPolicy,
)
from repro.multitask import HwTask, make_task_set, simulate_pr  # noqa: E402
from repro.synth import synthesize  # noqa: E402
from repro.workloads import build_fir, build_sdram  # noqa: E402

SEED = 2015
FAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)
SCRUB_PERIODS_MS = (5.0, 20.0, 50.0, None)


def workload():
    family = XC5VLX110T.family
    tasks = [
        HwTask(synthesize(build_fir(family), family).requirements, 2e-3),
        HwTask(synthesize(build_sdram(family), family).requirements, 1e-3),
    ]
    shared = find_prr(XC5VLX110T, [t.prm for t in tasks])
    jobs = make_task_set(tasks, rate_per_s=120.0, horizon_s=0.25, seed=SEED)
    return jobs, [shared.geometry]


def run_arm(jobs, prrs, *, fault_rate, policy):
    injector = (
        FaultInjector.from_rates(seed=SEED, fault_rate=fault_rate)
        if fault_rate > 0
        else FaultInjector.from_rates(seed=SEED)
    )
    result = simulate_pr(jobs, prrs, faults=injector, fault_policy=policy)
    return {
        "makespan_s": result.makespan_seconds,
        "throughput_jobs_per_s": (
            len(result.completed) / result.makespan_seconds
            if result.makespan_seconds > 0
            else 0.0
        ),
        "completion_rate": result.completion_rate,
        "mean_response_ms": result.mean_response_seconds * 1e3,
        "retries": result.retries,
        "failed_reconfigs": result.failed_reconfigs,
        "quarantines": result.quarantines,
        "scrub_repairs": result.scrub_repairs,
        "dropped_jobs": result.dropped_jobs,
        "reconfig_overhead": result.reconfig_overhead_fraction,
    }


def sweep(quick: bool = False):
    jobs, prrs = workload()
    rates = FAULT_RATES[:3] if quick else FAULT_RATES
    periods = SCRUB_PERIODS_MS[:2] if quick else SCRUB_PERIODS_MS

    retry_policy = DegradedModePolicy(
        retry=RetryPolicy(max_attempts=4),
        scrub_period_s=0.02,
        spill_to_full=False,
    )
    no_retry_policy = DegradedModePolicy.no_retry(
        scrub_period_s=0.02, spill_to_full=False
    )
    retry_arm = {
        f"{rate:g}": run_arm(jobs, prrs, fault_rate=rate, policy=retry_policy)
        for rate in rates
    }
    no_retry_arm = {
        f"{rate:g}": run_arm(jobs, prrs, fault_rate=rate, policy=no_retry_policy)
        for rate in rates
    }
    scrub_arm = {}
    for period_ms in periods:
        policy = DegradedModePolicy.no_retry(
            quarantine_threshold=2,
            scrub_period_s=period_ms / 1e3 if period_ms is not None else None,
            spill_to_full=False,
        )
        key = f"{period_ms:g}ms" if period_ms is not None else "off"
        scrub_arm[key] = run_arm(jobs, prrs, fault_rate=0.4, policy=policy)
    return {
        "seed": SEED,
        "jobs": len(jobs),
        "retry": retry_arm,
        "no_retry": no_retry_arm,
        "scrub_sweep_at_rate_0.4": scrub_arm,
    }


def render(results) -> str:
    lines = [
        f"seed {results['seed']}, {results['jobs']} jobs, FIR+SDRAM on 1 PRR",
        "",
        "| fault rate | policy | makespan (s) | jobs/s | completion | retries | dropped |",
        "|---|---|---|---|---|---|---|",
    ]
    for rate in results["retry"]:
        for name in ("retry", "no_retry"):
            row = results[name][rate]
            lines.append(
                f"| {rate} | {name.replace('_', '-')} | "
                f"{row['makespan_s']:.4f} | "
                f"{row['throughput_jobs_per_s']:.1f} | "
                f"{row['completion_rate']:.4f} | {row['retries']} | "
                f"{row['dropped_jobs']} |"
            )
    lines += [
        "",
        "| scrub period | completion | mean response (ms) | quarantines | scrub repairs | dropped |",
        "|---|---|---|---|---|---|",
    ]
    for key, row in results["scrub_sweep_at_rate_0.4"].items():
        lines.append(
            f"| {key} | {row['completion_rate']:.4f} | "
            f"{row['mean_response_ms']:.2f} | {row['quarantines']} | "
            f"{row['scrub_repairs']} | {row['dropped_jobs']} |"
        )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweep")
    parser.add_argument(
        "--output", default=str(ROOT / "BENCH_reliability.json")
    )
    args = parser.parse_args()
    results = sweep(quick=args.quick)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(render(results))
    print(f"\nwrote {args.output}")
    # Sanity: retry must dominate no-retry on completion at every rate.
    for rate in results["retry"]:
        retry = results["retry"][rate]["completion_rate"]
        no_retry = results["no_retry"][rate]["completion_rate"]
        if retry < no_retry:
            print(f"ERROR: retry lost at rate {rate}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Cluster soak benchmark: the sharded serving tier under load and faults.

Drives :class:`repro.serve.ClusterService` at 10x (or, with ``--scale``,
up to 100x) the 48-request ``BENCH_serve.json`` load and accounts for
every request — the acceptance bar is *100% typed resolution*: each
submission ends in a result or a typed :mod:`repro.errors` outcome, never
a hang or a stray traceback.  Three arms:

* **fault-free soak** — a burst of evaluate requests over a small key
  population (3 paper PRMs x scale variants x 2 devices) so the
  content-addressed cache has real work to do; p50/p99 latency and the
  cache hit rate are recorded.
* **chaos soak** — the same burst with the works thrown at it: one shard
  crashing itself on a deterministic :class:`~repro.faults.ShardChaos`
  plan, an externally SIGKILLed shard mid-burst, disk-cache entries
  corrupted *and* truncated between waves (wave 2 cold-starts a new
  cluster on the damaged directory), and a disk-full window during the
  second wave.  Quarantine counts and restart counts must both be
  nonzero, and typed resolution must still be 100%.
* **differential check** — every result served anywhere in the soak is
  compared against a fresh in-process :func:`~repro.core.api.evaluate_prm`
  run: a corrupted cache entry must never be served.

Writes ``BENCH_cluster.json`` at the repo root.  Run from the repo root::

    PYTHONPATH=src python scripts/bench_cluster.py [--quick] [--scale N]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
if str(ROOT) not in sys.path:
    sys.path.insert(1, str(ROOT))

from repro.core.api import evaluate_prm  # noqa: E402
from repro.core.params import PRMRequirements  # noqa: E402
from repro.devices import XC5VLX110T, XC6VLX75T  # noqa: E402
from repro.errors import Overloaded, ReproError  # noqa: E402
from repro.faults import (  # noqa: E402
    ShardChaos,
    corrupt_cache_entry,
    disk_full,
    truncate_cache_entry,
)
from repro.serve import (  # noqa: E402
    ClusterConfig,
    ClusterService,
    EvaluateRequest,
)
from repro.synth import synthesize  # noqa: E402
from repro.workloads import build_fir, build_mips, build_sdram  # noqa: E402

BUILDERS = {"fir": build_fir, "mips": build_mips, "sdram": build_sdram}
DEVICES = {"xc5vlx110t": XC5VLX110T, "xc6vlx75t": XC6VLX75T}

#: BENCH_serve.json drives 48 requests; this soak multiplies that.
BASELINE_REQUESTS = 48


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def key_population() -> list[tuple[PRMRequirements, str]]:
    """~12 distinct cache keys: 3 PRMs x 2 scale variants x 2 devices."""
    population: list[tuple[PRMRequirements, str]] = []
    for device_name, device in DEVICES.items():
        for workload, builder in BUILDERS.items():
            prm = synthesize(
                builder(device.family), device.family
            ).requirements
            population.append((prm, device_name))
            population.append(
                (
                    replace(
                        prm,
                        name=f"{workload}-x2",
                        lut_ff_pairs=prm.lut_ff_pairs * 2,
                        luts=prm.luts * 2,
                        ffs=prm.ffs * 2,
                    ),
                    device_name,
                )
            )
    return population


def _drive_burst(
    cluster: ClusterService,
    workload: list[tuple[PRMRequirements, str]],
    outcomes: dict,
    latencies: list[float],
    served: list,
) -> None:
    """Submit one wave, honoring Overloaded retry_after hints."""
    tickets = []
    for prm, device_name in workload:
        while True:
            try:
                submitted = time.perf_counter()
                ticket = cluster.submit(EvaluateRequest(prm, device_name))
            except Overloaded as shed:
                outcomes["shed"] += 1
                time.sleep(shed.retry_after_s or 0.02)
                continue
            tickets.append((submitted, prm, device_name, ticket))
            break
    for submitted, prm, device_name, ticket in tickets:
        try:
            result = ticket.result(timeout=180)
        except ReproError:
            outcomes["typed_errors"] += 1
        except Exception:  # noqa: BLE001 - soak accounting
            outcomes["untyped_failures"] += 1
        else:
            outcomes["completed"] += 1
            served.append((prm, device_name, result))
        latencies.append(time.perf_counter() - submitted)


def _damage_cache_dir(cache_dir: str, rng: random.Random) -> int:
    """Corrupt one entry and truncate another; return files damaged."""
    entries = sorted(Path(cache_dir).glob("*.entry"))
    damaged = 0
    if entries:
        corrupt_cache_entry(entries[0], rng=rng)
        damaged += 1
    if len(entries) > 1:
        truncate_cache_entry(entries[1], keep_fraction=0.4)
        damaged += 1
    return damaged


def run_soak(*, requests: int, shards: int, chaos: bool) -> dict:
    """Two waves over a shared cache dir; chaos arm injects the works."""
    population = key_population()
    workload = [population[i % len(population)] for i in range(requests)]
    cache_dir = tempfile.mkdtemp(prefix="bench-cluster-")
    rng = random.Random(20150525)  # the paper's conference date
    outcomes = {
        "completed": 0,
        "typed_errors": 0,
        "untyped_failures": 0,
        "shed": 0,
    }
    latencies: list[float] = []
    served: list = []
    chaos_plans = ()
    if chaos:
        plans = [ShardChaos() for _ in range(shards)]
        plans[0] = ShardChaos(crash_after_requests=4)
        chaos_plans = tuple(plans)
    config = ClusterConfig(
        shards=shards,
        shard_workers=2,
        shard_queue_depth=16,
        probe_interval_s=0.1,
        hedge_after_s=2.0,
        cache_memory_entries=4,  # force traffic onto the disk tier
        cache_dir=cache_dir,
        chaos=chaos_plans,
    )
    half = len(workload) // 2
    started = time.perf_counter()

    # Wave 1: cold cache; the chaos arm also SIGKILLs a shard mid-wave.
    stats_wave1: dict = {}
    with ClusterService(config) as cluster:
        if chaos:
            mid = workload[: half // 2]
            _drive_burst(cluster, mid, outcomes, latencies, served)
            victim = cluster.shard_pids()[-1]
            if victim is not None:
                os.kill(victim, signal.SIGKILL)
                # Hold the wave until the supervisor notices the corpse
                # and restarts it — the breaker, not the benchmark, must
                # do the recovery.
                deadline = time.monotonic() + 10.0
                while (
                    time.monotonic() < deadline
                    and cluster.stats()["restarts"] == 0
                ):
                    time.sleep(0.02)
            _drive_burst(
                cluster, workload[half // 2 : half], outcomes, latencies,
                served,
            )
        else:
            _drive_burst(cluster, workload[:half], outcomes, latencies, served)
        stats_wave1 = cluster.stats()

    damaged = 0
    if chaos:
        damaged = _damage_cache_dir(cache_dir, rng)

    # Wave 2: a fresh cluster cold-starts on the same (possibly damaged)
    # directory — warm cache re-attach; the chaos arm also slams a
    # disk-full window so cache writes fail closed.
    with ClusterService(config) as cluster:
        wave2 = workload[half:]
        if chaos:
            quarter = len(wave2) // 4
            with disk_full():
                _drive_burst(
                    cluster, wave2[:quarter], outcomes, latencies, served
                )
            _drive_burst(
                cluster, wave2[quarter:], outcomes, latencies, served
            )
        else:
            _drive_burst(cluster, wave2, outcomes, latencies, served)
        stats_wave2 = cluster.stats()
        health = cluster.health()
    elapsed = time.perf_counter() - started

    # Differential: everything served must equal a fresh evaluation.
    mismatches = 0
    for prm, device_name, result in served:
        if result != evaluate_prm(prm, device_name):
            mismatches += 1

    accepted = outcomes["completed"] + outcomes["typed_errors"]
    resolved = accepted + outcomes["untyped_failures"]
    cache_hits = stats_wave1["cache_hits"] + stats_wave2["cache_hits"]
    hit_rate = cache_hits / accepted if accepted else 0.0
    return {
        "requests": requests,
        "distinct_keys": len(population),
        "shards": shards,
        "chaos": chaos,
        **outcomes,
        "typed_resolution_rate": round(accepted / resolved, 4)
        if resolved
        else 1.0,
        "cache_hits": cache_hits,
        "cache_hit_rate": round(hit_rate, 4),
        "quarantined": stats_wave2["quarantined"],
        "disk_write_errors": stats_wave2["disk_write_errors"],
        "cache_files_damaged": damaged,
        "restarts": stats_wave1["restarts"] + stats_wave2["restarts"],
        "hedges": stats_wave1["hedges"] + stats_wave2["hedges"],
        "coalesced": stats_wave1["coalesced"] + stats_wave2["coalesced"],
        "differential_mismatches": mismatches,
        "final_health": [row["health"] for row in health],
        "elapsed_s": round(elapsed, 2),
        "throughput_rps": round(len(latencies) / elapsed, 1)
        if elapsed
        else 0.0,
        "latency_s": {
            "p50": round(percentile(latencies, 0.50), 4) if latencies else 0.0,
            "p99": round(percentile(latencies, 0.99), 4) if latencies else 0.0,
            "max": round(max(latencies), 4) if latencies else 0.0,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller soak for CI smoke"
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=10,
        help="load multiplier over the 48-request serve benchmark (10-100)",
    )
    parser.add_argument(
        "--output",
        default=str(ROOT / "BENCH_cluster.json"),
        help="output path",
    )
    args = parser.parse_args()
    scale = 2 if args.quick else max(10, min(100, args.scale))
    requests = BASELINE_REQUESTS * scale
    shards = 2 if args.quick else 3

    document = {
        "benchmark": "cluster-soak",
        "config": {
            "baseline_requests": BASELINE_REQUESTS,
            "scale": scale,
            "requests": requests,
            "shards": shards,
            "quick": args.quick,
        },
        "soak_fault_free": run_soak(
            requests=requests, shards=shards, chaos=False
        ),
        "soak_with_faults": run_soak(
            requests=requests, shards=shards, chaos=True
        ),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=1, sort_keys=True))
    print(f"\nwrote {args.output}")

    failures = []
    for arm in ("soak_fault_free", "soak_with_faults"):
        data = document[arm]
        if data["untyped_failures"]:
            failures.append(f"{arm}: untyped failures")
        if data["typed_resolution_rate"] < 1.0:
            failures.append(f"{arm}: typed resolution below 100%")
        if data["cache_hit_rate"] < 0.5:
            failures.append(f"{arm}: cache hit rate below 50%")
        if data["differential_mismatches"]:
            failures.append(f"{arm}: served result != fresh evaluation")
    chaos_arm = document["soak_with_faults"]
    if not chaos_arm["quarantined"]:
        failures.append("soak_with_faults: no quarantines recorded")
    if not chaos_arm["restarts"]:
        failures.append("soak_with_faults: no shard restarts recorded")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

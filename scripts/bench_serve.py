#!/usr/bin/env python
"""Soak benchmark: the resilient serving layer under load and faults.

Exercises :class:`repro.serve.CostModelService` the way a reconfiguration
manager would abuse it (ISSUE 5):

* a **soak**: a burst of evaluate + explore requests against a small
  worker pool with a bounded queue — sheds are counted, every accepted
  request must resolve (result or typed error), latency percentiles are
  recorded;
* **injected worker crashes**: the parallel explorer's chunk evaluator is
  swapped for one that SIGKILLs the first pool worker, and the resulting
  front is compared against the fault-free serial front;
* an **anytime deadline** probe: a 10-PRM explore under a tight
  wall-clock budget must return within deadline + 10% (plus slack).

Writes ``BENCH_serve.json`` at the repo root.  Run from the repo root::

    PYTHONPATH=src python scripts/bench_serve.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import signal
import statistics
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
if str(ROOT) not in sys.path:
    sys.path.insert(1, str(ROOT))

from repro.core import explorer  # noqa: E402
from repro.devices import XC5VLX110T, XC6VLX75T  # noqa: E402
from repro.errors import DeadlineExceeded, Overloaded, ReproError  # noqa: E402
from repro.serve import (  # noqa: E402
    CostModelService,
    EvaluateRequest,
    ExploreRequest,
    ServiceConfig,
)
from repro.synth import synthesize  # noqa: E402
from repro.workloads import build_fir, build_mips, build_sdram  # noqa: E402
from scripts.bench_explorer import WIDE_DEVICE, synthetic_prms  # noqa: E402

BUILDERS = {"fir": build_fir, "mips": build_mips, "sdram": build_sdram}
DEVICES = {"xc5vlx110t": XC5VLX110T, "xc6vlx75t": XC6VLX75T}

#: Marker file used by the crash-once evaluator (fork-inherited).
_MARKER: str | None = None


def paper_prms(device) -> list:
    return [
        synthesize(builder(device.family), device.family).requirements
        for builder in BUILDERS.values()
    ]


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def crash_once_evaluator(device, prms, partitions, rate):
    """SIGKILL the first pool worker that runs a chunk; normal afterwards."""
    if _in_worker() and _MARKER and not os.path.exists(_MARKER):
        with open(_MARKER, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return explorer._evaluate_partition_chunk(device, prms, partitions, rate)


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_soak(
    *,
    requests: int,
    workers: int,
    queue_depth: int,
    inject_crashes: bool,
    explore_deadline_s: float,
) -> dict:
    """Push a request burst through the service; account for every ticket."""
    global _MARKER
    prms = paper_prms(XC5VLX110T)
    config = ServiceConfig(
        workers=workers, queue_depth=queue_depth, shed_retry_after_s=0.02
    )
    saved_evaluator = explorer._CHUNK_EVALUATOR
    marker_dir = tempfile.mkdtemp(prefix="bench-serve-")
    crashes_injected = 0
    outcomes = {
        "completed": 0,
        "shed": 0,
        "deadline_exceeded": 0,
        "typed_errors": 0,
        "untyped_failures": 0,
        "degraded": 0,
    }
    latencies: list[float] = []
    try:
        if inject_crashes:
            explorer._CHUNK_EVALUATOR = crash_once_evaluator
        with CostModelService(config) as service:
            tickets = []
            for index in range(requests):
                kind = index % 4
                if kind in (0, 1):
                    request = EvaluateRequest(
                        prms[index % len(prms)], "xc5vlx110t"
                    )
                elif kind == 2:
                    request = ExploreRequest(
                        XC5VLX110T,
                        tuple(prms),
                        mode="exhaustive",
                        deadline_s=explore_deadline_s,
                    )
                else:
                    if inject_crashes:
                        _MARKER = os.path.join(marker_dir, f"crash-{index}")
                        crashes_injected += 1
                    request = ExploreRequest(
                        XC5VLX110T,
                        tuple(prms),
                        mode="exhaustive",
                        workers=2 if inject_crashes else None,
                    )
                try:
                    submitted = time.perf_counter()
                    tickets.append((submitted, service.submit(request)))
                except Overloaded:
                    outcomes["shed"] += 1
                    time.sleep(config.shed_retry_after_s)
            for submitted, ticket in tickets:
                try:
                    value = ticket.result(timeout=120)
                except DeadlineExceeded:
                    outcomes["deadline_exceeded"] += 1
                except ReproError:
                    outcomes["typed_errors"] += 1
                except Exception:  # noqa: BLE001 - soak accounting
                    outcomes["untyped_failures"] += 1
                else:
                    outcomes["completed"] += 1
                    if getattr(value, "degraded", False):
                        outcomes["degraded"] += 1
                latencies.append(time.perf_counter() - submitted)
    finally:
        explorer._CHUNK_EVALUATOR = saved_evaluator
        _MARKER = None
    accepted = len(latencies)
    resolved = accepted - outcomes["untyped_failures"]
    return {
        "requests": requests,
        "accepted": accepted,
        "crashes_injected": crashes_injected,
        **outcomes,
        "resolution_rate_non_shed": round(resolved / accepted, 4)
        if accepted
        else 1.0,
        "latency_s": {
            "p50": round(percentile(latencies, 0.50), 4) if latencies else 0.0,
            "p99": round(percentile(latencies, 0.99), 4) if latencies else 0.0,
            "max": round(max(latencies), 4) if latencies else 0.0,
        },
    }


def run_crash_front_check() -> dict:
    """Crash a worker mid-explore; the front must match the serial run."""
    global _MARKER
    prms = paper_prms(XC5VLX110T)
    serial = explorer.explore(XC5VLX110T, prms, mode="exhaustive")
    saved_evaluator = explorer._CHUNK_EVALUATOR
    marker_dir = tempfile.mkdtemp(prefix="bench-serve-crash-")
    try:
        explorer._CHUNK_EVALUATOR = crash_once_evaluator
        _MARKER = os.path.join(marker_dir, "crash")
        recovered = explorer.explore(
            XC5VLX110T, prms, mode="exhaustive", workers=2
        )
        crashed = os.path.exists(_MARKER)
    finally:
        explorer._CHUNK_EVALUATOR = saved_evaluator
        _MARKER = None
    return {
        "crash_fired": crashed,
        "serial_designs": len(serial),
        "recovered_designs": len(recovered),
        "front_matches_serial": [d.objectives for d in recovered]
        == [d.objectives for d in serial],
    }


def run_deadline_probe(deadline_s: float) -> dict:
    """Anytime explore on the synthetic 10-PRM workload under a deadline."""
    prms = synthetic_prms(10)
    start = time.perf_counter()
    result = explorer.explore(
        WIDE_DEVICE, prms, mode="beam", deadline_s=deadline_s
    )
    elapsed = time.perf_counter() - start
    return {
        "deadline_s": deadline_s,
        "elapsed_s": round(elapsed, 4),
        "within_budget": elapsed <= deadline_s * 1.1 + 0.2,
        "designs": len(result),
        "pareto_front": len(result.front),
        "status": result.status,
        "mode": result.mode,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller soak for CI smoke"
    )
    parser.add_argument(
        "--output", default=str(ROOT / "BENCH_serve.json"), help="output path"
    )
    args = parser.parse_args()

    requests = 16 if args.quick else 48
    document = {
        "benchmark": "serve-soak",
        "config": {
            "requests": requests,
            "workers": 2,
            "queue_depth": 8,
            "quick": args.quick,
        },
        "soak_fault_free": run_soak(
            requests=requests,
            workers=2,
            queue_depth=8,
            inject_crashes=False,
            explore_deadline_s=5.0,
        ),
        "soak_with_crashes": run_soak(
            requests=requests,
            workers=2,
            queue_depth=8,
            inject_crashes=True,
            explore_deadline_s=5.0,
        ),
        "crash_recovery": run_crash_front_check(),
        "deadline_probe": run_deadline_probe(0.5),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(json.dumps(document, indent=1, sort_keys=True))
    print(f"\nwrote {args.output}")
    failures = []
    for arm in ("soak_fault_free", "soak_with_crashes"):
        if document[arm]["untyped_failures"]:
            failures.append(f"{arm}: untyped failures")
    if not document["crash_recovery"]["front_matches_serial"]:
        failures.append("crash_recovery: front mismatch")
    if not document["deadline_probe"]["within_budget"]:
        failures.append("deadline_probe: budget blown")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

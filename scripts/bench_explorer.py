#!/usr/bin/env python
"""Microbenchmark: indexed vs naive fabric queries + explorer modes.

Times the two halves of the fast-path work (ISSUE 1):

* ``find_column_window`` — the indexed (prefix-sum + cached bisect) path
  against the retained naive slice-and-recount scan, over the paper's six
  PRM/device cases and a synthetic 10-PRM workload on a wide fabric;
* ``explore`` — exhaustive / pruned / beam / parallel strategy timings on
  the paper's 3-PRM workload and the synthetic 10-PRM workload.

Writes ``BENCH_explorer.json`` at the repo root so subsequent PRs can
track the perf trajectory.  Run from the repo root::

    PYTHONPATH=src python scripts/bench_explorer.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core.explorer import explore, pareto_front  # noqa: E402
from repro.core.params import PRMRequirements  # noqa: E402
from repro.core.prr_model import (  # noqa: E402
    InfeasibleGeometryError,
    clear_geometry_cache,
    prr_geometry_for_rows,
)
from repro.devices import XC5VLX110T, XC6VLX75T  # noqa: E402
from repro.devices.catalog import make_device  # noqa: E402
from repro.devices.family import VIRTEX5  # noqa: E402
from repro.devices.window_index import ColumnWindowIndex  # noqa: E402
from repro.synth import synthesize  # noqa: E402
from repro.workloads import build_fir, build_mips, build_sdram  # noqa: E402

BUILDERS = {"fir": build_fir, "mips": build_mips, "sdram": build_sdram}
DEVICES = {"xc5vlx110t": XC5VLX110T, "xc6vlx75t": XC6VLX75T}

#: Wide synthetic Virtex-5-class fabric for the 10-PRM workload.
WIDE_DEVICE = make_device(
    "bench-wide-v5",
    VIRTEX5,
    rows=8,
    layout=(
        "I C*12 B C*10 D C*12 B C*10 D C*12 B K "
        "C*12 B C*10 D C*12 B C*10 D C*12 I"
    ),
    description="Synthetic wide fabric for fast-path benchmarks.",
)


def synthetic_prms(count: int = 10) -> list[PRMRequirements]:
    """Deterministic synthetic workload (no PRM mixes DSP and BRAM)."""
    prms = []
    for i in range(count):
        pairs = 240 + 56 * i
        prms.append(
            PRMRequirements(
                f"syn{i}",
                lut_ff_pairs=pairs,
                luts=pairs - 60,
                ffs=180 + 24 * i,
                dsps=8 if i % 3 == 0 else 0,
                brams=3 if i % 3 == 1 else 0,
            )
        )
    return prms


def window_queries(device, prms) -> list:
    """The column-mix queries a Fig. 1 search issues for *prms*."""
    queries = []
    for prm in prms:
        for rows in range(1, device.rows + 1):
            try:
                geometry = prr_geometry_for_rows(
                    prm,
                    device.family,
                    rows,
                    single_dsp_column=device.has_single_dsp_column,
                )
            except InfeasibleGeometryError:
                continue
            queries.append(geometry.columns)
    return queries


def time_find_column_window(device, queries, *, repeats: int, loops: int) -> dict:
    """Best-of-*repeats* per-query times for naive and indexed paths."""

    def run(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(loops):
                for query in queries:
                    fn(query, start_col=1)
            best = min(best, time.perf_counter() - start)
        return best / (loops * len(queries))

    naive = run(device.find_column_window_naive)
    # Populate the per-mix cache once, then measure the steady state the
    # explorer actually runs in.
    object.__setattr__(device, "_window_index", ColumnWindowIndex(device.columns))
    for query in queries:
        device.find_column_window(query, start_col=1)
    indexed = run(device.find_column_window)
    for query in queries:
        assert device.find_column_window(query, start_col=1) == (
            device.find_column_window_naive(query, start_col=1)
        )
    return {
        "queries": len(queries),
        "naive_us_per_query": round(naive * 1e6, 4),
        "indexed_us_per_query": round(indexed * 1e6, 4),
        "speedup": round(naive / indexed, 2) if indexed else float("inf"),
    }


def time_explore(device, prms, *, modes, repeats: int, **kwargs) -> dict:
    out = {}
    for mode in modes:
        clear_geometry_cache()
        samples = []
        designs = []
        for _ in range(repeats):
            start = time.perf_counter()
            designs = explore(device, prms, mode=mode, **kwargs)
            samples.append(time.perf_counter() - start)
        out[mode] = {
            "seconds": round(min(samples), 4),
            "designs": len(designs),
            "pareto_front": len(pareto_front(designs)),
        }
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="tight iteration counts (CI smoke)"
    )
    parser.add_argument(
        "--output", default=str(ROOT / "BENCH_explorer.json"), help="output path"
    )
    args = parser.parse_args()

    repeats = 2 if args.quick else 5
    loops = 5 if args.quick else 40

    results: dict = {
        "benchmark": "explorer-fastpath",
        "quick": args.quick,
        "find_column_window": {},
        "explore": {},
    }

    # -- paper six PRM/device cases --------------------------------------
    for device_name, device in DEVICES.items():
        reqs = [
            synthesize(builder(device.family), device.family).requirements
            for builder in BUILDERS.values()
        ]
        for prm in reqs:
            queries = window_queries(device, [prm])
            case = f"{prm.name}@{device_name}"
            results["find_column_window"][case] = time_find_column_window(
                device, queries, repeats=repeats, loops=loops
            )

    # -- synthetic 10-PRM workload on the wide fabric --------------------
    syn = synthetic_prms(10)
    queries = window_queries(WIDE_DEVICE, syn)
    results["find_column_window"]["synthetic10@bench-wide-v5"] = (
        time_find_column_window(WIDE_DEVICE, queries, repeats=repeats, loops=loops)
    )

    # -- explorer strategy timings ---------------------------------------
    paper_prms = [
        synthesize(builder(VIRTEX5), VIRTEX5).requirements
        for builder in BUILDERS.values()
    ]
    results["explore"]["paper3@xc5vlx110t"] = time_explore(
        XC5VLX110T,
        paper_prms,
        modes=("exhaustive", "pruned", "beam"),
        repeats=1 if args.quick else 3,
    )
    results["explore"]["synthetic10@bench-wide-v5"] = time_explore(
        WIDE_DEVICE,
        syn,
        modes=("beam",),
        repeats=1 if args.quick else 3,
    )
    results["explore"]["synthetic8@bench-wide-v5"] = time_explore(
        WIDE_DEVICE,
        syn[:8],
        modes=("exhaustive", "pruned"),
        repeats=1,
    )

    speedups = [
        case["speedup"] for case in results["find_column_window"].values()
    ]
    results["summary"] = {
        "min_window_speedup": min(speedups),
        "median_window_speedup": round(statistics.median(speedups), 2),
        "synthetic10_window_speedup": results["find_column_window"][
            "synthetic10@bench-wide-v5"
        ]["speedup"],
    }

    output = Path(args.output)
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(json.dumps(results["summary"], indent=2))
    for case, data in results["explore"].items():
        print(case, json.dumps(data))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Validate a trace document against the checked-in schema.

Usage::

    PYTHONPATH=src python scripts/validate_trace.py trace.json [more.json ...]

Exit status 0 when every file is schema-valid, 1 otherwise.  The CI
trace-schema smoke runs this against a fresh ``repro-fpga trace explore
--trace-out`` file; it is also handy locally after hand-editing a trace.
"""

from __future__ import annotations

import json
import sys

from repro.obs.schema import SchemaError, validate_trace


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: validate_trace.py TRACE.json [TRACE.json ...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            failures += 1
            continue
        try:
            validate_trace(document)
        except SchemaError as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            failures += 1
            continue
        spans = document["spans"]
        counters = document["metrics"]["counters"]
        print(
            f"{path}: ok — command={document['command']!r}, "
            f"{len(spans)} root span(s), {len(counters)} counter(s)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

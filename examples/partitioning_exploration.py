#!/usr/bin/env python3
"""Design-space exploration: how should PRMs share PRRs?

The paper's Section I problem: "the PR partitioning design space is
exponentially large and designers can only feasibly evaluate a subset of
these designs".  This example enumerates every way to group five PRMs
(the paper's three plus an AES core and a UART) into shared PRRs on the
Virtex-6 LX75T, evaluates each with the two cost models, and prints the
Pareto frontier over (fabric area, total bitstream bytes, worst
reconfiguration time) — the holistic assessment the paper says prior
work lacked.

Run:  python examples/partitioning_exploration.py
"""

from repro.core import explore, pareto_front
from repro.devices import XC6VLX75T
from repro.synth import synthesize
from repro.workloads import build_aes, build_fir, build_mips, build_sdram, build_uart


def main() -> None:
    device = XC6VLX75T
    family = device.family
    print(f"Exploring PRM partitionings on {device.summary()}\n")

    prms = [
        synthesize(build_fir(family), family).requirements,
        synthesize(build_mips(family), family).requirements,
        synthesize(build_sdram(family), family).requirements,
        synthesize(build_aes(), family).requirements,
        synthesize(build_uart(), family).requirements,
    ]
    for prm in prms:
        print(
            f"  {prm.name:6} pairs={prm.lut_ff_pairs:5} "
            f"DSPs={prm.dsps:3} BRAMs={prm.brams:3}"
        )

    designs = explore(device, prms)
    print(f"\n{len(designs)} feasible partitionings "
          f"(of 52 set partitions of 5 PRMs)\n")

    print("Best by each single objective:")
    by_area = min(designs, key=lambda d: d.total_prr_size)
    by_bytes = min(designs, key=lambda d: d.total_bitstream_bytes)
    by_time = min(designs, key=lambda d: d.worst_reconfig_seconds)
    print("  min area:     ", by_area.summary())
    print("  min bitstream:", by_bytes.summary())
    print("  min reconfig: ", by_time.summary())

    front = pareto_front(designs)
    print(f"\nPareto frontier ({len(front)} designs):")
    for design in front:
        print("  *", design.summary())

    print(
        "\nReading the frontier: aggressive sharing minimizes fabric area "
        "but every PRM of a shared PRR pays the merged PRR's bitstream "
        "size at each reconfiguration; dedicated PRRs minimize per-task "
        "reconfiguration time at maximum area."
    )


if __name__ == "__main__":
    main()

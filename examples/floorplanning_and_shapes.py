#!/usr/bin/env python3
"""Floorplanning and non-rectangular PRRs — the paper's next steps, live.

Section V: "Our future work will use our cost models as part of the
floorplanning stage in the PR design flow."  Section IV: "Higher RUs may
be obtained by selecting non-rectangular PRRs (such as an L or T PRR
shape)."  This example does both:

1. automatically floorplans the three paper PRMs on the LX110T (cost
   models pick each PRR, the planner places them disjointly and keeps the
   static region contiguous) and renders the fabric;
2. searches an L-shaped variant of the FIR PRR and quantifies the RU and
   bitstream gains against the rectangular Fig. 1 result, validating the
   composite bitstream size against a generated composite bitstream.

Run:  python examples/floorplanning_and_shapes.py
"""

from repro.bitgen import generate_composite_bitstream, parse_bitstream
from repro.core import floorplan, render_floorplan
from repro.core.shapes import composite_bitstream_bytes, find_lshape_prr
from repro.devices import XC5VLX110T
from repro.synth import synthesize
from repro.workloads import build_fir, build_mips, build_sdram


def main() -> None:
    device = XC5VLX110T
    family = device.family
    prms = [
        synthesize(build_fir(family), family).requirements,
        synthesize(build_mips(family), family).requirements,
        synthesize(build_sdram(family), family).requirements,
    ]

    # 1. Automatic floorplanning.
    plan = floorplan(device, prms)
    print(plan.summary())
    print(render_floorplan(plan))
    print(
        f"\nstatic region keeps {plan.static_cells} of "
        f"{plan.static_cells + plan.total_prr_cells} PRR-eligible cells "
        f"(fragmentation {plan.static_fragmentation():.2f})\n"
    )

    # 2. L-shaped FIR PRR.
    fir = prms[0]
    rect, lshape = find_lshape_prr(device, fir)
    rect_ru = rect.utilization(fir).clb
    l_ru = lshape.utilization(fir).clb
    print("FIR PRR shapes:")
    print(
        f"  rectangle: {rect.size:2} cells, RU_CLB {rect_ru:.1%}, "
        f"bitstream {composite_bitstream_bytes(rect)} B"
    )
    print(
        f"  L-shape:   {lshape.size:2} cells, RU_CLB {l_ru:.1%}, "
        f"bitstream {composite_bitstream_bytes(lshape)} B"
    )
    for part in lshape.parts:
        print(f"    part: {part}")

    # Validate the composite model against a generated bitstream.
    bitstream = generate_composite_bitstream(
        device, lshape.parts, design_name="fir_l"
    )
    parsed = parse_bitstream(bitstream.to_bytes())
    assert bitstream.size_bytes == composite_bitstream_bytes(lshape)
    assert parsed.crc_ok
    print(
        f"  composite bitstream generated: {bitstream.size_bytes} B, "
        f"CRC OK — model exact for non-rectangular PRRs too"
    )
    print(
        "\n(The paper's caveat stands: denser packing raises routing "
        "risk — our router would score the L's parts at "
        f"{l_ru:.0%} pair utilization.)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Hardware multitasking: PR vs full reconfiguration, quantified.

The paper's Section I motivation: "PR affords faster reconfiguration time
and smaller bitstreams ... isolated reconfiguration and hardware
multitasking of PRMs provides additional PR benefits as compared to full
reconfiguration".  This example streams a Poisson job mix of the paper's
three PRMs through (a) a PR system with two PRRs reconfigured by partial
bitstreams and (b) a non-PR baseline that reloads the full ~3.8 MB device
bitstream — and halts — on every module switch.

Run:  python examples/multitasking_simulation.py
"""

from repro.core import (
    bitstream_size_bytes,
    find_prr,
    full_device_bitstream_bytes,
)
from repro.devices import XC5VLX110T
from repro.multitask import (
    HwTask,
    compare,
    make_task_set,
    simulate_full_reconfig,
    simulate_pr,
)
from repro.synth import synthesize
from repro.workloads import build_fir, build_mips, build_sdram


def main() -> None:
    device = XC5VLX110T
    family = device.family

    fir = HwTask(
        synthesize(build_fir(family), family).requirements, exec_seconds=0.002
    )
    mips = HwTask(
        synthesize(build_mips(family), family).requirements, exec_seconds=0.004
    )
    sdram = HwTask(
        synthesize(build_sdram(family), family).requirements, exec_seconds=0.001
    )

    # Floorplan: one PRR shared by FIR+SDRAM, one dedicated to MIPS.
    shared = find_prr(device, [fir.prm, sdram.prm])
    mips_prr = find_prr(device, mips.prm, forbidden=[shared.region])
    prrs = [shared.geometry, mips_prr.geometry]

    print(f"Device: {device.summary()}")
    print(
        f"PRR 0 (fir+sdram): H={shared.geometry.rows} W={shared.geometry.width} "
        f"partial bitstream {bitstream_size_bytes(shared.geometry)} B"
    )
    print(
        f"PRR 1 (mips):      H={mips_prr.geometry.rows} W={mips_prr.geometry.width} "
        f"partial bitstream {bitstream_size_bytes(mips_prr.geometry)} B"
    )
    print(
        f"Full device bitstream (non-PR baseline): "
        f"{full_device_bitstream_bytes(device)} B\n"
    )

    jobs = make_task_set(
        [fir, mips, sdram], rate_per_s=250.0, horizon_s=0.5, seed=2015
    )
    print(f"Workload: {len(jobs)} jobs over 0.5 s (Poisson arrivals)\n")

    pr = simulate_pr(jobs, prrs)
    full = simulate_full_reconfig(jobs, device)
    comparison = compare(pr, full)

    print("PR system:        ", pr.summary())
    print("Full-reconfig sys:", full.summary())
    print()
    print(comparison.summary())
    print(
        f"\nThe non-PR system spent {full.halted_seconds * 1e3:.1f} ms fully "
        f"halted in reconfiguration; the PR system kept the static region "
        f"and the other PRR running throughout."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Importing a real Xilinx synthesis report.

The paper's whole point is that the five scalars the models need come
straight from an XST `.syr` file — so a user with real vendor output can
skip our synthetic synthesis engine entirely.  This example parses a
genuine-format ISE 12.4 report fragment and runs both cost models on it.

Run:  python examples/real_syr_import.py
"""

from repro.core import evaluate_prm
from repro.devices import XC5VLX110T
from repro.synth import parse_syr

# A verbatim-format ISE 12.4 device utilization summary (the paper's FIR
# numbers; with your own design, paste your .syr content here or read the
# file from disk).
SYR_TEXT = """
Release 12.4 - xst M.81d (lin64)

Device utilization summary:
---------------------------

Selected Device : 5vlx110tff1136-1

Slice Logic Utilization:
 Number of Slice Registers:             394  out of  69120     0%
 Number of Slice LUTs:                 1150  out of  69120     1%
    Number used as Logic:              1134  out of  69120     1%

Slice Logic Distribution:
 Number of LUT Flip Flop pairs used:   1300
   Number with an unused Flip Flop:     906  out of   1300    69%
   Number with an unused LUT:           150  out of   1300    11%
   Number of fully used LUT-FF pairs:   244  out of   1300    18%

Specific Feature Utilization:
 Number of Block RAM/FIFO:                0  out of    148     0%
 Number of DSP48Es:                      32  out of     64    50%

Number of control sets               : 5
"""


def main() -> None:
    report = parse_syr(SYR_TEXT, design_name="fir_from_syr")
    print("Parsed synthesis report:")
    print(" ", report.summary())

    result = evaluate_prm(report.requirements, XC5VLX110T)
    print("\nCost models on the parsed report:")
    print(" ", result.summary())
    row = result.table5_row()
    print(
        f"  Table V cells: H={row['H_CLB']} W_CLB={row['W_CLB']} "
        f"W_DSP={row['W_DSP']} RU_CLB={row['RU_CLB']}% "
        f"RU_DSP={row['RU_DSP']}%"
    )
    assert row["H_CLB"] == 5 and row["W_CLB"] == 2  # the paper's FIR PRR


if __name__ == "__main__":
    main()

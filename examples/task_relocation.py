#!/usr/bin/env python3
"""Hardware task relocation and context save/restore.

The paper builds on the authors' FCCM'13 context save/restore [5] and
ARC'13 hardware task relocation [6] work.  This example walks the full
preempt-migrate-resume flow for the MIPS PRM on the Virtex-5 LX110T:

1. size and place the MIPS PRR with the cost models;
2. configure it (apply the generated partial bitstream to the
   configuration-memory model);
3. preempt: GCAPTURE + read back the task's 956 frames;
4. relocate: restore the context into a *different* compatible PRR;
5. verify the migrated task's frames are bit-identical.

Run:  python examples/task_relocation.py
"""

from repro.bitgen import generate_partial_bitstream
from repro.core import evaluate_prm
from repro.devices import XC5VLX110T
from repro.devices.frames import BLOCK_TYPE_BRAM_CONTENT, BLOCK_TYPE_CONFIG
from repro.relocation import (
    ConfigMemory,
    find_compatible_regions,
    restore_context,
    save_context,
)
from repro.synth import synthesize
from repro.workloads import build_mips


def main() -> None:
    device = XC5VLX110T

    # 1. Cost models size and place the PRR.
    report = synthesize(build_mips(device.family), device.family)
    result = evaluate_prm(report.requirements, device)
    home = result.placement.region
    print(f"MIPS PRR: {home} ({result.bitstream.total_bytes} B bitstream)")

    # 2. Configure the PRR.
    memory = ConfigMemory(device)
    bitstream = generate_partial_bitstream(device, home, design_name="mips")
    memory.configure(bitstream.to_bytes())
    print(f"configured: {len(memory.frames)} frames in configuration memory")

    # 3. Preempt: capture the task's state.
    context = save_context(memory, home, task_name="mips")
    print(
        f"context saved: {context.frame_count} frames, "
        f"{context.size_bytes / 1024:.1f} KiB snapshot"
    )

    # 4. Relocate: resume in another compatible PRR.
    targets = find_compatible_regions(device, home)
    print(f"{len(targets)} relocation-compatible PRRs: rows "
          f"{[t.row for t in targets]}")
    target = targets[-1]
    restore = restore_context(device, context, target=target)
    migrated = ConfigMemory(device)
    migrated.configure(restore.to_bytes())
    print(f"task restored at {target} "
          f"({restore.size_bytes} B restore bitstream)")

    # 5. Verify bit-exact migration.
    for block_type, label in (
        (BLOCK_TYPE_CONFIG, "configuration"),
        (BLOCK_TYPE_BRAM_CONTENT, "BRAM content"),
    ):
        src = [w for _, w in memory.region_frames(home, block_type)]
        dst = [w for _, w in migrated.region_frames(target, block_type)]
        status = "identical" if src == dst else "MISMATCH"
        print(f"  {label} frames ({len(src)}): {status}")
        assert src == dst
    print("migration verified — the task resumes with its exact state")


if __name__ == "__main__":
    main()

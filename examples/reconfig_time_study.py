#!/usr/bin/env python3
"""Reconfiguration-time study: controllers, storage media and prior models.

Takes the Table VII partial bitstreams and asks the question the paper's
related work fought over: how long does a PRR reconfiguration actually
take?  Sweeps controller designs (PC/JTAG, CPU-fed ICAP, DMA ICAP, FaRM)
x storage media (CompactFlash ... on-chip BRAM), then scores the three
prior-work analytical models against the simulator — reproducing the
Section II criticisms (Papadimitriou's 30-60% error band; Claus valid
only when the ICAP is the bottleneck).

Run:  python examples/reconfig_time_study.py
"""

from repro.baselines import claus, duhem_farm, papadimitriou
from repro.core import evaluate_prm
from repro.devices import XC5VLX110T
from repro.icap import (
    STORAGE_MEDIA,
    DmaIcapController,
    FarmController,
    IcapController,
    PCController,
    simulate_reconfiguration,
)
from repro.synth import synthesize
from repro.workloads import build_mips


def main() -> None:
    device = XC5VLX110T
    report = synthesize(build_mips(device.family), device.family)
    result = evaluate_prm(report.requirements, device)
    nbytes = result.bitstream.total_bytes
    print(f"PRM: mips on {device.name}, partial bitstream {nbytes} bytes\n")

    controllers = [
        PCController(),
        IcapController(),
        DmaIcapController(),
        FarmController(compression_ratio=0.6),
    ]

    header = f"{'controller':12}" + "".join(
        f"{name:>16}" for name in STORAGE_MEDIA
    )
    print(header)
    print("-" * len(header))
    for controller in controllers:
        cells = []
        for medium in STORAGE_MEDIA.values():
            sim = simulate_reconfiguration(nbytes, controller, medium)
            cells.append(f"{sim.total_microseconds:>13.0f} us")
        print(f"{controller.name:12}" + "".join(f"{c:>16}" for c in cells))

    print("\nPrior-work analytical models vs simulator:")
    measured_cf = simulate_reconfiguration(
        nbytes, DmaIcapController(), STORAGE_MEDIA["compact_flash"]
    ).total_seconds
    measured_ddr = simulate_reconfiguration(
        nbytes, DmaIcapController(), STORAGE_MEDIA["ddr_sdram"]
    ).total_seconds

    pap = papadimitriou.estimate(nbytes, STORAGE_MEDIA["compact_flash"]).seconds
    print(
        f"  Papadimitriou (CF):  model {pap * 1e3:8.1f} ms vs measured "
        f"{measured_cf * 1e3:8.1f} ms -> error "
        f"{abs(pap - measured_cf) / measured_cf:5.0%} "
        f"(survey reports 30-60%)"
    )

    cl = claus.estimate(nbytes).seconds
    print(
        f"  Claus (ICAP-bound):  model {cl * 1e6:8.1f} us vs measured "
        f"{measured_ddr * 1e6:8.1f} us -> error "
        f"{abs(cl - measured_ddr) / measured_ddr:5.0%} (in its domain)"
    )
    print(
        f"  Claus (media-bound): model {cl * 1e6:8.1f} us vs measured "
        f"{measured_cf * 1e6:8.1f} us -> "
        f"{measured_cf / cl:4.0f}x off (outside its domain)"
    )

    farm = duhem_farm.estimate(nbytes, compression_ratio=0.6)
    print(
        f"  FaRM (compressed):   preload {farm.preload_seconds * 1e6:6.1f} us + "
        f"write {farm.write_seconds * 1e6:6.1f} us "
        f"(overlapped -> {farm.seconds * 1e6:6.1f} us)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: both cost models on one PRM in ~20 lines.

Reproduces the paper's designer workflow for the FIR filter on the
Virtex-5 LX110T:

1. build the PRM netlist and synthesize it (seconds, not hours);
2. run the PRR size/organization model (eqs. (1)-(17) + Fig. 1 flow);
3. run the partial bitstream size model (eqs. (18)-(23));
4. cross-check the model against a word-exact generated bitstream.

Run:  python examples/quickstart.py
"""

from repro.bitgen import generate_partial_bitstream, parse_bitstream
from repro.core import evaluate_prm
from repro.devices import XC5VLX110T
from repro.synth import render_syr, synthesize
from repro.workloads import build_fir


def main() -> None:
    device = XC5VLX110T
    print(f"Target device: {device.summary()}\n")

    # 1. Synthesize the 32-tap FIR PRM for the device's family.
    report = synthesize(build_fir(device.family), device.family)
    print("Synthesis report (.syr):")
    print(render_syr(report))

    # 2 + 3. Both cost models in one call.
    result = evaluate_prm(report.requirements, device)
    print("Cost model result:")
    print(" ", result.summary())
    geometry = result.placement.geometry
    print(
        f"  PRR: H={geometry.rows} rows x W={geometry.width} columns "
        f"(W_CLB={geometry.columns.clb}, W_DSP={geometry.columns.dsp}, "
        f"W_BRAM={geometry.columns.bram}), PRR_size={geometry.size}"
    )
    print(f"  placed at row {result.placement.region.row}, "
          f"column {result.placement.region.col}")
    for name, value in result.utilization.as_percentages().items():
        print(f"  {name:8} {value}%")
    print(f"  partial bitstream: {result.bitstream.total_bytes} bytes")
    print(f"  reconfiguration:   {result.reconfig.microseconds:.1f} us "
          f"@ ICAP peak\n")

    # 4. Validate the analytical size against a real generated bitstream.
    bitstream = generate_partial_bitstream(
        device, result.placement.region, design_name="fir"
    )
    parsed = parse_bitstream(bitstream.to_bytes())
    print("Model vs generated bitstream:")
    print(f"  model     {result.bitstream.total_bytes} bytes")
    print(f"  generated {bitstream.size_bytes} bytes "
          f"(CRC {'OK' if parsed.crc_ok else 'BAD'})")
    assert bitstream.size_bytes == result.bitstream.total_bytes
    print("  exact match — eq. (18) is word-exact on this substrate")


if __name__ == "__main__":
    main()

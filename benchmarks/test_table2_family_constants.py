"""Tables I–IV: parameter glossaries and family constants.

Static tables: the benchmark times their regeneration and asserts the
constants the paper's prose pins down.
"""

from repro.reports.tables import table1, table2, table3, table4


def test_table1_glossary(benchmark):
    rows = benchmark(table1)
    assert len(rows) == 24


def test_table2_family_constants(benchmark):
    rows = benchmark(table2)
    grid = {r["parameter"]: r for r in rows}
    # Paper prose for Virtex-5: 20 CLBs / 8 DSPs / 4 BRAMs per column-row,
    # 8 LUTs and 8 FFs per CLB.
    assert grid["CLB_col"]["virtex5"] == 20
    assert grid["DSP_col"]["virtex5"] == 8
    assert grid["BRAM_col"]["virtex5"] == 4
    assert grid["LUT_CLB"]["virtex5"] == 8
    assert grid["FF_CLB"]["virtex5"] == 8
    # Virtex-6 doubles row height and FF density.
    assert grid["CLB_col"]["virtex6"] == 40
    assert grid["FF_CLB"]["virtex6"] == 16


def test_table3_glossary(benchmark):
    rows = benchmark(table3)
    assert len(rows) == 16


def test_table4_frame_constants(benchmark):
    rows = benchmark(table4)
    grid = {r["parameter"]: r for r in rows}
    # Paper prose for Virtex-5: CLB/DSP/BRAM columns have 36/28/30 frames,
    # 128 BRAM data frames, 41-word frames, 32-bit words.
    assert grid["CF_CLB"]["virtex5"] == 36
    assert grid["CF_DSP"]["virtex5"] == 28
    assert grid["CF_BRAM"]["virtex5"] == 30
    assert grid["DF_BRAM"]["virtex5"] == 128
    assert grid["FR_size"]["virtex5"] == 41
    assert grid["Bytes_word"]["virtex5"] == 4
    assert grid["FR_size"]["virtex6"] == 81

"""Ablations F–H: the paper's future-work and discussion items, quantified.

* **F — automatic floorplanning** (Section V future work): the cost
  models drive a full multi-PRR floorplan; order-optimized placement
  keeps the static region less fragmented than naive greedy order.
* **G — non-rectangular PRRs** (Section IV discussion): the L-shaped
  FIR/V5 PRR beats the rectangle on area, RU and bitstream size.
* **H — task relocation / context save-restore** (the authors' prior
  work [5][6] this paper builds on): relocating a task between
  compatible PRRs preserves every frame payload, and a context
  round-trips bit-exactly.
"""

import pytest

from repro.bitgen import generate_partial_bitstream
from repro.core import find_prr, floorplan
from repro.core.shapes import composite_bitstream_bytes, find_lshape_prr
from repro.devices import XC5VLX110T
from repro.devices.frames import BLOCK_TYPE_CONFIG
from repro.relocation import (
    ConfigMemory,
    find_compatible_regions,
    relocate_bitstream,
    restore_context,
    save_context,
)

from tests.conftest import paper_requirements


def v5_prms():
    return [
        paper_requirements("fir", "virtex5"),
        paper_requirements("mips", "virtex5"),
        paper_requirements("sdram", "virtex5"),
    ]


def test_ablation_f_floorplanning(benchmark):
    plan = benchmark(floorplan, XC5VLX110T, v5_prms())
    assert len(plan.prrs) == 3
    # The PR area equals the sum of the Fig. 1 minima — floorplanning adds
    # placement, not padding.
    solo_total = sum(
        find_prr(XC5VLX110T, prm).size for prm in v5_prms()
    )
    assert plan.total_prr_cells == solo_total
    # A usable static region remains (the LX110T is mostly static here).
    assert plan.static_cells > 0.8 * (plan.static_cells + plan.total_prr_cells)
    print()
    print(plan.summary())


def test_ablation_g_lshape(benchmark):
    prm = paper_requirements("fir", "virtex5")
    rect, lshape = benchmark(find_lshape_prr, XC5VLX110T, prm)
    assert lshape.size < rect.size
    rect_ru = rect.utilization(prm).clb
    l_ru = lshape.utilization(prm).clb
    assert l_ru > rect_ru
    rect_bytes = composite_bitstream_bytes(rect)
    l_bytes = composite_bitstream_bytes(lshape)
    assert l_bytes < rect_bytes
    print()
    print(
        f"FIR/V5 rectangle: size {rect.size}, RU_CLB {rect_ru:.1%}, "
        f"{rect_bytes} B"
    )
    print(
        f"FIR/V5 L-shape:   size {lshape.size}, RU_CLB {l_ru:.1%}, "
        f"{l_bytes} B  ({(1 - l_bytes / rect_bytes):.1%} smaller bitstream)"
    )


@pytest.fixture(scope="module")
def mips_setup():
    placed = find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))
    bitstream = generate_partial_bitstream(
        XC5VLX110T, placed.region, design_name="mips"
    )
    return placed, bitstream


def test_ablation_h_relocation(benchmark, mips_setup):
    placed, bitstream = mips_setup
    target = find_compatible_regions(XC5VLX110T, placed.region)[0]
    moved = benchmark(relocate_bitstream, XC5VLX110T, bitstream, target)
    assert moved.size_bytes == bitstream.size_bytes

    src_mem, dst_mem = ConfigMemory(XC5VLX110T), ConfigMemory(XC5VLX110T)
    src_mem.configure(bitstream.to_bytes())
    dst_mem.configure(moved.to_bytes())
    src = src_mem.region_frames(placed.region, BLOCK_TYPE_CONFIG)
    dst = dst_mem.region_frames(target, BLOCK_TYPE_CONFIG)
    assert [w for _, w in src] == [w for _, w in dst]


def test_ablation_h_context_roundtrip(benchmark, mips_setup):
    placed, bitstream = mips_setup
    memory = ConfigMemory(XC5VLX110T)
    memory.configure(bitstream.to_bytes())

    def roundtrip():
        context = save_context(memory, placed.region, task_name="mips")
        restored = restore_context(XC5VLX110T, context)
        fresh = ConfigMemory(XC5VLX110T)
        fresh.configure(restored.to_bytes())
        return fresh

    fresh = benchmark(roundtrip)
    assert fresh.frames == memory.frames


def test_ablation_h_scrubbing(benchmark):
    """SEU scrubbing built on readback + PR: inject upsets, detect via
    golden frame signatures, repair by rewriting the partial bitstream."""
    from repro.relocation import ConfigMemory, Scrubber
    from repro.relocation.scrubber import inject_upsets

    placed = find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))
    bitstream = generate_partial_bitstream(
        XC5VLX110T, placed.region, design_name="mips"
    )

    def cycle():
        memory = ConfigMemory(XC5VLX110T)
        memory.configure(bitstream.to_bytes())
        scrubber = Scrubber.for_region(memory, placed.region, bitstream)
        inject_upsets(memory, placed.region, count=3, seed=2015)
        report = scrubber.scrub()
        clean = scrubber.scan()
        return report, clean

    report, clean = benchmark(cycle)
    assert report.upset_detected and report.repaired
    assert not clean.upset_detected

"""Ablation E: shared-PRR sizing and the partitioning design space.

Exercises the Section III.B multi-PRM rule ("the largest W_CLB, W_DSP,
and W_BRAM across all of the PRR's associated PRMs dictates the number of
... columns") and the explorer built on it: sharing trades fabric area
against per-PRM bitstream size/reconfiguration time.
"""

from repro.core import (
    bitstream_size_bytes,
    evaluate_shared_prr,
    explore,
    find_prr,
    pareto_front,
)
from repro.devices import XC6VLX75T

from tests.conftest import paper_requirements


def v6_prms():
    return [
        paper_requirements("fir", "virtex6"),
        paper_requirements("mips", "virtex6"),
        paper_requirements("sdram", "virtex6"),
    ]


def test_shared_prr_dominates_and_costs_more_bytes(benchmark):
    prms = v6_prms()
    results = benchmark(evaluate_shared_prr, prms, XC6VLX75T)
    shared_geometry = results[0].placement.geometry
    for prm in prms:
        solo = find_prr(XC6VLX75T, prm).geometry
        assert shared_geometry.columns.dominates(solo.columns)
        # Sharing inflates every member's bitstream to the shared size.
        assert bitstream_size_bytes(shared_geometry) >= bitstream_size_bytes(solo)


def test_sharing_saves_area(benchmark):
    prms = v6_prms()
    shared = benchmark(find_prr, XC6VLX75T, prms)
    solo_total = sum(find_prr(XC6VLX75T, prm).size for prm in prms)
    assert shared.size < solo_total


def test_explorer_pareto_tradeoff(benchmark):
    prms = v6_prms()
    designs = benchmark(explore, XC6VLX75T, prms)
    front = pareto_front(designs)
    assert front
    # The frontier spans the tradeoff: the min-area design is not the
    # min-bitstream design.
    min_area = min(designs, key=lambda d: d.total_prr_size)
    min_bytes = min(designs, key=lambda d: d.total_bitstream_bytes)
    assert min_area.total_bitstream_bytes >= min_bytes.total_bitstream_bytes
    assert min_bytes.total_prr_size >= min_area.total_prr_size
    print()
    for design in front:
        print(" *", design.summary())

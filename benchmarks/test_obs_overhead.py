"""Obs-layer overhead gate: disabled instrumentation must cost <2%.

The observability layer's contract is that with ``repro.obs`` disabled
(the default), the instrumentation threaded through the explorer,
scheduler, window index and ICAP paths is invisible: each site is one
module-attribute read plus a branch (or a plain int increment), and
:func:`trace_span` hands back a preallocated no-op.

A direct A/B wall-time comparison of "instrumented" vs "uninstrumented"
builds is impossible (the sites are compiled in) and a 2% direct timing
assertion would flake on loaded CI machines.  Instead this benchmark
bounds the overhead from first principles:

1. run the instrumented workload once *enabled* and count every
   instrumentation event it records (counters, spans);
2. micro-time the disabled primitives (null ``trace_span``, the
   ``enabled`` guard, an int increment) over a large loop;
3. assert  ``events x worst-case-per-event cost  <  2% x disabled run
   time`` — a conservative over-estimate of the true overhead, since
   most counted events compile down to a single local int add.
"""

from __future__ import annotations

import time

import repro.obs as obs
from repro.core.explorer import explore
from repro.core.placement_search import find_prr
from repro.devices import XC5VLX110T
from repro.multitask import HwTask, make_task_set, simulate_pr
from repro.obs import trace as obs_trace

from tests.conftest import paper_requirements

OVERHEAD_BUDGET = 0.02  # the documented <2% disabled-overhead bound


def _workload():
    prms = [
        paper_requirements(name, "virtex5") for name in ("fir", "sdram", "mips")
    ]
    tasks = [
        HwTask(paper_requirements("fir", "virtex5"), exec_seconds=2e-3),
        HwTask(paper_requirements("sdram", "virtex5"), exec_seconds=1e-3),
    ]
    jobs = make_task_set(tasks, rate_per_s=400.0, horizon_s=0.25, seed=2015)
    shared = find_prr(XC5VLX110T, [t.prm for t in tasks])
    return prms, jobs, [shared.geometry, shared.geometry]


def _run(prms, jobs, prrs):
    explore(XC5VLX110T, prms, mode="pruned")
    simulate_pr(jobs, prrs, icap_exclusive=True)


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _per_event_cost(loops=50_000):
    """Worst-case seconds per disabled instrumentation event."""

    def spans():
        for _ in range(loops):
            obs_trace.trace_span("bench")

    def guards():
        total = 0
        for _ in range(loops):
            if obs_trace.enabled:  # the hot-path guard
                total += 1
            total += 1  # the always-on int counter idiom
        return total

    span_cost = _best_of(spans, repeats=3) / loops
    guard_cost = _best_of(guards, repeats=3) / loops
    return max(span_cost, guard_cost)


def test_disabled_by_default():
    assert obs.enabled is False


def test_null_span_is_allocation_free():
    assert obs_trace.trace_span("a") is obs_trace.trace_span("b")


def test_disabled_overhead_under_two_percent():
    prms, jobs, prrs = _workload()
    _run(prms, jobs, prrs)  # warm geometry/window caches for fair timing

    # 1. Count the instrumentation events one run generates.  Only
    # occurrence counters qualify — quantity counters (bytes moved, port
    # seconds) accumulate *values*, not hot-path visits.
    with obs.capture(command="overhead-census") as session:
        _run(prms, jobs, prrs)
    doc = session.to_dict()
    events = sum(
        value
        for name, value in doc["metrics"]["counters"].items()
        if "bytes" not in name and "seconds" not in name
    )
    events += sum(h["count"] for h in doc["metrics"]["histograms"].values())

    def span_count(spans):
        return sum(1 + span_count(s["children"]) for s in spans)

    events += span_count(doc["spans"])
    events += 50  # headroom for guards that record nothing
    assert not obs.enabled

    # 2. Micro-cost of one disabled event, 3. bound the relative overhead.
    run_seconds = _best_of(lambda: _run(prms, jobs, prrs))
    overhead_seconds = events * _per_event_cost()
    ratio = overhead_seconds / run_seconds
    assert ratio < OVERHEAD_BUDGET, (
        f"estimated disabled obs overhead {ratio:.2%} "
        f"({events} events x {overhead_seconds / events * 1e9:.0f}ns "
        f"over a {run_seconds * 1e3:.2f}ms run) exceeds "
        f"{OVERHEAD_BUDGET:.0%}"
    )

"""Ablation O: the designer-productivity claim, quantified.

"Even though complete implementation provides highly accurate design
analysis ... this PR design flow can take hours to days ... to implement
a single PR partitioning" while the cost models let designers evaluate a
partitioning from a synthesis report in negligible time (Section I and
Table VIII).

This bench evaluates a 15-design exploration (5 set partitions x 3
candidate H policies would be typical) two ways:

* **cost-model path**: measured wall time of the actual Python evaluation
  (microseconds per design);
* **full-flow path**: the modelled per-design implementation time
  (Table VIII's MAP/PAR minutes), which every candidate would pay without
  the models.

Reported: the exploration speedup factor — the paper's whole raison
d'être.
"""

import time

from repro.core import evaluate_partition, iter_set_partitions
from repro.devices import XC5VLX110T
from repro.par.flow import simulated_implementation_seconds
from repro.synth.xst import simulated_synthesis_seconds

from tests.conftest import paper_requirements


def evaluate_design_space():
    prms = [
        paper_requirements("fir", "virtex5"),
        paper_requirements("mips", "virtex5"),
        paper_requirements("sdram", "virtex5"),
    ]
    designs = []
    for partition in iter_set_partitions(range(len(prms))):
        groups = [[prms[i] for i in group] for group in partition]
        design = evaluate_partition(XC5VLX110T, groups)
        if design is not None:
            designs.append(design)
    return designs


def test_exploration_speedup(benchmark):
    start = time.perf_counter()
    designs = evaluate_design_space()
    model_seconds = time.perf_counter() - start
    benchmark(evaluate_design_space)

    assert designs
    # Without the models, every candidate PRR of every design would run
    # the full flow: synthesis once per PRM + implementation per PRR.
    synthesis_cost = 3 * simulated_synthesis_seconds(40, 1500)
    full_flow_seconds = synthesis_cost + sum(
        simulated_implementation_seconds(
            assignment.placement.geometry.luts_available // 2, 0.8
        )
        for design in designs
        for assignment in design.assignments
    )
    speedup = full_flow_seconds / max(model_seconds, 1e-9)
    # The models replace tool-hours with sub-second evaluation: >= 1000x.
    assert speedup > 1_000
    print()
    print(
        f"{len(designs)} feasible designs: cost models "
        f"{model_seconds * 1e3:.1f} ms vs full flow "
        f"~{full_flow_seconds / 60:.0f} min -> {speedup:,.0f}x"
    )


def test_single_design_model_latency(benchmark):
    """One design evaluation stays in the millisecond range."""
    designs = benchmark(evaluate_design_space)
    assert designs
    if benchmark.stats:
        assert benchmark.stats["mean"] < 0.5

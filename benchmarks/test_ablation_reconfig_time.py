"""Ablation C: reconfiguration time — our simulator vs prior-work models.

Puts the paper's Section II related-work landscape on one axis: for the
Table VII bitstreams, compare the icap simulator ("measured") against the
Papadimitriou, Claus and Duhem/FaRM analytical models and the Liu design
comparison.  Reproduced shapes:

* DMA-class controllers beat CPU-copy ICAP by >5x and PC/JTAG by >100x;
* the Claus busy-factor model is accurate when the ICAP is the bottleneck
  and wildly optimistic when storage is (the paper's criticism);
* the Papadimitriou media model lands in its own reported 30–60% error
  band for media-bound transfers;
* FaRM-style compression cuts preload time proportionally.
"""

import pytest

from repro.baselines import claus, duhem_farm, liu_dma, papadimitriou
from repro.icap import (
    COMPACT_FLASH,
    DDR_SDRAM,
    DmaIcapController,
    IcapController,
    simulate_reconfiguration,
)

TABLE7 = {
    ("fir", "xc5vlx110t"): 83040,
    ("mips", "xc5vlx110t"): 157272,
    ("sdram", "xc5vlx110t"): 18016,
    ("fir", "xc6vlx75t"): 76928,
    ("mips", "xc6vlx75t"): 188728,
    ("sdram", "xc6vlx75t"): 23792,
}


def full_comparison():
    rows = []
    for (prm, device), nbytes in TABLE7.items():
        measured = simulate_reconfiguration(
            nbytes, DmaIcapController(), DDR_SDRAM
        ).total_seconds
        rows.append(
            {
                "prm": prm,
                "device": device,
                "bytes": nbytes,
                "measured_us": measured * 1e6,
                "claus_us": claus.estimate(nbytes).seconds * 1e6,
                "papadimitriou_cf_us": papadimitriou.estimate(
                    nbytes, COMPACT_FLASH
                ).seconds
                * 1e6,
                "farm_us": duhem_farm.estimate(nbytes).seconds * 1e6,
            }
        )
    return rows


def test_prior_work_comparison(benchmark):
    rows = benchmark(full_comparison)
    for row in rows:
        # ICAP-bound case: Claus is within ~10% of measured.
        assert row["claus_us"] == pytest.approx(row["measured_us"], rel=0.10)
        # FaRM (overlapped, ICAP-bound) likewise tracks measured.
        assert row["farm_us"] == pytest.approx(row["measured_us"], rel=0.10)


def test_claus_fails_off_domain():
    """'the method is only valid if the ICAP is the limiting factor'."""
    nbytes = TABLE7[("mips", "xc5vlx110t")]
    model = claus.estimate(nbytes).seconds
    measured = simulate_reconfiguration(
        nbytes, DmaIcapController(), COMPACT_FLASH
    ).total_seconds
    assert measured / model > 50


def test_papadimitriou_error_band():
    nbytes = TABLE7[("fir", "xc5vlx110t")]
    model = papadimitriou.estimate(nbytes, COMPACT_FLASH).seconds
    measured = simulate_reconfiguration(
        nbytes, DmaIcapController(), COMPACT_FLASH
    ).total_seconds
    error = abs(model - measured) / measured
    assert 0.30 <= error <= 0.60


def test_liu_design_space(benchmark):
    points = benchmark(liu_dma.compare_designs, TABLE7[("mips", "xc5vlx110t")])
    by_name = {p.design: p.seconds for p in points}
    assert by_name["cpu_icap"] / by_name["dma_icap"] > 5
    assert by_name["pc_jtag"] / by_name["dma_icap"] > 100


def test_farm_compression_sweep():
    nbytes = TABLE7[("mips", "xc6vlx75t")]
    previous = float("inf")
    for ratio in (1.0, 0.8, 0.6, 0.4):
        preload = duhem_farm.estimate(nbytes, compression_ratio=ratio).preload_seconds
        assert preload < previous
        previous = preload


def test_cpu_icap_efficiency_matters():
    nbytes = TABLE7[("fir", "xc6vlx75t")]
    slow = simulate_reconfiguration(nbytes, IcapController(), DDR_SDRAM)
    fast = simulate_reconfiguration(nbytes, DmaIcapController(), DDR_SDRAM)
    assert slow.total_seconds / fast.total_seconds > 5

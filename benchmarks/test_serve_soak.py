"""Serve-layer soak gates: quick counterpart of ``scripts/bench_serve.py``.

The committed ``BENCH_serve.json`` records the full soak; these gates run
a scaled-down version in-process so CI catches resilience regressions:

* a crash-injected soak must resolve **every** accepted request (no
  hangs, no untyped failures);
* a deadline'd anytime explore on the synthetic 10-PRM workload must
  return within deadline + 10% (plus scheduler slack for loaded CI);
* a deterministic evaluation-budget cut must yield a subset of the
  exhaustive design list with a self-consistent front;
* shedding must carry the typed backpressure contract
  (``Overloaded.retry_after_s``).
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.core.explorer import explore, pareto_front
from repro.errors import Overloaded

from scripts.bench_explorer import WIDE_DEVICE, synthetic_prms
from scripts.bench_serve import run_deadline_probe, run_soak

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash injection is delivered to pool workers via fork",
)


@fork_only
def test_soak_with_crashes_resolves_every_accepted_request():
    outcome = run_soak(
        requests=12,
        workers=2,
        queue_depth=8,
        inject_crashes=True,
        explore_deadline_s=5.0,
    )
    assert outcome["crashes_injected"] >= 1
    assert outcome["untyped_failures"] == 0
    assert outcome["resolution_rate_non_shed"] == 1.0
    assert outcome["completed"] + outcome["deadline_exceeded"] + outcome[
        "typed_errors"
    ] == outcome["accepted"]


def test_deadline_probe_returns_within_budget():
    probe = run_deadline_probe(0.5)
    assert probe["within_budget"], probe
    assert probe["designs"] >= 1


def test_tight_deadline_on_synthetic10_is_degraded_but_nonempty():
    prms = synthetic_prms(10)
    start = time.perf_counter()
    result = explore(WIDE_DEVICE, prms, mode="beam", deadline_s=0.01)
    elapsed = time.perf_counter() - start
    assert elapsed < 0.01 * 1.1 + 0.5  # generous slack for loaded CI
    assert len(result) >= 1


def test_evaluation_budget_cut_is_subset_with_consistent_front():
    prms = synthetic_prms(6)
    full = explore(WIDE_DEVICE, prms, mode="exhaustive")
    full_objectives = {d.objectives for d in full}
    cut = explore(WIDE_DEVICE, prms, mode="exhaustive", max_evaluations=40)
    assert cut.degraded
    assert cut.exhausted_reason == "evaluations"
    assert {d.objectives for d in cut} <= full_objectives
    assert cut.front == pareto_front(list(cut))
    # determinism: same budget, same designs
    again = explore(WIDE_DEVICE, prms, mode="exhaustive", max_evaluations=40)
    assert [d.objectives for d in again] == [d.objectives for d in cut]


def test_shed_carries_typed_backpressure_contract():
    from repro.serve import CostModelService, ExploreRequest, ServiceConfig

    prms = tuple(synthetic_prms(6))
    config = ServiceConfig(
        workers=1, queue_depth=1, shed_retry_after_s=0.25
    )
    with CostModelService(config) as service:
        sheds = []
        for _ in range(8):
            try:
                service.submit(
                    ExploreRequest(WIDE_DEVICE, prms, mode="exhaustive")
                )
            except Overloaded as error:
                sheds.append(error)
        assert sheds, "burst never overflowed the 1-deep queue"
        # retry_after_s is jittered upward by at most shed_retry_jitter
        # so a retry herd decorrelates.
        band = 0.25 * (1 + config.shed_retry_jitter) + 1e-9
        assert all(0.25 <= s.retry_after_s <= band for s in sheds)
        assert all(s.retryable for s in sheds)

"""Fig. 2: the partial bitstream structure.

Regenerates the figure's example — a two-row PRR containing CLB, DSP and
BRAM columns on a Virtex-5 — and asserts the documented block sequence:
initial words, then per row a configuration block (FAR/FDRI + frames +
flush) and a BRAM initialization block, then the final words.
"""

from repro.reports.figures import fig2_structure, render_fig2


def test_fig2_structure(benchmark):
    parsed = benchmark(fig2_structure)
    # "a sample partial bitstream structure for a PRR with two rows that
    # contain CLBs, DSPs, and BRAMs"
    assert parsed.rows == 2
    assert len(parsed.bram_blocks) == 2
    assert parsed.initial_words == 16
    assert parsed.final_words == 14
    assert parsed.crc_checked and parsed.crc_ok

    # Block interleaving: per row, config block then BRAM block.
    kinds = [block.is_bram_content for block in parsed.blocks]
    assert kinds == [False, True, False, True]

    # Every preamble is the 5-word FAR/FDRI sequence of eq. (19)/(23).
    for block in parsed.blocks:
        assert block.preamble_words == 5

    # Data bursts carry whole frames plus exactly one flush frame.
    frame_words = 41
    for block in parsed.blocks:
        assert block.data_words % frame_words == 0
        assert block.data_words // frame_words >= 2

    print()
    print(render_fig2(parsed))


def test_fig2_generation_throughput(benchmark):
    """Word-exact generation of the MIPS/V5 bitstream (~157 KB)."""
    from repro.bitgen import generate_partial_bitstream
    from repro.core import find_prr
    from repro.devices import XC5VLX110T
    from tests.conftest import paper_requirements

    placed = find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))
    bitstream = benchmark(
        generate_partial_bitstream, XC5VLX110T, placed.region
    )
    assert bitstream.size_bytes == 157272

"""Ablation B: bitstream model vs word-exact generator over random PRRs.

The validation the paper could not show (no vendor documentation existed
for partial bitstream sizes): eq. (18) is exact — 0% error against
generated bitstreams — across a randomized PRR population on three device
families.
"""

import numpy as np

from repro.bitgen import generate_partial_bitstream, parse_bitstream
from repro.core import PRRGeometry, estimate_bitstream
from repro.devices import XC4VLX60, XC5VLX110T, XC6VLX75T
from repro.devices.fabric import Region


def random_prr_population(seed=2015, count=60):
    """Deterministic random valid PRRs across the catalog devices."""
    rng = np.random.default_rng(seed)
    cases = []
    devices = (XC5VLX110T, XC6VLX75T, XC4VLX60)
    while len(cases) < count:
        device = devices[rng.integers(len(devices))]
        row = int(rng.integers(1, device.rows + 1))
        height = int(rng.integers(1, device.rows - row + 2))
        col = int(rng.integers(2, device.num_columns - 8))
        width = int(rng.integers(1, 9))
        region = Region(row=row, col=col, height=height, width=width)
        if device.is_valid_prr(region):
            cases.append((device, region))
    return cases


def validate_population(cases):
    errors = []
    for device, region in cases:
        counts = device.region_column_counts(region)
        geometry = PRRGeometry(device.family, region.height, counts)
        model = estimate_bitstream(geometry)
        bitstream = generate_partial_bitstream(device, region)
        errors.append(bitstream.size_bytes - model.total_bytes)
    return errors


def test_model_exact_over_random_prrs(benchmark):
    cases = random_prr_population()
    errors = benchmark(validate_population, cases)
    assert len(errors) == 60
    assert all(e == 0 for e in errors), f"nonzero model errors: {errors}"


def test_parser_attribution_over_random_prrs():
    for device, region in random_prr_population(seed=7, count=15):
        counts = device.region_column_counts(region)
        geometry = PRRGeometry(device.family, region.height, counts)
        parsed = parse_bitstream(
            generate_partial_bitstream(device, region).to_bytes()
        )
        assert parsed.crc_ok
        assert parsed.section_bytes() == estimate_bitstream(geometry).breakdown()

"""Ablation D: hardware multitasking — PR vs full reconfiguration.

The paper's Section I motivation, quantified: PRMs time-multiplexing PRRs
(partial bitstreams, independent reconfiguration) vs a non-PR design that
reloads the full device bitstream on every module switch and halts all
execution meanwhile.  Reproduced shape: PR wins on makespan, mean
response, and total reconfiguration time — by a factor tracking the
full/partial bitstream size ratio (~20-200x on these devices).
"""

from repro.core import find_prr, full_device_bitstream_bytes
from repro.devices import XC5VLX110T
from repro.multitask import (
    HwTask,
    compare,
    make_task_set,
    simulate_full_reconfig,
    simulate_pr,
)

from tests.conftest import paper_requirements


def build_scenario():
    """The explorer's best feasible LX110T design: a PRR shared by FIR and
    SDRAM plus a dedicated MIPS PRR (fully sharing all three is infeasible
    on this fabric — the FIR+MIPS merge needs a BRAM and the lone DSP
    column within 7 contiguous columns, and they sit 8 apart)."""
    fir = HwTask(paper_requirements("fir", "virtex5"), exec_seconds=0.002)
    mips = HwTask(paper_requirements("mips", "virtex5"), exec_seconds=0.004)
    sdram = HwTask(paper_requirements("sdram", "virtex5"), exec_seconds=0.001)
    shared = find_prr(XC5VLX110T, [fir.prm, sdram.prm])
    mips_prr = find_prr(XC5VLX110T, mips.prm, forbidden=[shared.region])
    prrs = [shared.geometry, mips_prr.geometry]
    jobs = make_task_set(
        [fir, mips, sdram], rate_per_s=250.0, horizon_s=0.4, seed=2015
    )
    return jobs, prrs


def run_comparison():
    jobs, prrs = build_scenario()
    pr = simulate_pr(jobs, prrs)
    full = simulate_full_reconfig(jobs, XC5VLX110T)
    return compare(pr, full)


def test_pr_beats_full_reconfiguration(benchmark):
    comparison = benchmark(run_comparison)
    assert comparison.makespan_speedup > 1.5
    assert comparison.response_speedup > 1.5
    assert comparison.pr.total_reconfig_seconds < (
        comparison.baseline.total_reconfig_seconds
    )
    print()
    print(comparison.pr.summary())
    print(comparison.baseline.summary())
    print(comparison.summary())


def test_reconfig_ratio_tracks_bitstream_ratio():
    """Per-switch reconfiguration cost tracks the bitstream size ratio
    (the mechanism behind the PR win)."""
    from repro.core import bitstream_size_bytes

    jobs, prrs = build_scenario()
    largest_partial = max(bitstream_size_bytes(g) for g in prrs)
    full_bytes = full_device_bitstream_bytes(XC5VLX110T)
    assert full_bytes / largest_partial > 15

    pr = simulate_pr(jobs, prrs)
    full = simulate_full_reconfig(jobs, XC5VLX110T)
    pr_per_switch = pr.total_reconfig_seconds / max(pr.reconfig_count, 1)
    full_per_switch = full.total_reconfig_seconds / max(full.reconfig_count, 1)
    # Every PR switch moves at most the largest partial bitstream.
    assert full_per_switch / pr_per_switch >= full_bytes / largest_partial


def test_full_reconfig_halts_device():
    jobs, _ = build_scenario()
    full = simulate_full_reconfig(jobs, XC5VLX110T)
    assert full.halted_seconds > 0
    assert full.halted_seconds == full.total_reconfig_seconds

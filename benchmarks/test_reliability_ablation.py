"""Reliability ablation acceptance gates (ISSUE 2).

Assertion-only companion of ``scripts/bench_reliability.py`` (which
writes the tracked ``BENCH_reliability.json``): on the paper's FIR+SDRAM
workload sharing one PRR, asserts the three properties the fault-tolerant
runtime promises — fault rate 0 reproduces the stock scheduler's
``ScheduleResult`` exactly, a fixed seed yields deterministic fault
counters, and verified-write retry strictly dominates no-retry on
completion rate at every swept nonzero fault rate.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.faults import DegradedModePolicy, FaultInjector, RetryPolicy
from repro.multitask import simulate_pr

from scripts.bench_reliability import FAULT_RATES, SEED, run_arm, workload


@pytest.fixture(scope="module")
def stream():
    return workload()


RETRY = DegradedModePolicy(
    retry=RetryPolicy(max_attempts=4), scrub_period_s=0.02, spill_to_full=False
)
NO_RETRY = DegradedModePolicy.no_retry(scrub_period_s=0.02, spill_to_full=False)


def test_zero_fault_rate_reproduces_stock_scheduler_exactly(stream):
    jobs, prrs = stream
    base = simulate_pr(jobs, prrs)
    faulted = simulate_pr(
        jobs, prrs, faults=FaultInjector.from_rates(seed=SEED), fault_policy=RETRY
    )
    assert dataclasses.asdict(faulted) == dataclasses.asdict(base)


def test_fixed_seed_fault_counters_are_deterministic(stream):
    jobs, prrs = stream
    first = run_arm(jobs, prrs, fault_rate=0.4, policy=RETRY)
    second = run_arm(jobs, prrs, fault_rate=0.4, policy=RETRY)
    assert first == second
    assert first["retries"] > 0
    no_retry = run_arm(jobs, prrs, fault_rate=0.4, policy=NO_RETRY)
    assert no_retry == run_arm(jobs, prrs, fault_rate=0.4, policy=NO_RETRY)
    assert no_retry["failed_reconfigs"] > 0


def test_retry_strictly_dominates_no_retry_on_completion(stream):
    jobs, prrs = stream
    for rate in FAULT_RATES:
        retry = run_arm(jobs, prrs, fault_rate=rate, policy=RETRY)
        no_retry = run_arm(jobs, prrs, fault_rate=rate, policy=NO_RETRY)
        if rate == 0:
            assert retry["completion_rate"] == no_retry["completion_rate"] == 1.0
        else:
            assert retry["completion_rate"] > no_retry["completion_rate"]
            assert retry["dropped_jobs"] < no_retry["dropped_jobs"]


def test_scrub_off_is_a_cliff_not_a_gradient(stream):
    jobs, prrs = stream
    scrubbed = run_arm(
        jobs,
        prrs,
        fault_rate=0.4,
        policy=DegradedModePolicy.no_retry(
            quarantine_threshold=2, scrub_period_s=0.02, spill_to_full=False
        ),
    )
    unscrubbed = run_arm(
        jobs,
        prrs,
        fault_rate=0.4,
        policy=DegradedModePolicy.no_retry(
            quarantine_threshold=2, scrub_period_s=None, spill_to_full=False
        ),
    )
    assert scrubbed["scrub_repairs"] > 0
    assert unscrubbed["scrub_repairs"] == 0
    assert scrubbed["completion_rate"] > 2 * unscrubbed["completion_rate"]

"""Batch-engine perf gate: vectorized evaluation must stay >= 10x scalar.

CI counterpart of ``scripts/bench_batch.py`` (which writes the tracked
``BENCH_batch.json``).  At the ISSUE 6 acceptance size — 10k distinct
(PRM, device) pairs in one call — the numpy columnar engine must beat a
scalar ``evaluate_prm`` loop by at least 10x.  The committed benchmark
records ~90x on an idle machine; the 10x gate tolerates loaded CI boxes
while still catching any regression that de-vectorizes a model stage.
Correctness of the speedup (identical selections) is asserted on a
sample before timing, so a fast-but-wrong engine cannot pass.
"""

from __future__ import annotations

import time

from repro.core.api import batch_evaluate, evaluate_prm
from repro.core.bitstream_model import clear_bitstream_cache
from repro.core.placement_search import PlacementNotFoundError
from repro.core.prr_model import clear_geometry_cache
from repro.devices import XC5VLX110T

from scripts.bench_batch import synthetic_batch

GATE_N = 10_000
GATE_SPEEDUP = 10.0
#: Scalar loop is timed on a subsample and extrapolated linearly — it IS
#: linear in N (no cross-PRM state once caches are cleared), and this
#: keeps the gate's wall time ~1s instead of ~2.5s.
SCALAR_SAMPLE = 2_000


def test_batch_evaluate_10x_faster_at_10k_pairs():
    prms = synthetic_batch(GATE_N)

    # Correctness spot-check before timing anything.
    sample_every = GATE_N // 50
    warm = batch_evaluate(prms, XC5VLX110T)
    for i in range(0, GATE_N, sample_every):
        try:
            expected = evaluate_prm(prms[i], XC5VLX110T)
        except PlacementNotFoundError:
            assert not bool(warm.feasible[i])
            continue
        assert warm.result(i) == expected

    clear_geometry_cache()
    clear_bitstream_cache()
    start = time.perf_counter()
    for prm in prms[:SCALAR_SAMPLE]:
        try:
            evaluate_prm(prm, XC5VLX110T)
        except PlacementNotFoundError:
            pass
    scalar_s = (time.perf_counter() - start) * (GATE_N / SCALAR_SAMPLE)

    best_batch_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        result = batch_evaluate(prms, XC5VLX110T)
        best_batch_s = min(best_batch_s, time.perf_counter() - start)
    assert len(result) == GATE_N

    speedup = scalar_s / best_batch_s
    print(
        f"\nbatch gate: scalar~{scalar_s * 1e3:.0f} ms (extrapolated) "
        f"batch={best_batch_s * 1e3:.1f} ms speedup={speedup:.1f}x"
    )
    assert speedup >= GATE_SPEEDUP, (
        f"batch engine only {speedup:.1f}x faster than scalar at "
        f"N={GATE_N}; the >= {GATE_SPEEDUP}x gate failed"
    )

"""Shared benchmark fixtures.

Every benchmark regenerates one paper table/figure (or an ablation) and
asserts the reproduced shape before timing it, so `pytest benchmarks/
--benchmark-only` doubles as the reproduction harness.  Printed output is
captured into EXPERIMENTS.md manually (see repo root).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Benchmarks reuse the reference constants in tests/conftest.py; make the
# repo root importable even under plain `pytest benchmarks/` (which, unlike
# `python -m pytest`, does not put the CWD on sys.path).
_ROOT = str(Path(__file__).resolve().parent.parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

from repro.devices import XC5VLX110T, XC6VLX75T
from repro.synth import synthesize
from repro.workloads import build_fir, build_mips, build_sdram

BUILDERS = {"fir": build_fir, "mips": build_mips, "sdram": build_sdram}
DEVICES = {"xc5vlx110t": XC5VLX110T, "xc6vlx75t": XC6VLX75T}


@pytest.fixture(scope="session")
def reports():
    """Synthesis reports for the six evaluation cases, keyed by
    (workload, device name)."""
    out = {}
    for device in DEVICES.values():
        for name, builder in BUILDERS.items():
            out[(name, device.name)] = synthesize(
                builder(device.family), device.family
            )
    return out

"""Table VIII: synthesis and implementation execution times.

The paper reports XST synthesis at 3m20s–4m50s and ISE implementation at
2m55s–5m50s on a 1.8 GHz laptop.  Our substrate *models* those times
(deterministic size-driven runtime model) — the shape to reproduce is
(a) both phases land in whole minutes for paper-scale PRMs, and (b) the
cost-model path itself takes microseconds, which is the paper's central
productivity claim ("take less than 5 minutes in all cases" for the
*entire* synthesize+model flow vs hours-to-days for the PR design flow).
"""

from repro.reports.tables import render_grid, table8


def test_table8_full_regeneration(benchmark):
    rows = benchmark(table8)
    assert len(rows) == 6
    for (workload, device), row in rows.items():
        assert 150 <= row["synthesis_seconds"] <= 300
        assert 150 <= row["implementation_seconds"] <= 360
    # Shape: MIPS (largest PRM) has the longest implementation per device.
    for device in ("xc5vlx110t", "xc6vlx75t"):
        per_device = {
            workload: rows[(workload, device)]["implementation_seconds"]
            for workload in ("fir", "mips", "sdram")
        }
        assert max(per_device, key=per_device.get) == "mips"
        assert min(per_device, key=per_device.get) == "sdram"
    print()
    print(
        render_grid(
            [
                {
                    "prm": k[0],
                    "device": k[1],
                    "synthesis_s": round(v["synthesis_seconds"]),
                    "implementation_s": round(v["implementation_seconds"]),
                }
                for k, v in sorted(rows.items(), key=lambda kv: kv[0][1])
            ]
        )
    )


def test_cost_model_is_sub_millisecond(benchmark, reports):
    """The productivity claim: the models replace the hours-long PR flow.
    One full two-model evaluation must run in well under a second."""
    from repro.core import evaluate_prm
    from repro.devices import XC6VLX75T

    requirements = reports[("mips", "xc6vlx75t")].requirements
    result = benchmark(evaluate_prm, requirements, XC6VLX75T)
    assert result.bitstream.total_bytes == 188728
    if benchmark.stats:  # absent under --benchmark-disable
        assert benchmark.stats["mean"] < 0.1  # seconds

"""Ablation A: PRR row count (H) vs size, fragmentation and bitstream.

The paper's motivation for starting the Fig. 1 flow at H = 1 and sweeping:
H trades width against height, changing PRR_size, internal fragmentation
and bitstream size non-monotonically.  This bench sweeps H for FIR on the
LX110T and reports the frontier the flow optimizes over.
"""

from repro.core import (
    InfeasibleGeometryError,
    bitstream_size_bytes,
    prr_geometry_for_rows,
    utilization,
)
from repro.devices import XC5VLX110T
from repro.reports.tables import render_grid

from tests.conftest import paper_requirements


def sweep_fir_h():
    prm = paper_requirements("fir", "virtex5")
    rows = []
    for h in range(1, XC5VLX110T.rows + 1):
        try:
            geometry = prr_geometry_for_rows(
                prm, XC5VLX110T.family, h, single_dsp_column=True
            )
        except InfeasibleGeometryError:
            rows.append({"H": h, "feasible": False})
            continue
        ru = utilization(prm, geometry)
        rows.append(
            {
                "H": h,
                "feasible": True,
                "W": geometry.width,
                "size": geometry.size,
                "RU_CLB_pct": round(ru.clb * 100),
                "bitstream_bytes": bitstream_size_bytes(geometry),
            }
        )
    return rows


def test_h_sweep(benchmark):
    rows = benchmark(sweep_fir_h)
    feasible = [r for r in rows if r["feasible"]]
    # Eq. (4) gates H >= 4.
    assert [r["H"] for r in rows if not r["feasible"]] == [1, 2, 3]
    # The H = 5 point is the global size and bitstream minimum.
    best_size = min(feasible, key=lambda r: r["size"])
    best_bytes = min(feasible, key=lambda r: r["bitstream_bytes"])
    assert best_size["H"] == 5
    assert best_bytes["H"] == 5
    # Oversizing is real: the worst feasible H costs more area and bytes.
    worst = max(feasible, key=lambda r: r["size"])
    assert worst["size"] > best_size["size"]
    assert worst["bitstream_bytes"] > best_bytes["bitstream_bytes"]
    print()
    print(render_grid(rows))

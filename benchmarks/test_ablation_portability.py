"""Ablation M: cross-family portability of the cost models.

The paper: "We define our cost models to be generally portable across
different Xilinx FPGA families by simply altering the cost model's
device-specific characteristics values".  This bench runs the full
pipeline — structural (uncalibrated) workload synthesis, PRR sizing,
placement, bitstream sizing — on four families beyond the two evaluation
devices: Virtex-4 (4-input LUTs, 41-word frames), 7-series/Zynq (50-CLB
rows, 101-word frames) and Spartan-6 (16-bit configuration words), and
checks the family-specific mechanics take effect.
"""

from repro.core import bitstream_size_bytes, evaluate_prm, find_prr
from repro.devices import (
    SPARTAN6,
    XC4VLX60,
    XC5VLX110T,
    XC6SLX45,
    XC7Z020,
)
from repro.core.prr_model import PRRGeometry
from repro.devices.resources import ResourceVector
from repro.reports.tables import render_grid
from repro.synth import synthesize
from repro.workloads import build_fir, build_sdram


def portability_sweep():
    rows = []
    for device in (XC4VLX60, XC7Z020, XC6SLX45, XC5VLX110T):
        for builder in (build_fir, build_sdram):
            netlist = builder(device.family, calibrated=False)
            report = synthesize(netlist, device.family)
            result = evaluate_prm(report.requirements, device)
            rows.append(
                {
                    "prm": report.design_name,
                    "device": device.name,
                    "family": device.family.name,
                    "pairs": report.pairs.lut_ff_pairs,
                    "H": result.placement.geometry.rows,
                    "W": result.placement.geometry.width,
                    "bitstream_B": result.bitstream.total_bytes,
                }
            )
    return rows


def test_portability_sweep(benchmark):
    rows = benchmark(portability_sweep)
    assert len(rows) == 8
    by_key = {(r["prm"], r["family"]): r for r in rows}

    # Virtex-4's 4-input LUTs inflate SDRAM's logic (FSM/comparators need
    # deeper trees) vs the 6-input-LUT families.
    assert (
        by_key[("sdram", "virtex4")]["pairs"]
        > by_key[("sdram", "virtex5")]["pairs"]
    )
    # The single-DSP-column rule binds on the Virtex-4 part too (32 DSPs
    # on one 8-per-row column -> H >= 4).
    assert by_key[("fir", "virtex4")]["H"] >= 4
    # Family-specific memory inference: the 32-deep coefficient RAM is
    # LUTRAM on Virtex-5 (depth <= 64) but a block RAM on Virtex-4
    # (depth > 16), so the V4 FIR PRR carries a BRAM column.
    assert by_key[("fir", "virtex4")]["W"] == 3  # CLB + DSP + BRAM
    print()
    print(render_grid(rows))


def test_spartan6_halved_bytes_per_word():
    """Bytes_word = 2: the same word count costs half the bytes."""
    columns = ResourceVector(clb=3)
    s6 = PRRGeometry(SPARTAN6, rows=1, columns=columns)
    v5 = PRRGeometry(XC5VLX110T.family, rows=1, columns=columns)
    from repro.core import estimate_bitstream

    s6_est = estimate_bitstream(s6)
    v5_est = estimate_bitstream(v5)
    assert s6_est.bytes_per_word == 2 and v5_est.bytes_per_word == 4
    assert s6_est.total_bytes == s6_est.total_words * 2


def test_seven_series_frame_economics():
    """7-series frames are 101 words, so a same-shape PRR costs more
    bytes per column than on Virtex-5 but holds 2.5x the CLBs."""
    columns = ResourceVector(clb=2)
    z7 = PRRGeometry(XC7Z020.family, rows=1, columns=columns)
    v5 = PRRGeometry(XC5VLX110T.family, rows=1, columns=columns)
    assert bitstream_size_bytes(z7) > bitstream_size_bytes(v5)
    assert z7.available.clb == 100 and v5.available.clb == 40


def test_placements_exist_on_every_32bit_family_device():
    for device in (XC4VLX60, XC7Z020, XC5VLX110T):
        report = synthesize(
            build_sdram(device.family, calibrated=False), device.family
        )
        placed = find_prr(device, report.requirements)
        assert device.is_valid_prr(placed.region)


def test_spartan6_model_validated_by_16bit_generator():
    """Bytes_word = 2 closes the loop: eq. (18) equals the 16-bit
    generator's measured size on the Spartan-6 part."""
    from repro.bitgen import generate_spartan_bitstream, parse_spartan_bitstream

    report = synthesize(
        build_sdram(XC6SLX45.family, calibrated=False), XC6SLX45.family
    )
    placed = find_prr(XC6SLX45, report.requirements)
    bitstream = generate_spartan_bitstream(
        XC6SLX45, placed.region, design_name="sdram"
    )
    assert bitstream.size_bytes == placed.bitstream_bytes
    assert parse_spartan_bitstream(bitstream.to_bytes()).crc_ok

"""Ablation P: regression recovery of the Table IV constants.

The repro brief calls the paper's contribution "simple regression
models"; this bench makes that literal.  Eq. (18) is linear in the PRR
geometry, so the family constants are recoverable by least squares from
measured bitstream sizes alone — which is exactly how a user would port
the model to a family whose configuration guide does not document them.

Recovered here from generated (measured) Virtex-5 bitstreams:
CF_CLB = 36, CF_DSP = 28, IW+FW = 30, FAR_FDRI = 5, and — using the
parser's per-section split — CF_BRAM = 30 and DF_BRAM = 128, all exact.
"""

from repro.bitgen import generate_partial_bitstream, parse_bitstream
from repro.core import SizeSample, fit_family_constants
from repro.devices import XC5VLX110T
from repro.devices.fabric import Region
from repro.devices.resources import ResourceVector

GEOMETRIES = [
    (1, ResourceVector(clb=1)),
    (2, ResourceVector(clb=3)),
    (1, ResourceVector(clb=2, dsp=1)),
    (1, ResourceVector(clb=2, bram=1)),
    (4, ResourceVector(clb=5, bram=1)),
    (1, ResourceVector(clb=17, dsp=1, bram=2)),
    (2, ResourceVector(clb=2, bram=1)),
    (3, ResourceVector(clb=17, dsp=1, bram=2)),
]


def measure_and_fit():
    samples = []
    for rows, columns in GEOMETRIES:
        col = XC5VLX110T.find_column_window(columns)
        assert col is not None
        region = Region(row=1, col=col, height=rows, width=columns.total)
        bitstream = generate_partial_bitstream(XC5VLX110T, region)
        parsed = parse_bitstream(bitstream.to_bytes())
        samples.append(
            SizeSample(
                rows=rows,
                columns=columns,
                total_bytes=bitstream.size_bytes,
                bram_init_bytes=parsed.section_bytes()["bram_initialization"],
            )
        )
    return fit_family_constants(samples, frame_words=41, bytes_per_word=4)


def test_regression_recovers_table4(benchmark):
    fitted = benchmark(measure_and_fit)
    assert fitted.exact  # zero residual: the model is exactly linear
    assert fitted.cf_clb == 36
    assert fitted.cf_dsp == 28
    assert fitted.cf_bram == 30
    assert fitted.df_bram == 128
    assert fitted.header_trailer_words == 30
    assert fitted.far_fdri_words == 5
    print()
    print(
        f"recovered: CF_CLB={fitted.cf_clb} CF_DSP={fitted.cf_dsp} "
        f"CF_BRAM={fitted.cf_bram} DF_BRAM={fitted.df_bram} "
        f"IW+FW={fitted.header_trailer_words} "
        f"FAR_FDRI={fitted.far_fdri_words} "
        f"(max residual {fitted.max_residual_words:.2e} words)"
    )


def test_bram_split_needs_sections():
    """Without section data, only CF_BRAM + DF_BRAM is identifiable —
    the documented identifiability limit."""
    samples = []
    for rows, columns in GEOMETRIES:
        col = XC5VLX110T.find_column_window(columns)
        region = Region(row=1, col=col, height=rows, width=columns.total)
        bitstream = generate_partial_bitstream(XC5VLX110T, region)
        samples.append(
            SizeSample(rows=rows, columns=columns, total_bytes=bitstream.size_bytes)
        )
    fitted = fit_family_constants(samples, frame_words=41, bytes_per_word=4)
    assert fitted.cf_bram_plus_df == 158
    assert fitted.cf_bram is None

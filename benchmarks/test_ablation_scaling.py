"""Ablation L: cost-model scaling with PRM size.

Sweeps proportionally scaled versions of the MIPS requirements (x0.25 to
x4) on the Virtex-5 LX110T and reports PRR size, utilization and
bitstream size — the "bitstream grows with PRR, PRR grows in column
quanta" staircase that motivates the models: resource needs scale
smoothly but PRR area and bitstream size jump at column boundaries
(internal fragmentation at work).
"""

from repro.core import (
    PlacementNotFoundError,
    bitstream_size_bytes,
    find_prr,
    utilization,
)
from repro.devices import XC5VLX110T
from repro.reports.tables import render_grid

from tests.conftest import paper_requirements


def scaling_sweep():
    base = paper_requirements("mips", "virtex5")
    rows = []
    for factor in (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0):
        prm = base.scaled(factor)
        try:
            placed = find_prr(XC5VLX110T, prm)
        except PlacementNotFoundError:
            rows.append({"scale": factor, "feasible": False})
            continue
        ru = utilization(prm, placed.geometry)
        rows.append(
            {
                "scale": factor,
                "feasible": True,
                "pairs": prm.lut_ff_pairs,
                "H": placed.geometry.rows,
                "W": placed.geometry.width,
                "size": placed.size,
                "RU_CLB_pct": round(ru.clb * 100),
                "bitstream_B": bitstream_size_bytes(placed.geometry),
            }
        )
    return rows


def test_scaling_staircase(benchmark):
    rows = benchmark(scaling_sweep)
    feasible = [r for r in rows if r["feasible"]]
    assert len(feasible) >= 6

    # Bitstream size is monotone in demand...
    sizes = [r["bitstream_B"] for r in feasible]
    assert all(a <= b for a, b in zip(sizes, sizes[1:]))
    # ...but grows in column quanta: distinct scales can share a size.
    assert len(set(sizes)) < len(sizes) or any(
        b - a > 20_000 for a, b in zip(sizes, sizes[1:])
    )
    # Utilization stays bounded and meaningful across the sweep.
    for row in feasible:
        assert 40 <= row["RU_CLB_pct"] <= 100
    print()
    print(render_grid(rows))


def test_scaling_beyond_device_fails_cleanly():
    base = paper_requirements("mips", "virtex5")
    monster = base.scaled(100.0)
    try:
        find_prr(XC5VLX110T, monster)
        assert False, "a 100x MIPS cannot fit the LX110T"
    except PlacementNotFoundError:
        pass


def test_search_scales_to_large_devices(benchmark):
    """The Fig. 1 flow stays fast on a 2000T-class fabric (12 rows,
    ~200 columns) — early exploration must be interactive."""
    from repro.devices import SERIES7, make_device

    big = make_device(
        "xc7v2000t_like",
        SERIES7,
        rows=12,
        layout="I " + "C*4 B C*3 D C*4 " * 8 + "K " + "C*4 B C*3 D C*4 " * 8 + "I",
        description="Virtex-7 2000T-like fabric for scaling studies.",
    )
    prm = paper_requirements("mips", "virtex5")  # shape-compatible demand

    def run():
        return find_prr(big, prm)

    placed = benchmark(run)
    assert big.is_valid_prr(placed.region)
    if benchmark.stats:
        assert benchmark.stats["mean"] < 0.05  # interactive

"""Defrag-soak acceptance gates (self-healing fabric runtime).

Assertion-only companion of ``scripts/bench_defrag.py`` (which writes
the tracked ``BENCH_defrag.json``): on the tight soak-strip device the
self-healing runtime promises —

* defrag-on completes >= 95% of offered jobs under churn, with and
  without the permanent-column-fault process, where defrag-off
  degrades;
* injected mid-migration crashes never lose a module (the copy ->
  verify -> activate -> free transaction always recovers);
* a fault-free, churn-free ``admit_group`` reproduces the static
  ``floorplan()`` layout exactly;
* a fixed seed makes every arm bit-deterministic.
"""

from __future__ import annotations

import pytest

from scripts.bench_defrag import (
    PERMANENT_RATE_PER_S,
    QUICK_HORIZON_S,
    crash_soak,
    job_stream,
    run_arm,
    static_equivalence,
)


@pytest.fixture(scope="module")
def jobs():
    return job_stream(QUICK_HORIZON_S)


def test_defrag_on_completes_95_percent_where_defrag_off_degrades(jobs):
    on = run_arm(jobs, defrag=True, permanent_rate=0.0)
    off = run_arm(jobs, defrag=False, permanent_rate=0.0)
    assert on["completion_rate"] >= 0.95
    assert on["completion_rate"] > off["completion_rate"]
    assert on["migrations"] > 0
    assert off["migrations"] == 0


def test_defrag_on_survives_permanent_fault_soak(jobs):
    # Rate chosen so the Poisson process actually strikes inside the
    # quick horizon; the runtime must retire the columns and stay >=95%.
    arm = run_arm(jobs, defrag=True, permanent_rate=4 * PERMANENT_RATE_PER_S)
    assert arm["columns_retired"] > 0
    assert arm["completion_rate"] >= 0.95


def test_crash_soak_loses_zero_modules():
    soak = crash_soak(rounds=8)
    assert soak["crashes"] == soak["rounds"]
    assert soak["module_loss_events"] == 0
    # Crashes after activation complete on recovery; earlier ones abort.
    assert soak["recovered_completed"] + soak["recovered_aborted"] == soak["rounds"]
    assert soak["recovered_completed"] > 0
    assert soak["recovered_aborted"] > 0


def test_fault_free_run_reproduces_static_floorplan():
    equivalence = static_equivalence()
    assert equivalence["regions_match"] is True
    assert equivalence["modules"] == 3


def test_fixed_seed_is_deterministic(jobs):
    first = run_arm(jobs, defrag=True, permanent_rate=PERMANENT_RATE_PER_S)
    second = run_arm(jobs, defrag=True, permanent_rate=PERMANENT_RATE_PER_S)
    assert first == second

"""Ablation N: preemptive hardware multitasking with context costs.

Integrates the FCCM'13 context save/restore mechanism [5] into the
scheduler and measures the tradeoff on a two-class workload (urgent
control tasks vs long background compute sharing one PRR):

* preemption cuts urgent-class response dramatically;
* the price — context save (frame readback) + restore (re-write) — is
  charged per preemption and is proportional to the PRR's frame count,
  linking the benefit of *small, right-sized PRRs* (the paper's thesis)
  to preemption overhead as well.
"""

import numpy as np
import pytest

from repro.core.params import PRMRequirements
from repro.core.prr_model import PRRGeometry
from repro.devices import VIRTEX5
from repro.devices.resources import ResourceVector
from repro.multitask import (
    HwTask,
    PriorityJob,
    context_bytes,
    simulate_preemptive,
)

PRR = PRRGeometry(VIRTEX5, rows=1, columns=ResourceVector(clb=4))
PRM = PRMRequirements("task", 200, 150, 120)


def two_class_workload(seed=2015, horizon=1.0):
    rng = np.random.default_rng(seed)
    jobs = []
    job_id = 0
    # Background: long jobs arriving steadily.
    t = 0.0
    while t < horizon:
        jobs.append(
            PriorityJob(
                HwTask(PRM, exec_seconds=0.05),
                arrival_seconds=t,
                priority=9,
                job_id=job_id,
            )
        )
        job_id += 1
        t += 0.06
    # Urgent: short sporadic jobs.
    t = 0.013
    while t < horizon:
        jobs.append(
            PriorityJob(
                HwTask(PRM, exec_seconds=0.002),
                arrival_seconds=t,
                priority=1,
                job_id=job_id,
            )
        )
        job_id += 1
        t += float(rng.uniform(0.08, 0.15))
    return jobs


def run_both():
    jobs = two_class_workload()
    preemptive = simulate_preemptive(jobs, [PRR], allow_preemption=True)
    cooperative = simulate_preemptive(jobs, [PRR], allow_preemption=False)
    return preemptive, cooperative


def test_preemption_tradeoff(benchmark):
    preemptive, cooperative = benchmark(run_both)
    urgent_p = float(np.mean(preemptive.response_seconds(priority=1)))
    urgent_c = float(np.mean(cooperative.response_seconds(priority=1)))
    assert preemptive.preemption_count > 0
    # Urgent response improves by a large factor under preemption.
    assert urgent_c / urgent_p > 3
    # Context overhead is real but small relative to the horizon.
    assert 0 < preemptive.context_overhead_seconds < 0.1
    print()
    print(
        f"urgent mean response: preemptive {urgent_p * 1e3:.2f} ms vs "
        f"cooperative {urgent_c * 1e3:.2f} ms "
        f"({urgent_c / urgent_p:.1f}x); "
        f"{preemptive.preemption_count} preemptions, context overhead "
        f"{preemptive.context_overhead_seconds * 1e3:.2f} ms"
    )


def test_context_cost_scales_with_prr_size():
    """Right-sized PRRs preempt cheaper — the paper's thesis extended to
    preemption overhead."""
    small = PRRGeometry(VIRTEX5, rows=1, columns=ResourceVector(clb=3))
    large = PRRGeometry(VIRTEX5, rows=4, columns=ResourceVector(clb=6))
    assert context_bytes(large) == 8 * context_bytes(small)


def test_both_modes_complete_everything():
    preemptive, cooperative = run_both()
    assert len(preemptive.completed) == len(cooperative.completed)
    total_exec = pytest.approx(
        sum(j.task.exec_seconds for j, _, _ in preemptive.completed)
    )
    assert (
        sum(j.task.exec_seconds for j, _, _ in cooperative.completed)
        == total_exec
    )

"""Table VI: post-implementation resource counts, savings percentages and
the re-tightening experiment outcomes.

Paper findings reproduced:
* all six original (Table V geometry) implementations place and route;
* DSP/BRAM counts never change (0%);
* LUT_FF savings 16.8/16.6/2.4/31.9/18.8/3.9 percent;
* SDRAM's LUTs *increase* ~21.7% (route-thrus), FIR/V5's FFs increase 4.1%;
* re-tightening: SDRAM unchanged, FIR saves 2/1 CLB column-cells,
  MIPS succeeds on Virtex-5 (we save 3 columns vs the paper's 2 —
  documented divergence) and FAILS routing on Virtex-6.
"""

import pytest

from repro.reports.tables import retighten_outcomes, table6

EXPECTED_PAIR_SAVINGS = {
    ("fir", "xc5vlx110t"): 16.8,
    ("mips", "xc5vlx110t"): 16.6,
    ("sdram", "xc5vlx110t"): 2.4,
    ("fir", "xc6vlx75t"): 31.9,
    ("mips", "xc6vlx75t"): 18.8,
    ("sdram", "xc6vlx75t"): 3.9,
}


def test_table6_full_regeneration(benchmark):
    rows = benchmark(table6)
    assert len(rows) == 6
    for key, row in rows.items():
        assert row["routed"], f"original implementation failed for {key}"
        assert row["savings_pct"]["DSP_req"] == 0.0
        assert row["savings_pct"]["BRAM_req"] == 0.0
        assert row["savings_pct"]["LUT_FF_req"] == pytest.approx(
            EXPECTED_PAIR_SAVINGS[key], abs=0.05
        )
    # The two directions the paper highlights.
    assert rows[("sdram", "xc5vlx110t")]["savings_pct"]["LUT_req"] == pytest.approx(
        -21.7, abs=0.1
    )
    assert rows[("fir", "xc5vlx110t")]["savings_pct"]["FF_req"] == pytest.approx(
        -4.1, abs=0.1
    )


def test_table6_retighten_experiment(benchmark):
    outcomes = benchmark(retighten_outcomes)
    assert outcomes[("sdram", "xc5vlx110t")].unchanged
    assert outcomes[("sdram", "xc6vlx75t")].unchanged
    fir_v5 = outcomes[("fir", "xc5vlx110t")]
    assert fir_v5.succeeded and fir_v5.clb_column_rows_saved == 2
    fir_v6 = outcomes[("fir", "xc6vlx75t")]
    assert fir_v6.succeeded and fir_v6.clb_column_rows_saved == 1
    mips_v5 = outcomes[("mips", "xc5vlx110t")]
    assert mips_v5.succeeded and mips_v5.clb_column_rows_saved == 3
    mips_v6 = outcomes[("mips", "xc6vlx75t")]
    assert not mips_v6.succeeded  # "MIPS failed place and route on the Virtex-6"

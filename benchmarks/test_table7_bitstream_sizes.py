"""Table VII: partial bitstream sizes for the six PRM/device pairs.

The paper's numeric cells did not survive the source-text conversion, so
the reference values are model-derived (eqs. (18)–(23) with the Table IV
constants) and independently validated against the word-exact bitstream
generator — every model byte count equals the generated bitstream's
measured length.
"""

from repro.reports.tables import render_grid, table7

EXPECTED = {
    ("fir", "xc5vlx110t"): 83040,
    ("mips", "xc5vlx110t"): 157272,
    ("sdram", "xc5vlx110t"): 18016,
    ("fir", "xc6vlx75t"): 76928,
    ("mips", "xc6vlx75t"): 188728,
    ("sdram", "xc6vlx75t"): 23792,
}


def test_table7_full_regeneration(benchmark):
    rows = benchmark(table7)
    for key, row in rows.items():
        assert row["model_bytes"] == EXPECTED[key]
        assert row["generated_bytes"] == row["model_bytes"]
    print()
    print(
        render_grid(
            [
                {"prm": k[0], "device": k[1], **v}
                for k, v in sorted(rows.items(), key=lambda kv: kv[0][1])
            ]
        )
    )


def test_table7_sizes_in_prior_work_range():
    """'The obtained partial bitstream sizes are similar to those PRMs used
    in experiments to measure the reconfiguration times in prior work' —
    tens of KB to ~200 KB."""
    for size in EXPECTED.values():
        assert 10_000 < size < 250_000

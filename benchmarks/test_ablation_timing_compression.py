"""Ablations J–K: PRR oversizing vs timing, and real bitstream compression.

* **J — oversized PRRs impose longer routing delays** (Section I): sweep
  the MIPS PRR from right-sized to device-height on the LX110T and report
  the achievable frequency at each size — monotone degradation.
* **K — FaRM compression with measured ratios** (ref. [2]): compress the
  six Table VII bitstreams with the actual run-length coder and feed the
  *measured* ratio into the FaRM cost model, replacing its assumed
  constant; blank (erase) bitstreams compress >50x.
"""

from repro.bitgen import (
    compression_ratio,
    generate_partial_bitstream,
)
from repro.baselines import duhem_farm
from repro.core import find_prr
from repro.devices import XC5VLX110T, XC6VLX75T
from repro.devices.fabric import Region
from repro.synth import estimate_timing
from repro.workloads import build_fir, build_mips, build_sdram

from tests.conftest import paper_requirements


def timing_sweep():
    netlist = build_mips(XC5VLX110T.family)
    placed = find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))
    base = placed.region
    points = []
    for extra_rows in range(0, XC5VLX110T.rows - base.height + 1):
        region = Region(
            row=base.row,
            col=base.col,
            height=base.height + extra_rows,
            width=base.width,
        )
        # Oversizing spreads the same logic thinner.
        utilization = min(
            1.0, 0.96 * base.height / region.height
        )
        timing = estimate_timing(
            netlist, XC5VLX110T, region, pair_utilization=utilization
        )
        points.append((region.size, timing.fmax_mhz))
    return points


def test_ablation_j_oversizing_slows(benchmark):
    points = benchmark(timing_sweep)
    sizes = [s for s, _ in points]
    freqs = [f for _, f in points]
    assert sizes == sorted(sizes)
    # The curve has a knee: the 96%-packed right-sized PRR is congestion-
    # limited, so one extra row *helps*; beyond the knee, wire length
    # dominates and frequency decays monotonically — the Section I
    # "oversized PRRs impose longer routing delays" regime.
    knee = freqs.index(max(freqs))
    assert knee <= 1
    assert all(a >= b for a, b in zip(freqs[knee:], freqs[knee + 1 :]))
    # Gross oversizing loses > 40% of the achievable frequency.
    assert freqs[-1] < 0.6 * max(freqs)
    print()
    for size, fmax in points:
        print(f"  PRR size {size:3}: {fmax:6.1f} MHz")


def measured_ratios():
    cases = [
        (XC5VLX110T, build_fir, "fir"),
        (XC5VLX110T, build_mips, "mips"),
        (XC5VLX110T, build_sdram, "sdram"),
        (XC6VLX75T, build_fir, "fir"),
        (XC6VLX75T, build_mips, "mips"),
        (XC6VLX75T, build_sdram, "sdram"),
    ]
    out = {}
    for device, builder, name in cases:
        prm = paper_requirements(name, device.family.name)
        placed = find_prr(device, prm)
        bitstream = generate_partial_bitstream(
            device, placed.region, design_name=name
        )
        out[(name, device.name)] = (
            bitstream.size_bytes,
            compression_ratio(bitstream),
        )
    return out


def test_ablation_k_compression(benchmark):
    ratios = benchmark(measured_ratios)
    for (name, device), (nbytes, ratio) in ratios.items():
        assert 0.0 < ratio < 1.0
        # Feeding the measured ratio into FaRM cuts its preload estimate.
        plain = duhem_farm.estimate(nbytes).preload_seconds
        packed = duhem_farm.estimate(
            nbytes, compression_ratio=ratio
        ).preload_seconds
        assert packed < plain
    print()
    for (name, device), (nbytes, ratio) in sorted(ratios.items()):
        print(f"  {name:6} {device:11} {nbytes:7} B -> ratio {ratio:.3f}")


def test_ablation_k_blank_bitstream_extreme():
    prm = paper_requirements("mips", "virtex5")
    placed = find_prr(XC5VLX110T, prm)
    family = XC5VLX110T.family
    blank = generate_partial_bitstream(
        XC5VLX110T,
        placed.region,
        design_name="blank",
        payload_fn=lambda bt, far: [0] * family.frame_words,
    )
    assert compression_ratio(blank) < 0.02  # > 50x on erase bitstreams

"""Fast-path perf benchmark: indexed fabric queries and explorer modes.

Quick-mode counterpart of ``scripts/bench_explorer.py`` (which writes the
tracked ``BENCH_explorer.json``): asserts indexed/naive equivalence on
the paper's six PRM/device cases plus a synthetic 10-PRM workload, and
that the indexed ``find_column_window`` beats the naive scan.  Iteration
counts are tight so the CI bench smoke stays fast; the speedup gate here
is deliberately looser than the >= 5x the committed benchmark records,
to tolerate loaded CI machines.
"""

from __future__ import annotations

import time

import pytest

from repro.core.explorer import explore, pareto_front
from repro.core.prr_model import InfeasibleGeometryError, prr_geometry_for_rows
from repro.devices import XC5VLX110T, XC6VLX75T

from benchmarks.conftest import BUILDERS, DEVICES
from scripts.bench_explorer import WIDE_DEVICE, synthetic_prms, window_queries


def _mix_queries(device, reports):
    prms = [
        reports[(name, device.name)].requirements for name in BUILDERS
    ]
    return window_queries(device, prms)


@pytest.mark.parametrize("device", DEVICES.values(), ids=lambda d: d.name)
def test_indexed_matches_naive_on_paper_cases(device, reports):
    for query in _mix_queries(device, reports):
        for start_col in (1, 5, device.num_columns // 2):
            assert device.find_column_window(query, start_col=start_col) == (
                device.find_column_window_naive(query, start_col=start_col)
            )


def test_indexed_faster_than_naive_on_synthetic10():
    queries = window_queries(WIDE_DEVICE, synthetic_prms(10))
    assert queries
    for query in queries:  # warm the per-mix cache first
        WIDE_DEVICE.find_column_window(query)

    def timed(fn) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(5):
                for query in queries:
                    fn(query, start_col=1)
            best = min(best, time.perf_counter() - start)
        return best

    naive = timed(WIDE_DEVICE.find_column_window_naive)
    indexed = timed(WIDE_DEVICE.find_column_window)
    assert indexed < naive / 2, (
        f"indexed path only {naive / indexed:.1f}x faster than naive scan"
    )


def test_explorer_modes_agree_quick(reports):
    prms = [
        reports[(name, XC5VLX110T.name)].requirements for name in BUILDERS
    ]
    exhaustive = explore(XC5VLX110T, prms, mode="exhaustive")
    pruned = explore(XC5VLX110T, prms, mode="pruned")
    assert pareto_front(exhaustive) == pareto_front(pruned)


def test_beam_smoke_on_synthetic10():
    designs = explore(WIDE_DEVICE, synthetic_prms(10), beam_width=16)
    assert designs
    assert designs[0].objectives == min(d.objectives for d in designs)

"""Table V: the PRR size/organization cost model on all six cases.

Regenerates every Table V cell from the live pipeline and asserts the
values reconstructed from the paper (DESIGN.md §5).  The RU_CLB cell for
MIPS/V5 computes to 96% where the paper printed 97% (±1 rounding,
EXPERIMENTS.md).
"""

from repro.core import evaluate_prm
from repro.reports.tables import render_grid, table5

EXPECTED_GEOMETRY = {
    ("fir", "xc5vlx110t"): (5, 2, 1, 0),
    ("mips", "xc5vlx110t"): (1, 17, 1, 2),
    ("sdram", "xc5vlx110t"): (1, 3, 0, 0),
    ("fir", "xc6vlx75t"): (1, 5, 2, 0),
    ("mips", "xc6vlx75t"): (1, 11, 1, 1),
    ("sdram", "xc6vlx75t"): (1, 2, 0, 0),
}

EXPECTED_RU = {
    ("fir", "xc5vlx110t"): (82, 25, 72, 80, 0),
    ("mips", "xc5vlx110t"): (96, 59, 56, 50, 75),
    ("sdram", "xc5vlx110t"): (70, 61, 33, 0, 0),
    ("fir", "xc6vlx75t"): (92, 12, 82, 84, 0),
    ("mips", "xc6vlx75t"): (92, 26, 60, 25, 75),
    ("sdram", "xc6vlx75t"): (61, 25, 28, 0, 0),
}


def test_table5_full_regeneration(benchmark):
    rows = benchmark(table5)
    assert len(rows) == 6
    for key, row in rows.items():
        h, w_clb, w_dsp, w_bram = EXPECTED_GEOMETRY[key]
        assert (row["H_CLB"], row["W_CLB"], row["W_DSP"], row["W_BRAM"]) == (
            h,
            w_clb,
            w_dsp,
            w_bram,
        )
        clb, ff, lut, dsp, bram = EXPECTED_RU[key]
        assert (
            row["RU_CLB"],
            row["RU_FF"],
            row["RU_LUT"],
            row["RU_DSP"],
            row["RU_BRAM"],
        ) == (clb, ff, lut, dsp, bram)
    print()
    print(
        render_grid(
            [
                {"prm": k[0], "device": k[1], **v}
                for k, v in sorted(rows.items(), key=lambda kv: kv[0][1])
            ]
        )
    )


def test_table5_single_case_latency(benchmark, reports):
    """Microbenchmark: one cost-model evaluation (the paper's point — this
    replaces hours of PR design flow)."""
    from repro.devices import XC5VLX110T

    requirements = reports[("mips", "xc5vlx110t")].requirements
    result = benchmark(evaluate_prm, requirements, XC5VLX110T)
    assert result.placement.geometry.columns.clb == 17

"""Cluster soak gates: quick counterpart of ``scripts/bench_cluster.py``.

The committed ``BENCH_cluster.json`` records the full 10x soak; this gate
runs a scaled-down wave in-process so CI catches serving-tier
regressions:

* with a self-crashing shard, an external SIGKILL, corrupted *and*
  truncated disk-cache entries, and a disk-full window, every accepted
  request must still resolve to a result or a typed error — 100% typed
  resolution, zero untyped failures;
* the content-addressed cache must absorb at least half the traffic
  (the soak replays a small key population on purpose);
* damaged entries must be quarantined, never served: every completed
  result is compared against a fresh in-process evaluation.
"""

from __future__ import annotations

from scripts.bench_cluster import run_soak


def test_chaos_soak_resolves_typed_with_warm_cache():
    outcome = run_soak(requests=96, shards=2, chaos=True)
    assert outcome["untyped_failures"] == 0
    assert outcome["typed_resolution_rate"] == 1.0
    assert outcome["completed"] + outcome["typed_errors"] == 96
    assert outcome["cache_hit_rate"] >= 0.5
    assert outcome["quarantined"] >= 1
    assert outcome["restarts"] >= 1
    assert outcome["differential_mismatches"] == 0


def test_fault_free_soak_is_clean_and_cache_dominated():
    outcome = run_soak(requests=96, shards=2, chaos=False)
    assert outcome["untyped_failures"] == 0
    assert outcome["typed_resolution_rate"] == 1.0
    assert outcome["quarantined"] == 0
    assert outcome["cache_hit_rate"] >= 0.5
    assert outcome["differential_mismatches"] == 0

"""Fig. 1: the PRR size/organization search flow.

Replays the flow (H sweep + fabric scan) for all six evaluation cases and
asserts its decisive behaviours: the eq. (4) single-DSP-column constraint
gating FIR/V5 to H >= 4, and the smallest-size selection preferring H=5
(size 15) over the also-feasible H=4 (size 16).
"""

from repro.reports.figures import fig1_traces


def test_fig1_flow_replay(benchmark):
    traces = benchmark(fig1_traces)
    assert len(traces) == 6

    fir_v5 = traces[("fir", "xc5vlx110t")]
    by_h = {rows: (geom, placed) for rows, geom, placed in fir_v5.steps}
    # H = 1..3 infeasible by the single-DSP-column rule (eq. (4)).
    for h in (1, 2, 3):
        assert by_h[h][0] is None
    # H = 4 feasible with size 16; H = 5 feasible with size 15 -> selected.
    assert by_h[4][0].size == 16 and by_h[4][1]
    assert by_h[5][0].size == 15 and by_h[5][1]
    assert fir_v5.selected.geometry.rows == 5
    assert fir_v5.selected.size == 15

    # All single-row cases select H = 1 immediately.
    for key in (("mips", "xc5vlx110t"), ("sdram", "xc5vlx110t"),
                ("fir", "xc6vlx75t"), ("mips", "xc6vlx75t"),
                ("sdram", "xc6vlx75t")):
        assert traces[key].selected.geometry.rows == 1

    print()
    print(fir_v5.render())


def test_fig1_search_scales_with_device(benchmark):
    """The search is fast even over every H on the taller device."""
    from repro.core import search_with_trace
    from repro.devices import XC5VLX110T
    from tests.conftest import paper_requirements

    prm = paper_requirements("fir", "virtex5")
    trace = benchmark(search_with_trace, XC5VLX110T, prm)
    assert len(trace.steps) == 8

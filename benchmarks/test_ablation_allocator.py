"""Ablation I: online PRR allocation with relocation-based defragmentation.

A dynamic allocation/free stream fragments the fabric; the allocator that
compacts live PRRs with compatibility-checked relocations sustains
allocation streams the plain allocator fails.  Reported: failure counts
with and without defragmentation, relocation work performed, and the
external-fragmentation trajectory.
"""

import numpy as np

from repro.core.params import PRMRequirements
from repro.devices import VIRTEX5, make_device
from repro.multitask import AllocationFailed, PRRAllocator


def toy_device():
    return make_device("toy_alloc_bench", VIRTEX5, rows=2, layout="I C*16 I")


def prm(width_cols: int) -> PRMRequirements:
    pairs = width_cols * 20 * 8
    return PRMRequirements(f"w{width_cols}", pairs, pairs * 3 // 4, pairs // 2)


def run_stream(defragment: bool, *, seed: int = 2015, steps: int = 120):
    """A churn stream: random allocates (width 1-3) and frees."""
    rng = np.random.default_rng(seed)
    allocator = PRRAllocator(toy_device(), defragment=defragment)
    live: list[str] = []
    failures = 0
    next_id = 0
    for _ in range(steps):
        if live and rng.random() < 0.45:
            victim = live.pop(rng.integers(len(live)))
            allocator.free(victim)
        else:
            name = f"a{next_id}"
            next_id += 1
            try:
                allocator.allocate(name, prm(int(rng.integers(1, 4))))
                live.append(name)
            except AllocationFailed:
                failures += 1
    return allocator, failures


def test_defrag_reduces_failures(benchmark):
    def both():
        _, plain_failures = run_stream(defragment=False)
        compacting, defrag_failures = run_stream(defragment=True)
        return plain_failures, defrag_failures, compacting.relocation_count

    plain_failures, defrag_failures, relocations = benchmark(both)
    assert defrag_failures <= plain_failures
    assert relocations > 0
    print()
    print(
        f"failures: plain={plain_failures} defrag={defrag_failures} "
        f"(relocations performed: {relocations})"
    )


def test_fragmentation_stays_bounded_with_defrag():
    allocator, _ = run_stream(defragment=True, seed=7)
    assert 0.0 <= allocator.external_fragmentation() <= 1.0


def test_streams_are_deterministic():
    a1, f1 = run_stream(defragment=True, seed=42)
    a2, f2 = run_stream(defragment=True, seed=42)
    assert f1 == f2
    assert a1.occupied_regions() == a2.occupied_regions()

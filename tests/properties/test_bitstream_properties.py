"""Property-based tests: the bitstream model vs the word-exact generator.

The central invariant of the reproduction: for EVERY valid PRR on the
evaluation devices, eq. (18)'s byte count equals the generated bitstream's
actual length, and the parser re-derives the same section split.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitgen.generator import generate_partial_bitstream
from repro.bitgen.parser import parse_bitstream
from repro.core.bitstream_model import estimate_bitstream, ncw_row, ndw_bram
from repro.core.prr_model import PRRGeometry
from repro.devices.catalog import XC4VLX60, XC5VLX110T, XC6VLX75T
from repro.devices.fabric import Device, Region
from repro.devices.family import VIRTEX4, VIRTEX5, VIRTEX6
from repro.devices.resources import ResourceVector

DEVICES = [XC5VLX110T, XC6VLX75T, XC4VLX60]


@st.composite
def placed_regions(draw) -> tuple[Device, Region]:
    """A random valid PRR region on one of the catalog devices."""
    device = draw(st.sampled_from(DEVICES))
    row = draw(st.integers(1, device.rows))
    height = draw(st.integers(1, device.rows - row + 1))
    col = draw(st.integers(2, device.num_columns - 1))
    max_width = device.num_columns - col
    width = draw(st.integers(1, max(1, min(8, max_width))))
    region = Region(row=row, col=col, height=height, width=width)
    if not device.is_valid_prr(region):
        # Retry by shrinking to a single known-good CLB column.
        from repro.devices.resources import ColumnKind

        clb = device.columns_of_kind(ColumnKind.CLB)[0]
        region = Region(row=row, col=clb, height=height, width=1)
    return device, region


@given(placed_regions())
@settings(max_examples=40, deadline=None)
def test_model_equals_generated_size(case):
    device, region = case
    counts = device.region_column_counts(region)
    geometry = PRRGeometry(device.family, region.height, counts)
    model = estimate_bitstream(geometry)
    bitstream = generate_partial_bitstream(device, region, design_name="prop")
    assert bitstream.size_bytes == model.total_bytes


@given(placed_regions())
@settings(max_examples=25, deadline=None)
def test_parser_roundtrip_sections(case):
    device, region = case
    counts = device.region_column_counts(region)
    geometry = PRRGeometry(device.family, region.height, counts)
    parsed = parse_bitstream(
        generate_partial_bitstream(device, region).to_bytes()
    )
    assert parsed.crc_ok
    assert parsed.rows == region.height
    assert parsed.section_bytes() == estimate_bitstream(geometry).breakdown()


@given(placed_regions())
@settings(max_examples=25, deadline=None)
def test_bram_blocks_iff_bram_columns(case):
    device, region = case
    counts = device.region_column_counts(region)
    parsed = parse_bitstream(
        generate_partial_bitstream(device, region).to_bytes()
    )
    if counts.bram:
        assert len(parsed.bram_blocks) == region.height
    else:
        assert not parsed.bram_blocks


COLUMNS = st.builds(
    ResourceVector,
    clb=st.integers(0, 60),
    dsp=st.integers(0, 10),
    bram=st.integers(0, 10),
).filter(lambda v: not v.is_zero())


@given(
    COLUMNS,
    st.integers(1, 16),
    st.sampled_from([VIRTEX4, VIRTEX5, VIRTEX6]),
)
def test_model_word_identities(columns, rows, family):
    """Eq. (18) expands exactly to IW + H*(NCW+NDW) + FW words."""
    geometry = PRRGeometry(family, rows, columns)
    est = estimate_bitstream(geometry)
    expected_words = (
        family.initial_words
        + rows * (ncw_row(family, columns) + ndw_bram(family, columns))
        + family.final_words
    )
    assert est.total_words == expected_words
    assert est.total_bytes == expected_words * family.bytes_per_word


@given(COLUMNS, st.integers(1, 8), st.sampled_from([VIRTEX4, VIRTEX5, VIRTEX6]))
def test_size_monotone_in_geometry(columns, rows, family):
    """Adding a row or a column never shrinks the bitstream."""
    base = estimate_bitstream(PRRGeometry(family, rows, columns)).total_bytes
    taller = estimate_bitstream(PRRGeometry(family, rows + 1, columns)).total_bytes
    wider = estimate_bitstream(
        PRRGeometry(family, rows, columns + ResourceVector(clb=1))
    ).total_bytes
    assert taller > base
    assert wider > base

"""Property tests on randomized device layouts.

The catalog fixes a handful of layouts; these tests generate arbitrary
(valid) fabrics and check the placement flow's universal guarantees on
them — placements are always in-bounds, IOB/CLK-free, resource-sufficient
and bitstream-model-consistent with the generator.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitgen import generate_partial_bitstream
from repro.core import (
    PlacementNotFoundError,
    PRMRequirements,
    estimate_bitstream,
    find_prr,
)
from repro.devices import synthetic_device


@st.composite
def devices(draw):
    rows = draw(st.integers(1, 8))
    n_runs = draw(st.integers(1, 6))
    clb_runs = tuple(
        draw(st.integers(1, 10)) for _ in range(n_runs)
    )
    boundaries = max(n_runs - 1, 0)
    dsp_positions = tuple(
        sorted(
            draw(
                st.sets(st.integers(0, boundaries - 1), max_size=boundaries)
            )
        )
    ) if boundaries else ()
    bram_positions = tuple(
        sorted(
            draw(
                st.sets(st.integers(0, boundaries - 1), max_size=boundaries)
            )
        )
    ) if boundaries else ()
    return synthetic_device(
        rows=rows,
        clb_runs=clb_runs,
        dsp_positions=dsp_positions,
        bram_positions=bram_positions,
    )


@st.composite
def small_demands(draw):
    luts = draw(st.integers(1, 600))
    ffs = draw(st.integers(0, 600))
    pairs = draw(st.integers(max(luts, ffs), luts + ffs))
    return PRMRequirements(
        "prop",
        pairs,
        luts,
        ffs,
        dsps=draw(st.integers(0, 16)),
        brams=draw(st.integers(0, 8)),
    )


@given(devices(), small_demands())
@settings(max_examples=60, deadline=None)
def test_placements_always_valid(device, prm):
    try:
        placed = find_prr(device, prm)
    except PlacementNotFoundError:
        return  # infeasibility is a legitimate outcome
    assert device.is_valid_prr(placed.region)
    assert placed.geometry.fits(prm)
    # Region column mix equals the geometry's demand exactly.
    assert device.region_column_counts(placed.region) == placed.geometry.columns


@given(devices(), small_demands())
@settings(max_examples=30, deadline=None)
def test_bitstream_model_holds_on_any_fabric(device, prm):
    try:
        placed = find_prr(device, prm)
    except PlacementNotFoundError:
        return
    bitstream = generate_partial_bitstream(device, placed.region)
    assert bitstream.size_bytes == estimate_bitstream(placed.geometry).total_bytes


@given(devices())
@settings(max_examples=40, deadline=None)
def test_synthetic_devices_are_well_formed(device):
    assert device.columns[0].name == "IOB"
    assert device.columns[-1].name == "IOB"
    assert device.count_columns(type(device.columns[0]).CLK) == 1
    assert device.total_resources.clb > 0

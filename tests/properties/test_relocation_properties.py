"""Property-based tests for configuration memory and relocation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitgen import generate_partial_bitstream, parse_bitstream
from repro.devices.catalog import XC5VLX110T, XC6VLX75T
from repro.devices.fabric import Region
from repro.devices.frames import BLOCK_TYPE_BRAM_CONTENT, BLOCK_TYPE_CONFIG
from repro.relocation import (
    ConfigMemory,
    compatible_regions,
    find_compatible_regions,
    relocate_bitstream,
    restore_context,
    save_context,
)

DEVICES = [XC5VLX110T, XC6VLX75T]


@st.composite
def valid_prrs(draw):
    device = draw(st.sampled_from(DEVICES))
    row = draw(st.integers(1, device.rows))
    height = draw(st.integers(1, device.rows - row + 1))
    col = draw(st.integers(2, device.num_columns - 4))
    width = draw(st.integers(1, 4))
    region = Region(row=row, col=col, height=height, width=width)
    if not device.is_valid_prr(region):
        from repro.devices.resources import ColumnKind

        clb = device.columns_of_kind(ColumnKind.CLB)[0]
        region = Region(row=row, col=clb, height=height, width=1)
    return device, region


@given(valid_prrs(), st.text(min_size=1, max_size=8))
@settings(max_examples=20, deadline=None)
def test_configure_then_readback_roundtrip(case, name):
    """Writing a bitstream then reading the region back reproduces the
    generator's frame payloads exactly."""
    device, region = case
    bitstream = generate_partial_bitstream(device, region, design_name=name)
    memory = ConfigMemory(device)
    memory.configure(bitstream.to_bytes())
    assert memory.region_is_configured(region)
    # Restoring from the captured context regenerates an equivalent
    # configuration (frame-for-frame).
    context = save_context(memory, region, task_name=name)
    restored = restore_context(device, context)
    fresh = ConfigMemory(device)
    fresh.configure(restored.to_bytes())
    assert fresh.frames == memory.frames


@given(valid_prrs())
@settings(max_examples=20, deadline=None)
def test_relocation_preserves_everything(case):
    device, region = case
    targets = find_compatible_regions(device, region)
    if not targets:
        return
    target = targets[0]
    bitstream = generate_partial_bitstream(device, region, design_name="p")
    moved = relocate_bitstream(device, bitstream, target)

    # Size invariant: compatible regions have identical frame footprints.
    assert moved.size_bytes == bitstream.size_bytes
    assert parse_bitstream(moved.to_bytes()).crc_ok

    src_mem, dst_mem = ConfigMemory(device), ConfigMemory(device)
    src_mem.configure(bitstream.to_bytes())
    dst_mem.configure(moved.to_bytes())
    for block_type in (BLOCK_TYPE_CONFIG, BLOCK_TYPE_BRAM_CONTENT):
        src = [w for _, w in src_mem.region_frames(region, block_type)]
        dst = [w for _, w in dst_mem.region_frames(target, block_type)]
        assert src == dst


@given(valid_prrs())
@settings(max_examples=30, deadline=None)
def test_compatibility_is_symmetric_and_reflexive(case):
    device, region = case
    assert compatible_regions(device, region, region)
    for target in find_compatible_regions(device, region)[:3]:
        assert compatible_regions(device, target, region)


@given(valid_prrs())
@settings(max_examples=20, deadline=None)
def test_double_configure_is_idempotent(case):
    device, region = case
    bitstream = generate_partial_bitstream(device, region, design_name="x")
    memory = ConfigMemory(device)
    memory.configure(bitstream.to_bytes())
    snapshot = dict(memory.frames)
    memory.configure(bitstream.to_bytes())
    assert memory.frames == snapshot
    assert memory.configure_count == 2

"""Property-based tests for the explorer and floorplanner."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explorer import evaluate_partition, explore
from repro.core.floorplanner import FloorplanError, floorplan
from repro.core.params import PRMRequirements
from repro.devices.catalog import XC5VLX110T


@st.composite
def small_prm_sets(draw):
    """1-4 modest CLB/DSP/BRAM PRMs that plausibly fit the LX110T."""
    count = draw(st.integers(1, 4))
    prms = []
    for index in range(count):
        luts = draw(st.integers(50, 1500))
        ffs = draw(st.integers(50, 1500))
        pairs = draw(st.integers(max(luts, ffs), luts + ffs))
        prms.append(
            PRMRequirements(
                f"p{index}",
                pairs,
                luts,
                ffs,
                dsps=draw(st.integers(0, 24)),
                brams=draw(st.integers(0, 8)),
            )
        )
    return prms


@given(small_prm_sets())
@settings(max_examples=25, deadline=None)
def test_explorer_designs_are_complete_and_disjoint(prms):
    designs = explore(XC5VLX110T, prms)
    for design in designs:
        covered = sorted(
            prm.name for a in design.assignments for prm in a.prms
        )
        assert covered == sorted(p.name for p in prms)
        regions = [a.placement.region for a in design.assignments]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.overlaps(b)


@given(small_prm_sets())
@settings(max_examples=25, deadline=None)
def test_explorer_shared_prrs_fit_all_members(prms):
    designs = explore(XC5VLX110T, prms)
    for design in designs:
        for assignment in design.assignments:
            for prm in assignment.prms:
                assert assignment.placement.geometry.fits(prm)


@given(small_prm_sets())
@settings(max_examples=25, deadline=None)
def test_floorplan_matches_singleton_partition(prms):
    """A floorplan of singleton groups and the explorer's all-singleton
    design commit the same total PR area."""
    try:
        plan = floorplan(XC5VLX110T, prms, optimize_static=False)
    except FloorplanError:
        return
    design = evaluate_partition(XC5VLX110T, [[p] for p in prms])
    assert design is not None
    assert plan.total_prr_cells == design.total_prr_size


@given(small_prm_sets())
@settings(max_examples=25, deadline=None)
def test_floorplan_prrs_fit_and_disjoint(prms):
    try:
        plan = floorplan(XC5VLX110T, prms, optimize_static=False)
    except FloorplanError:
        return
    for prm, prr in zip(prms, plan.prrs):
        assert prr.geometry.fits(prm)
    for i, a in enumerate(plan.prrs):
        for b in plan.prrs[i + 1 :]:
            assert not a.region.overlaps(b.region)
    assert 0.0 <= plan.static_fragmentation() <= 1.0

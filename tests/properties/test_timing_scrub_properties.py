"""Property-based tests for the timing model and the SEU scrubber."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitgen import generate_partial_bitstream
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.devices.fabric import Region
from repro.devices.family import VIRTEX5
from repro.devices.resources import ColumnKind
from repro.relocation import ConfigMemory, Scrubber
from repro.relocation.scrubber import inject_upsets
from repro.synth.library import library_for
from repro.synth.mapper import luts_for_fanin
from repro.synth.netlist import LogicCloud, Module, Netlist
from repro.synth.timing import estimate_timing, logic_levels

from tests.conftest import paper_requirements

V5LIB = library_for(VIRTEX5)


@given(st.integers(1, 100), st.integers(1, 100))
def test_levels_monotone_in_fanin(small, large):
    lo, hi = sorted((small, large))
    shallow = Netlist("a", Module("a").add(LogicCloud(fanin=lo, width=1)))
    deep = Netlist("b", Module("b").add(LogicCloud(fanin=hi, width=1)))
    assert logic_levels(shallow, V5LIB) <= logic_levels(deep, V5LIB)


@given(
    st.integers(1, 60),
    st.integers(1, 8),
    st.floats(0.0, 1.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_delay_monotone_in_span_and_congestion(fanin, height, utilization):
    netlist = Netlist("t", Module("t").add(LogicCloud(fanin=fanin, width=4)))
    clb = XC5VLX110T.columns_of_kind(ColumnKind.CLB)[0]
    small = Region(row=1, col=clb, height=1, width=1)
    tall = Region(row=1, col=clb, height=height, width=1)
    t_small = estimate_timing(
        netlist, XC5VLX110T, small, pair_utilization=utilization
    )
    t_tall = estimate_timing(
        netlist, XC5VLX110T, tall, pair_utilization=utilization
    )
    assert t_tall.critical_path_s >= t_small.critical_path_s
    relaxed = estimate_timing(netlist, XC5VLX110T, tall, pair_utilization=0.0)
    assert t_tall.critical_path_s >= relaxed.critical_path_s


@given(st.integers(1, 300), st.sampled_from([4, 6]))
def test_lut_tree_monotone_and_tight(fanin, k):
    n = luts_for_fanin(fanin, k)
    assert n >= luts_for_fanin(max(1, fanin - 1), k)
    assert n * k - (n - 1) >= fanin


@given(st.integers(1, 6), st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_scrubber_always_detects_and_repairs(count, seed):
    """Any number of injected upsets is detected and one scrub restores
    the golden state (CRC32 catches all small-burst frame corruptions)."""
    placed = find_prr(XC5VLX110T, paper_requirements("sdram", "virtex5"))
    bitstream = generate_partial_bitstream(
        XC5VLX110T, placed.region, design_name="sdram"
    )
    memory = ConfigMemory(XC5VLX110T)
    memory.configure(bitstream.to_bytes())
    scrubber = Scrubber.for_region(memory, placed.region, bitstream)

    inject_upsets(memory, placed.region, count=count, seed=seed)
    report = scrubber.scrub()
    assert report.upset_detected
    assert report.repaired
    assert not scrubber.scan().upset_detected

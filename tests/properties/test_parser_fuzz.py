"""Fuzz/robustness properties of the bitstream parser.

Corrupting any byte of a valid partial bitstream must never make the
parser misbehave silently: it either raises
:class:`~repro.bitgen.parser.BitstreamParseError`, or parses with a
failing CRC, or — only when the corruption hits the dead NOOP padding —
parses cleanly with unchanged structure.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitgen import (
    BitstreamParseError,
    generate_partial_bitstream,
    parse_bitstream,
)
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T

from tests.conftest import paper_requirements


@pytest.fixture(scope="module")
def sdram_raw():
    placed = find_prr(XC5VLX110T, paper_requirements("sdram", "virtex5"))
    return generate_partial_bitstream(
        XC5VLX110T, placed.region, design_name="sdram"
    ).to_bytes()


REFERENCE = None


def _reference(raw):
    global REFERENCE
    if REFERENCE is None:
        REFERENCE = parse_bitstream(raw)
    return REFERENCE


@given(data=st.data())
@settings(max_examples=120, deadline=None)
def test_single_byte_corruption_never_passes_silently(data, sdram_raw):
    reference = _reference(sdram_raw)
    offset = data.draw(st.integers(0, len(sdram_raw) - 1))
    flip = data.draw(st.integers(1, 255))
    corrupted = bytearray(sdram_raw)
    corrupted[offset] ^= flip
    try:
        parsed = parse_bitstream(bytes(corrupted))
    except BitstreamParseError:
        return  # structural detection
    if parsed.crc_checked and not parsed.crc_ok:
        return  # CRC detection
    # Clean parse: only acceptable if the stream's accounting is intact
    # (corruption landed in dead padding outside every checked field).
    assert parsed.total_words == reference.total_words
    assert parsed.section_bytes() == reference.section_bytes()


@given(st.binary(min_size=0, max_size=512))
@settings(max_examples=100, deadline=None)
def test_arbitrary_bytes_never_crash_unexpectedly(blob):
    """Random input either parses (improbable) or raises the parser's own
    error type — never an arbitrary exception."""
    padded = blob + b"\x00" * ((4 - len(blob) % 4) % 4)
    try:
        parse_bitstream(padded)
    except BitstreamParseError:
        pass


@given(cut_words=st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_truncation_detected(cut_words, sdram_raw):
    """Truncation is detected whenever it removes checked content.

    The 4 trailing NOOPs after DESYNC are dead padding (real devices
    ignore them too), so cutting at most those still parses; any deeper
    cut removes the DESYNC/CRC machinery and must raise."""
    if cut_words == 0:
        parse_bitstream(sdram_raw)
        return
    truncated = sdram_raw[: -4 * cut_words]
    if cut_words <= 4:
        parsed = parse_bitstream(truncated)
        assert parsed.crc_ok  # CRC word still present and checked
    else:
        with pytest.raises(BitstreamParseError):
            parse_bitstream(truncated)

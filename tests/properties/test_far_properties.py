"""Property-based tests for FAR encoding and packet headers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.bitgen.words import (
    ConfigRegister,
    Opcode,
    decode_header,
    type1_header,
    type2_header,
)
from repro.devices.frames import FrameAddress

far_addresses = st.builds(
    FrameAddress,
    block_type=st.integers(0, 7),
    row=st.integers(0, 31),
    major=st.integers(0, 255),
    minor=st.integers(0, 127),
    top=st.integers(0, 1),
)


@given(far_addresses)
def test_far_roundtrip(far):
    assert FrameAddress.decode(far.encode()) == far


@given(far_addresses)
def test_far_fits_32_bits(far):
    assert 0 <= far.encode() < 1 << 32


@given(far_addresses, far_addresses)
def test_far_encoding_injective(a, b):
    if a != b:
        assert a.encode() != b.encode()


@given(
    st.sampled_from(list(Opcode)),
    st.sampled_from(list(ConfigRegister)),
    st.integers(0, 2047),
)
def test_type1_roundtrip(opcode, register, count):
    header = decode_header(type1_header(opcode, register, count))
    assert header.packet_type == 1
    assert header.opcode is opcode
    assert header.register is register
    assert header.word_count == count


@given(st.sampled_from(list(Opcode)), st.integers(0, (1 << 27) - 1))
def test_type2_roundtrip(opcode, count):
    header = decode_header(type2_header(opcode, count))
    assert header.packet_type == 2
    assert header.word_count == count


@given(
    st.sampled_from(list(ConfigRegister)),
    st.integers(0, 2047),
    st.integers(0, (1 << 27) - 1),
)
def test_type1_type2_never_collide(register, c1, c2):
    assert type1_header(Opcode.WRITE, register, c1) != type2_header(
        Opcode.WRITE, c2
    )

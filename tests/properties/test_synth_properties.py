"""Property-based tests for synthesis: mapping, packing, report I/O."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.family import VIRTEX4, VIRTEX5, VIRTEX6
from repro.synth.library import library_for
from repro.synth.mapper import luts_for_fanin, map_component, map_netlist
from repro.synth.netlist import (
    FSM,
    Adder,
    Comparator,
    LogicCloud,
    Memory,
    Module,
    Multiplier,
    Mux,
    Netlist,
    RegisterBank,
    ShiftRegister,
)
from repro.synth.packer import pack
from repro.synth.report import parse_syr, render_syr
from repro.synth.xst import synthesize

FAMILIES = st.sampled_from([VIRTEX4, VIRTEX5, VIRTEX6])

components = st.one_of(
    st.builds(LogicCloud, fanin=st.integers(1, 40), width=st.integers(1, 64),
              registered=st.booleans()),
    st.builds(Adder, width=st.integers(1, 64), registered=st.booleans()),
    st.builds(Comparator, width=st.integers(1, 64)),
    st.builds(Mux, ways=st.integers(2, 32), width=st.integers(1, 64)),
    st.builds(Multiplier, a_width=st.integers(1, 64), b_width=st.integers(1, 64),
              use_dsp=st.booleans()),
    st.builds(RegisterBank, width=st.integers(1, 256)),
    st.builds(ShiftRegister, depth=st.integers(1, 128), width=st.integers(1, 32),
              tapped=st.booleans()),
    st.builds(Memory, depth=st.integers(1, 8192), width=st.integers(1, 72),
              dual_port=st.booleans(), force_bram=st.booleans()),
    st.builds(FSM, states=st.integers(2, 64), inputs=st.integers(0, 32),
              outputs=st.integers(0, 32)),
)


@given(components, FAMILIES)
def test_mapping_counts_are_consistent(component, family):
    counts = map_component(component, library_for(family))
    assert counts.luts >= 0 and counts.ffs >= 0
    assert counts.paired_ffs <= min(counts.luts, counts.ffs)
    assert counts.lut_ff_pairs == counts.luts + counts.ffs - counts.paired_ffs


@given(st.integers(1, 200), st.sampled_from([4, 6]))
def test_lut_tree_has_enough_inputs(fanin, k):
    """A tree of n K-LUTs exposes n*K - (n-1) external inputs >= fanin."""
    n = luts_for_fanin(fanin, k)
    assert n * k - (n - 1) >= fanin
    if n > 1:
        assert (n - 1) * k - (n - 2) < fanin  # minimality


@given(st.lists(components, min_size=1, max_size=12), FAMILIES)
@settings(max_examples=50)
def test_synthesis_report_invariants(component_list, family):
    """Any synthesized netlist yields a report satisfying the paper's
    pair-class identities, and .syr render/parse round-trips it."""
    top = Module("top")
    for component in component_list:
        top.add(component)
    report = synthesize(Netlist("prop", top), family)
    pairs = report.pairs
    assert pairs.lut_ff_pairs >= max(pairs.luts, pairs.ffs)
    assert pairs.lut_ff_pairs <= pairs.luts + pairs.ffs
    report.requirements  # bridges without violating PRMRequirements

    parsed = parse_syr(render_syr(report))
    assert parsed.pairs == pairs
    assert parsed.dsps == report.dsps
    assert parsed.brams == report.brams


@given(st.lists(components, max_size=8), st.lists(components, max_size=8), FAMILIES)
@settings(max_examples=40)
def test_mapping_is_additive(list_a, list_b, family):
    """map(A ++ B) == map(A) + map(B): no cross-component coupling."""
    lib = library_for(family)

    def build(components_list, name):
        top = Module(name)
        for component in components_list:
            top.add(component)
        return Netlist(name, top)

    combined = build(list_a + list_b, "ab")
    a, b = build(list_a, "a"), build(list_b, "b")
    assert map_netlist(combined, lib) == map_netlist(a, lib) + map_netlist(b, lib)


@given(
    st.integers(0, 10_000),
    st.integers(0, 10_000),
    st.integers(0, 10_000),
)
def test_pack_preserves_totals(luts, ffs, paired):
    from repro.synth.mapper import MappedCounts

    paired = min(paired, luts, ffs)
    pairs = pack(MappedCounts(luts=luts, ffs=ffs, paired_ffs=paired))
    assert pairs.luts == luts
    assert pairs.ffs == ffs
    assert pairs.full_pairs == paired

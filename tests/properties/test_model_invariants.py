"""Property-based model invariants: geometry, utilization, bitstream.

The three contracts the cost models must never violate, regardless of
input: a produced geometry always accommodates its demand and only grows
when the demand grows; utilization of a fitting placement is a true
fraction; and eq. (18) yields positive, word-aligned sizes that are
monotone in the configuration frame count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstream_model import (
    config_frames_per_row,
    estimate_bitstream,
)
from repro.core.params import PRMRequirements
from repro.core.prr_model import (
    InfeasibleGeometryError,
    prr_geometry_for_rows,
)
from repro.core.utilization import utilization
from repro.devices.family import VIRTEX4, VIRTEX5, VIRTEX6
from repro.devices.resources import ResourceVector

FAMILIES = st.sampled_from([VIRTEX4, VIRTEX5, VIRTEX6])


@st.composite
def requirements(draw, max_pairs=20_000):
    """Valid PRMRequirements honouring the pair-class identities."""
    luts = draw(st.integers(0, max_pairs))
    ffs = draw(st.integers(0, max_pairs))
    pairs = draw(st.integers(max(luts, ffs), luts + ffs))
    dsps = draw(st.integers(0, 200))
    brams = draw(st.integers(0, 100))
    return PRMRequirements("prop", pairs, luts, ffs, dsps=dsps, brams=brams)


@st.composite
def demand_pairs(draw):
    """Two PRMs where the second dominates the first component-wise."""
    small = draw(requirements(max_pairs=10_000))
    luts = small.luts + draw(st.integers(0, 5_000))
    ffs = small.ffs + draw(st.integers(0, 5_000))
    pairs = draw(
        st.integers(max(small.lut_ff_pairs, max(luts, ffs)), luts + ffs)
    )
    big = PRMRequirements(
        "prop-big",
        pairs,
        luts,
        ffs,
        dsps=small.dsps + draw(st.integers(0, 50)),
        brams=small.brams + draw(st.integers(0, 25)),
    )
    return small, big


@st.composite
def geometries(draw):
    """A random well-formed PRR shape on one of the families."""
    family = draw(FAMILIES)
    rows = draw(st.integers(1, 16))
    clb = draw(st.integers(0, 10))
    dsp = draw(st.integers(0, 4))
    bram = draw(st.integers(0, 4))
    if clb + dsp + bram == 0:
        clb = 1
    from repro.core.prr_model import PRRGeometry

    return PRRGeometry(family, rows, ResourceVector(clb=clb, dsp=dsp, bram=bram))


# -- geometry ---------------------------------------------------------------


@given(requirements(), FAMILIES, st.integers(1, 16))
@settings(max_examples=80)
def test_geometry_fits_and_utilization_is_a_fraction(prm, family, rows):
    """A produced geometry fits its demand, and every RU is in [0, 1]."""
    if prm.lut_ff_pairs == 0 and prm.dsps == 0 and prm.brams == 0:
        return
    try:
        geometry = prr_geometry_for_rows(prm, family, rows, single_dsp_column=False)
    except InfeasibleGeometryError:
        return
    assert geometry.fits(prm)
    report = utilization(prm, geometry)
    for kind in ("clb", "ff", "lut", "dsp", "bram"):
        value = getattr(report, kind)
        assert 0.0 <= value <= 1.0, f"RU_{kind}={value} outside [0, 1]"


@given(demand_pairs(), FAMILIES, st.integers(1, 16))
@settings(max_examples=80)
def test_geometry_monotone_in_demand(pair, family, rows):
    """More demand never yields a narrower PRR (per kind or in total)."""
    small, big = pair
    if small.lut_ff_pairs == 0 and small.dsps == 0 and small.brams == 0:
        return
    try:
        geo_small = prr_geometry_for_rows(
            small, family, rows, single_dsp_column=False
        )
        geo_big = prr_geometry_for_rows(
            big, family, rows, single_dsp_column=False
        )
    except InfeasibleGeometryError:
        return
    assert geo_big.columns.clb >= geo_small.columns.clb
    assert geo_big.columns.dsp >= geo_small.columns.dsp
    assert geo_big.columns.bram >= geo_small.columns.bram
    assert geo_big.size >= geo_small.size


# -- bitstream --------------------------------------------------------------


@given(geometries())
@settings(max_examples=100)
def test_bitstream_positive_and_word_aligned(geometry):
    """Eq. (18): sizes are positive, word-aligned, and sum per section."""
    estimate = estimate_bitstream(geometry)
    assert estimate.total_bytes > 0
    assert estimate.total_bytes % estimate.bytes_per_word == 0
    assert estimate.total_bytes == estimate.total_words * estimate.bytes_per_word
    breakdown = estimate.breakdown()
    assert breakdown["total"] == sum(
        v for k, v in breakdown.items() if k != "total"
    )


@given(geometries(), st.integers(1, 8), st.integers(0, 3))
@settings(max_examples=100)
def test_bitstream_monotone_in_frame_count(geometry, extra_rows, extra_clb):
    """More configuration frames never shrink the bitstream."""
    from repro.core.prr_model import PRRGeometry

    grown = PRRGeometry(
        geometry.family,
        geometry.rows + extra_rows,
        ResourceVector(
            clb=geometry.columns.clb + extra_clb,
            dsp=geometry.columns.dsp,
            bram=geometry.columns.bram,
        ),
    )
    frames = config_frames_per_row(geometry.family, geometry.columns)
    grown_frames = config_frames_per_row(grown.family, grown.columns)
    assert grown_frames >= frames
    assert (
        estimate_bitstream(grown).total_bytes
        >= estimate_bitstream(geometry).total_bytes
    )

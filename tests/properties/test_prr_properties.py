"""Property-based tests for the PRR size/organization model."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import PRMRequirements
from repro.core.prr_model import (
    InfeasibleGeometryError,
    clb_requirement,
    merge_geometries,
    prr_geometry_for_rows,
)
from repro.core.utilization import utilization
from repro.devices.family import VIRTEX4, VIRTEX5, VIRTEX6

FAMILIES = st.sampled_from([VIRTEX4, VIRTEX5, VIRTEX6])


@st.composite
def requirements(draw, max_pairs=20_000):
    """Valid PRMRequirements honouring the pair-class identities."""
    luts = draw(st.integers(0, max_pairs))
    ffs = draw(st.integers(0, max_pairs))
    low, high = max(luts, ffs), luts + ffs
    pairs = draw(st.integers(low, high))
    dsps = draw(st.integers(0, 200))
    brams = draw(st.integers(0, 100))
    return PRMRequirements("prop", pairs, luts, ffs, dsps=dsps, brams=brams)


@given(requirements(), FAMILIES)
def test_eq1_ceiling_bounds(prm, family):
    """CLB_req * LUT_CLB covers the pairs with less than one CLB of slack."""
    clbs = clb_requirement(prm, family)
    assert clbs * family.luts_per_clb >= prm.lut_ff_pairs
    assert (clbs - 1) * family.luts_per_clb < prm.lut_ff_pairs or clbs == 0


@given(requirements(), FAMILIES, st.integers(1, 16))
def test_geometry_always_fits_requirement(prm, family, rows):
    """Any geometry the model produces accommodates the demand (the paper's
    'ensure sufficient resources' ceiling argument)."""
    if prm.lut_ff_pairs == 0 and prm.dsps == 0 and prm.brams == 0:
        return
    try:
        geometry = prr_geometry_for_rows(
            prm, family, rows, single_dsp_column=False
        )
    except InfeasibleGeometryError:
        return
    assert geometry.fits(prm)


@given(requirements(), FAMILIES, st.integers(1, 16))
def test_geometry_is_tight_per_kind(prm, family, rows):
    """One column fewer of any demanded kind would not fit — no silent
    overprovisioning beyond the ceiling."""
    if prm.lut_ff_pairs == 0 and prm.dsps == 0 and prm.brams == 0:
        return
    geometry = prr_geometry_for_rows(prm, family, rows, single_dsp_column=False)
    cols = geometry.columns
    if cols.clb:
        assert (cols.clb - 1) * rows * family.clb_per_col < clb_requirement(
            prm, family
        )
    if cols.dsp:
        assert (cols.dsp - 1) * rows * family.dsp_per_col < prm.dsps
    if cols.bram:
        assert (cols.bram - 1) * rows * family.bram_per_col < prm.brams


@given(requirements(), FAMILIES, st.integers(1, 8))
def test_more_rows_never_more_columns(prm, family, rows):
    """W is antitone in H (eq. (2)/(3)/(5) ceilings shrink)."""
    if prm.lut_ff_pairs == 0 and prm.dsps == 0 and prm.brams == 0:
        return
    small = prr_geometry_for_rows(prm, family, rows, single_dsp_column=False)
    large = prr_geometry_for_rows(prm, family, rows + 1, single_dsp_column=False)
    assert large.columns.clb <= small.columns.clb
    assert large.columns.dsp <= small.columns.dsp
    assert large.columns.bram <= small.columns.bram


@given(requirements(), FAMILIES, st.integers(1, 8))
def test_utilization_bounded(prm, family, rows):
    """RU in [0, 1] whenever the geometry fits (eq. (13)-(17) bounds)."""
    if prm.lut_ff_pairs == 0 and prm.dsps == 0 and prm.brams == 0:
        return
    geometry = prr_geometry_for_rows(prm, family, rows, single_dsp_column=False)
    ru = utilization(prm, geometry)
    for value in (ru.clb, ru.ff, ru.lut, ru.dsp, ru.bram):
        assert 0.0 <= value <= 1.0


@given(
    st.lists(requirements(max_pairs=5000), min_size=1, max_size=5),
    FAMILIES,
    st.integers(1, 8),
)
@settings(max_examples=50)
def test_shared_prr_dominates_members(prms, family, rows):
    """A shared PRR's columns dominate each member's solo columns (the
    Section III.B elementwise-max rule)."""
    nonzero = [
        p for p in prms if p.lut_ff_pairs or p.dsps or p.brams
    ]
    if not nonzero:
        return
    shared = prr_geometry_for_rows(nonzero, family, rows, single_dsp_column=False)
    for prm in nonzero:
        solo = prr_geometry_for_rows(prm, family, rows, single_dsp_column=False)
        assert shared.columns.dominates(solo.columns)


@given(
    st.lists(requirements(max_pairs=5000), min_size=1, max_size=4),
    FAMILIES,
    st.integers(1, 8),
)
@settings(max_examples=50)
def test_merge_geometries_matches_direct(prms, family, rows):
    nonzero = [p for p in prms if p.lut_ff_pairs or p.dsps or p.brams]
    if not nonzero:
        return
    direct = prr_geometry_for_rows(nonzero, family, rows, single_dsp_column=False)
    merged = merge_geometries(
        [
            prr_geometry_for_rows(p, family, rows, single_dsp_column=False)
            for p in nonzero
        ]
    )
    assert direct.columns == merged.columns


@given(requirements(), st.integers(1, 16))
def test_single_dsp_column_rule(prm, rows):
    """Eq. (4): with one DSP column, W_DSP == 1 iff the height covers the
    demand; otherwise the geometry is infeasible."""
    if prm.dsps == 0:
        return
    h_dsp = math.ceil(prm.dsps / VIRTEX5.dsp_per_col)
    try:
        geometry = prr_geometry_for_rows(
            prm, VIRTEX5, rows, single_dsp_column=True
        )
    except InfeasibleGeometryError:
        assert rows < h_dsp
        return
    assert rows >= h_dsp
    assert geometry.columns.dsp == 1

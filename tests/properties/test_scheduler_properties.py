"""Property-based tests for the multitasking scheduler's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import PRMRequirements
from repro.core.prr_model import PRRGeometry
from repro.devices.catalog import XC5VLX110T
from repro.devices.family import VIRTEX5
from repro.devices.resources import ResourceVector
from repro.multitask.scheduler import simulate_full_reconfig, simulate_pr
from repro.multitask.tasks import HwTask, Job

SMALL_PRMS = [
    PRMRequirements("t0", 100, 80, 60),
    PRMRequirements("t1", 200, 150, 120),
    PRMRequirements("t2", 50, 40, 30),
]

#: A PRR comfortably fitting every small PRM.
BIG_PRR = PRRGeometry(VIRTEX5, rows=1, columns=ResourceVector(clb=3))


@st.composite
def job_streams(draw):
    n = draw(st.integers(1, 40))
    times = sorted(
        draw(
            st.lists(
                st.floats(0, 1.0, allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    jobs = []
    for i, t in enumerate(times):
        task = HwTask(
            SMALL_PRMS[draw(st.integers(0, len(SMALL_PRMS) - 1))],
            exec_seconds=draw(st.floats(1e-4, 1e-2)),
        )
        jobs.append(Job(task, arrival_seconds=t, job_id=i))
    return jobs


@given(job_streams(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_all_jobs_complete_exactly_once(jobs, n_prrs):
    result = simulate_pr(jobs, [BIG_PRR] * n_prrs)
    assert sorted(j.job_id for j in result.completed) == sorted(
        j.job_id for j in jobs
    )


@given(job_streams(), st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_causality_and_nonnegative_waits(jobs, n_prrs):
    result = simulate_pr(jobs, [BIG_PRR] * n_prrs)
    for job in result.completed:
        assert job.start >= job.arrival
        assert job.waiting_seconds >= 0
        assert job.response_seconds > 0


@given(job_streams(), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_no_prr_overlap(jobs, n_prrs):
    """A PRR never runs two jobs (or a job and a reconfiguration) at once."""
    result = simulate_pr(jobs, [BIG_PRR] * n_prrs)
    by_prr: dict[int, list] = {}
    for job in result.completed:
        by_prr.setdefault(job.prr_index, []).append(job)
    for prr_jobs in by_prr.values():
        prr_jobs.sort(key=lambda j: j.start)
        for a, b in zip(prr_jobs, prr_jobs[1:]):
            assert b.start - b.reconfig_seconds >= a.finish - 1e-9


@given(job_streams())
@settings(max_examples=30, deadline=None)
def test_more_prrs_never_hurt_makespan(jobs):
    one = simulate_pr(jobs, [BIG_PRR])
    four = simulate_pr(jobs, [BIG_PRR] * 4)
    assert four.makespan_seconds <= one.makespan_seconds + 1e-9


@given(job_streams())
@settings(max_examples=30, deadline=None)
def test_pr_reconfig_cheaper_than_full(jobs):
    """Partial bitstreams are strictly smaller than the full-device
    bitstream, so total PR reconfiguration time is bounded by the
    full-reconfiguration baseline's when reconfig counts match."""
    pr = simulate_pr(jobs, [BIG_PRR])
    full = simulate_full_reconfig(jobs, XC5VLX110T)
    if pr.reconfig_count <= full.reconfig_count:
        assert pr.total_reconfig_seconds < full.total_reconfig_seconds


@given(job_streams())
@settings(max_examples=30, deadline=None)
def test_makespan_bounds(jobs):
    """Makespan >= total exec / n_prrs (work conservation lower bound) and
    >= last arrival."""
    result = simulate_pr(jobs, [BIG_PRR])
    total_exec = sum(j.task.exec_seconds for j in jobs)
    assert result.makespan_seconds >= total_exec - 1e-9
    assert result.makespan_seconds >= max(j.arrival_seconds for j in jobs)

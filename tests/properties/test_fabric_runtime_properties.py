"""Property suite for the self-healing fabric runtime.

Random operation sequences (admit / retire / defrag / column fault /
mid-migration crash) against a randomized device must preserve the
runtime's safety invariants at every step:

* no two live placements overlap;
* no placement ever touches a blacklisted (retired) column;
* the module set is exactly what the operation history implies — a
  module only disappears through an explicit retire or a capacity
  eviction the runtime reported, never through a crashed migration.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PRMRequirements
from repro.devices import synthetic_device
from repro.fabric import AdmissionError, FabricConfig, FabricRuntime
from repro.faults import FaultInjector

DEVICES = [
    synthetic_device(rows=1, clb_runs=(10,), name="prop-row"),
    synthetic_device(rows=2, clb_runs=(4, 4), name="prop-split"),
    synthetic_device(rows=3, clb_runs=(6,), dsp_positions=(), name="prop-tall"),
]


def clb_demand(device, name: str, columns: int) -> PRMRequirements:
    cells = columns * device.family.clb_per_col * device.family.luts_per_clb
    return PRMRequirements(name, cells, cells, cells)


@st.composite
def op_sequences(draw):
    """A random runtime workload: list of (op, payload) tuples."""
    ops = []
    n = draw(st.integers(1, 14))
    for index in range(n):
        kind = draw(
            st.sampled_from(
                ["admit", "retire", "defrag", "fault", "crash_migration"]
            )
        )
        if kind == "admit":
            ops.append((kind, (f"m{index}", draw(st.integers(1, 4)))))
        elif kind == "retire":
            ops.append((kind, draw(st.integers(0, n - 1))))
        elif kind == "fault":
            ops.append((kind, draw(st.integers(1, 16))))
        elif kind == "crash_migration":
            ops.append(
                (kind, draw(st.sampled_from(["copy", "verify", "activate", "free"])))
            )
        else:
            ops.append((kind, None))
    return ops


@settings(max_examples=40, deadline=None)
@given(
    device_index=st.integers(0, len(DEVICES) - 1),
    ops=op_sequences(),
    seed=st.integers(0, 2**16),
    crc=st.booleans(),
)
def test_random_op_sequences_preserve_invariants(device_index, ops, seed, crc):
    device = DEVICES[device_index]
    runtime = FabricRuntime(
        device,
        config=FabricConfig(verify="crc" if crc else "model"),
        injector=FaultInjector.from_rates(seed=seed, fault_rate=0.2),
    )
    expected = set()
    now = 0.0
    for op, payload in ops:
        now += 1e-3
        if op == "admit":
            name, columns = payload
            if name in expected:
                continue
            try:
                runtime.admit(name, clb_demand(device, name, columns), now=now)
                expected.add(name)
            except AdmissionError:
                pass
        elif op == "retire":
            live = sorted(expected)
            if live:
                name = live[payload % len(live)]
                runtime.retire(name, now=now)
                expected.discard(name)
        elif op == "defrag":
            runtime.defrag(now=now)
        elif op == "fault":
            col = 1 + (payload % device.num_columns)
            if device.columns[col - 1].reconfigurable:
                evicted = runtime.retire_column(col, now=now)
                expected.difference_update(evicted)
        elif op == "crash_migration":
            phase = payload

            def crash(p, step, _phase=phase):
                if p == _phase:
                    raise RuntimeError("injected crash")

            runtime.crash_hook = crash
            try:
                runtime.defrag(now=now)
            except RuntimeError:
                runtime.recover(now=now)
            finally:
                runtime.crash_hook = None

        # Invariants hold after *every* operation.
        assert runtime.module_names() == frozenset(expected)
        runtime.check_invariants()
        for module_name in sorted(expected):
            region = runtime.get(module_name).region
            assert not set(region.col_span) & runtime.retired_columns

"""Tests for bitstream run-length compression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitgen.compress import (
    RUN_MARKER,
    compress,
    compression_ratio,
    decompress,
)
from repro.bitgen.generator import generate_partial_bitstream
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T

from tests.conftest import paper_requirements


def words_to_bytes(words):
    return b"".join(w.to_bytes(4, "big") for w in words)


class TestRoundtrip:
    def test_empty(self):
        assert decompress(compress(b"")) == b""

    def test_literal_passthrough(self):
        data = words_to_bytes([1, 2, 3, 4])
        assert decompress(compress(data)) == data

    def test_long_run_collapses(self):
        data = words_to_bytes([7] * 100)
        packed = compress(data)
        assert len(packed) == 12  # marker + count + word
        assert decompress(packed) == data

    def test_marker_word_escaped(self):
        data = words_to_bytes([RUN_MARKER, 5, RUN_MARKER])
        assert decompress(compress(data)) == data

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            compress(b"\x00" * 5)

    def test_truncated_run_rejected(self):
        with pytest.raises(ValueError):
            decompress(words_to_bytes([RUN_MARKER, 3]))

    def test_invalid_run_length_rejected(self):
        with pytest.raises(ValueError):
            decompress(words_to_bytes([RUN_MARKER, 0, 5]))

    @given(st.lists(st.integers(0, 2**32 - 1), max_size=200))
    @settings(max_examples=60)
    def test_roundtrip_property(self, words):
        data = words_to_bytes(words)
        assert decompress(compress(data)) == data


class TestOnRealBitstreams:
    @pytest.fixture(scope="class")
    def fir_bitstream(self):
        placed = find_prr(XC5VLX110T, paper_requirements("fir", "virtex5"))
        return generate_partial_bitstream(
            XC5VLX110T, placed.region, design_name="fir"
        )

    def test_partial_bitstreams_compress(self, fir_bitstream):
        """Flush frames and headers give real (if modest) savings even on
        pseudo-random frame payloads."""
        ratio = compression_ratio(fir_bitstream)
        assert 0.0 < ratio < 1.0

    def test_roundtrip_real_bitstream(self, fir_bitstream):
        raw = fir_bitstream.to_bytes()
        assert decompress(compress(raw)) == raw

    def test_blank_region_compresses_massively(self):
        """A blank (all-zero-frame) PRM — the erase bitstreams PR systems
        keep around — compresses by orders of magnitude."""
        placed = find_prr(XC5VLX110T, paper_requirements("fir", "virtex5"))
        family = XC5VLX110T.family
        blank = generate_partial_bitstream(
            XC5VLX110T,
            placed.region,
            design_name="blank",
            payload_fn=lambda bt, far: [0] * family.frame_words,
        )
        assert compression_ratio(blank) < 0.02

    def test_ratio_feeds_farm_model(self, fir_bitstream):
        from repro.baselines import duhem_farm

        ratio = compression_ratio(fir_bitstream)
        est = duhem_farm.estimate(
            fir_bitstream.size_bytes, compression_ratio=ratio
        )
        assert est.preload_seconds < duhem_farm.estimate(
            fir_bitstream.size_bytes
        ).preload_seconds

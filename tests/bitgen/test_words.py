"""Unit tests for packet encodings."""

import pytest

from repro.bitgen.words import (
    Command,
    ConfigRegister,
    NOOP,
    Opcode,
    SYNC_WORD,
    decode_header,
    type1_header,
    type2_header,
)


class TestType1:
    def test_roundtrip(self):
        word = type1_header(Opcode.WRITE, ConfigRegister.FAR, 1)
        header = decode_header(word)
        assert header.packet_type == 1
        assert header.opcode is Opcode.WRITE
        assert header.register is ConfigRegister.FAR
        assert header.word_count == 1

    def test_all_registers_roundtrip(self):
        for register in ConfigRegister:
            word = type1_header(Opcode.WRITE, register, 5)
            assert decode_header(word).register is register

    def test_word_count_bounds(self):
        type1_header(Opcode.WRITE, ConfigRegister.CMD, 2047)
        with pytest.raises(ValueError):
            type1_header(Opcode.WRITE, ConfigRegister.CMD, 2048)

    def test_noop_is_type1_nop(self):
        header = decode_header(NOOP)
        assert header.packet_type == 1
        assert header.opcode is Opcode.NOP
        assert header.word_count == 0


class TestType2:
    def test_roundtrip(self):
        word = type2_header(Opcode.WRITE, 1_000_000)
        header = decode_header(word)
        assert header.packet_type == 2
        assert header.register is None
        assert header.word_count == 1_000_000

    def test_word_count_bounds(self):
        type2_header(Opcode.WRITE, (1 << 27) - 1)
        with pytest.raises(ValueError):
            type2_header(Opcode.WRITE, 1 << 27)


class TestDecode:
    def test_sync_word_is_not_a_packet(self):
        with pytest.raises(ValueError):
            decode_header(SYNC_WORD)

    def test_dummy_is_not_a_packet(self):
        with pytest.raises(ValueError):
            decode_header(0xFFFFFFFF)

    def test_repr(self):
        assert "FAR" in repr(decode_header(type1_header(Opcode.WRITE, ConfigRegister.FAR, 1)))


class TestEnums:
    def test_command_codes_match_ug191(self):
        assert Command.WCFG == 1
        assert Command.RCRC == 7
        assert Command.DESYNC == 13
        assert Command.GRESTORE == 10

    def test_register_addresses_match_ug191(self):
        assert ConfigRegister.CRC == 0
        assert ConfigRegister.FAR == 1
        assert ConfigRegister.FDRI == 2
        assert ConfigRegister.CMD == 4
        assert ConfigRegister.IDCODE == 12

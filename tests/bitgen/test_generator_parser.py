"""Tests for the bitstream generator and parser, including the headline
model-vs-measured validation."""

import pytest

from repro.bitgen.crc import ConfigCrc
from repro.bitgen.generator import (
    frame_payload,
    generate_partial_bitstream,
)
from repro.bitgen.parser import BitstreamParseError, parse_bitstream
from repro.core.bitstream_model import estimate_bitstream
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T, XC6SLX45, XC6VLX75T
from repro.devices.fabric import Region
from repro.devices.resources import ColumnKind

from tests.conftest import paper_requirements


def clb_region(device, row=1, height=1, width=1):
    col = device.columns_of_kind(ColumnKind.CLB)[0]
    return Region(row=row, col=col, height=height, width=width)


class TestCrc:
    def test_deterministic(self):
        a, b = ConfigCrc(), ConfigCrc()
        for crc in (a, b):
            crc.update(2, 0xDEADBEEF)
        assert a.value == b.value

    def test_register_tagged(self):
        a, b = ConfigCrc(), ConfigCrc()
        a.update(1, 0x1234)
        b.update(2, 0x1234)
        assert a.value != b.value

    def test_reset(self):
        crc = ConfigCrc()
        crc.update(1, 99)
        crc.reset()
        assert crc.value == 0


class TestFramePayload:
    def test_deterministic(self):
        assert frame_payload(1, 2, 41) == frame_payload(1, 2, 41)

    def test_seed_sensitivity(self):
        assert frame_payload(1, 2, 41) != frame_payload(3, 2, 41)

    def test_far_sensitivity(self):
        assert frame_payload(1, 2, 41) != frame_payload(1, 5, 41)

    def test_word_range(self):
        for word in frame_payload(7, 9, 100):
            assert 0 <= word < 1 << 32


class TestGenerator:
    def test_rejects_invalid_prr(self):
        with pytest.raises(ValueError, match="not a valid PRR"):
            generate_partial_bitstream(
                XC5VLX110T, Region(row=1, col=1, height=1, width=1)
            )

    def test_rejects_16_bit_families(self):
        with pytest.raises(ValueError, match="32-bit"):
            generate_partial_bitstream(XC6SLX45, clb_region(XC6SLX45))

    def test_deterministic_output(self):
        region = clb_region(XC5VLX110T)
        a = generate_partial_bitstream(XC5VLX110T, region, design_name="x")
        b = generate_partial_bitstream(XC5VLX110T, region, design_name="x")
        assert a.words == b.words

    def test_design_name_changes_payload_not_size(self):
        region = clb_region(XC5VLX110T)
        a = generate_partial_bitstream(XC5VLX110T, region, design_name="a")
        b = generate_partial_bitstream(XC5VLX110T, region, design_name="b")
        assert a.words != b.words
        assert a.size_bytes == b.size_bytes

    def test_to_bytes_is_big_endian_words(self):
        region = clb_region(XC5VLX110T)
        bitstream = generate_partial_bitstream(XC5VLX110T, region)
        raw = bitstream.to_bytes()
        assert len(raw) == 4 * len(bitstream)
        assert raw[:4] == b"\xff\xff\xff\xff"  # dummy word


class TestModelVsMeasured:
    """The validation the paper could not perform: eq. (18) vs real bytes."""

    @pytest.mark.parametrize(
        "workload,device",
        [
            ("fir", XC5VLX110T),
            ("mips", XC5VLX110T),
            ("sdram", XC5VLX110T),
            ("fir", XC6VLX75T),
            ("mips", XC6VLX75T),
            ("sdram", XC6VLX75T),
        ],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_exact_size_match(self, workload, device):
        prm = paper_requirements(workload, device.family.name)
        placed = find_prr(device, prm)
        model = estimate_bitstream(placed.geometry)
        bitstream = generate_partial_bitstream(
            device, placed.region, design_name=workload
        )
        assert bitstream.size_bytes == model.total_bytes

    def test_section_attribution_matches_model(self):
        prm = paper_requirements("mips", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        model = estimate_bitstream(placed.geometry).breakdown()
        parsed = parse_bitstream(
            generate_partial_bitstream(XC5VLX110T, placed.region).to_bytes()
        )
        assert parsed.section_bytes() == model


class TestParser:
    @pytest.fixture(scope="class")
    def mips_parsed(self):
        prm = paper_requirements("mips", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        raw = generate_partial_bitstream(
            XC5VLX110T, placed.region, design_name="mips"
        ).to_bytes()
        return parse_bitstream(raw)

    def test_crc_verifies(self, mips_parsed):
        assert mips_parsed.crc_checked and mips_parsed.crc_ok

    def test_rows_counted_from_config_blocks(self, mips_parsed):
        assert mips_parsed.rows == 1

    def test_bram_blocks_present(self, mips_parsed):
        assert len(mips_parsed.bram_blocks) == 1
        assert mips_parsed.bram_blocks[0].far.block_type == 1

    def test_commands_sequence(self, mips_parsed):
        from repro.bitgen.words import Command

        assert mips_parsed.commands[-1] is Command.DESYNC
        assert Command.WCFG in mips_parsed.commands
        assert Command.GRESTORE in mips_parsed.commands

    def test_multi_row_prr_has_per_row_blocks(self):
        prm = paper_requirements("fir", "virtex5")
        placed = find_prr(XC5VLX110T, prm)  # H = 5
        parsed = parse_bitstream(
            generate_partial_bitstream(XC5VLX110T, placed.region).to_bytes()
        )
        assert parsed.rows == 5
        assert len(parsed.bram_blocks) == 0

    def test_corrupted_data_word_fails_crc(self):
        region = clb_region(XC5VLX110T)
        words = list(generate_partial_bitstream(XC5VLX110T, region).words)
        words[100] ^= 0x1  # flip a bit in frame data
        raw = b"".join(w.to_bytes(4, "big") for w in words)
        parsed = parse_bitstream(raw)
        assert parsed.crc_checked and not parsed.crc_ok

    def test_any_corrupted_payload_word_fails_crc_round_trip(self):
        """Generate → flip bits across every FDRI burst → re-parse: the
        recomputed configuration CRC must flag each corruption."""
        prm = paper_requirements("sdram", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        bitstream = generate_partial_bitstream(
            XC5VLX110T, placed.region, design_name="sdram"
        )
        clean = parse_bitstream(bitstream.to_bytes())
        assert clean.crc_checked and clean.crc_ok
        # Word offsets inside each burst's data: first word of the first
        # burst, middle of every burst, last word of the last burst.
        offset = clean.initial_words
        data_offsets = []
        for i, block in enumerate(clean.blocks):
            start = offset + block.preamble_words
            data_offsets.append(start if i == 0 else start + block.data_words // 2)
            if i == len(clean.blocks) - 1:
                data_offsets.append(start + block.data_words - 1)
            offset += block.total_words
        words = list(bitstream.words)
        for word_index in data_offsets:
            for bit in (0, 17, 31):
                corrupted = list(words)
                corrupted[word_index] ^= 1 << bit
                parsed = parse_bitstream(
                    b"".join(w.to_bytes(4, "big") for w in corrupted)
                )
                assert parsed.crc_checked and not parsed.crc_ok, (
                    f"flip at word {word_index} bit {bit} went undetected"
                )

    def test_unaligned_input_rejected(self):
        with pytest.raises(BitstreamParseError, match="aligned"):
            parse_bitstream(b"\x00" * 7)

    def test_missing_sync_rejected(self):
        with pytest.raises(BitstreamParseError, match="sync"):
            parse_bitstream(b"\xff" * 64)

    def test_truncated_stream_rejected(self):
        region = clb_region(XC5VLX110T)
        raw = generate_partial_bitstream(XC5VLX110T, region).to_bytes()
        with pytest.raises(BitstreamParseError):
            parse_bitstream(raw[: len(raw) // 2 // 4 * 4])

    def test_garbage_after_sync_rejected(self):
        from repro.bitgen.words import SYNC_WORD

        raw = SYNC_WORD.to_bytes(4, "big") + (0x00000001).to_bytes(4, "big")
        with pytest.raises(BitstreamParseError):
            parse_bitstream(raw)

"""Durable content-addressed cache: integrity, atomicity, differential.

The serving tier's correctness story rests on two claims this module
pins down:

1. *Integrity*: a damaged disk entry (bit flip, truncation, torn write,
   stale format version) is never served — it is quarantined or
   invalidated and the result recomputed.
2. *Differential equality*: a result that travels through the codec
   (or the disk tier) is dataclass-equal to a fresh
   :func:`repro.core.api.evaluate_prm` run, byte-identical once
   canonically encoded.
"""

import random

import pytest

from repro.core.api import batch_evaluate, evaluate_prm
from repro.core.reconfig_model import ICAP_VIRTEX5_BYTES_PER_S
from repro.devices.catalog import get_device
from repro.errors import InvalidInput
from repro.faults import (
    corrupt_cache_entry,
    disk_full,
    leave_partial_temp_file,
    truncate_cache_entry,
)
from repro.serve import (
    DiskResultCache,
    LruResultCache,
    TieredResultCache,
    cache_key,
    decode_result,
    encode_result,
)
from repro.serve.cache import CACHE_FORMAT_VERSION, canonical_bytes

from tests.conftest import paper_requirements

RATE = ICAP_VIRTEX5_BYTES_PER_S


@pytest.fixture()
def v5_device():
    return get_device("xc5vlx110t")


@pytest.fixture()
def fir():
    return paper_requirements("fir", "virtex5")


def _store_one(directory, prm, device):
    """Evaluate + persist one entry; return (key, result, disk cache)."""
    disk = DiskResultCache(directory)
    result = evaluate_prm(prm, device.name)
    key = cache_key(prm, device, RATE)
    assert disk.put(key, encode_result(result, RATE))
    return key, result, disk


class TestCacheKey:
    def test_same_content_same_key(self, v5_device, fir):
        assert cache_key(fir, v5_device, RATE) == cache_key(
            fir, v5_device, RATE
        )

    def test_key_covers_device_prm_and_rate(self, v5_device, fir):
        base = cache_key(fir, v5_device, RATE)
        other_device = get_device("xc6vlx75t")
        other_prm = paper_requirements("mips", "virtex5")
        assert cache_key(fir, other_device, RATE) != base
        assert cache_key(other_prm, v5_device, RATE) != base
        assert cache_key(fir, v5_device, RATE * 2) != base

    def test_key_covers_prm_name(self, v5_device, fir):
        renamed = type(fir)(
            name="fir-renamed",
            lut_ff_pairs=fir.lut_ff_pairs,
            luts=fir.luts,
            ffs=fir.ffs,
            dsps=fir.dsps,
            brams=fir.brams,
        )
        assert cache_key(renamed, v5_device, RATE) != cache_key(
            fir, v5_device, RATE
        )


class TestCodecDifferential:
    def test_roundtrip_equals_fresh_evaluation(self, v5_device):
        for workload in ("fir", "mips", "sdram"):
            prm = paper_requirements(workload, "virtex5")
            fresh = evaluate_prm(prm, v5_device.name)
            decoded = decode_result(encode_result(fresh, RATE), v5_device)
            assert decoded == fresh
            assert canonical_bytes(
                encode_result(decoded, RATE)
            ) == canonical_bytes(encode_result(fresh, RATE))

    def test_roundtrip_matches_batch_engine(self, v5_device):
        prms = [
            paper_requirements(w, "virtex5") for w in ("fir", "mips", "sdram")
        ]
        batch = batch_evaluate(prms, v5_device.name)
        for index, prm in enumerate(prms):
            fresh = batch.result(index)
            decoded = decode_result(encode_result(fresh, RATE), v5_device)
            assert decoded == fresh


class TestLruTier:
    def test_eviction_order(self, v5_device, fir):
        cache = LruResultCache(max_entries=2)
        result = evaluate_prm(fir, v5_device.name)
        cache.put("a", result)
        cache.put("b", result)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", result)
        assert cache.get("b") is None
        assert cache.get("a") is result
        assert cache.get("c") is result

    def test_zero_capacity_rejected(self):
        with pytest.raises(InvalidInput):
            LruResultCache(max_entries=0)


class TestDiskIntegrity:
    def test_roundtrip_served_verbatim(self, tmp_path, v5_device, fir):
        key, result, disk = _store_one(tmp_path, fir, v5_device)
        entry = disk.get(key)
        assert entry is not None
        assert decode_result(entry, v5_device) == result

    def test_corrupted_entry_quarantined_never_served(
        self, tmp_path, v5_device, fir
    ):
        key, _, disk = _store_one(tmp_path, fir, v5_device)
        corrupt_cache_entry(disk.path_for(key), rng=random.Random(7))
        assert disk.get(key) is None
        assert disk.stats["quarantined"] == 1
        assert len(disk.quarantined_files()) == 1
        assert not disk.path_for(key).exists()
        # The quarantined bytes are kept aside for forensics, not served.
        assert disk.get(key) is None

    def test_truncated_entry_quarantined(self, tmp_path, v5_device, fir):
        key, _, disk = _store_one(tmp_path, fir, v5_device)
        truncate_cache_entry(disk.path_for(key), keep_fraction=0.5)
        assert disk.get(key) is None
        assert disk.stats["quarantined"] == 1

    def test_stale_version_invalidated(self, tmp_path, v5_device, fir):
        key, _, disk = _store_one(tmp_path, fir, v5_device)
        path = disk.path_for(key)
        raw = path.read_bytes()
        stale = raw.replace(
            f"RPRC{CACHE_FORMAT_VERSION}".encode(),
            f"RPRC{CACHE_FORMAT_VERSION + 1}".encode(),
            1,
        )
        path.write_bytes(stale)
        assert disk.get(key) is None
        assert disk.stats["invalidated"] == 1
        assert not path.exists()  # deleted, not quarantined

    def test_partial_temp_file_swept_at_open(self, tmp_path, v5_device, fir):
        key, result, _ = _store_one(tmp_path, fir, v5_device)
        partial = leave_partial_temp_file(tmp_path)
        assert partial.exists()
        reopened = DiskResultCache(tmp_path)  # simulated crash + restart
        assert not partial.exists()
        assert reopened.stats["swept_tmp"] == 1
        entry = reopened.get(key)  # real entries survive the sweep
        assert decode_result(entry, v5_device) == result

    def test_disk_full_write_fails_closed(self, tmp_path, v5_device, fir):
        disk = DiskResultCache(tmp_path)
        result = evaluate_prm(fir, v5_device.name)
        key = cache_key(fir, v5_device, RATE)
        with disk_full():
            assert disk.put(key, encode_result(result, RATE)) is False
        assert disk.stats["disk_write_errors"] == 1
        assert disk.get(key) is None  # nothing partial left behind
        assert not list(tmp_path.glob("tmp-*"))
        # Writes recover once space returns.
        assert disk.put(key, encode_result(result, RATE))
        assert decode_result(disk.get(key), v5_device) == result


class TestTieredCache:
    def test_cold_start_rebuilds_from_disk(self, tmp_path, v5_device, fir):
        result = evaluate_prm(fir, v5_device.name)
        key = cache_key(fir, v5_device, RATE)
        warm = TieredResultCache(directory=tmp_path)
        warm.put(key, result, controller_bytes_per_s=RATE)
        # New process, empty memory tier: the disk copy must satisfy it.
        cold = TieredResultCache(directory=tmp_path)
        hit = cold.get(key, v5_device)
        assert hit == result
        assert cold.stats["hits_disk"] == 1
        # Promotion: second lookup is a memory hit.
        assert cold.get(key, v5_device) == result
        assert cold.stats["hits_memory"] == 1

    def test_corruption_is_a_miss_then_recomputed(
        self, tmp_path, v5_device, fir
    ):
        result = evaluate_prm(fir, v5_device.name)
        key = cache_key(fir, v5_device, RATE)
        tiered = TieredResultCache(max_entries=1, directory=tmp_path)
        tiered.put(key, result, controller_bytes_per_s=RATE)
        corrupt_cache_entry(
            tiered.disk.path_for(key), rng=random.Random(3)
        )
        # Evict the memory copy so the damaged disk entry is the only one.
        other = evaluate_prm(
            paper_requirements("mips", "virtex5"), v5_device.name
        )
        tiered.put("other-key", other, controller_bytes_per_s=RATE)
        assert tiered.get(key, v5_device) is None
        stats = tiered.combined_stats()
        assert stats["quarantined"] == 1
        assert stats["misses"] == 1
        # The recompute path re-populates both tiers.
        tiered.put(key, result, controller_bytes_per_s=RATE)
        assert tiered.get(key, v5_device) == result

    def test_memory_only_mode(self, v5_device, fir):
        result = evaluate_prm(fir, v5_device.name)
        tiered = TieredResultCache(directory=None)
        tiered.put("k", result, controller_bytes_per_s=RATE)
        assert tiered.get("k", v5_device) == result
        assert tiered.disk is None

    def test_put_without_rate_or_entry_rejected(
        self, tmp_path, v5_device, fir
    ):
        result = evaluate_prm(fir, v5_device.name)
        tiered = TieredResultCache(directory=tmp_path)
        with pytest.raises(InvalidInput):
            tiered.put("k", result)

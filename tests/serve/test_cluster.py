"""ClusterService: sharding, supervision, hedging, typed degradation.

These tests drive real worker processes, so timeouts are generous and
fault plans are deterministic (:class:`repro.faults.ShardChaos` handed
to the shard at spawn) rather than timing-sensitive.
"""

import hashlib
import random
import time

import pytest

from repro import obs
from repro.core.api import evaluate_prm
from repro.devices.catalog import get_device
from repro.errors import InvalidInput, Overloaded
from repro.faults import ShardChaos, corrupt_cache_entry
from repro.serve import (
    ClusterConfig,
    ClusterService,
    EvaluateRequest,
    ExploreRequest,
)

from tests.conftest import paper_requirements

pytestmark = pytest.mark.serve_cluster

WAIT_S = 60.0


def _fir():
    return paper_requirements("fir", "virtex5")


def _prms():
    return (
        paper_requirements("fir", "virtex5"),
        paper_requirements("mips", "virtex5"),
        paper_requirements("sdram", "virtex5"),
    )


def _routed_shard(device_name: str, shards: int) -> int:
    digest = hashlib.sha256(device_name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"shard_workers": 0},
            {"shard_queue_depth": 0},
            {"probe_interval_s": 0.0},
            {"probe_timeout_s": -1.0},
            {"probe_misses_down": 0},
            {"hedge_after_s": 0.0},
            {"max_restarts": -1},
            {"default_deadline_s": 0.0},
            {"shed_retry_after_s": -0.1},
            {"shed_retry_jitter": 20.0},
            {"drain_timeout_s": 0.0},
            {"cache_memory_entries": 0},
            {"max_batch": 0},
            {"shards": 2, "chaos": (ShardChaos(),)},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(InvalidInput):
            ClusterConfig(**kwargs)

    def test_explore_requests_redirected(self):
        config = ClusterConfig(shards=1)
        with ClusterService(config) as cluster:
            with pytest.raises(InvalidInput, match="CostModelService"):
                cluster.submit(
                    ExploreRequest(get_device("xc5vlx110t"), _prms())
                )

    def test_unstarted_cluster_refuses(self):
        cluster = ClusterService(ClusterConfig(shards=1))
        with pytest.raises(Overloaded):
            cluster.submit(EvaluateRequest(_fir(), "xc5vlx110t"))


class TestHappyPath:
    def test_roundtrip_equals_fresh_and_repeat_hits_cache(self, tmp_path):
        config = ClusterConfig(shards=2, cache_dir=str(tmp_path))
        with ClusterService(config) as cluster:
            first = cluster.submit(
                EvaluateRequest(_fir(), "xc5vlx110t")
            ).result(timeout=WAIT_S)
            again = cluster.submit(
                EvaluateRequest(_fir(), "xc5vlx110t")
            ).result(timeout=WAIT_S)
            stats = cluster.stats()
        fresh = evaluate_prm(_fir(), "xc5vlx110t")
        assert first == fresh
        assert again == fresh
        assert stats["cache_hits"] >= 1
        assert stats["completed"] == 2
        assert stats["typed_errors"] == 0

    def test_typed_model_error_crosses_process_boundary(self):
        from repro.core.params import PRMRequirements
        from repro.errors import InfeasiblePlacement

        huge = PRMRequirements(
            name="huge",
            lut_ff_pairs=10**6,
            luts=10**6,
            ffs=10**6,
            dsps=500,
            brams=500,
        )
        with ClusterService(ClusterConfig(shards=1)) as cluster:
            ticket = cluster.submit(EvaluateRequest(huge, "xc5vlx110t"))
            with pytest.raises(InfeasiblePlacement):
                ticket.result(timeout=WAIT_S)
            assert cluster.stats()["typed_errors"] == 1

    def test_unknown_device_rejected_at_submit(self):
        with ClusterService(ClusterConfig(shards=1)) as cluster:
            with pytest.raises(InvalidInput, match="valid choices"):
                cluster.submit(EvaluateRequest(_fir(), "no-such-device"))

    def test_health_snapshot_typed(self):
        with ClusterService(ClusterConfig(shards=2)) as cluster:
            cluster.submit(
                EvaluateRequest(_fir(), "xc5vlx110t")
            ).result(timeout=WAIT_S)
            rows = cluster.health()
        assert len(rows) == 2
        for row in rows:
            assert row["health"] in {"healthy", "degraded", "down"}
            assert row["restarts"] == 0


class TestCoalescing:
    def test_duplicate_inflight_requests_coalesce(self):
        # Slow both shards down so duplicates pile up behind the first.
        chaos = (
            ShardChaos(request_delay_s=0.4),
            ShardChaos(request_delay_s=0.4),
        )
        config = ClusterConfig(shards=2, hedge_after_s=30.0, chaos=chaos)
        with ClusterService(config) as cluster:
            tickets = [
                cluster.submit(EvaluateRequest(_fir(), "xc5vlx110t"))
                for _ in range(6)
            ]
            results = [t.result(timeout=WAIT_S) for t in tickets]
            stats = cluster.stats()
        fresh = evaluate_prm(_fir(), "xc5vlx110t")
        assert all(result == fresh for result in results)
        assert stats["coalesced"] >= 5
        assert stats["completed"] == 6


class TestSupervision:
    def test_crashed_shard_restarts_and_work_completes(self):
        chaos = (ShardChaos(crash_after_requests=1), ShardChaos())
        config = ClusterConfig(
            shards=2, probe_interval_s=0.1, hedge_after_s=1.0, chaos=chaos
        )
        with ClusterService(config) as cluster:
            tickets = [
                cluster.submit(EvaluateRequest(prm, device))
                for prm in _prms()
                for device in ("xc5vlx110t", "xc6vlx75t")
            ]
            results = [t.result(timeout=WAIT_S) for t in tickets]
            stats = cluster.stats()
            rows = cluster.health()
        assert len(results) == 6
        assert stats["typed_errors"] == 0
        assert stats["restarts"] >= 1
        assert sum(row["restarts"] for row in rows) >= 1

    def test_restarted_shard_reattaches_to_warm_cache(self, tmp_path):
        # Shard 0 dies after its first request, but everything computed
        # before the crash keeps being served from the front-end cache.
        chaos = (ShardChaos(crash_after_requests=1), ShardChaos())
        config = ClusterConfig(
            shards=2,
            probe_interval_s=0.1,
            cache_dir=str(tmp_path),
            chaos=chaos,
        )
        with ClusterService(config) as cluster:
            first = cluster.submit(
                EvaluateRequest(_fir(), "xc5vlx110t")
            ).result(timeout=WAIT_S)
            deadline = time.monotonic() + WAIT_S
            while time.monotonic() < deadline:
                if cluster.stats()["restarts"] >= 1 or all(
                    row["restarts"] == 0 and row["health"] == "healthy"
                    for row in cluster.health()
                ):
                    break
                time.sleep(0.05)
            again = cluster.submit(
                EvaluateRequest(_fir(), "xc5vlx110t")
            ).result(timeout=WAIT_S)
            stats = cluster.stats()
        assert first == again
        assert stats["cache_hits"] >= 1

    def test_all_shards_retired_falls_back_inline(self):
        chaos = (ShardChaos(crash_after_requests=0),)
        config = ClusterConfig(
            shards=1, max_restarts=0, probe_interval_s=0.05, chaos=chaos
        )
        with ClusterService(config) as cluster:
            first = cluster.submit(
                EvaluateRequest(_fir(), "xc5vlx110t")
            ).result(timeout=WAIT_S)
            # By now the only shard is dead with no restart budget; new
            # work must be evaluated in-process, still correct and typed.
            second = cluster.submit(
                EvaluateRequest(
                    paper_requirements("mips", "virtex5"), "xc5vlx110t"
                )
            ).result(timeout=WAIT_S)
            stats = cluster.stats()
        assert first == evaluate_prm(_fir(), "xc5vlx110t")
        assert second == evaluate_prm(
            paper_requirements("mips", "virtex5"), "xc5vlx110t"
        )
        assert stats["inline_fallbacks"] >= 1
        assert stats["restarts"] == 0
        assert stats["typed_errors"] == 0


class TestHedging:
    def test_stranded_request_hedges_to_fast_shard(self):
        slow = _routed_shard("xc5vlx110t", 2)
        chaos = [ShardChaos(), ShardChaos()]
        chaos[slow] = ShardChaos(request_delay_s=15.0)
        config = ClusterConfig(
            shards=2,
            probe_interval_s=0.05,
            hedge_after_s=0.2,
            chaos=tuple(chaos),
        )
        with ClusterService(config) as cluster:
            started = time.perf_counter()
            result = cluster.submit(
                EvaluateRequest(_fir(), "xc5vlx110t")
            ).result(timeout=WAIT_S)
            elapsed = time.perf_counter() - started
            stats = cluster.stats()
        assert result == evaluate_prm(_fir(), "xc5vlx110t")
        assert elapsed < 10.0  # did not wait out the slow shard
        assert stats["hedges"] >= 1
        assert stats["hedges_won"] >= 1


class TestBackpressure:
    def test_saturated_cluster_sheds_with_jittered_retry_after(self):
        chaos = (ShardChaos(request_delay_s=5.0),)
        config = ClusterConfig(
            shards=1,
            shard_queue_depth=1,
            hedge_after_s=30.0,
            shed_retry_after_s=0.1,
            shed_retry_jitter=0.5,
            chaos=chaos,
        )
        with ClusterService(config) as cluster:
            # Distinct keys so neither coalesces with the first.
            cluster.submit(EvaluateRequest(_fir(), "xc5vlx110t"))
            with pytest.raises(Overloaded) as excinfo:
                cluster.submit(
                    EvaluateRequest(
                        paper_requirements("mips", "virtex5"), "xc5vlx110t"
                    )
                )
            shed = excinfo.value
            cluster.stop(drain=False)
        assert shed.retryable
        assert 0.1 <= shed.retry_after_s <= 0.1 * 1.5 + 1e-9
        assert shed.queue_depth == 1

    def test_submissions_during_drain_are_rejected(self):
        chaos = (ShardChaos(request_delay_s=1.0),)
        config = ClusterConfig(shards=1, hedge_after_s=30.0, chaos=chaos)
        cluster = ClusterService(config).start()
        import threading

        ticket = cluster.submit(EvaluateRequest(_fir(), "xc5vlx110t"))
        stopper = threading.Thread(
            target=cluster.stop, kwargs={"drain": True}, daemon=True
        )
        stopper.start()
        deadline = time.monotonic() + 10.0
        late_error = None
        while time.monotonic() < deadline:
            try:
                cluster.submit(EvaluateRequest(_fir(), "xc5vlx110t"))
            except Overloaded as err:
                late_error = err
                break
            time.sleep(0.01)
        stopper.join(timeout=WAIT_S)
        assert late_error is not None
        assert ticket.result(timeout=WAIT_S) == evaluate_prm(
            _fir(), "xc5vlx110t"
        )


class TestDurability:
    def test_corrupted_disk_entry_recomputed_not_served(self, tmp_path):
        config = ClusterConfig(
            shards=1, cache_memory_entries=1, cache_dir=str(tmp_path)
        )
        prms = _prms()
        with ClusterService(config) as cluster:
            for prm in prms:
                cluster.submit(
                    EvaluateRequest(prm, "xc5vlx110t")
                ).result(timeout=WAIT_S)
        entries = sorted(tmp_path.glob("*.entry"))
        assert len(entries) == len(prms)
        corrupt_cache_entry(entries[0], rng=random.Random(11))
        # Cold start on the damaged directory: the corrupted entry is
        # quarantined and recomputed; every answer still equals fresh.
        with ClusterService(config) as cluster:
            results = [
                cluster.submit(
                    EvaluateRequest(prm, "xc5vlx110t")
                ).result(timeout=WAIT_S)
                for prm in prms
            ]
            stats = cluster.stats()
        assert results == [
            evaluate_prm(prm, "xc5vlx110t") for prm in prms
        ]
        assert stats["quarantined"] == 1
        assert stats["typed_errors"] == 0


class TestObservability:
    def test_cluster_counters_emitted(self):
        with obs.capture(command="cluster-test") as session:
            with ClusterService(ClusterConfig(shards=1)) as cluster:
                cluster.submit(
                    EvaluateRequest(_fir(), "xc5vlx110t")
                ).result(timeout=WAIT_S)
                cluster.submit(
                    EvaluateRequest(_fir(), "xc5vlx110t")
                ).result(timeout=WAIT_S)
        payload = session.to_dict()
        counters = payload["metrics"]["counters"]
        assert counters["serve.cluster.accepted"] == 2
        assert counters["serve.cluster.completed"] == 2
        assert counters["serve.cluster.cache_hits"] == 1
        spans = [span["name"] for span in payload["spans"]]
        assert spans.count("cluster.dispatch") == 2

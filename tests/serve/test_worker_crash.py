"""Worker-crash recovery in parallel exploration (ISSUE 5 tentpole).

A fault-injecting chunk evaluator — swapped in through the module-level
``_CHUNK_EVALUATOR`` hook — SIGKILLs the pool worker mid-explore.  The
search must absorb the ``BrokenProcessPool``, retry on a fresh pool (or
trip the circuit breaker into the in-process serial fallback) and return
a design list identical to the sequential path.  Only when even the
serial fallback fails may :class:`~repro.errors.BackendBroken` surface.
"""

import multiprocessing
import os
import signal

import pytest

from repro.core import explorer
from repro.devices.catalog import XC5VLX110T
from repro.errors import BackendBroken

from tests.conftest import paper_requirements

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fault injectors are delivered to pool workers via fork",
)

#: Marker-file path for crash-once evaluators; set by each test (the
#: forked worker inherits the value).
_MARKER: str | None = None


def _prms():
    return [
        paper_requirements("fir", "virtex5"),
        paper_requirements("mips", "virtex5"),
        paper_requirements("sdram", "virtex5"),
    ]


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _crash_once_evaluator(device, prms, partitions, rate):
    """Kill the first worker that runs a chunk; behave normally after."""
    if _in_worker() and _MARKER and not os.path.exists(_MARKER):
        with open(_MARKER, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return explorer._evaluate_partition_chunk(device, prms, partitions, rate)


def _always_crash_evaluator(device, prms, partitions, rate):
    """Deterministic killer: every pool round breaks until the breaker trips."""
    if _in_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return explorer._evaluate_partition_chunk(device, prms, partitions, rate)


def _always_raise_evaluator(device, prms, partitions, rate):
    raise RuntimeError("chunk evaluator is broken everywhere")


def _unpicklable_result_evaluator(device, prms, partitions, rate):
    if _in_worker():
        return lambda: None  # cannot cross the process boundary
    return explorer._evaluate_partition_chunk(device, prms, partitions, rate)


def _objectives(designs):
    return [d.objectives for d in designs]


@pytest.fixture()
def serial_designs():
    return explorer.explore(XC5VLX110T, _prms(), mode="exhaustive")


class TestCrashRecovery:
    def test_crash_once_recovers_and_matches_serial(
        self, tmp_path, monkeypatch, serial_designs
    ):
        global _MARKER
        _MARKER = str(tmp_path / "crashed-once")
        monkeypatch.setattr(explorer, "_CHUNK_EVALUATOR", _crash_once_evaluator)
        try:
            parallel = explorer.explore(
                XC5VLX110T, _prms(), mode="exhaustive", workers=2
            )
        finally:
            _MARKER = None
        assert os.path.exists(str(tmp_path / "crashed-once"))  # it did crash
        assert _objectives(parallel) == _objectives(serial_designs)

    def test_deterministic_crasher_trips_breaker_to_serial(
        self, monkeypatch, serial_designs
    ):
        monkeypatch.setattr(
            explorer, "_CHUNK_EVALUATOR", _always_crash_evaluator
        )
        parallel = explorer.explore(
            XC5VLX110T, _prms(), mode="exhaustive", workers=2
        )
        assert _objectives(parallel) == _objectives(serial_designs)

    def test_unpicklable_result_recovers(self, monkeypatch, serial_designs):
        monkeypatch.setattr(
            explorer, "_CHUNK_EVALUATOR", _unpicklable_result_evaluator
        )
        parallel = explorer.explore(
            XC5VLX110T, _prms(), mode="exhaustive", workers=2
        )
        assert _objectives(parallel) == _objectives(serial_designs)

    def test_broken_everywhere_raises_backend_broken(self, monkeypatch):
        monkeypatch.setattr(
            explorer, "_CHUNK_EVALUATOR", _always_raise_evaluator
        )
        with pytest.raises(BackendBroken) as excinfo:
            explorer.explore(XC5VLX110T, _prms(), mode="exhaustive", workers=2)
        error = excinfo.value
        assert error.retryable
        assert error.exit_code == 7
        assert "serial fallback" in str(error)

    def test_recovery_counters_emitted(self, monkeypatch, serial_designs):
        from repro import obs

        monkeypatch.setattr(
            explorer, "_CHUNK_EVALUATOR", _always_crash_evaluator
        )
        with obs.capture(command="crash-test") as session:
            parallel = explorer.explore(
                XC5VLX110T, _prms(), mode="exhaustive", workers=2
            )
        assert _objectives(parallel) == _objectives(serial_designs)
        counters = session.to_dict()["metrics"]["counters"]
        assert counters["explore.worker_crashes"] >= 1
        assert counters["explore.pool_circuit_tripped"] == 1
        assert counters["explore.chunks_serial_fallback"] >= 1

"""CostModelService: backpressure, deadlines, drain, typed failures."""

import threading
import time

import pytest

from repro import obs
from repro.core.params import PRMRequirements
from repro.devices.catalog import XC5VLX110T
from repro.errors import DeadlineExceeded, InvalidInput, Overloaded
from repro.serve import (
    CostModelService,
    EvaluateRequest,
    ExploreRequest,
    ServiceConfig,
    jittered_retry_after,
)

from tests.conftest import paper_requirements

FIR = PRMRequirements(
    name="fir", lut_ff_pairs=1300, luts=1150, ffs=394, dsps=32, brams=0
)


def v5_prms():
    return (
        paper_requirements("fir", "virtex5"),
        paper_requirements("mips", "virtex5"),
        paper_requirements("sdram", "virtex5"),
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"queue_depth": 0},
            {"default_deadline_s": -1.0},
            {"shed_retry_after_s": -0.1},
            {"shed_retry_jitter": -0.1},
            {"shed_retry_jitter": 11.0},
            {"drain_timeout_s": 0.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(InvalidInput):
            ServiceConfig(**kwargs)

    def test_bad_request_type_rejected(self):
        with CostModelService() as service:
            with pytest.raises(InvalidInput):
                service.submit("not a request")

    def test_non_positive_deadline_rejected(self):
        with CostModelService() as service:
            with pytest.raises(InvalidInput):
                service.submit(
                    EvaluateRequest(FIR, "xc5vlx110t", deadline_s=-1.0)
                )

    def test_double_start_rejected(self):
        service = CostModelService()
        service.start()
        try:
            with pytest.raises(InvalidInput):
                service.start()
        finally:
            service.stop()


class TestHappyPath:
    def test_evaluate_roundtrip(self):
        with CostModelService(ServiceConfig(workers=2)) as service:
            ticket = service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
            result = ticket.result(timeout=30)
        assert result.device_name == "xc5vlx110t"
        assert result.bitstream.total_bytes > 0

    def test_explore_roundtrip(self):
        with CostModelService() as service:
            ticket = service.submit(
                ExploreRequest(XC5VLX110T, v5_prms(), mode="exhaustive")
            )
            result = ticket.result(timeout=60)
        assert len(result) >= 1
        assert result.status == "exhausted"

    def test_explore_degrades_under_evaluation_budget(self):
        with CostModelService() as service:
            ticket = service.submit(
                ExploreRequest(
                    XC5VLX110T, v5_prms(), mode="exhaustive", max_evaluations=2
                )
            )
            result = ticket.result(timeout=60)
        assert result.degraded
        assert len(result) >= 1

    def test_typed_model_error_reraised_from_ticket(self):
        with CostModelService() as service:
            ticket = service.submit(EvaluateRequest(FIR, "no-such-device"))
            with pytest.raises(InvalidInput, match="valid choices"):
                ticket.result(timeout=30)

    def test_unstarted_and_stopped_service_refuse(self):
        service = CostModelService()
        with pytest.raises(Overloaded):
            service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
        service.start()
        service.stop()
        with pytest.raises(Overloaded):
            service.submit(EvaluateRequest(FIR, "xc5vlx110t"))


def _block_worker(monkeypatch):
    """Make EvaluateRequest.run block until the returned gate is set."""
    gate = threading.Event()
    started = threading.Event()

    def slow_run(self, remaining_s):
        started.set()
        assert gate.wait(timeout=30)
        return "slow-done"

    monkeypatch.setattr(EvaluateRequest, "run", slow_run)
    return gate, started


class TestBackpressure:
    def test_full_queue_sheds_with_retry_after(self, monkeypatch):
        gate, started = _block_worker(monkeypatch)
        config = ServiceConfig(
            workers=1, queue_depth=1, shed_retry_after_s=0.123
        )
        with CostModelService(config) as service:
            first = service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
            assert started.wait(timeout=30)  # worker busy
            queued = service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
            with pytest.raises(Overloaded) as excinfo:
                service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
            shed = excinfo.value
            assert shed.retryable
            # retry_after_s is jittered upward by at most shed_retry_jitter
            jitter = config.shed_retry_jitter
            assert 0.123 <= shed.retry_after_s <= 0.123 * (1 + jitter) + 1e-9
            assert shed.queue_depth == 1
            gate.set()
            assert first.result(timeout=30) == "slow-done"
            assert queued.result(timeout=30) == "slow-done"

    def test_jittered_retry_after_stays_in_band(self):
        import random

        rng = random.Random(1234)
        for _ in range(200):
            value = jittered_retry_after(0.1, 0.25, rng)
            assert 0.1 <= value <= 0.1 * 1.25

    def test_zero_jitter_is_exact(self):
        assert jittered_retry_after(0.5, 0.0) == 0.5

    def test_deadline_elapsed_in_queue_fails_fast(self, monkeypatch):
        gate, started = _block_worker(monkeypatch)
        with CostModelService(ServiceConfig(workers=1)) as service:
            service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
            assert started.wait(timeout=30)
            doomed = service.submit(
                EvaluateRequest(FIR, "xc5vlx110t", deadline_s=0.01)
            )
            time.sleep(0.05)
            gate.set()
            with pytest.raises(DeadlineExceeded) as excinfo:
                doomed.result(timeout=30)
            assert excinfo.value.retryable
            assert excinfo.value.deadline_s == pytest.approx(0.01)


class TestDrain:
    def test_stop_drains_accepted_work(self):
        with CostModelService(ServiceConfig(workers=2)) as service:
            tickets = [
                service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
                for _ in range(6)
            ]
        # context exit stops with drain=True
        for ticket in tickets:
            assert ticket.result(timeout=30).device_name == "xc5vlx110t"

    def test_stop_without_drain_sheds_queued(self, monkeypatch):
        gate, started = _block_worker(monkeypatch)
        config = ServiceConfig(workers=1, queue_depth=4, drain_timeout_s=5.0)
        service = CostModelService(config).start()
        running = service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
        assert started.wait(timeout=30)
        queued = service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
        threading.Timer(0.1, gate.set).start()
        service.stop(drain=False)
        with pytest.raises(Overloaded, match="stopped"):
            queued.result(timeout=30)
        assert running.result(timeout=30) == "slow-done"


class TestDrainRace:
    def test_submit_during_drain_sheds_instead_of_racing(self, monkeypatch):
        """stop(drain=True) must reject new submissions, not enqueue them."""
        gate, started = _block_worker(monkeypatch)
        config = ServiceConfig(workers=1, queue_depth=8, drain_timeout_s=10.0)
        service = CostModelService(config).start()
        running = service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
        assert started.wait(timeout=30)

        stopping = threading.Event()
        stopped = threading.Event()

        def drain():
            stopping.set()
            service.stop(drain=True)
            stopped.set()

        stopper = threading.Thread(target=drain, daemon=True)
        stopper.start()
        assert stopping.wait(timeout=30)
        # Give stop() time to flip _accepting while the worker is blocked.
        deadline = time.monotonic() + 5.0
        late_error = None
        while time.monotonic() < deadline:
            try:
                service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
            except Overloaded as err:
                late_error = err
                break
            time.sleep(0.01)
        assert late_error is not None, "submit during drain was accepted"
        assert "drain" in late_error.message or "stopped" in late_error.message
        gate.set()
        assert stopped.wait(timeout=30)
        assert running.result(timeout=30) == "slow-done"
        stopper.join(timeout=10)


class TestObservability:
    def test_counters_emitted(self, monkeypatch):
        with obs.capture(command="serve-test") as session:
            with CostModelService(ServiceConfig(workers=1)) as service:
                ok = service.submit(EvaluateRequest(FIR, "xc5vlx110t"))
                bad = service.submit(EvaluateRequest(FIR, "no-such-device"))
                ok.result(timeout=30)
                with pytest.raises(InvalidInput):
                    bad.result(timeout=30)
        counters = session.to_dict()["metrics"]["counters"]
        assert counters["serve.accepted"] == 2
        assert counters["serve.completed"] == 1
        assert counters["serve.errors"] == 1
        assert counters["serve.errors.invalid_input"] == 1

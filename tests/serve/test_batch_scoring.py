"""Batch scoring in the serving layer: coalescing, parity, fallbacks."""

import pytest

from repro.core.api import evaluate_prm
from repro.core.params import PRMRequirements
from repro.errors import InvalidInput
from repro.obs import trace as obs
from repro.serve import (
    CostModelService,
    EvaluateRequest,
    ServiceConfig,
)
from repro.serve.service import _Job, Ticket


def prm(name, pairs, dsps=0, brams=0):
    return PRMRequirements(
        name=name, lut_ff_pairs=pairs, luts=pairs, ffs=pairs // 2,
        dsps=dsps, brams=brams,
    )


PRMS = [prm("a", 800), prm("b", 2600, brams=1), prm("c", 120), prm("d", 5200)]


def make_job(request, deadline_s=None):
    import time

    return _Job(
        request=request,
        ticket=Ticket(),
        enqueued_at=time.monotonic(),
        deadline_s=deadline_s,
    )


class TestConfig:
    def test_max_batch_validated(self):
        with pytest.raises(InvalidInput):
            ServiceConfig(max_batch=0)
        assert ServiceConfig(max_batch=1).max_batch == 1


class TestBatchedResults:
    def test_coalesced_results_match_scalar(self):
        """Single worker + pre-filled queue forces real coalescing."""
        config = ServiceConfig(workers=1, queue_depth=16, max_batch=8)
        service = CostModelService(config)
        tickets = []
        # Submit before starting so the queue holds all requests when the
        # lone worker wakes up and drains them into one batch.
        service._accepting = True
        for p in PRMS:
            tickets.append(service.submit(EvaluateRequest(p, "xc5vlx110t")))
        service._accepting = False
        with obs.capture(command="test") as session:
            service.start()
            results = [t.result(timeout=10.0) for t in tickets]
            service.stop()
        for p, result in zip(PRMS, results):
            assert result == evaluate_prm(p, "xc5vlx110t")
        counters = session.to_dict()["metrics"]["counters"]
        assert counters.get("serve.batch_calls", 0) >= 1
        assert counters.get("serve.batch_coalesced", 0) >= 2

    def test_mixed_devices_still_all_served(self):
        config = ServiceConfig(workers=1, queue_depth=16, max_batch=8)
        service = CostModelService(config)
        requests = [
            EvaluateRequest(PRMS[0], "xc5vlx110t"),
            EvaluateRequest(PRMS[1], "xc6vlx75t"),
            EvaluateRequest(PRMS[2], "xc5vlx110t"),
            EvaluateRequest(PRMS[3], "xc6vlx75t"),
        ]
        service._accepting = True
        tickets = [service.submit(r) for r in requests]
        service._accepting = False
        service.start()
        results = [t.result(timeout=10.0) for t in tickets]
        service.stop()
        for request, result in zip(requests, results):
            assert result == evaluate_prm(request.prm, request.device)

    def test_per_request_controller_rates_preserved(self):
        config = ServiceConfig(workers=1, queue_depth=16, max_batch=8)
        service = CostModelService(config)
        requests = [
            EvaluateRequest(PRMS[0], "xc5vlx110t", controller_bytes_per_s=400e6),
            EvaluateRequest(PRMS[1], "xc5vlx110t", controller_bytes_per_s=100e6),
        ]
        service._accepting = True
        tickets = [service.submit(r) for r in requests]
        service._accepting = False
        service.start()
        results = [t.result(timeout=10.0) for t in tickets]
        service.stop()
        assert results[1].reconfig.seconds == pytest.approx(
            evaluate_prm(
                PRMS[1], "xc5vlx110t", controller_bytes_per_s=100e6
            ).reconfig.seconds
        )

    def test_max_batch_1_disables_coalescing(self):
        config = ServiceConfig(workers=1, max_batch=1)
        with obs.capture(command="test") as session:
            with CostModelService(config) as service:
                ticket = service.submit(EvaluateRequest(PRMS[0], "xc5vlx110t"))
                assert ticket.result(timeout=10.0) == evaluate_prm(
                    PRMS[0], "xc5vlx110t"
                )
        counters = session.to_dict()["metrics"]["counters"]
        assert counters.get("serve.batch_calls", 0) == 0

    def test_numpy_missing_falls_back_to_scalar(self, monkeypatch):
        from repro.core import batch as batch_engine

        monkeypatch.setattr(batch_engine, "np", None)
        config = ServiceConfig(workers=1, max_batch=8)
        service = CostModelService(config)
        service._accepting = True
        tickets = [
            service.submit(EvaluateRequest(p, "xc5vlx110t")) for p in PRMS[:2]
        ]
        service._accepting = False
        service.start()
        results = [t.result(timeout=10.0) for t in tickets]
        service.stop()
        monkeypatch.undo()
        for p, result in zip(PRMS[:2], results):
            assert result == evaluate_prm(p, "xc5vlx110t")


class TestBatchErrorParity:
    def test_infeasible_member_gets_scalar_typed_error(self):
        """One impossible PRM in a batch fails alone, with the scalar
        error; its batch-mates still succeed."""
        from repro.core.placement_search import PlacementNotFoundError

        impossible = prm("huge", 10**7)
        config = ServiceConfig(workers=1, queue_depth=16, max_batch=8)
        service = CostModelService(config)
        service._accepting = True
        good = service.submit(EvaluateRequest(PRMS[0], "xc5vlx110t"))
        bad = service.submit(EvaluateRequest(impossible, "xc5vlx110t"))
        service._accepting = False
        service.start()
        assert good.result(timeout=10.0) == evaluate_prm(PRMS[0], "xc5vlx110t")
        with pytest.raises(PlacementNotFoundError):
            bad.result(timeout=10.0)
        service.stop()

    def test_expired_deadline_rejected_inside_batch(self):
        from repro.errors import DeadlineExceeded

        service = CostModelService(ServiceConfig(workers=1, max_batch=8))
        expired = make_job(
            EvaluateRequest(PRMS[0], "xc5vlx110t"), deadline_s=1e-9
        )
        live = make_job(EvaluateRequest(PRMS[1], "xc5vlx110t"))
        import time

        time.sleep(0.01)
        service._run_batch([expired, live])
        with pytest.raises(DeadlineExceeded):
            expired.ticket.result(timeout=0.1)
        assert live.ticket.result(timeout=0.1) == evaluate_prm(
            PRMS[1], "xc5vlx110t"
        )

    def test_whole_batch_engine_failure_falls_back(self, monkeypatch):
        import repro.serve.service as service_module

        def boom(*args, **kwargs):
            raise RuntimeError("batch engine exploded")

        monkeypatch.setattr(service_module, "batch_evaluate", boom)
        service = CostModelService(ServiceConfig(workers=1, max_batch=8))
        jobs = [
            make_job(EvaluateRequest(p, "xc5vlx110t")) for p in PRMS[:2]
        ]
        with obs.capture(command="test") as session:
            service._run_batch(jobs)
        for job, p in zip(jobs, PRMS[:2]):
            assert job.ticket.result(timeout=0.1) == evaluate_prm(
                p, "xc5vlx110t"
            )
        counters = session.to_dict()["metrics"]["counters"]
        assert counters.get("serve.batch_fallbacks", 0) == 1


class TestCoalesceMechanics:
    def test_stop_sentinel_consumed_during_drain_still_stops(self):
        """A worker that swallows a _STOP while coalescing must exit."""
        config = ServiceConfig(workers=1, queue_depth=16, max_batch=8)
        service = CostModelService(config)
        service._accepting = True
        tickets = [
            service.submit(EvaluateRequest(p, "xc5vlx110t")) for p in PRMS
        ]
        service._accepting = False
        service.start()
        service.stop()  # enqueues one _STOP; worker may drain it mid-batch
        for p, ticket in zip(PRMS, tickets):
            assert ticket.result(timeout=10.0) == evaluate_prm(p, "xc5vlx110t")
        assert not service._threads

    def test_explore_requests_left_out_of_batches(self):
        from repro.devices.catalog import XC5VLX110T
        from repro.serve import ExploreRequest

        config = ServiceConfig(workers=1, queue_depth=16, max_batch=8)
        service = CostModelService(config)
        service._accepting = True
        ev = service.submit(EvaluateRequest(PRMS[0], "xc5vlx110t"))
        ex = service.submit(ExploreRequest(XC5VLX110T, tuple(PRMS[:2])))
        ev2 = service.submit(EvaluateRequest(PRMS[2], "xc5vlx110t"))
        service._accepting = False
        service.start()
        assert ev.result(timeout=10.0) == evaluate_prm(PRMS[0], "xc5vlx110t")
        assert ev2.result(timeout=10.0) == evaluate_prm(PRMS[2], "xc5vlx110t")
        front = ex.result(timeout=30.0)
        assert len(front) >= 1
        service.stop()

"""Unit tests for the Device fabric model and Region geometry."""

import pytest

from repro.devices.fabric import Device, Region, column_kind_counts
from repro.devices.family import VIRTEX5
from repro.devices.resources import ColumnKind, ResourceVector

C, D, B, I, K = (
    ColumnKind.CLB,
    ColumnKind.DSP,
    ColumnKind.BRAM,
    ColumnKind.IOB,
    ColumnKind.CLK,
)


@pytest.fixture
def tiny_device():
    """A 2-row toy device: I C C D C B C K C I."""
    return Device(
        name="toy",
        family=VIRTEX5,
        rows=2,
        columns=(I, C, C, D, C, B, C, K, C, I),
    )


class TestRegion:
    def test_spans(self):
        region = Region(row=2, col=3, height=2, width=4)
        assert list(region.row_span) == [2, 3]
        assert list(region.col_span) == [3, 4, 5, 6]

    def test_size_eq7(self):
        assert Region(1, 1, 5, 3).size == 15  # FIR/V5's PRR

    def test_one_based_validation(self):
        with pytest.raises(ValueError):
            Region(0, 1, 1, 1)
        with pytest.raises(ValueError):
            Region(1, 0, 1, 1)

    def test_positive_extent_validation(self):
        with pytest.raises(ValueError):
            Region(1, 1, 0, 1)

    def test_overlaps_true(self):
        assert Region(1, 1, 2, 2).overlaps(Region(2, 2, 2, 2))

    def test_overlaps_false_disjoint_cols(self):
        assert not Region(1, 1, 2, 2).overlaps(Region(1, 3, 2, 2))

    def test_overlaps_false_disjoint_rows(self):
        assert not Region(1, 1, 2, 2).overlaps(Region(3, 1, 2, 2))

    def test_overlap_is_symmetric(self):
        a, b = Region(1, 1, 3, 3), Region(2, 3, 1, 1)
        assert a.overlaps(b) == b.overlaps(a)


class TestColumnKindCounts:
    def test_counts(self):
        assert column_kind_counts((C, C, D, B)) == ResourceVector(2, 1, 1)

    def test_rejects_iob(self):
        with pytest.raises(ValueError, match="cannot be part of a PRR"):
            column_kind_counts((C, I))


class TestDeviceBasics:
    def test_validation(self, tiny_device):
        with pytest.raises(ValueError):
            Device("x", VIRTEX5, rows=0, columns=(C,))
        with pytest.raises(ValueError):
            Device("x", VIRTEX5, rows=1, columns=())

    def test_column_kind_one_based(self, tiny_device):
        assert tiny_device.column_kind(1) is I
        assert tiny_device.column_kind(4) is D
        with pytest.raises(IndexError):
            tiny_device.column_kind(0)
        with pytest.raises(IndexError):
            tiny_device.column_kind(11)

    def test_columns_of_kind(self, tiny_device):
        assert tiny_device.columns_of_kind(C) == (2, 3, 5, 7, 9)
        assert tiny_device.columns_of_kind(D) == (4,)

    def test_single_dsp_column_detection(self, tiny_device):
        assert tiny_device.has_single_dsp_column
        assert tiny_device.dsp_column_count == 1

    def test_total_resources(self, tiny_device):
        # 5 CLB cols * 20 * 2 rows, 1 DSP col * 8 * 2, 1 BRAM col * 4 * 2.
        assert tiny_device.total_resources == ResourceVector(200, 16, 8)
        assert tiny_device.total_luts == 1600
        assert tiny_device.total_ffs == 1600

    def test_layout_string(self, tiny_device):
        assert tiny_device.layout_string() == "ICCDCBCKCI"

    def test_summary_mentions_counts(self, tiny_device):
        text = tiny_device.summary()
        assert "toy" in text and "DSPs=16" in text


class TestRegionQueries:
    def test_region_column_kinds(self, tiny_device):
        region = Region(row=1, col=2, height=1, width=3)
        assert tiny_device.region_column_kinds(region) == (C, C, D)

    def test_region_column_counts(self, tiny_device):
        # Columns 2..6 are C, C, D, C, B.
        region = Region(row=1, col=2, height=2, width=5)
        assert tiny_device.region_column_counts(region) == ResourceVector(3, 1, 1)

    def test_region_counts_reject_iob(self, tiny_device):
        region = Region(row=1, col=1, height=1, width=2)
        with pytest.raises(ValueError):
            tiny_device.region_column_counts(region)

    def test_region_resources_eq8_11_12(self, tiny_device):
        region = Region(row=1, col=2, height=2, width=5)
        assert tiny_device.region_resources(region) == ResourceVector(
            clb=2 * 3 * 20, dsp=2 * 1 * 8, bram=2 * 1 * 4
        )

    def test_region_out_of_bounds_rows(self, tiny_device):
        with pytest.raises(ValueError, match="exceed device rows"):
            tiny_device.region_column_kinds(Region(row=2, col=2, height=2, width=1))

    def test_region_out_of_bounds_cols(self, tiny_device):
        with pytest.raises(ValueError, match="exceed device columns"):
            tiny_device.region_column_kinds(Region(row=1, col=9, height=1, width=5))

    def test_is_valid_prr(self, tiny_device):
        assert tiny_device.is_valid_prr(Region(row=1, col=2, height=2, width=3))
        assert not tiny_device.is_valid_prr(Region(row=1, col=1, height=1, width=1))
        assert not tiny_device.is_valid_prr(Region(row=1, col=7, height=1, width=2))
        assert not tiny_device.is_valid_prr(Region(row=2, col=2, height=2, width=1))


class TestWindowScanning:
    def test_iter_windows_count(self, tiny_device):
        windows = list(tiny_device.iter_windows(3))
        assert len(windows) == 8
        assert windows[0] == (1, (I, C, C))

    def test_iter_windows_width_validation(self, tiny_device):
        with pytest.raises(ValueError):
            list(tiny_device.iter_windows(0))

    def test_find_column_window_exact_match(self, tiny_device):
        # 2 CLB + 1 DSP: window CCD starts at column 2.
        assert tiny_device.find_column_window(ResourceVector(2, 1, 0)) == 2

    def test_find_column_window_any_order(self, tiny_device):
        # 1 CLB + 1 BRAM: window CB starts at column 5 (C at 5, B at 6).
        assert tiny_device.find_column_window(ResourceVector(1, 0, 1)) == 5

    def test_find_column_window_start_col(self, tiny_device):
        # Only-CLB width-1 windows: 2,3,5,7,9; skipping below 6 gives 7.
        assert (
            tiny_device.find_column_window(ResourceVector(1, 0, 0), start_col=6) == 7
        )

    def test_find_column_window_none(self, tiny_device):
        # 3 contiguous CLB columns do not exist in the toy layout.
        assert tiny_device.find_column_window(ResourceVector(3, 0, 0)) is None

    def test_find_column_window_rejects_empty(self, tiny_device):
        with pytest.raises(ValueError):
            tiny_device.find_column_window(ResourceVector())

    def test_window_never_spans_clk(self, tiny_device):
        # C K C around column 8 would match 2 CLBs otherwise.
        assert tiny_device.find_column_window(ResourceVector(2, 0, 0)) == 2
        found = []
        start = 1
        while True:
            col = tiny_device.find_column_window(
                ResourceVector(2, 0, 0), start_col=start
            )
            if col is None:
                break
            found.append(col)
            start = col + 1
        assert found == [2]  # only the C,C at 2-3; never across K or I

"""Unit tests for FAR encoding and frame accounting."""

import pytest

from repro.devices.catalog import XC5VLX110T
from repro.devices.fabric import Region
from repro.devices.frames import (
    BLOCK_TYPE_BRAM_CONTENT,
    BLOCK_TYPE_CONFIG,
    FrameAddress,
    frames_in_column,
    iter_region_frame_addresses,
    region_frame_counts,
)
from repro.devices.resources import ColumnKind


class TestFrameAddress:
    def test_encode_decode_roundtrip(self):
        far = FrameAddress(block_type=1, row=7, major=45, minor=120)
        assert FrameAddress.decode(far.encode()) == far

    def test_encode_zero(self):
        assert FrameAddress(0, 0, 0, 0).encode() == 0

    def test_field_bounds(self):
        with pytest.raises(ValueError):
            FrameAddress(block_type=8, row=0, major=0, minor=0)
        with pytest.raises(ValueError):
            FrameAddress(block_type=0, row=32, major=0, minor=0)
        with pytest.raises(ValueError):
            FrameAddress(block_type=0, row=0, major=256, minor=0)
        with pytest.raises(ValueError):
            FrameAddress(block_type=0, row=0, major=0, minor=128)

    def test_decode_rejects_wide_word(self):
        with pytest.raises(ValueError):
            FrameAddress.decode(1 << 32)

    def test_next_minor(self):
        far = FrameAddress(0, 1, 2, 3)
        assert far.next_minor().minor == 4
        assert far.next_minor().major == 2

    def test_fields_do_not_alias(self):
        a = FrameAddress(block_type=1, row=0, major=0, minor=0).encode()
        b = FrameAddress(block_type=0, row=1, major=0, minor=0).encode()
        c = FrameAddress(block_type=0, row=0, major=1, minor=0).encode()
        d = FrameAddress(block_type=0, row=0, major=0, minor=1).encode()
        assert len({a, b, c, d}) == 4


class TestFramesInColumn:
    def test_clb_column(self):
        clb_col = XC5VLX110T.columns_of_kind(ColumnKind.CLB)[0]
        assert frames_in_column(XC5VLX110T, clb_col, BLOCK_TYPE_CONFIG) == 36
        assert frames_in_column(XC5VLX110T, clb_col, BLOCK_TYPE_BRAM_CONTENT) == 0

    def test_bram_column(self):
        bram_col = XC5VLX110T.columns_of_kind(ColumnKind.BRAM)[0]
        assert frames_in_column(XC5VLX110T, bram_col, BLOCK_TYPE_CONFIG) == 30
        assert (
            frames_in_column(XC5VLX110T, bram_col, BLOCK_TYPE_BRAM_CONTENT) == 128
        )

    def test_unknown_block_type(self):
        with pytest.raises(ValueError):
            frames_in_column(XC5VLX110T, 2, 5)


class TestRegionFrameCounts:
    def test_mips_prr_counts(self):
        # MIPS/V5: 17 CLB + 1 DSP + 2 BRAM -> 17*36 + 28 + 2*30 = 700 config
        # frames and 2*128 = 256 BRAM content frames per row.
        from repro.core import find_prr
        from tests.conftest import paper_requirements

        placed = find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))
        counts = region_frame_counts(XC5VLX110T, placed.region)
        assert counts.config_frames == 700
        assert counts.bram_content_frames == 256
        assert counts.total == 956

    def test_iter_addresses_order_and_count(self):
        clb_col = XC5VLX110T.columns_of_kind(ColumnKind.CLB)[0]
        region = Region(row=2, col=clb_col, height=2, width=1)
        addresses = list(
            iter_region_frame_addresses(XC5VLX110T, region, BLOCK_TYPE_CONFIG)
        )
        assert len(addresses) == 2 * 36
        # Row-major ordering, minors increasing within a column.
        assert addresses[0].row == 1 and addresses[0].minor == 0
        assert addresses[35].minor == 35
        assert addresses[36].row == 2

    def test_iter_bram_content_skips_clb_columns(self):
        clb_col = XC5VLX110T.columns_of_kind(ColumnKind.CLB)[0]
        region = Region(row=1, col=clb_col, height=1, width=1)
        assert (
            list(
                iter_region_frame_addresses(
                    XC5VLX110T, region, BLOCK_TYPE_BRAM_CONTENT
                )
            )
            == []
        )

"""Unit tests for resource kinds and ResourceVector arithmetic."""

import pytest

from repro.devices.resources import (
    PRR_COLUMN_KINDS,
    ColumnKind,
    ResourceVector,
)


class TestColumnKind:
    def test_reconfigurable_kinds(self):
        assert ColumnKind.CLB.reconfigurable
        assert ColumnKind.DSP.reconfigurable
        assert ColumnKind.BRAM.reconfigurable

    def test_non_reconfigurable_kinds(self):
        assert not ColumnKind.IOB.reconfigurable
        assert not ColumnKind.CLK.reconfigurable

    def test_prr_column_kinds_order(self):
        assert PRR_COLUMN_KINDS == (
            ColumnKind.CLB,
            ColumnKind.DSP,
            ColumnKind.BRAM,
        )

    def test_value_roundtrip(self):
        for kind in ColumnKind:
            assert ColumnKind(kind.value) is kind


class TestResourceVectorConstruction:
    def test_defaults_to_zero(self):
        vec = ResourceVector()
        assert (vec.clb, vec.dsp, vec.bram) == (0, 0, 0)
        assert vec.is_zero()

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ResourceVector(clb=-1)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            ResourceVector(clb=1.5)  # type: ignore[arg-type]

    def test_from_mapping_with_kinds(self):
        vec = ResourceVector.from_mapping({ColumnKind.CLB: 3, ColumnKind.DSP: 1})
        assert vec == ResourceVector(clb=3, dsp=1)

    def test_from_mapping_with_strings(self):
        vec = ResourceVector.from_mapping({"clb": 2, "bram": 4})
        assert vec == ResourceVector(clb=2, bram=4)

    def test_from_mapping_rejects_iob(self):
        with pytest.raises(ValueError, match="not a PRR resource"):
            ResourceVector.from_mapping({ColumnKind.IOB: 1})

    def test_as_dict(self):
        assert ResourceVector(clb=1, dsp=2, bram=3).as_dict() == {
            "clb": 1,
            "dsp": 2,
            "bram": 3,
        }

    def test_get(self):
        vec = ResourceVector(clb=5, dsp=6, bram=7)
        assert vec.get(ColumnKind.CLB) == 5
        assert vec.get(ColumnKind.DSP) == 6
        assert vec.get(ColumnKind.BRAM) == 7

    def test_get_rejects_clk(self):
        with pytest.raises(ValueError):
            ResourceVector().get(ColumnKind.CLK)


class TestResourceVectorArithmetic:
    def test_add(self):
        assert ResourceVector(1, 2, 3) + ResourceVector(4, 5, 6) == ResourceVector(
            5, 7, 9
        )

    def test_sub(self):
        assert ResourceVector(4, 5, 6) - ResourceVector(1, 2, 3) == ResourceVector(
            3, 3, 3
        )

    def test_sub_below_zero_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector() - ResourceVector(clb=1)

    def test_scalar_multiplication(self):
        assert 3 * ResourceVector(1, 2, 0) == ResourceVector(3, 6, 0)
        assert ResourceVector(1, 2, 0) * 3 == ResourceVector(3, 6, 0)

    def test_ceil_div_exact(self):
        got = ResourceVector(40, 16, 8).ceil_div(ResourceVector(20, 8, 4))
        assert got == ResourceVector(2, 2, 2)

    def test_ceil_div_rounds_up(self):
        got = ResourceVector(41, 1, 0).ceil_div(ResourceVector(20, 8, 4))
        assert got == ResourceVector(3, 1, 0)

    def test_ceil_div_zero_capacity_with_zero_need(self):
        got = ResourceVector(10, 0, 0).ceil_div(ResourceVector(20, 0, 0))
        assert got == ResourceVector(1, 0, 0)

    def test_ceil_div_zero_capacity_with_need_raises(self):
        with pytest.raises(ZeroDivisionError):
            ResourceVector(0, 5, 0).ceil_div(ResourceVector(20, 0, 4))

    def test_dominates(self):
        assert ResourceVector(2, 2, 2).dominates(ResourceVector(1, 2, 0))
        assert not ResourceVector(2, 2, 2).dominates(ResourceVector(3, 0, 0))

    def test_max(self):
        assert ResourceVector(1, 5, 0).max(ResourceVector(3, 2, 1)) == ResourceVector(
            3, 5, 1
        )

    def test_elementwise_max_empty(self):
        assert ResourceVector.elementwise_max([]) == ResourceVector()

    def test_elementwise_max_many(self):
        vecs = [ResourceVector(1, 0, 9), ResourceVector(5, 2, 0)]
        assert ResourceVector.elementwise_max(vecs) == ResourceVector(5, 2, 9)

    def test_total(self):
        assert ResourceVector(17, 1, 2).total == 20  # MIPS/V5's W

    def test_iter_order(self):
        assert list(ResourceVector(1, 2, 3)) == [1, 2, 3]

    def test_hashable_and_frozen(self):
        vec = ResourceVector(1, 2, 3)
        assert {vec: "x"}[ResourceVector(1, 2, 3)] == "x"
        with pytest.raises(AttributeError):
            vec.clb = 5  # type: ignore[misc]

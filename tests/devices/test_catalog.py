"""Unit tests for the device catalog and layout parsing."""

import pytest

from repro.devices.catalog import (
    DEVICES,
    XC4VLX60,
    XC5VLX50T,
    XC5VLX110T,
    XC6SLX45,
    XC6VLX75T,
    XC7Z020,
    get_device,
    make_device,
    parse_layout,
)
from repro.devices.family import VIRTEX5
from repro.devices.resources import ColumnKind


class TestParseLayout:
    def test_single_letters(self):
        assert parse_layout("I C D B K") == (
            ColumnKind.IOB,
            ColumnKind.CLB,
            ColumnKind.DSP,
            ColumnKind.BRAM,
            ColumnKind.CLK,
        )

    def test_run_length(self):
        assert parse_layout("C*3") == (ColumnKind.CLB,) * 3

    def test_commas_allowed(self):
        assert parse_layout("C, D") == (ColumnKind.CLB, ColumnKind.DSP)

    def test_bad_token(self):
        with pytest.raises(ValueError, match="bad layout token"):
            parse_layout("C X")

    def test_empty_spec(self):
        with pytest.raises(ValueError):
            parse_layout("   ")


class TestEvaluationDevices:
    def test_lx110t_row_count(self):
        # "the Virtex-5 LX110T has 8 rows"
        assert XC5VLX110T.rows == 8

    def test_lx75t_row_count(self):
        # "the Virtex-6 LX75T has 3 rows"
        assert XC6VLX75T.rows == 3

    def test_lx110t_single_dsp_column(self):
        # "the Virtex-5 LX110T has only one DSP column in the device fabric"
        assert XC5VLX110T.has_single_dsp_column

    def test_lx75t_multiple_dsp_columns(self):
        assert not XC6VLX75T.has_single_dsp_column
        assert XC6VLX75T.dsp_column_count == 6

    def test_lx110t_slice_count_matches_real_part(self):
        # Real XC5VLX110T: 17,280 slices = 8,640 CLBs.
        assert XC5VLX110T.total_resources.clb == 8640

    def test_lx110t_dsp_count_matches_real_part(self):
        # Real XC5VLX110T: 64 DSP48E slices.
        assert XC5VLX110T.total_resources.dsp == 64

    def test_lx75t_dsp_count_matches_real_part(self):
        # Real XC6VLX75T: 288 DSP48E1 slices.
        assert XC6VLX75T.total_resources.dsp == 288

    def test_layouts_bounded_by_iobs(self):
        for device in (XC5VLX110T, XC6VLX75T):
            assert device.columns[0] is ColumnKind.IOB
            assert device.columns[-1] is ColumnKind.IOB

    def test_each_device_has_one_clk_column(self):
        for device in DEVICES.values():
            assert device.count_columns(ColumnKind.CLK) == 1


class TestCatalog:
    def test_all_devices_present(self):
        assert set(DEVICES) == {
            "xc5vlx110t",
            "xc6vlx75t",
            "xc5vlx50t",
            "xc4vlx60",
            "xc7z020",
            "xc6slx45",
        }

    def test_get_device_case_insensitive(self):
        assert get_device("XC5VLX110T") is XC5VLX110T

    def test_get_device_unknown(self):
        with pytest.raises(KeyError):
            get_device("xc7v2000t")

    def test_families_assigned(self):
        assert XC4VLX60.family.name == "virtex4"
        assert XC5VLX50T.family.name == "virtex5"
        assert XC7Z020.family.name == "series7"
        assert XC6SLX45.family.name == "spartan6"

    def test_make_device(self):
        device = make_device("custom", VIRTEX5, rows=2, layout="I C*4 D C*4 I")
        assert device.rows == 2
        assert device.count_columns(ColumnKind.CLB) == 8
        assert device.has_single_dsp_column

"""Unit tests for device-family constants (paper Tables II and IV)."""

import dataclasses

import pytest

from repro.devices.family import (
    FAMILIES,
    SERIES7,
    SPARTAN6,
    VIRTEX4,
    VIRTEX5,
    VIRTEX6,
    DeviceFamily,
    get_family,
)
from repro.devices.resources import ColumnKind, ResourceVector


class TestTable2Constants:
    """Table II: CLB_col/DSP_col/BRAM_col/LUT_CLB/FF_CLB per family."""

    def test_virtex5_row_geometry(self):
        # Paper prose: "a CLB column has 20 CLBs, a DSP column has 8 DSPs,
        # and a BRAM column has 4 BRAMs" per row.
        assert VIRTEX5.clb_per_col == 20
        assert VIRTEX5.dsp_per_col == 8
        assert VIRTEX5.bram_per_col == 4

    def test_virtex5_clb_contents(self):
        # "Each CLB contains a pair of slices and each slice contains 4
        # look-up tables (LUTs) and 4 FFs."
        assert VIRTEX5.luts_per_clb == 8
        assert VIRTEX5.ffs_per_clb == 8

    def test_virtex6_row_geometry(self):
        assert VIRTEX6.clb_per_col == 40
        assert VIRTEX6.dsp_per_col == 16
        assert VIRTEX6.bram_per_col == 8

    def test_virtex6_has_16_ffs_per_clb(self):
        assert VIRTEX6.luts_per_clb == 8
        assert VIRTEX6.ffs_per_clb == 16

    def test_virtex4_row_geometry(self):
        assert VIRTEX4.clb_per_col == 16
        assert VIRTEX4.dsp_per_col == 8
        assert VIRTEX4.bram_per_col == 4


class TestTable4Constants:
    """Table IV: frame constants per family."""

    def test_virtex5_frames_per_column(self):
        # Paper prose: "CLB, DSP, BRAM, IOB, and CLK columns have 36, 28,
        # 30, 54, and 4 configuration frames, respectively."
        assert VIRTEX5.cf_clb == 36
        assert VIRTEX5.cf_dsp == 28
        assert VIRTEX5.cf_bram == 30
        assert VIRTEX5.cf_iob == 54
        assert VIRTEX5.cf_clk == 4

    def test_virtex5_bram_data_frames(self):
        # "Each BRAM column requires 128 data frames for BRAM
        # initialization."
        assert VIRTEX5.df_bram == 128

    def test_virtex5_frame_size(self):
        # "a frame contains 41 32-bit words"
        assert VIRTEX5.frame_words == 41
        assert VIRTEX5.bytes_per_word == 4
        assert VIRTEX5.frame_bytes == 164

    def test_virtex6_frame_size(self):
        assert VIRTEX6.frame_words == 81

    def test_spartan6_uses_16_bit_words(self):
        # "in other devices, such as Spartan-3/6 devices, words are 16-bit"
        assert SPARTAN6.bytes_per_word == 2

    def test_header_constants_shared(self):
        for family in (VIRTEX4, VIRTEX5, VIRTEX6):
            assert family.initial_words == 16
            assert family.final_words == 14
            assert family.far_fdri_words == 5


class TestFamilyHelpers:
    def test_per_column_resources(self):
        assert VIRTEX5.per_column_resources == ResourceVector(20, 8, 4)

    def test_resources_per_column_kind(self):
        assert VIRTEX6.resources_per_column(ColumnKind.DSP) == 16

    def test_resources_per_column_rejects_iob(self):
        with pytest.raises(ValueError):
            VIRTEX5.resources_per_column(ColumnKind.IOB)

    def test_config_frames_all_kinds(self):
        assert VIRTEX5.config_frames(ColumnKind.CLB) == 36
        assert VIRTEX5.config_frames(ColumnKind.IOB) == 54
        assert VIRTEX5.config_frames(ColumnKind.CLK) == 4

    def test_clbs_for_lut_ff_pairs_eq1(self):
        # Eq. (1) with the paper's values.
        assert VIRTEX5.clbs_for_lut_ff_pairs(1300) == 163
        assert VIRTEX5.clbs_for_lut_ff_pairs(2617) == 328
        assert VIRTEX5.clbs_for_lut_ff_pairs(332) == 42
        assert VIRTEX6.clbs_for_lut_ff_pairs(1467) == 184
        assert VIRTEX6.clbs_for_lut_ff_pairs(3239) == 405
        assert VIRTEX6.clbs_for_lut_ff_pairs(385) == 49

    def test_clbs_for_zero_pairs(self):
        assert VIRTEX5.clbs_for_lut_ff_pairs(0) == 0

    def test_clbs_for_negative_rejected(self):
        with pytest.raises(ValueError):
            VIRTEX5.clbs_for_lut_ff_pairs(-1)

    def test_lut_ff_conversions(self):
        assert VIRTEX5.luts_in_clbs(200) == 1600
        assert VIRTEX5.ffs_in_clbs(200) == 1600
        assert VIRTEX6.ffs_in_clbs(200) == 3200


class TestRegistry:
    def test_all_families_registered(self):
        assert set(FAMILIES) == {
            "virtex4",
            "virtex5",
            "virtex6",
            "series7",
            "spartan6",
        }

    def test_get_family_case_insensitive(self):
        assert get_family("Virtex-5") is VIRTEX5
        assert get_family("VIRTEX_6") is VIRTEX6

    def test_get_family_unknown(self):
        with pytest.raises(KeyError, match="unknown device family"):
            get_family("stratix10")

    def test_families_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            VIRTEX5.cf_clb = 99  # type: ignore[misc]

    def test_custom_family_validation(self):
        with pytest.raises(ValueError, match="must be positive"):
            DeviceFamily(
                name="bad",
                clb_per_col=0,
                dsp_per_col=8,
                bram_per_col=4,
                luts_per_clb=8,
                ffs_per_clb=8,
                cf_clb=36,
                cf_dsp=28,
                cf_bram=30,
                df_bram=128,
                frame_words=41,
                initial_words=16,
                final_words=14,
                far_fdri_words=5,
                bytes_per_word=4,
            )

    def test_series7_exists_for_portability(self):
        assert SERIES7.frame_words == 101
        assert SERIES7.clb_per_col == 50

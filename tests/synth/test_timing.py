"""Tests for the static timing model."""

import pytest

from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.devices.fabric import Region
from repro.synth.library import library_for
from repro.synth.netlist import (
    Adder,
    LogicCloud,
    Module,
    Mux,
    Netlist,
)
from repro.synth.timing import estimate_timing, logic_levels
from repro.workloads import build_fir, build_mips, build_sdram

from tests.conftest import paper_requirements

V5LIB = library_for(XC5VLX110T.family)


def netlist_of(*components):
    top = Module("top")
    for component in components:
        top.add(component)
    return Netlist("t", top)


class TestLogicLevels:
    def test_single_lut_is_one_level(self):
        assert logic_levels(netlist_of(LogicCloud(fanin=6, width=1)), V5LIB) == 1

    def test_wide_fanin_deepens(self):
        shallow = logic_levels(netlist_of(LogicCloud(fanin=6, width=1)), V5LIB)
        deep = logic_levels(netlist_of(LogicCloud(fanin=30, width=1)), V5LIB)
        assert deep > shallow

    def test_worst_component_dominates(self):
        combined = netlist_of(
            LogicCloud(fanin=30, width=1), Adder(width=8), Mux(ways=4, width=8)
        )
        assert logic_levels(combined, V5LIB) == logic_levels(
            netlist_of(LogicCloud(fanin=30, width=1)), V5LIB
        )

    def test_wide_adders_cost_more(self):
        assert logic_levels(netlist_of(Adder(width=32)), V5LIB) == 2
        assert logic_levels(netlist_of(Adder(width=8)), V5LIB) == 1

    def test_paper_prms_have_plausible_depth(self):
        for builder in (build_fir, build_mips, build_sdram):
            levels = logic_levels(builder(XC5VLX110T.family), V5LIB)
            assert 1 <= levels <= 8


class TestEstimateTiming:
    @pytest.fixture(scope="class")
    def mips_case(self):
        netlist = build_mips(XC5VLX110T.family)
        placed = find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))
        return netlist, placed.region

    def test_frequency_plausible(self, mips_case):
        netlist, region = mips_case
        timing = estimate_timing(netlist, XC5VLX110T, region)
        # Virtex-5 soft MIPS cores run ~80-200 MHz.
        assert 50 < timing.fmax_mhz < 350

    def test_oversized_prr_is_slower(self, mips_case):
        """The Section I claim: oversized PRRs impose longer routing
        delays."""
        netlist, region = mips_case
        right_sized = estimate_timing(netlist, XC5VLX110T, region)
        oversized_region = Region(
            row=region.row,
            col=region.col,
            height=min(XC5VLX110T.rows, region.height + 5),
            width=region.width,
        )
        oversized = estimate_timing(
            netlist, XC5VLX110T, oversized_region, pair_utilization=0.2
        )
        assert oversized.critical_path_s > right_sized.critical_path_s

    def test_congestion_slows(self, mips_case):
        netlist, region = mips_case
        sparse = estimate_timing(
            netlist, XC5VLX110T, region, pair_utilization=0.3
        )
        dense = estimate_timing(
            netlist, XC5VLX110T, region, pair_utilization=0.97
        )
        assert dense.critical_path_s > sparse.critical_path_s
        assert dense.congestion_factor > sparse.congestion_factor

    def test_utilization_validation(self, mips_case):
        netlist, region = mips_case
        with pytest.raises(ValueError):
            estimate_timing(netlist, XC5VLX110T, region, pair_utilization=1.5)

    def test_invalid_region_rejected(self, mips_case):
        netlist, _ = mips_case
        with pytest.raises(ValueError):
            estimate_timing(
                netlist, XC5VLX110T, Region(row=1, col=1, height=1, width=2)
            )

    def test_levels_exposed(self, mips_case):
        netlist, region = mips_case
        timing = estimate_timing(netlist, XC5VLX110T, region)
        assert timing.levels == logic_levels(netlist, V5LIB)

"""Malformed/hostile `.syr` corpus: parse_syr must fail loudly and typed.

The satellite contract: truncated, corrupted or hostile report text
raises :class:`SyrParseError` (a :class:`repro.errors.ParseError`) with
the line number and offending text — never an ``AttributeError`` and
never a silent zero that would feed garbage into the cost models.
"""

import pytest

from repro.errors import ParseError, ReproError
from repro.synth.report import SyrParseError, parse_syr

VALID = """
 Number of Slice Registers: 394
 Number of Slice LUTs: 1150
 Number of LUT Flip Flop pairs used: 1300
   Number of fully used LUT-FF pairs: 244
 Number of DSP48Es: 32
"""


class TestTaxonomyMembership:
    def test_syr_parse_error_is_typed(self):
        assert issubclass(SyrParseError, ParseError)
        assert issubclass(SyrParseError, ReproError)
        assert issubclass(SyrParseError, ValueError)  # back-compat
        assert SyrParseError.exit_code == 4

    def test_valid_corpus_still_parses(self):
        report = parse_syr(VALID)
        assert report.pairs.lut_ff_pairs == 1300
        assert report.dsps == 32


class TestMalformedValueLines:
    @pytest.mark.parametrize(
        "bad_line",
        [
            " Number of Slice LUTs: garbage",
            " Number of Slice LUTs: -40",
            " Number of Slice LUTs:",
            " Number of Slice LUTs: NaN out of 69120",
        ],
    )
    def test_garbage_value_raises_with_line_info(self, bad_line):
        text = f"\n Number of Slice Registers: 394\n{bad_line}\n"
        with pytest.raises(SyrParseError) as excinfo:
            parse_syr(text)
        err = excinfo.value
        assert err.line_no == 3
        assert err.line == bad_line
        assert "line 3" in str(err)
        assert "offending text" in str(err)

    def test_malformed_dsp_line_raises(self):
        text = VALID + " Number of DSP48E1s: lots\n"
        # DSP value already parsed from VALID -> append-only corpus needs
        # its own report without a good DSP line first.
        good = parse_syr(text)
        assert good.dsps == 32  # first occurrence won; duplicate ignored
        with pytest.raises(SyrParseError, match="dsps"):
            parse_syr(
                "\n Number of Slice Registers: 10\n"
                " Number of Slice LUTs: 10\n"
                " Number of DSP48E1s: lots\n"
            )


class TestTruncatedAndHostileInput:
    def test_empty_input_raises_not_attribute_error(self):
        with pytest.raises(SyrParseError, match="luts"):
            parse_syr("")

    def test_truncated_report_names_missing_line(self):
        with pytest.raises(SyrParseError, match="ffs"):
            parse_syr(" Number of Slice LUTs: 100\n")

    def test_non_string_input_rejected(self):
        with pytest.raises(SyrParseError, match="bytes"):
            parse_syr(b" Number of Slice LUTs: 100\n")

    def test_oversized_input_rejected_before_regex_work(self):
        blob = "x" * (8 * 1024 * 1024 + 1)
        with pytest.raises(SyrParseError, match="larger than any"):
            parse_syr(blob)

    def test_implausibly_large_count_rejected(self):
        text = (
            "\n Number of Slice Registers: 394\n"
            " Number of Slice LUTs: 999999999999\n"
        )
        with pytest.raises(SyrParseError, match="implausibly large") as excinfo:
            parse_syr(text)
        assert excinfo.value.line_no == 3

    def test_inconsistent_split_still_caught(self):
        text = (
            "\n Number of Slice Registers: 10\n"
            " Number of Slice LUTs: 10\n"
            " Number of LUT Flip Flop pairs used: 100\n"
        )
        with pytest.raises(SyrParseError, match="inconsistent"):
            parse_syr(text)

"""Unit tests for synthesis reports and .syr rendering/parsing."""

import pytest

from repro.synth.packer import PairBreakdown
from repro.synth.report import (
    SynthesisReport,
    SyrParseError,
    parse_syr,
    render_syr,
)

FIR_PAIRS = PairBreakdown(full_pairs=244, lut_only_pairs=906, ff_only_pairs=150)


def fir_report():
    return SynthesisReport(
        design_name="fir",
        family_name="virtex5",
        pairs=FIR_PAIRS,
        dsps=32,
        brams=0,
        control_sets=5,
    )


class TestSynthesisReport:
    def test_requirements_bridge(self):
        req = fir_report().requirements
        assert req.lut_ff_pairs == 1300
        assert req.luts == 1150
        assert req.ffs == 394
        assert req.dsps == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            SynthesisReport("x", "virtex5", FIR_PAIRS, dsps=-1, brams=0)

    def test_summary(self):
        assert "pairs=1300" in fir_report().summary()


class TestRenderParseRoundtrip:
    def test_roundtrip_preserves_counts(self):
        original = fir_report()
        parsed = parse_syr(render_syr(original))
        assert parsed.pairs == original.pairs
        assert parsed.dsps == original.dsps
        assert parsed.brams == original.brams
        assert parsed.control_sets == original.control_sets
        assert parsed.design_name == "fir"
        assert parsed.family_name == "virtex5"

    def test_rendered_text_has_xst_lines(self):
        text = render_syr(fir_report())
        assert "Number of Slice LUTs:                 1150" in text
        assert "Number of LUT Flip Flop pairs used:   1300" in text
        assert "Number of fully used LUT-FF pairs:  244" in text


class TestParseRealWorldVariants:
    def test_parse_real_xilinx_syr_fragment(self):
        """A fragment in genuine ISE 12.4 formatting."""
        text = """
Device utilization summary:
---------------------------

Selected Device : 5vlx110tff1136-1

Slice Logic Utilization:
 Number of Slice Registers:             394  out of  69120     0%
 Number of Slice LUTs:                 1150  out of  69120     1%

Slice Logic Distribution:
 Number of LUT Flip Flop pairs used:   1300
   Number with an unused Flip Flop:     906  out of   1300    69%
   Number with an unused LUT:           150  out of   1300    11%
   Number of fully used LUT-FF pairs:   244  out of   1300    18%

Specific Feature Utilization:
 Number of DSP48Es:                      32  out of     64    50%
"""
        report = parse_syr(text, design_name="fir")
        assert report.pairs.lut_ff_pairs == 1300
        assert report.pairs.full_pairs == 244
        assert report.dsps == 32
        assert report.brams == 0

    def test_parse_derives_full_from_pairs_when_missing(self):
        text = """
 Number of Slice Registers: 100
 Number of Slice LUTs: 150
 Number of LUT Flip Flop pairs used: 200
"""
        report = parse_syr(text)
        assert report.pairs.full_pairs == 50
        assert report.pairs.lut_ff_pairs == 200

    def test_parse_without_pair_line_is_conservative(self):
        text = """
 Number of Slice Registers: 100
 Number of Slice LUTs: 150
"""
        report = parse_syr(text)
        assert report.pairs.full_pairs == 0
        assert report.pairs.lut_ff_pairs == 250

    def test_missing_mandatory_line_raises(self):
        with pytest.raises(SyrParseError, match="luts"):
            parse_syr("Number of Slice Registers: 100")

    def test_inconsistent_pair_split_raises(self):
        text = """
 Number of Slice Registers: 10
 Number of Slice LUTs: 10
 Number of LUT Flip Flop pairs used: 100
"""
        with pytest.raises(SyrParseError):
            parse_syr(text)

    def test_dsp48e1_spelling_accepted(self):
        text = """
 Number of Slice Registers: 10
 Number of Slice LUTs: 10
 Number of DSP48E1s: 7
"""
        assert parse_syr(text).dsps == 7

"""Unit tests for technology mapping and the primitive library."""

import pytest

from repro.devices.family import SPARTAN6, VIRTEX4, VIRTEX5, VIRTEX6
from repro.synth.library import library_for
from repro.synth.mapper import (
    MappedCounts,
    luts_for_fanin,
    map_component,
    map_netlist,
)
from repro.synth.netlist import (
    FSM,
    Adder,
    Comparator,
    GlueLogic,
    LogicCloud,
    Memory,
    Module,
    Multiplier,
    Mux,
    Netlist,
    RegisterBank,
    ShiftRegister,
)

V5 = library_for(VIRTEX5)
V4 = library_for(VIRTEX4)


class TestLibrary:
    def test_lut_inputs_per_family(self):
        assert V4.lut_inputs == 4
        assert V5.lut_inputs == 6
        assert library_for(VIRTEX6).lut_inputs == 6

    def test_srl_depth(self):
        assert V4.srl_depth == 16
        assert V5.srl_depth == 32

    def test_dsp_widths(self):
        assert (V5.dsp_a_width, V5.dsp_b_width) == (25, 18)
        assert (V4.dsp_a_width, V4.dsp_b_width) == (18, 18)

    def test_unknown_family(self):
        from dataclasses import replace

        with pytest.raises(KeyError):
            library_for(replace(VIRTEX5, name="unknown"))

    def test_mux_luts_per_bit(self):
        assert V5.mux_luts_per_bit(4) == 1  # LUT6 does 4:1
        assert V5.mux_luts_per_bit(8) == 3
        assert V4.mux_luts_per_bit(2) == 1
        with pytest.raises(ValueError):
            V5.mux_luts_per_bit(1)


class TestLutsForFanin:
    def test_fits_one_lut(self):
        assert luts_for_fanin(6, 6) == 1
        assert luts_for_fanin(1, 6) == 1

    def test_tree_cover(self):
        assert luts_for_fanin(7, 6) == 2
        assert luts_for_fanin(11, 6) == 2
        assert luts_for_fanin(12, 6) == 3

    def test_lut4_tree(self):
        assert luts_for_fanin(7, 4) == 2
        assert luts_for_fanin(10, 4) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            luts_for_fanin(0, 6)


class TestComponentMapping:
    def test_logic_cloud(self):
        counts = map_component(LogicCloud(fanin=12, width=32), V5)
        assert counts == MappedCounts(luts=96)

    def test_registered_logic_pairs(self):
        counts = map_component(LogicCloud(fanin=4, width=8, registered=True), V5)
        assert counts.luts == 8 and counts.ffs == 8 and counts.paired_ffs == 8

    def test_adder_one_lut_per_bit(self):
        counts = map_component(Adder(width=32), V5)
        assert counts.luts == 32 and counts.ffs == 0

    def test_registered_adder(self):
        counts = map_component(Adder(width=12, registered=True), V5)
        assert counts.ffs == 12 and counts.paired_ffs == 12

    def test_comparator(self):
        assert map_component(Comparator(width=12), V5).luts == 4
        assert map_component(Comparator(width=12), V4).luts == 6

    def test_mux(self):
        counts = map_component(Mux(ways=8, width=32), V5)
        assert counts.luts == 96

    def test_multiplier_dsp_tiles(self):
        assert map_component(Multiplier(16, 16), V5).dsps == 1
        assert map_component(Multiplier(32, 32), V5).dsps == 4  # 2x2 tiles
        assert map_component(Multiplier(32, 32), V4).dsps == 4

    def test_multiplier_lut_fallback(self):
        counts = map_component(Multiplier(16, 16, use_dsp=False), V5)
        assert counts.dsps == 0
        assert counts.luts == 128

    def test_register_bank_unpaired(self):
        counts = map_component(RegisterBank(width=64), V5)
        assert counts.ffs == 64 and counts.paired_ffs == 0

    def test_srl_shift_register(self):
        counts = map_component(ShiftRegister(depth=32, width=16), V5)
        assert counts.luts == 16 and counts.ffs == 16 and counts.paired_ffs == 16

    def test_deep_srl_cascades(self):
        counts = map_component(ShiftRegister(depth=64, width=4), V5)
        assert counts.luts == 8  # two SRL32 per lane

    def test_tapped_shift_register_uses_ffs(self):
        counts = map_component(ShiftRegister(depth=32, width=16, tapped=True), V5)
        assert counts.luts == 0 and counts.ffs == 512

    def test_small_memory_is_lutram(self):
        counts = map_component(Memory(depth=32, width=16), V5)
        assert counts.brams == 0 and counts.luts == 16

    def test_dual_port_lutram_doubles(self):
        counts = map_component(Memory(depth=32, width=32, dual_port=True), V5)
        assert counts.luts == 64

    def test_large_memory_is_bram(self):
        assert map_component(Memory(depth=2048, width=32), V5).brams == 2
        assert map_component(Memory(depth=4096, width=32), V5).brams == 4

    def test_force_bram(self):
        assert map_component(Memory(depth=16, width=8, force_bram=True), V5).brams == 1

    def test_bram_shapes_v4(self):
        # 18Kb blocks on Virtex-4: 2048x32 needs 4 blocks (1024x18 lanes).
        counts = map_component(Memory(depth=2048, width=32), V4)
        assert counts.brams == 4

    def test_fsm(self):
        counts = map_component(FSM(states=8, inputs=12, outputs=16), V5)
        assert counts.ffs == 8 and counts.paired_ffs == 8
        assert counts.luts == 8 * 3 + 16  # next-state trees + output decode

    def test_glue_passthrough(self):
        counts = map_component(GlueLogic(luts=10, ffs=7, paired_ffs=3), V5)
        assert counts == MappedCounts(luts=10, ffs=7, paired_ffs=3)

    def test_unknown_component_type(self):
        class Strange:
            pass

        with pytest.raises(TypeError, match="no mapping rule"):
            map_component(Strange(), V5)  # type: ignore[arg-type]


class TestMappedCounts:
    def test_add(self):
        a = MappedCounts(luts=1, ffs=2, paired_ffs=1, dsps=3, brams=4)
        b = MappedCounts(luts=10, ffs=20, paired_ffs=2, dsps=30, brams=40)
        assert a + b == MappedCounts(11, 22, 3, 33, 44)

    def test_pairing_bound_enforced(self):
        with pytest.raises(ValueError):
            MappedCounts(luts=1, ffs=1, paired_ffs=2)

    def test_lut_ff_pairs_identity(self):
        counts = MappedCounts(luts=10, ffs=8, paired_ffs=5)
        assert counts.lut_ff_pairs == 13

    def test_map_netlist_sums(self):
        top = Module("top")
        top.add(Adder(width=4, registered=True))
        top.add(RegisterBank(width=4))
        counts = map_netlist(Netlist("d", top), V5)
        assert counts == MappedCounts(luts=4, ffs=8, paired_ffs=4)

    def test_spartan6_library_exists(self):
        assert library_for(SPARTAN6).lut_inputs == 6

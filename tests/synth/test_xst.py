"""Unit tests for the synthesis driver and its runtime model."""

import pytest

from repro.devices.family import VIRTEX5
from repro.synth.netlist import Adder, Module, Netlist
from repro.synth.xst import (
    simulated_synthesis_seconds,
    synthesize,
    synthesize_timed,
)


def small_netlist():
    top = Module("top")
    top.add(Adder(width=8, registered=True, control_set="a"))
    return Netlist("small", top)


class TestSynthesize:
    def test_produces_report(self):
        report = synthesize(small_netlist(), VIRTEX5)
        assert report.design_name == "small"
        assert report.family_name == "virtex5"
        assert report.pairs.luts == 8
        assert report.pairs.ffs == 8

    def test_control_sets_counted(self):
        report = synthesize(small_netlist(), VIRTEX5)
        assert report.control_sets == 1

    def test_hints_forwarded(self):
        netlist = small_netlist()
        from repro.synth.netlist import OptimizationHints

        netlist.hints = OptimizationHints(combinable_luts=2)
        report = synthesize(netlist, VIRTEX5)
        assert report.hints.combinable_luts == 2

    def test_simulated_seconds_positive(self):
        assert synthesize(small_netlist(), VIRTEX5).simulated_seconds > 0


class TestRuntimeModel:
    def test_monotone_in_size(self):
        assert simulated_synthesis_seconds(10, 100) < simulated_synthesis_seconds(
            10, 1000
        )
        assert simulated_synthesis_seconds(1, 100) < simulated_synthesis_seconds(
            100, 100
        )

    def test_paper_scale_designs_land_in_minutes(self):
        # Table VIII synthesis times are 3m20s-4m50s (200-290 s); our PRMs
        # have ~40 components and 150-2100 LUTs.
        assert 150 <= simulated_synthesis_seconds(40, 1150) <= 300

    def test_validation(self):
        with pytest.raises(ValueError):
            simulated_synthesis_seconds(-1, 0)

    def test_timed_wrapper(self):
        run = synthesize_timed(small_netlist(), VIRTEX5)
        assert run.report.design_name == "small"
        assert run.wall_seconds >= 0

"""Unit tests for slice packing (pair breakdown)."""

import pytest

from repro.synth.mapper import MappedCounts
from repro.synth.packer import PairBreakdown, pack


class TestPairBreakdown:
    def test_identities(self):
        pairs = PairBreakdown(full_pairs=244, lut_only_pairs=906, ff_only_pairs=150)
        assert pairs.lut_ff_pairs == 1300  # FIR/V5
        assert pairs.luts == 1150
        assert pairs.ffs == 394

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PairBreakdown(-1, 0, 0)


class TestPack:
    def test_paired_ffs_become_full_pairs(self):
        pairs = pack(MappedCounts(luts=10, ffs=8, paired_ffs=5))
        assert pairs.full_pairs == 5
        assert pairs.lut_only_pairs == 5
        assert pairs.ff_only_pairs == 3

    def test_no_sharing(self):
        pairs = pack(MappedCounts(luts=4, ffs=4, paired_ffs=0))
        assert pairs.lut_ff_pairs == 8

    def test_full_sharing(self):
        pairs = pack(MappedCounts(luts=4, ffs=4, paired_ffs=4))
        assert pairs.lut_ff_pairs == 4
        assert pairs.full_pairs == 4

    def test_zero_design(self):
        pairs = pack(MappedCounts())
        assert pairs.lut_ff_pairs == 0

    def test_pack_preserves_lut_and_ff_totals(self):
        counts = MappedCounts(luts=123, ffs=77, paired_ffs=50)
        pairs = pack(counts)
        assert pairs.luts == counts.luts
        assert pairs.ffs == counts.ffs

"""Unit tests for the netlist IR."""

import pytest

from repro.synth.netlist import (
    FSM,
    Adder,
    Comparator,
    GlueLogic,
    LogicCloud,
    Memory,
    Module,
    Multiplier,
    Mux,
    Netlist,
    OptimizationHints,
    RegisterBank,
    ShiftRegister,
)


class TestComponentValidation:
    def test_logic_cloud(self):
        with pytest.raises(ValueError):
            LogicCloud(fanin=0, width=1)
        with pytest.raises(ValueError):
            LogicCloud(fanin=4, width=0)

    def test_adder(self):
        with pytest.raises(ValueError):
            Adder(width=0)

    def test_mux_needs_two_ways(self):
        with pytest.raises(ValueError):
            Mux(ways=1, width=8)

    def test_multiplier(self):
        with pytest.raises(ValueError):
            Multiplier(a_width=0, b_width=8)

    def test_shift_register(self):
        with pytest.raises(ValueError):
            ShiftRegister(depth=0, width=1)

    def test_memory(self):
        with pytest.raises(ValueError):
            Memory(depth=0, width=8)
        assert Memory(depth=64, width=8).bits == 512

    def test_fsm_needs_two_states(self):
        with pytest.raises(ValueError):
            FSM(states=1, inputs=0, outputs=0)

    def test_glue_pairing_bound(self):
        with pytest.raises(ValueError, match="paired_ffs"):
            GlueLogic(luts=5, ffs=3, paired_ffs=4)

    def test_glue_negative(self):
        with pytest.raises(ValueError):
            GlueLogic(luts=-1, ffs=0)

    def test_describe_all_components(self):
        components = [
            LogicCloud(fanin=6, width=4),
            Adder(width=8),
            Comparator(width=8),
            Mux(ways=4, width=8),
            Multiplier(a_width=16, b_width=16),
            RegisterBank(width=8),
            ShiftRegister(depth=8, width=2),
            Memory(depth=128, width=8),
            FSM(states=4, inputs=2, outputs=2),
            GlueLogic(luts=1, ffs=1),
        ]
        for component in components:
            assert component.describe()


class TestOptimizationHints:
    def test_defaults_zero(self):
        hints = OptimizationHints()
        assert hints.combinable_luts == 0
        assert hints.crosspackable_pairs == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OptimizationHints(combinable_luts=-1)


class TestModuleHierarchy:
    def test_iter_components_depth_first(self):
        child = Module("child")
        child.add(Adder(width=4))
        top = Module("top")
        top.add(RegisterBank(width=2))
        top.instantiate(child)
        netlist = Netlist("design", top)
        kinds = [type(c).__name__ for c in netlist.iter_components()]
        assert kinds == ["RegisterBank", "Adder"]

    def test_component_count_recursive(self):
        child = Module("child")
        child.add(Adder(width=4)).add(Adder(width=4))
        top = Module("top")
        top.instantiate(child)
        assert Netlist("d", top).component_count == 2

    def test_add_returns_module_for_chaining(self):
        module = Module("m")
        assert module.add(Adder(width=1)) is module

    def test_control_sets_collected(self):
        top = Module("top")
        top.add(Adder(width=4, registered=True, control_set="a"))
        top.add(Adder(width=4, registered=True, control_set="b"))
        top.add(Adder(width=4))  # no control set
        assert Netlist("d", top).control_sets == {"a", "b"}

    def test_describe_lists_components(self):
        top = Module("top")
        top.add(Adder(width=4))
        text = Netlist("d", top).describe()
        assert "4-bit adder" in text

"""Tests for workload calibration: synthesized counts == reference targets."""

import pytest

from repro.devices.family import VIRTEX4, VIRTEX5, VIRTEX6
from repro.synth.mapper import map_netlist
from repro.synth.library import library_for
from repro.synth.netlist import GlueLogic, Module, Netlist, RegisterBank
from repro.synth.xst import synthesize
from repro.workloads import (
    FIR_TARGETS,
    MIPS_TARGETS,
    SDRAM_TARGETS,
    CalibrationError,
    SynthesisTargets,
    build_fir,
    build_mips,
    build_sdram,
    calibrate,
)

from tests.conftest import PAPER_SYNTH

BUILDERS = {"fir": build_fir, "mips": build_mips, "sdram": build_sdram}


class TestCalibratedSynthesis:
    @pytest.mark.parametrize("workload", ["fir", "mips", "sdram"])
    @pytest.mark.parametrize("family", [VIRTEX5, VIRTEX6], ids=lambda f: f.name)
    def test_reference_counts_reproduced(self, workload, family):
        report = synthesize(BUILDERS[workload](family), family)
        pairs, luts, ffs, dsps, brams = PAPER_SYNTH[(workload, family.name)]
        assert report.pairs.lut_ff_pairs == pairs
        assert report.pairs.luts == luts
        assert report.pairs.ffs == ffs
        assert report.dsps == dsps
        assert report.brams == brams

    @pytest.mark.parametrize("workload", ["fir", "mips", "sdram"])
    def test_glue_is_minority_of_structure_count(self, workload):
        """Calibration adds at most one glue component."""
        netlist = BUILDERS[workload](VIRTEX5)
        glue = [
            c for c in netlist.iter_components() if isinstance(c, GlueLogic)
        ]
        assert len(glue) <= 1
        assert netlist.component_count > 5  # real structure dominates

    def test_uncalibrated_builds_have_no_glue(self):
        for builder in BUILDERS.values():
            netlist = builder(VIRTEX5, calibrated=False)
            assert not any(
                isinstance(c, GlueLogic) for c in netlist.iter_components()
            )

    def test_uncalibrated_works_on_any_family(self):
        report = synthesize(build_fir(VIRTEX4, calibrated=False), VIRTEX4)
        assert report.pairs.luts > 0
        assert report.dsps == 32

    def test_calibrated_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="reference targets"):
            build_fir(VIRTEX4)

    def test_calibrated_rejects_custom_parameters(self):
        with pytest.raises(ValueError, match="default parameters"):
            build_fir(VIRTEX5, taps=16)
        with pytest.raises(ValueError, match="default parameters"):
            build_mips(VIRTEX5, xlen=64)
        with pytest.raises(ValueError, match="default parameters"):
            build_sdram(VIRTEX5, data_width=16)

    def test_hints_attached(self):
        assert build_fir(VIRTEX5).hints == FIR_TARGETS["virtex5"].hints
        assert build_mips(VIRTEX6).hints == MIPS_TARGETS["virtex6"].hints
        assert build_sdram(VIRTEX5).hints == SDRAM_TARGETS["virtex5"].hints


class TestSynthesisTargetsValidation:
    def test_full_pairs_derivation(self):
        targets = SynthesisTargets(1300, 1150, 394, 32, 0)
        assert targets.full_pairs == 244

    def test_invalid_pair_total(self):
        with pytest.raises(ValueError):
            SynthesisTargets(lut_ff_pairs=1000, luts=100, ffs=100, dsps=0, brams=0)

    def test_pairs_below_max_rejected(self):
        with pytest.raises(ValueError):
            SynthesisTargets(lut_ff_pairs=50, luts=100, ffs=10, dsps=0, brams=0)


class TestCalibrateErrors:
    def test_oversized_structure_rejected(self):
        top = Module("top")
        top.add(GlueLogic(luts=10_000, ffs=0))
        with pytest.raises(CalibrationError, match="LUTs"):
            calibrate(
                Netlist("big", top),
                VIRTEX5,
                SynthesisTargets(100, 100, 0, 0, 0),
            )

    def test_dsp_mismatch_rejected(self):
        from repro.synth.netlist import Multiplier

        top = Module("top")
        top.add(Multiplier(16, 16))
        with pytest.raises(CalibrationError, match="DSPs"):
            calibrate(
                Netlist("d", top),
                VIRTEX5,
                SynthesisTargets(100, 100, 0, 2, 0),
            )

    def test_residual_pairing_infeasible(self):
        top = Module("top")
        top.add(RegisterBank(width=10))
        # full target 90 > min(residual luts 100, residual ffs 90)?
        # luts=100, ffs=100, pairs=105 -> full=95; residual ffs=90, luts=100.
        with pytest.raises(CalibrationError, match="residual full"):
            calibrate(
                Netlist("d", top),
                VIRTEX5,
                SynthesisTargets(105, 100, 100, 0, 0),
            )

    def test_exact_fit_no_glue_needed(self):
        top = Module("top")
        top.add(RegisterBank(width=10))
        netlist = calibrate(
            Netlist("d", top), VIRTEX5, SynthesisTargets(10, 0, 10, 0, 0)
        )
        counts = map_netlist(netlist, library_for(VIRTEX5))
        assert counts.ffs == 10 and counts.luts == 0
        assert not any(
            isinstance(c, GlueLogic) for c in netlist.iter_components()
        )

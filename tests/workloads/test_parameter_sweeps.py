"""Structural (uncalibrated) workload parameter sweeps.

The calibrated builders pin the paper's exact designs; the uncalibrated
path must scale sensibly with its parameters for exploration studies.
"""

import pytest

from repro.devices.family import VIRTEX5
from repro.synth.library import library_for
from repro.synth.mapper import map_netlist
from repro.synth.xst import synthesize
from repro.workloads import build_fir, build_mips, build_sdram

LIB = library_for(VIRTEX5)


def counts(netlist):
    return map_netlist(netlist, LIB)


class TestFirSweeps:
    def test_dsps_scale_with_taps(self):
        for taps in (8, 16, 32, 64):
            fir = build_fir(VIRTEX5, taps=taps, calibrated=False)
            assert counts(fir).dsps == taps

    def test_deep_fir_cascades_srls(self):
        shallow = counts(build_fir(VIRTEX5, taps=32, calibrated=False))
        deep = counts(build_fir(VIRTEX5, taps=64, calibrated=False))
        assert deep.luts > shallow.luts  # extra SRL32 stages

    def test_wide_accumulator(self):
        narrow = counts(
            build_fir(VIRTEX5, accumulator_width=32, calibrated=False)
        )
        wide = counts(
            build_fir(VIRTEX5, accumulator_width=48, calibrated=False)
        )
        assert wide.ffs - narrow.ffs == 2 * 16  # adder regs + output regs

    def test_wide_coefficients_spill_dsp_tiles(self):
        base = counts(build_fir(VIRTEX5, calibrated=False))
        wide = counts(
            build_fir(VIRTEX5, coef_width=20, calibrated=False)
        )
        assert wide.dsps == 2 * base.dsps  # 20 > 18-bit port -> 2 tiles/tap


class TestMipsSweeps:
    def test_memory_sizes_scale_brams(self):
        small = counts(
            build_mips(VIRTEX5, imem_words=1024, dmem_words=1024, calibrated=False)
        )
        big = counts(
            build_mips(VIRTEX5, imem_words=8192, dmem_words=8192, calibrated=False)
        )
        assert big.brams > small.brams

    def test_xlen_64_grows_everything(self):
        r32 = counts(build_mips(VIRTEX5, calibrated=False))
        r64 = counts(build_mips(VIRTEX5, xlen=64, calibrated=False))
        assert r64.luts > r32.luts
        assert r64.dsps > r32.dsps  # 64x64 multiply needs more tiles


class TestSdramSweeps:
    def test_data_width_scales_capture_ffs(self):
        w16 = counts(build_sdram(VIRTEX5, data_width=16, calibrated=False))
        w64 = counts(build_sdram(VIRTEX5, data_width=64, calibrated=False))
        assert w64.ffs - w16.ffs == 2 * (64 - 16)

    def test_row_bits_scale_mux(self):
        narrow = counts(build_sdram(VIRTEX5, row_bits=12, calibrated=False))
        wide = counts(build_sdram(VIRTEX5, row_bits=14, calibrated=False))
        assert wide.luts > narrow.luts


class TestSweepsStaySynthesizable:
    @pytest.mark.parametrize("taps", [4, 16, 48, 128])
    def test_fir_variants(self, taps):
        report = synthesize(
            build_fir(VIRTEX5, taps=taps, calibrated=False), VIRTEX5
        )
        req = report.requirements
        assert req.dsps == taps
        assert req.lut_ff_pairs >= max(req.luts, req.ffs)

    @pytest.mark.parametrize("xlen", [16, 32, 64])
    def test_mips_variants(self, xlen):
        report = synthesize(
            build_mips(VIRTEX5, xlen=xlen, calibrated=False), VIRTEX5
        )
        assert report.brams > 0

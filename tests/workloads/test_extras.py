"""Tests for the extra (non-paper) workload generators."""

import pytest

from repro.devices.family import VIRTEX5, VIRTEX6
from repro.synth.library import library_for
from repro.synth.mapper import map_netlist
from repro.synth.xst import synthesize
from repro.workloads import build_aes, build_fft, build_matmul, build_uart


class TestAes:
    def test_profile_is_bram_heavy(self):
        counts = map_netlist(build_aes(), library_for(VIRTEX5))
        assert counts.brams >= 8
        assert counts.dsps == 0
        assert counts.luts > 100

    def test_unrolling_scales_brams(self):
        one = map_netlist(build_aes(rounds_unrolled=1), library_for(VIRTEX5))
        four = map_netlist(build_aes(rounds_unrolled=4), library_for(VIRTEX5))
        assert four.brams == 4 * one.brams - 3 * 0  # 4 rounds x 4 BRAMs + key
        assert four.luts > one.luts

    def test_validation(self):
        with pytest.raises(ValueError):
            build_aes(rounds_unrolled=0)


class TestFft:
    def test_profile_uses_dsps_and_brams(self):
        counts = map_netlist(build_fft(points=256), library_for(VIRTEX5))
        assert counts.dsps == 3 * 8  # 3 per stage, log2(256) stages
        assert counts.brams >= 1  # twiddle ROM

    def test_points_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            build_fft(points=100)

    def test_larger_fft_has_more_stages(self):
        small = map_netlist(build_fft(points=64), library_for(VIRTEX5))
        large = map_netlist(build_fft(points=1024), library_for(VIRTEX5))
        assert large.dsps > small.dsps


class TestMatmul:
    def test_pe_array_scales_quadratically(self):
        t2 = map_netlist(build_matmul(tile=2), library_for(VIRTEX5))
        t4 = map_netlist(build_matmul(tile=4), library_for(VIRTEX5))
        assert t4.dsps == 4 * t2.dsps

    def test_validation(self):
        with pytest.raises(ValueError):
            build_matmul(tile=0)


class TestUart:
    def test_tiny_clb_only_profile(self):
        counts = map_netlist(build_uart(), library_for(VIRTEX5))
        assert counts.dsps == 0
        assert counts.brams == 0
        assert counts.luts < 150

    def test_validation(self):
        with pytest.raises(ValueError):
            build_uart(fifo_depth=0)


class TestExtrasSynthesize:
    @pytest.mark.parametrize(
        "builder", [build_aes, build_fft, build_matmul, build_uart]
    )
    @pytest.mark.parametrize("family", [VIRTEX5, VIRTEX6], ids=lambda f: f.name)
    def test_synthesizable_on_both_evaluation_families(self, builder, family):
        report = synthesize(builder(), family)
        req = report.requirements  # must satisfy the PRMRequirements invariants
        assert req.lut_ff_pairs >= max(req.luts, req.ffs)

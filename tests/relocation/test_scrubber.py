"""Tests for the SEU scrubber."""

import pytest

from repro.bitgen import generate_partial_bitstream
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.relocation import ConfigMemory
from repro.relocation.scrubber import (
    Scrubber,
    golden_signatures,
    inject_upsets,
)

from tests.conftest import paper_requirements


@pytest.fixture
def scrub_setup():
    placed = find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))
    bitstream = generate_partial_bitstream(
        XC5VLX110T, placed.region, design_name="mips"
    )
    memory = ConfigMemory(XC5VLX110T)
    memory.configure(bitstream.to_bytes())
    scrubber = Scrubber.for_region(memory, placed.region, bitstream)
    return memory, placed.region, scrubber


class TestGoldenSignatures:
    def test_covers_every_frame(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        assert len(scrubber.golden) == 956  # MIPS PRR frame count

    def test_signatures_deterministic(self, scrub_setup):
        memory, region, _ = scrub_setup
        assert golden_signatures(memory, region) == golden_signatures(
            memory, region
        )


class TestInjectUpsets:
    def test_deterministic(self, scrub_setup):
        memory, region, _ = scrub_setup
        snapshot = dict(memory.frames)
        first = inject_upsets(memory, region, count=3, seed=7)
        memory.frames.clear()
        memory.frames.update(snapshot)
        second = inject_upsets(memory, region, count=3, seed=7)
        assert first == second

    def test_zero_count_is_noop(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        inject_upsets(memory, region, count=0, seed=1)
        assert not scrubber.scan().upset_detected

    def test_negative_rejected(self, scrub_setup):
        memory, region, _ = scrub_setup
        with pytest.raises(ValueError):
            inject_upsets(memory, region, count=-1, seed=1)


class TestScrubber:
    def test_clean_scan(self, scrub_setup):
        _, _, scrubber = scrub_setup
        report = scrubber.scan()
        assert report.frames_scanned == 956
        assert not report.upset_detected

    def test_detects_single_upset(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        hit = inject_upsets(memory, region, count=1, seed=42)
        report = scrubber.scan()
        assert report.corrupted_fars == hit

    def test_scrub_repairs(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        inject_upsets(memory, region, count=5, seed=42)
        report = scrubber.scrub()
        assert report.upset_detected and report.repaired
        assert scrubber.repairs == 1
        # The follow-up scan is clean.
        assert not scrubber.scan().upset_detected

    def test_repeated_upset_repair_cycles(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        for seed in (1, 2, 3):
            inject_upsets(memory, region, count=2, seed=seed)
            assert scrubber.scrub().repaired
        assert scrubber.repairs == 3
        assert scrubber.scrub_count == 3  # one scan per scrub

    def test_mismatched_repair_bitstream_rejected(self, scrub_setup):
        memory, region, _ = scrub_setup
        other = find_prr(
            XC5VLX110T,
            paper_requirements("sdram", "virtex5"),
            forbidden=[region],
        )
        wrong = generate_partial_bitstream(XC5VLX110T, other.region)
        with pytest.raises(ValueError, match="different region"):
            Scrubber.for_region(memory, region, wrong)

    def test_upset_outside_region_not_flagged(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        # Configure and corrupt a second disjoint region.
        other = find_prr(
            XC5VLX110T,
            paper_requirements("sdram", "virtex5"),
            forbidden=[region],
        )
        other_bs = generate_partial_bitstream(XC5VLX110T, other.region)
        memory.configure(other_bs.to_bytes())
        inject_upsets(memory, other.region, count=2, seed=9)
        assert not scrubber.scan().upset_detected

"""Tests for the SEU scrubber."""

import numpy as np
import pytest

from repro.bitgen import generate_partial_bitstream
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.relocation import ConfigMemory
from repro.relocation.scrubber import (
    Scrubber,
    golden_signatures,
    inject_upsets,
)

from tests.conftest import paper_requirements


@pytest.fixture
def scrub_setup():
    placed = find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))
    bitstream = generate_partial_bitstream(
        XC5VLX110T, placed.region, design_name="mips"
    )
    memory = ConfigMemory(XC5VLX110T)
    memory.configure(bitstream.to_bytes())
    scrubber = Scrubber.for_region(memory, placed.region, bitstream)
    return memory, placed.region, scrubber


class TestGoldenSignatures:
    def test_covers_every_frame(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        assert len(scrubber.golden) == 956  # MIPS PRR frame count

    def test_signatures_deterministic(self, scrub_setup):
        memory, region, _ = scrub_setup
        assert golden_signatures(memory, region) == golden_signatures(
            memory, region
        )


class TestInjectUpsets:
    def test_deterministic(self, scrub_setup):
        memory, region, _ = scrub_setup
        snapshot = dict(memory.frames)
        first = inject_upsets(memory, region, count=3, seed=7)
        memory.frames.clear()
        memory.frames.update(snapshot)
        second = inject_upsets(memory, region, count=3, seed=7)
        assert first == second

    def test_zero_count_is_noop(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        inject_upsets(memory, region, count=0, seed=1)
        assert not scrubber.scan().upset_detected

    def test_negative_rejected(self, scrub_setup):
        memory, region, _ = scrub_setup
        with pytest.raises(ValueError):
            inject_upsets(memory, region, count=-1, seed=1)

    def test_explicit_generator_matches_seed(self, scrub_setup):
        memory, region, _ = scrub_setup
        snapshot = dict(memory.frames)
        by_seed = inject_upsets(memory, region, count=4, seed=13)
        memory.frames.clear()
        memory.frames.update(snapshot)
        by_rng = inject_upsets(
            memory, region, count=4, rng=np.random.default_rng(13)
        )
        assert by_seed == by_rng

    def test_shared_generator_advances_between_calls(self, scrub_setup):
        memory, region, _ = scrub_setup
        rng = np.random.default_rng(21)
        first = inject_upsets(memory, region, count=2, rng=rng)
        second = inject_upsets(memory, region, count=2, rng=rng)
        # One stream, two draws: the campaign is reproducible end to end
        # but consecutive calls do not repeat each other.
        rng2 = np.random.default_rng(21)
        assert first == inject_upsets(memory, region, count=2, rng=rng2)
        assert second == inject_upsets(memory, region, count=2, rng=rng2)

    def test_seed_and_rng_mutually_exclusive(self, scrub_setup):
        memory, region, _ = scrub_setup
        with pytest.raises(ValueError, match="exactly one"):
            inject_upsets(memory, region, count=1)
        with pytest.raises(ValueError, match="exactly one"):
            inject_upsets(
                memory, region, count=1, seed=1, rng=np.random.default_rng(1)
            )


class TestScrubber:
    def test_clean_scan(self, scrub_setup):
        _, _, scrubber = scrub_setup
        report = scrubber.scan()
        assert report.frames_scanned == 956
        assert not report.upset_detected

    def test_detects_single_upset(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        hit = inject_upsets(memory, region, count=1, seed=42)
        report = scrubber.scan()
        assert report.corrupted_fars == hit

    def test_scrub_repairs(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        inject_upsets(memory, region, count=5, seed=42)
        report = scrubber.scrub()
        assert report.upset_detected and report.repaired
        assert scrubber.repairs == 1
        # The follow-up scan is clean.
        assert not scrubber.scan().upset_detected

    def test_repeated_upset_repair_cycles(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        for seed in (1, 2, 3):
            inject_upsets(memory, region, count=2, seed=seed)
            assert scrubber.scrub().repaired
        assert scrubber.repairs == 3
        assert scrubber.scrub_count == 3  # one scan per scrub

    def test_mismatched_repair_bitstream_rejected(self, scrub_setup):
        memory, region, _ = scrub_setup
        other = find_prr(
            XC5VLX110T,
            paper_requirements("sdram", "virtex5"),
            forbidden=[region],
        )
        wrong = generate_partial_bitstream(XC5VLX110T, other.region)
        with pytest.raises(ValueError, match="different region"):
            Scrubber.for_region(memory, region, wrong)

    def test_multi_region_corruption_repaired_independently(self, scrub_setup):
        """One shared stream corrupts two regions; each scrubber repairs
        only its own and both end clean."""
        memory, region, scrubber = scrub_setup
        other = find_prr(
            XC5VLX110T,
            paper_requirements("sdram", "virtex5"),
            forbidden=[region],
        )
        other_bs = generate_partial_bitstream(
            XC5VLX110T, other.region, design_name="sdram"
        )
        memory.configure(other_bs.to_bytes())
        other_scrubber = Scrubber.for_region(memory, other.region, other_bs)

        rng = np.random.default_rng(77)
        hit_a = inject_upsets(memory, region, count=3, rng=rng)
        hit_b = inject_upsets(memory, other.region, count=2, rng=rng)
        assert hit_a and hit_b

        report_a = scrubber.scrub()
        assert report_a.repaired
        assert set(report_a.corrupted_fars) == set(hit_a)
        # Repairing region A must not have fixed (or broken) region B.
        report_b = other_scrubber.scrub()
        assert report_b.repaired
        assert set(report_b.corrupted_fars) == set(hit_b)
        assert not scrubber.scan().upset_detected
        assert not other_scrubber.scan().upset_detected

    def test_upset_outside_region_not_flagged(self, scrub_setup):
        memory, region, scrubber = scrub_setup
        # Configure and corrupt a second disjoint region.
        other = find_prr(
            XC5VLX110T,
            paper_requirements("sdram", "virtex5"),
            forbidden=[region],
        )
        other_bs = generate_partial_bitstream(XC5VLX110T, other.region)
        memory.configure(other_bs.to_bytes())
        inject_upsets(memory, other.region, count=2, seed=9)
        assert not scrubber.scan().upset_detected

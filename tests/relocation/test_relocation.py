"""Tests for configuration memory, task relocation and context save/restore."""

import pytest

from repro.bitgen import generate_partial_bitstream, parse_bitstream
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T, XC6VLX75T
from repro.devices.fabric import Region
from repro.devices.frames import (
    BLOCK_TYPE_BRAM_CONTENT,
    BLOCK_TYPE_CONFIG,
    FrameAddress,
)
from repro.devices.resources import ColumnKind
from repro.relocation import (
    ConfigMemory,
    RelocationError,
    compatible_regions,
    find_compatible_regions,
    iter_burst_fars,
    relocate_bitstream,
    restore_context,
    save_context,
)

from tests.conftest import paper_requirements


@pytest.fixture(scope="module")
def mips_placed():
    return find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))


@pytest.fixture(scope="module")
def mips_bitstream(mips_placed):
    return generate_partial_bitstream(
        XC5VLX110T, mips_placed.region, design_name="mips"
    )


@pytest.fixture
def configured_memory(mips_bitstream):
    memory = ConfigMemory(XC5VLX110T)
    memory.configure(mips_bitstream.to_bytes())
    return memory


class TestIterBurstFars:
    def test_walks_minors_then_columns(self):
        clb_cols = XC5VLX110T.columns_of_kind(ColumnKind.CLB)
        start = FrameAddress(
            block_type=BLOCK_TYPE_CONFIG, row=0, major=clb_cols[0] - 1, minor=0
        )
        fars = list(iter_burst_fars(XC5VLX110T, start, 40))
        assert fars[0].minor == 0
        assert fars[35].minor == 35  # 36 CLB frames
        assert fars[36].major == clb_cols[0]  # next column
        assert fars[36].minor == 0

    def test_bram_content_skips_non_bram_columns(self):
        bram_col = XC5VLX110T.columns_of_kind(ColumnKind.BRAM)[0]
        start = FrameAddress(
            block_type=BLOCK_TYPE_BRAM_CONTENT, row=0, major=bram_col - 1, minor=0
        )
        fars = list(iter_burst_fars(XC5VLX110T, start, 130))
        assert fars[127].major == bram_col - 1
        # frame 128 lands on the NEXT BRAM column, skipping CLB/DSP ones.
        assert XC5VLX110T.column_kind(fars[128].major + 1) is ColumnKind.BRAM

    def test_overrun_raises(self):
        start = FrameAddress(
            block_type=BLOCK_TYPE_CONFIG,
            row=0,
            major=XC5VLX110T.num_columns - 1,
            minor=0,
        )
        with pytest.raises(ValueError, match="runs off"):
            list(iter_burst_fars(XC5VLX110T, start, 10_000))


class TestConfigMemory:
    def test_configure_commits_all_frames(self, configured_memory, mips_placed):
        assert configured_memory.region_is_configured(mips_placed.region)
        # MIPS PRR: 700 config + 256 BRAM-content frames.
        assert len(configured_memory.frames) == 956

    def test_flush_frames_not_committed(self, configured_memory, mips_placed):
        # The frame after the region's last column must stay blank.
        beyond = Region(
            row=mips_placed.region.row,
            col=mips_placed.region.col + mips_placed.region.width,
            height=1,
            width=1,
        )
        assert not configured_memory.region_is_configured(beyond)

    def test_readback_matches_generator_payload(
        self, configured_memory, mips_placed
    ):
        from repro.bitgen.generator import frame_payload, _seed

        fam = XC5VLX110T.family
        far, words = configured_memory.region_frames(
            mips_placed.region, BLOCK_TYPE_CONFIG
        )[0]
        expected = tuple(
            frame_payload(_seed("mips"), far.encode(), fam.frame_words)
        )
        assert words == expected

    def test_unconfigured_reads_zero(self):
        memory = ConfigMemory(XC5VLX110T)
        far = FrameAddress(block_type=0, row=0, major=1, minor=0)
        assert memory.read_frame(far) == (0,) * 41

    def test_clear_region(self, configured_memory, mips_placed):
        configured_memory.clear_region(mips_placed.region)
        assert not configured_memory.region_is_configured(mips_placed.region)
        assert len(configured_memory.frames) == 0

    def test_wrong_frame_size_rejected(self):
        memory = ConfigMemory(XC5VLX110T)
        far = FrameAddress(block_type=0, row=0, major=1, minor=0)
        with pytest.raises(ValueError):
            memory.write_frame(far, (0,) * 40)


class TestCompatibility:
    def test_row_shift_is_compatible(self, mips_placed):
        source = mips_placed.region
        shifted = Region(
            row=source.row + 1,
            col=source.col,
            height=source.height,
            width=source.width,
        )
        assert compatible_regions(XC5VLX110T, source, shifted)

    def test_different_column_mix_incompatible(self, mips_placed):
        source = mips_placed.region
        moved = Region(
            row=source.row,
            col=source.col + 1,
            height=source.height,
            width=source.width,
        )
        # One column to the right changes the kind sequence.
        if XC5VLX110T.is_valid_prr(moved):
            assert XC5VLX110T.region_column_kinds(
                moved
            ) != XC5VLX110T.region_column_kinds(source)
            assert not compatible_regions(XC5VLX110T, source, moved)

    def test_find_targets_for_mips(self, mips_placed):
        targets = find_compatible_regions(XC5VLX110T, mips_placed.region)
        # Same column window, rows 2..8.
        assert len(targets) == 7
        assert all(t.col == mips_placed.region.col for t in targets)

    def test_include_source(self, mips_placed):
        targets = find_compatible_regions(
            XC5VLX110T, mips_placed.region, include_source=True
        )
        assert mips_placed.region in targets


class TestRelocation:
    def test_relocated_bitstream_parses_and_matches_size(
        self, mips_bitstream, mips_placed
    ):
        target = find_compatible_regions(XC5VLX110T, mips_placed.region)[0]
        moved = relocate_bitstream(XC5VLX110T, mips_bitstream, target)
        assert moved.size_bytes == mips_bitstream.size_bytes
        parsed = parse_bitstream(moved.to_bytes())
        assert parsed.crc_ok
        assert parsed.blocks[0].far.row == target.row - 1

    def test_relocation_preserves_payloads(self, mips_bitstream, mips_placed):
        target = find_compatible_regions(XC5VLX110T, mips_placed.region)[0]
        moved = relocate_bitstream(XC5VLX110T, mips_bitstream, target)

        src_mem, dst_mem = ConfigMemory(XC5VLX110T), ConfigMemory(XC5VLX110T)
        src_mem.configure(mips_bitstream.to_bytes())
        dst_mem.configure(moved.to_bytes())
        for block_type in (BLOCK_TYPE_CONFIG, BLOCK_TYPE_BRAM_CONTENT):
            src = src_mem.region_frames(mips_placed.region, block_type)
            dst = dst_mem.region_frames(target, block_type)
            assert [w for _, w in src] == [w for _, w in dst]

    def test_incompatible_target_rejected(self, mips_bitstream):
        clb_col = XC5VLX110T.columns_of_kind(ColumnKind.CLB)[0]
        bad = Region(row=1, col=clb_col, height=1, width=1)
        with pytest.raises(RelocationError):
            relocate_bitstream(XC5VLX110T, mips_bitstream, bad)


class TestContextSaveRestore:
    def test_roundtrip_in_place(self, configured_memory, mips_placed):
        context = save_context(
            configured_memory, mips_placed.region, task_name="mips"
        )
        assert context.frame_count == 956
        restored = restore_context(XC5VLX110T, context)
        fresh = ConfigMemory(XC5VLX110T)
        fresh.configure(restored.to_bytes())
        assert fresh.frames == configured_memory.frames

    def test_restore_into_relocated_region(self, configured_memory, mips_placed):
        context = save_context(
            configured_memory, mips_placed.region, task_name="mips"
        )
        target = find_compatible_regions(XC5VLX110T, mips_placed.region)[-1]
        restored = restore_context(XC5VLX110T, context, target=target)
        fresh = ConfigMemory(XC5VLX110T)
        fresh.configure(restored.to_bytes())
        src = configured_memory.region_frames(
            mips_placed.region, BLOCK_TYPE_CONFIG
        )
        dst = fresh.region_frames(target, BLOCK_TYPE_CONFIG)
        assert [w for _, w in src] == [w for _, w in dst]

    def test_restore_wrong_device_rejected(self, configured_memory, mips_placed):
        context = save_context(
            configured_memory, mips_placed.region, task_name="mips"
        )
        with pytest.raises(RelocationError, match="cannot restore"):
            restore_context(XC6VLX75T, context)

    def test_restore_incompatible_target_rejected(
        self, configured_memory, mips_placed
    ):
        context = save_context(
            configured_memory, mips_placed.region, task_name="mips"
        )
        clb_col = XC5VLX110T.columns_of_kind(ColumnKind.CLB)[0]
        with pytest.raises(RelocationError, match="not compatible"):
            restore_context(
                XC5VLX110T,
                context,
                target=Region(row=1, col=clb_col, height=1, width=1),
            )

    def test_context_size_accounting(self, configured_memory, mips_placed):
        context = save_context(
            configured_memory, mips_placed.region, task_name="mips"
        )
        assert context.size_bytes == 956 * 41 * 4

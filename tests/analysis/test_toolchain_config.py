"""General-purpose toolchain: ruff/mypy configs and, when installed, runs.

The container this repo develops in does not ship ruff or mypy; CI
installs them.  The config-sanity tests always run; the tool runs skip
cleanly when the binaries are absent so local `pytest` stays green.
"""

from __future__ import annotations

import shutil
import subprocess

import pytest

from .conftest import REPO_ROOT

_PYPROJECT = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")


def test_pyproject_carries_ruff_and_mypy_config():
    assert "[tool.ruff]" in _PYPROJECT
    assert "[tool.ruff.lint]" in _PYPROJECT
    assert "[tool.mypy]" in _PYPROJECT
    # mypy is scoped to the modules whose contracts other layers import
    assert "src/repro/errors.py" in _PYPROJECT
    assert "src/repro/serve/cache.py" in _PYPROJECT


def test_package_ships_py_typed_marker():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
    assert 'py.typed' in _PYPROJECT  # declared as package data


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_check_is_clean():
    proc = subprocess.run(
        ["ruff", "check", "."],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_scoped_modules_are_clean():
    proc = subprocess.run(
        ["mypy"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

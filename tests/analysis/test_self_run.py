"""The analyzer must be clean on its own repository, modulo the baseline."""

from __future__ import annotations

from repro.analysis import analyze, default_config, diff_findings, load_baseline

from .conftest import REPO_ROOT


def _self_report():
    root = REPO_ROOT / "src"
    return analyze(root, [root / "repro"], default_config())


def test_src_tree_has_no_new_findings():
    report = _self_report()
    baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
    diff = diff_findings(report.findings, baseline)
    rendered = "\n".join(f.render() for f in diff.new)
    assert diff.new == (), f"non-baselined findings:\n{rendered}"


def test_checked_in_baseline_has_no_stale_entries():
    report = _self_report()
    baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
    diff = diff_findings(report.findings, baseline)
    stale = [e["fingerprint"] for e in diff.stale]
    assert diff.stale == (), (
        f"stale baseline entries (fixed findings still listed): {stale}; "
        "run `repro-fpga analyze --update-baseline` to prune"
    )


def test_every_baselined_fingerprint_is_justified():
    baseline = load_baseline(REPO_ROOT / "analysis-baseline.json")
    fingerprints = {e["fingerprint"] for e in baseline.entries}
    missing = sorted(
        fp
        for fp in fingerprints
        if not baseline.justifications.get(fp)
        or baseline.justifications[fp].startswith("TODO")
    )
    assert missing == [], f"baseline entries without a justification: {missing}"


def test_self_run_output_is_stable_across_runs():
    first = _self_report()
    second = _self_report()
    assert first.render_text() == second.render_text()
    assert [f.to_dict() for f in first.findings] == [
        f.to_dict() for f in second.findings
    ]

"""CLI front ends: ``python -m repro.analysis`` and ``repro-fpga analyze``."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

from repro.analysis import ALL_RULES, load_baseline
from repro.analysis import main as analysis_main
from repro.cli import main as repro_main

from .conftest import REPO_ROOT

_FIXTURE = """
    def f():
        raise ValueError("bad")
"""


def _write_fixture(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "mod.py").write_text(textwrap.dedent(_FIXTURE), encoding="utf-8")


def test_list_rules_names_all_six(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ALL_RULES:
        assert name in out
    assert len(ALL_RULES) == 6


def test_fail_on_new_is_the_gate(tmp_path, capsys):
    _write_fixture(tmp_path)
    base = ["--root", str(tmp_path), "--no-baseline", str(tmp_path)]
    assert analysis_main(base) == 0  # report-only mode never fails
    assert analysis_main(base + ["--fail-on-new"]) == 1
    out = capsys.readouterr().out
    assert "repro/mod.py:3" in out
    assert "[typed-errors]" in out


def test_update_baseline_then_gate_passes(tmp_path, capsys):
    _write_fixture(tmp_path)
    baseline = tmp_path / "baseline.json"
    common = ["--root", str(tmp_path), "--baseline", str(baseline), str(tmp_path)]
    assert analysis_main(common + ["--update-baseline"]) == 0
    assert len(load_baseline(baseline)) == 1
    assert analysis_main(common + ["--fail-on-new"]) == 0
    assert "0 new finding(s), 1 baselined" in capsys.readouterr().out


def test_json_format_reports_new_and_baselined(tmp_path, capsys):
    _write_fixture(tmp_path)
    code = analysis_main(
        ["--root", str(tmp_path), "--no-baseline", "--format", "json", str(tmp_path)]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert [f["rule"] for f in payload["new"]] == ["typed-errors"]
    assert payload["new"][0]["fingerprint"]


def test_unknown_rule_is_a_typed_cli_error(capsys):
    code = analysis_main(["--rules", "no-such-rule"])
    assert code == 2  # InvalidInput exit code
    assert "unknown rule" in capsys.readouterr().err


def test_repro_cli_analyze_subcommand(tmp_path, capsys):
    _write_fixture(tmp_path)
    code = repro_main(
        [
            "analyze",
            "--root",
            str(tmp_path),
            "--no-baseline",
            "--fail-on-new",
            str(tmp_path),
        ]
    )
    assert code == 1
    assert "[typed-errors]" in capsys.readouterr().out


def test_python_dash_m_entry_point():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0
    assert "lock-discipline" in proc.stdout

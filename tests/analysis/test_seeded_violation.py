"""The CI gate catches a violation seeded into a copy of real source.

This is the end-to-end guarantee the suite exists for: take the real
``repro/serve/cluster.py``, add an out-of-lock mutation of a
lock-guarded attribute, and the gate (``--fail-on-new``) must go red —
while the pristine copy stays green against the checked-in baseline.
"""

from __future__ import annotations

import shutil
import textwrap

from repro.analysis import main as analysis_main

from .conftest import REPO_ROOT

_SEEDED_METHOD = textwrap.dedent(
    """

    def _seeded_out_of_lock_mutation(self, req_id):
        self._pending.pop(req_id, None)
    """
)


def _copy_cluster(tmp_path, *, seed_violation):
    dest = tmp_path / "repro" / "serve" / "cluster.py"
    dest.parent.mkdir(parents=True)
    shutil.copy(REPO_ROOT / "src" / "repro" / "serve" / "cluster.py", dest)
    if seed_violation:
        body = dest.read_text(encoding="utf-8")
        # appended at method indentation, so it lands inside the last class
        dest.write_text(
            body + textwrap.indent(_SEEDED_METHOD, "    "), encoding="utf-8"
        )
    return dest


def _gate(tmp_path):
    return analysis_main(
        [
            "--root",
            str(tmp_path),
            "--baseline",
            str(REPO_ROOT / "analysis-baseline.json"),
            "--rules",
            "lock-discipline",
            "--fail-on-new",
            str(tmp_path),
        ]
    )


def test_pristine_copy_passes_the_gate(tmp_path, capsys):
    _copy_cluster(tmp_path, seed_violation=False)
    assert _gate(tmp_path) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_seeded_out_of_lock_mutation_fails_the_gate(tmp_path, capsys):
    _copy_cluster(tmp_path, seed_violation=True)
    assert _gate(tmp_path) == 1
    out = capsys.readouterr().out
    assert "lock-discipline" in out
    assert "_pending" in out

"""Engine behavior: discovery, ordering determinism, parse findings."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import (
    AnalysisConfig,
    RuleOptions,
    analyze,
    default_config,
    iter_python_files,
)
from repro.errors import InvalidInput


def _write_tree(root, files):
    for relname, source in files.items():
        dest = root / relname
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(textwrap.dedent(source), encoding="utf-8")


def test_iter_python_files_is_sorted_and_skips_caches(tmp_path):
    _write_tree(
        tmp_path,
        {
            "repro/b.py": "",
            "repro/a.py": "",
            "repro/__pycache__/junk.py": "",
            "repro/sub/c.py": "",
        },
    )
    relative = [
        p.relative_to(tmp_path).as_posix()
        for p in iter_python_files([tmp_path])
    ]
    assert relative == ["repro/a.py", "repro/b.py", "repro/sub/c.py"]


def test_iter_python_files_rejects_missing_path(tmp_path):
    with pytest.raises(InvalidInput):
        list(iter_python_files([tmp_path / "nope"]))


def test_syntax_error_becomes_parse_finding(tmp_path):
    _write_tree(tmp_path, {"repro/broken.py": "def f(:\n"})
    report = analyze(tmp_path)
    assert [f.rule for f in report.findings] == ["parse"]
    assert report.findings[0].path == "repro/broken.py"
    assert "does not parse" in report.findings[0].message


def test_restricted_to_unknown_rule_raises(tmp_path):
    with pytest.raises(InvalidInput):
        default_config().restricted_to(("no-such-rule",))


def test_output_is_deterministic_across_runs(tmp_path):
    _write_tree(
        tmp_path,
        {
            "repro/zz.py": """
            import time

            def stamp():
                return time.time()

            def f():
                raise ValueError("bad")
            """,
            "repro/aa.py": """
            def g(budget_s, stall_ms):
                return budget_s + stall_ms

            def h():
                raise KeyError("x")
            """,
        },
    )
    config = AnalysisConfig(
        rules={
            "determinism": RuleOptions(),
            "typed-errors": RuleOptions(),
            "units": RuleOptions(),
        }
    ).restricted_to(("determinism", "typed-errors", "units"))
    first = analyze(tmp_path, config=config)
    second = analyze(tmp_path, config=config)
    assert first.render_text() == second.render_text()
    assert first.to_dict() == second.to_dict()
    # ordering is by location, so aa.py findings precede zz.py findings
    paths = [f.path for f in first.findings]
    assert paths == sorted(paths)
    assert len(first.findings) == 4


def test_scope_prefixes_limit_rules_to_their_layer(tmp_path):
    source = """
    import time

    def stamp():
        return time.time()
    """
    _write_tree(
        tmp_path,
        {"repro/core/model.py": source, "repro/reports/render.py": source},
    )
    config = AnalysisConfig(
        rules={"determinism": RuleOptions(include=("repro/core/",))}
    ).restricted_to(("determinism",))
    report = analyze(tmp_path, config=config)
    assert [f.path for f in report.findings] == ["repro/core/model.py"]

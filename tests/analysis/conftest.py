"""Shared fixtures for the analyzer test suite."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, RuleOptions, analyze

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def run_rule(tmp_path):
    """Run exactly one rule over a fixture snippet; return its findings.

    The snippet is written as ``repro/fixture_mod.py`` under a temp tree
    so root-relative paths look like the real ones.  ``extra`` adds more
    files (``relpath -> source``) for cross-file scenarios.
    """

    def _run(rule, source, options=None, extra=None):
        pkg = tmp_path / "repro"
        pkg.mkdir(parents=True, exist_ok=True)
        (pkg / "fixture_mod.py").write_text(
            textwrap.dedent(source), encoding="utf-8"
        )
        for relname, text in (extra or {}).items():
            dest = tmp_path / relname
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(textwrap.dedent(text), encoding="utf-8")
        config = AnalysisConfig(
            rules={rule: RuleOptions(options=options or {})}
        ).restricted_to((rule,))
        report = analyze(tmp_path, config=config)
        return report.findings

    return _run

"""One firing and one non-firing fixture per rule.

Every rule gets a minimal positive snippet (the violation it exists to
catch) and a negative snippet exercising its documented escape hatches,
so a behavior change in either direction fails loudly.
"""

from __future__ import annotations


# -- lock-discipline ---------------------------------------------------------


LOCKED_CLASS_HEADER = """\
    import threading

    class Shard:
        def __init__(self):
            self._lock = threading.Lock()
            self.pending = []

        def admit(self, job):
            with self._lock:
                self.pending.append(job)
"""


def test_lock_discipline_fires_on_unlocked_mutation(run_rule):
    findings = run_rule(
        "lock-discipline",
        LOCKED_CLASS_HEADER
        + """
        def leak(self, job):
            self.pending.append(job)
    """,
    )
    assert len(findings) == 1
    assert findings[0].rule == "lock-discipline"
    assert "Shard.pending" in findings[0].message
    assert "without holding" in findings[0].message


def test_lock_discipline_accepts_lock_and_docstring_contract(run_rule):
    findings = run_rule(
        "lock-discipline",
        LOCKED_CLASS_HEADER
        + """
        def drain(self):
            with self._lock:
                self.pending.clear()

        def drain_locked(self):
            \"\"\"Caller holds ``self._lock``.\"\"\"
            self.pending.clear()
    """,
    )
    assert findings == []


def test_lock_discipline_flags_abba_order(run_rule):
    findings = run_rule(
        "lock-discipline",
        """
        import threading

        class Two:
            def __init__(self):
                self._a_lock = threading.Lock()
                self._b_lock = threading.Lock()

            def one(self):
                with self._a_lock:
                    with self._b_lock:
                        pass

            def two(self):
                with self._b_lock:
                    with self._a_lock:
                        pass
        """,
    )
    assert len(findings) == 1
    assert "ABBA" in findings[0].message


# -- determinism -------------------------------------------------------------


def test_determinism_fires_on_wall_clock_and_set_iteration(run_rule):
    findings = run_rule(
        "determinism",
        """
        import time

        def stamp():
            return time.time()

        def order(xs):
            return [x for x in set(xs)]
        """,
    )
    rules = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert any("wall clock" in m for m in rules)
    assert any("hash-order" in m for m in rules)


def test_determinism_fires_on_unseeded_rng(run_rule):
    findings = run_rule(
        "determinism",
        """
        import random

        def draw():
            return random.random()
        """,
    )
    assert len(findings) == 1
    assert "module-global RNG" in findings[0].message


def test_determinism_accepts_monotonic_seeded_and_sorted(run_rule):
    findings = run_rule(
        "determinism",
        """
        import time
        import random
        import numpy as np  # analysis: allow(numpy-gate): fixture

        def budget():
            return time.monotonic()

        def draw(seed):
            return random.Random(seed).random()

        def draw_np(seed):
            return np.random.default_rng(seed)

        def order(xs):
            return sorted(set(xs))
        """,
    )
    assert findings == []


# -- typed-errors ------------------------------------------------------------


def test_typed_errors_fires_on_bare_stdlib_raise_and_swallow(run_rule):
    findings = run_rule(
        "typed-errors",
        """
        def f(x):
            if x is None:
                raise ValueError("missing")

        def g(fn):
            try:
                return fn()
            except Exception:
                pass
        """,
    )
    assert len(findings) == 2
    messages = sorted(f.message for f in findings)
    assert any("bare stdlib ValueError" in m for m in messages)
    assert any("swallows" in m for m in messages)


def test_typed_errors_accepts_taxonomy_and_conversion(run_rule):
    findings = run_rule(
        "typed-errors",
        """
        class ReproError(Exception):
            exit_code = 1

        class InvalidInput(ReproError, ValueError):
            pass

        def f(x):
            if x is None:
                raise InvalidInput("missing")

        def g(fn):
            try:
                return fn()
            except Exception as exc:
                raise InvalidInput(str(exc)) from exc
        """,
    )
    assert findings == []


def test_typed_errors_taxonomy_graph_is_cross_file(run_rule):
    findings = run_rule(
        "typed-errors",
        """
        from repro.fixture_errors import LocalParseError

        def f(text):
            if not text:
                raise LocalParseError("empty")
        """,
        extra={
            "repro/fixture_errors.py": """
            class ReproError(Exception):
                pass

            class ParseError(ReproError, ValueError):
                pass

            class LocalParseError(ParseError):
                pass
            """,
        },
    )
    assert findings == []


def test_typed_errors_inline_allow_comment_suppresses(run_rule):
    findings = run_rule(
        "typed-errors",
        """
        def f():
            raise KeyError("x")  # analysis: allow(typed-errors): fixture reason
        """,
    )
    assert findings == []


def test_typed_errors_allow_classes_option(run_rule):
    source = """
        class CacheCorrupt(Exception):
            pass

        def f():
            raise CacheCorrupt("bad crc")
    """
    assert run_rule("typed-errors", source) != []
    assert (
        run_rule(
            "typed-errors", source, options={"allow_classes": ("CacheCorrupt",)}
        )
        == []
    )


# -- numpy-gate --------------------------------------------------------------


def test_numpy_gate_fires_on_naked_top_level_import(run_rule):
    findings = run_rule(
        "numpy-gate",
        """
        import numpy as np

        def f(xs):
            return np.asarray(xs)
        """,
    )
    assert len(findings) == 1
    assert "MissingDependency gate" in findings[0].message


def test_numpy_gate_accepts_soft_import_and_lazy_import(run_rule):
    findings = run_rule(
        "numpy-gate",
        """
        try:
            import numpy as np
        except ImportError:
            np = None

        def f(xs):
            import numpy
            return numpy.asarray(xs)
        """,
    )
    assert findings == []


# -- units -------------------------------------------------------------------


def test_units_fires_on_mixed_arithmetic_and_comparison(run_rule):
    findings = run_rule(
        "units",
        """
        def f(budget_s, stall_ms):
            return budget_s + stall_ms

        def g(deadline_s, timeout_ms):
            return deadline_s < timeout_ms
        """,
    )
    assert len(findings) == 2
    assert all("mixes units" in f.message for f in findings)
    assert "[s]" in findings[0].message and "[ms]" in findings[0].message


def test_units_accepts_same_unit_and_explicit_conversion(run_rule):
    findings = run_rule(
        "units",
        """
        def f(budget_s, extra_s, stall_ms):
            total_s = budget_s + extra_s
            return total_s + stall_ms / 1e3

        def g(size_bytes, rate_bytes_per_s):
            return size_bytes / rate_bytes_per_s
        """,
    )
    assert findings == []


# -- obs-hygiene -------------------------------------------------------------

_OBS_OPTIONS = {
    "declared_names": ("serve.requests",),
    "declared_prefixes": ("serve.errors.",),
}


def test_obs_hygiene_fires_on_undeclared_metric_name(run_rule):
    findings = run_rule(
        "obs-hygiene",
        """
        def publish(registry):
            registry.counter("serve.requets").inc(1)
        """,
        options=_OBS_OPTIONS,
    )
    assert len(findings) == 1
    assert "not declared" in findings[0].message


def test_obs_hygiene_fires_on_span_outside_with(run_rule):
    findings = run_rule(
        "obs-hygiene",
        """
        def leak(trace_span):
            span = trace_span("reconfig")
            return span
        """,
    )
    assert len(findings) == 1
    assert "unclosed span" in findings[0].message


def test_obs_hygiene_accepts_declared_names_and_with_spans(run_rule):
    findings = run_rule(
        "obs-hygiene",
        """
        def publish(registry, code):
            registry.counter("serve.requests").inc(1)
            registry.counter(f"serve.errors.{code}").inc(1)

        def span_user(trace_span):
            with trace_span("reconfig") as span:
                return span

        def forward(trace_span):
            return trace_span("inner")
        """,
        options=_OBS_OPTIONS,
    )
    assert findings == []

"""Baseline round-trip, multiset matching, and staleness detection."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Finding,
    diff_findings,
    load_baseline,
    write_baseline,
)
from repro.errors import ParseError


def _finding(line=3, source="raise ValueError('x')", path="repro/mod.py"):
    return Finding(
        rule="typed-errors",
        path=path,
        line=line,
        col=4,
        message="raises bare stdlib ValueError outside the ReproError taxonomy",
        hint="",
        source_line=source,
    )


def test_round_trip_matches_everything(tmp_path):
    findings = [_finding(), _finding(line=9, source="raise KeyError('y')")]
    path = tmp_path / "baseline.json"
    write_baseline(path, findings, {findings[0].fingerprint: "legacy contract"})
    baseline = load_baseline(path)
    assert len(baseline) == 2
    assert baseline.justifications[findings[0].fingerprint] == "legacy contract"
    assert baseline.justifications[findings[1].fingerprint] == "TODO: justify or fix"

    diff = diff_findings(findings, baseline)
    assert diff.new == ()
    assert diff.stale == ()
    assert len(diff.baselined) == 2


def test_fingerprint_survives_line_moves_but_not_edits():
    moved = _finding(line=42)
    edited = _finding(source="raise ValueError('other')")
    assert moved.fingerprint == _finding().fingerprint
    assert edited.fingerprint != _finding().fingerprint


def test_multiset_semantics_each_entry_excuses_one_occurrence(tmp_path):
    # two identical offending lines share a fingerprint
    twins = [_finding(line=3), _finding(line=30)]
    path = tmp_path / "baseline.json"
    write_baseline(path, twins[:1])  # baseline only covers ONE of them
    diff = diff_findings(twins, load_baseline(path))
    assert len(diff.baselined) == 1
    assert len(diff.new) == 1


def test_fixed_finding_leaves_stale_entry(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [_finding()])
    diff = diff_findings([], load_baseline(path))
    assert diff.new == ()
    assert len(diff.stale) == 1
    assert diff.stale[0]["fingerprint"] == _finding().fingerprint


def test_missing_baseline_is_empty_and_garbage_is_typed_error(tmp_path):
    assert len(load_baseline(tmp_path / "absent.json")) == 0
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ParseError):
        load_baseline(bad)
    no_entries = tmp_path / "no_entries.json"
    no_entries.write_text(json.dumps({"version": 1}), encoding="utf-8")
    with pytest.raises(ParseError):
        load_baseline(no_entries)


def test_written_baseline_is_deterministic(tmp_path):
    findings = [_finding(line=9, source="raise KeyError('y')"), _finding()]
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    write_baseline(first, findings)
    write_baseline(second, list(reversed(findings)))
    assert first.read_text() == second.read_text()

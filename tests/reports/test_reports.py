"""Tests for paper table/figure regeneration."""

import pytest

from repro.reports.figures import fig1_traces, fig2_structure, render_fig2
from repro.reports.tables import (
    render_grid,
    retighten_outcomes,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)

from tests.conftest import (
    PAPER_GEOMETRY,
    PAPER_POST_IMPL,
    PAPER_RU,
    PAPER_SYNTH,
    TABLE7_BYTES,
)


class TestStaticTables:
    def test_table1_glossary(self):
        rows = table1()
        assert {"parameter", "description"} == set(rows[0])
        assert any(r["parameter"] == "PRR_size" for r in rows)

    def test_table2_values(self):
        rows = {r["parameter"]: r for r in table2()}
        assert rows["CLB_col"] == {
            "parameter": "CLB_col",
            "virtex4": 16,
            "virtex5": 20,
            "virtex6": 40,
        }
        assert rows["FF_CLB"]["virtex6"] == 16

    def test_table3_glossary(self):
        assert any(r["parameter"] == "S_bitstream" for r in table3())

    def test_table4_values(self):
        rows = {r["parameter"]: r for r in table4()}
        assert rows["FR_size"] == {
            "parameter": "FR_size",
            "virtex4": 41,
            "virtex5": 41,
            "virtex6": 81,
        }
        assert rows["DF_BRAM"]["virtex5"] == 128


@pytest.fixture(scope="module")
def t5():
    return table5()


@pytest.fixture(scope="module")
def t6():
    return table6()


class TestTable5:
    def test_all_six_cases_present(self, t5):
        assert len(t5) == 6

    def test_matches_reference(self, t5):
        for (workload, device_name), row in t5.items():
            family = "virtex5" if "5v" in device_name else "virtex6"
            pairs, luts, ffs, dsps, brams = PAPER_SYNTH[(workload, family)]
            assert row["LUT_FF_req"] == pairs
            h, w_clb, w_dsp, w_bram = PAPER_GEOMETRY[(workload, device_name)]
            assert (row["H_CLB"], row["W_CLB"], row["W_DSP"], row["W_BRAM"]) == (
                h,
                w_clb,
                w_dsp,
                w_bram,
            )
            clb, ff, lut, dsp, bram = PAPER_RU[(workload, device_name)]
            assert row["RU_CLB"] == clb and row["RU_DSP"] == dsp


class TestTable6:
    def test_post_counts(self, t6):
        for (workload, device_name), row in t6.items():
            family = "virtex5" if "5v" in device_name else "virtex6"
            pairs, luts, ffs = PAPER_POST_IMPL[(workload, family)]
            assert row["LUT_FF_req"] == pairs
            assert row["LUT_req"] == luts
            assert row["FF_req"] == ffs

    def test_dsp_bram_savings_zero(self, t6):
        for row in t6.values():
            assert row["savings_pct"]["DSP_req"] == 0.0
            assert row["savings_pct"]["BRAM_req"] == 0.0

    def test_all_original_runs_routed(self, t6):
        assert all(row["routed"] for row in t6.values())

    def test_fir_v5_headline_savings(self, t6):
        savings = t6[("fir", "xc5vlx110t")]["savings_pct"]
        assert savings["LUT_FF_req"] == pytest.approx(16.8, abs=0.05)
        assert savings["CLB_req"] == pytest.approx(16.6, abs=0.05)


class TestTable7:
    def test_model_values(self):
        rows = table7()
        for key, row in rows.items():
            assert row["model_bytes"] == TABLE7_BYTES[key]
            assert row["generated_bytes"] == row["model_bytes"]


class TestTable8:
    def test_runtimes_in_paper_range(self):
        for row in table8().values():
            # Table VIII: synthesis 3m20s-4m50s, implementation 2m55s-5m50s.
            assert 150 <= row["synthesis_seconds"] <= 300
            assert 150 <= row["implementation_seconds"] <= 360


class TestRetightenOutcomes:
    def test_paper_outcomes(self):
        outcomes = retighten_outcomes()
        assert outcomes[("sdram", "xc5vlx110t")].unchanged
        assert outcomes[("sdram", "xc6vlx75t")].unchanged
        assert outcomes[("fir", "xc5vlx110t")].clb_column_rows_saved == 2
        assert outcomes[("fir", "xc6vlx75t")].clb_column_rows_saved == 1
        assert outcomes[("mips", "xc5vlx110t")].succeeded
        assert not outcomes[("mips", "xc6vlx75t")].succeeded


class TestRenderGrid:
    def test_aligned_output(self):
        text = render_grid([{"a": 1, "bb": 22}, {"a": 333, "bb": 4}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_empty(self):
        assert render_grid([]) == "(empty)"


class TestFigures:
    def test_fig1_traces_cover_cases(self):
        traces = fig1_traces()
        assert len(traces) == 6
        fir_trace = traces[("fir", "xc5vlx110t")]
        assert fir_trace.selected.geometry.rows == 5

    def test_fig2_structure(self):
        parsed = fig2_structure()
        # Two rows, each with a config block and a BRAM-init block.
        assert parsed.rows == 2
        assert len(parsed.bram_blocks) == 2
        assert parsed.crc_ok

    def test_fig2_render(self):
        text = render_fig2(fig2_structure())
        assert "BRAM init" in text and "configuration" in text

"""Tests for the one-shot reproduction report."""

import pytest

from repro.reports.experiments import generate_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report()


class TestGenerateReport:
    def test_contains_every_table(self, report_text):
        for heading in (
            "Table II",
            "Table IV",
            "Table V",
            "Table VI",
            "Table VII",
            "Table VIII",
            "Fig. 1",
            "Fig. 2",
        ):
            assert heading in report_text

    def test_contains_headline_numbers(self, report_text):
        # Table V geometry, Table VII size, Table VI savings.
        assert "83040" in report_text
        assert "188728" in report_text
        assert "16.8" in report_text

    def test_retighten_section_shows_mips_v6_failure(self, report_text):
        lines = [
            line
            for line in report_text.splitlines()
            if line.startswith("mips") and "xc6vlx75t" in line
        ]
        retighten_lines = [l for l in lines if "False" in l]
        assert retighten_lines  # the routed=False row is present

    def test_cli_report_command(self, capsys):
        from repro.cli import main

        assert main(["report"]) == 0
        assert "REPRODUCTION REPORT" in capsys.readouterr().out

"""Golden-file regression tests for the paper tables (V–VIII).

Each table's rendered grid is compared byte-for-byte against a checked-in
reference under ``tests/reports/golden/``.  Any model change that moves a
published number shows up as a readable text diff; deliberate changes are
blessed with ``pytest --update-golden``.
"""

from pathlib import Path

import pytest

from repro.reports import tables as report_tables

GOLDEN_DIR = Path(__file__).parent / "golden"

TABLE_NUMBERS = (5, 6, 7, 8)


def render_table(number: int) -> str:
    """Render a paper table exactly like ``repro-fpga table <n>`` prints it."""
    data = getattr(report_tables, f"table{number}")()
    rows = []
    for (prm, device_name), cells in data.items():
        row = {"prm": prm, "device": device_name}
        row.update(cells)
        rows.append(row)
    return report_tables.render_grid(rows) + "\n"


@pytest.mark.parametrize("number", TABLE_NUMBERS)
def test_table_matches_golden(number, update_golden):
    rendered = render_table(number)
    golden_path = GOLDEN_DIR / f"table{number}.txt"
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(rendered, encoding="utf-8")
        return
    assert golden_path.exists(), (
        f"missing golden file {golden_path}; run `pytest --update-golden` "
        "to create it"
    )
    assert rendered == golden_path.read_text(encoding="utf-8"), (
        f"table {number} drifted from its golden rendering; if the change "
        "is intentional, bless it with `pytest --update-golden`"
    )

"""Tests for prior-work cost models and their documented weaknesses."""

import pytest

from repro.baselines import claus, duhem_farm, liu_dma, papadimitriou
from repro.icap.controllers import DmaIcapController
from repro.icap.reconfig import simulate_reconfiguration
from repro.icap.storage import COMPACT_FLASH, DDR_SDRAM


class TestPapadimitriou:
    def test_estimate_scales_with_size(self):
        small = papadimitriou.estimate(10_000, COMPACT_FLASH)
        large = papadimitriou.estimate(100_000, COMPACT_FLASH)
        assert large.seconds == pytest.approx(10 * small.seconds)

    def test_error_band(self):
        low, high = papadimitriou.error_band(1.0)
        assert low == pytest.approx(0.4)
        assert high == pytest.approx(1.6)

    def test_error_reproduces_survey_band(self):
        """The survey reports 30-60% error vs measurement; the model's
        error against our simulator lands inside that band (reproducing
        the inaccuracy the paper's Section II cites)."""
        nbytes = 157_272  # MIPS/V5 partial bitstream
        model = papadimitriou.estimate(nbytes, COMPACT_FLASH).seconds
        measured = simulate_reconfiguration(
            nbytes, DmaIcapController(), COMPACT_FLASH
        ).total_seconds
        error = abs(model - measured) / measured
        assert 0.30 <= error <= 0.60

    def test_underestimates_when_media_not_bottleneck(self):
        """With fast storage the ICAP bounds throughput and a media-only
        model underestimates — the 'partial method' weakness."""
        nbytes = 157_272
        model = papadimitriou.estimate(nbytes, DDR_SDRAM).seconds
        measured = simulate_reconfiguration(
            nbytes, DmaIcapController(), DDR_SDRAM
        ).total_seconds
        assert model < measured

    def test_validation(self):
        with pytest.raises(ValueError):
            papadimitriou.estimate(-1, COMPACT_FLASH)
        with pytest.raises(ValueError):
            papadimitriou.error_band(-1)


class TestClaus:
    def test_peak_throughput(self):
        est = claus.estimate(400_000_000)
        assert est.seconds == pytest.approx(1.0)

    def test_busy_factor(self):
        est = claus.estimate(400_000_000, busy_factor=0.75)
        assert est.seconds == pytest.approx(4.0)

    def test_only_valid_when_icap_limits(self):
        """The paper's criticism: with a slow medium the Claus model
        underestimates badly."""
        nbytes = 157_272
        model = claus.estimate(nbytes).seconds
        measured = simulate_reconfiguration(
            nbytes, DmaIcapController(), COMPACT_FLASH
        ).total_seconds
        assert measured > 50 * model  # wildly optimistic off its domain
        measured_fast = simulate_reconfiguration(
            nbytes, DmaIcapController(), DDR_SDRAM
        ).total_seconds
        assert measured_fast < 2 * model  # fine when ICAP dominates

    def test_validation(self):
        with pytest.raises(ValueError):
            claus.estimate(-1)
        with pytest.raises(ValueError):
            claus.estimate(1, busy_factor=1.0)


class TestDuhemFarm:
    def test_overlap_mode(self):
        est = duhem_farm.estimate(1_000_000, overlapped=True)
        assert est.seconds == pytest.approx(
            max(est.preload_seconds, est.write_seconds)
        )

    def test_serial_mode(self):
        est = duhem_farm.estimate(1_000_000, overlapped=False)
        assert est.seconds == pytest.approx(
            est.preload_seconds + est.write_seconds
        )

    def test_compression_cuts_preload_only(self):
        plain = duhem_farm.estimate(1_000_000, compression_ratio=1.0)
        packed = duhem_farm.estimate(1_000_000, compression_ratio=0.5)
        assert packed.preload_seconds == pytest.approx(
            plain.preload_seconds / 2
        )
        assert packed.write_seconds == plain.write_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            duhem_farm.estimate(-1)
        with pytest.raises(ValueError):
            duhem_farm.estimate(1, compression_ratio=1.5)


class TestLiuDma:
    def test_dma_beats_cpu_beats_pc(self):
        points = liu_dma.compare_designs(157_272)
        order = [p.design for p in points]
        assert order.index("dma_icap") < order.index("cpu_icap") < order.index(
            "pc_jtag"
        )

    def test_sorted_fastest_first(self):
        points = liu_dma.compare_designs(50_000)
        times = [p.seconds for p in points]
        assert times == sorted(times)

    def test_throughput_property(self):
        point = liu_dma.compare_designs(100_000)[0]
        assert point.bytes_per_s == pytest.approx(
            point.bitstream_bytes / point.seconds
        )

"""Integration tests: the full designer workflow across all subsystems."""

import pytest

from repro.bitgen.generator import generate_partial_bitstream
from repro.bitgen.parser import parse_bitstream
from repro.core.api import evaluate_prm
from repro.core.explorer import explore, pareto_front
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T, XC5VLX50T, XC6VLX75T
from repro.icap.controllers import DmaIcapController
from repro.icap.reconfig import simulate_reconfiguration
from repro.icap.storage import DDR_SDRAM
from repro.multitask.metrics import compare
from repro.multitask.scheduler import simulate_full_reconfig, simulate_pr
from repro.multitask.tasks import HwTask, make_task_set
from repro.par.flow import implement
from repro.synth.report import parse_syr, render_syr
from repro.synth.xst import synthesize
from repro.workloads import (
    build_aes,
    build_fir,
    build_mips,
    build_sdram,
    build_uart,
)


class TestDesignerWorkflow:
    """The paper's intended usage: synthesize once, model everything."""

    def test_netlist_to_reconfig_time(self):
        family = XC5VLX110T.family
        report = synthesize(build_fir(family), family)
        result = evaluate_prm(report.requirements, XC5VLX110T)
        sim = simulate_reconfiguration(
            result.bitstream.total_bytes, DmaIcapController(), DDR_SDRAM
        )
        # The analytical estimate and the simulator agree within the DMA
        # controller's efficiency factor.
        assert sim.total_seconds == pytest.approx(
            result.reconfig.seconds, rel=0.10
        )

    def test_syr_text_pipeline(self):
        """A user with only .syr text can run the whole flow."""
        family = XC5VLX110T.family
        text = render_syr(synthesize(build_mips(family), family))
        report = parse_syr(text)
        result = evaluate_prm(report.requirements, XC5VLX110T)
        assert result.placement.geometry.columns.clb == 17

    def test_model_then_implement_then_bitgen(self):
        family = XC6VLX75T.family
        report = synthesize(build_sdram(family), family)
        placed = find_prr(XC6VLX75T, report.requirements)
        impl = implement(report, XC6VLX75T, placed.region)
        assert impl.succeeded
        bitstream = generate_partial_bitstream(
            XC6VLX75T, placed.region, design_name="sdram"
        )
        parsed = parse_bitstream(bitstream.to_bytes())
        assert parsed.crc_ok
        assert parsed.size_bytes == placed.bitstream_bytes


class TestPortability:
    """The paper's portability claim: same models, different devices."""

    def test_uncalibrated_fir_on_smaller_v5_part(self):
        family = XC5VLX50T.family
        report = synthesize(build_fir(family, calibrated=False), family)
        result = evaluate_prm(report.requirements, XC5VLX50T)
        assert result.placement.geometry.columns.dsp == 1  # single DSP col
        assert result.bitstream.total_bytes > 0

    def test_extras_place_on_both_devices(self):
        for device in (XC5VLX110T, XC6VLX75T):
            family = device.family
            for builder in (build_aes, build_uart):
                report = synthesize(builder(), family)
                placed = find_prr(device, report.requirements)
                assert device.is_valid_prr(placed.region)


class TestExplorationToMultitasking:
    def test_explore_feeds_scheduler(self):
        family = XC6VLX75T.family
        prms = [
            synthesize(build_fir(family), family).requirements,
            synthesize(build_sdram(family), family).requirements,
        ]
        designs = explore(XC6VLX75T, prms)
        best = pareto_front(designs)[0]
        geometries = [a.placement.geometry for a in best.assignments]

        tasks = [HwTask(prm, exec_seconds=0.001) for prm in prms]
        jobs = make_task_set(tasks, rate_per_s=300, horizon_s=0.2, seed=11)
        # Shared-PRR designs can schedule any task anywhere; per-task PRRs
        # rely on the scheduler's fit check.
        pr = simulate_pr(jobs, geometries)
        full = simulate_full_reconfig(jobs, XC6VLX75T)
        comparison = compare(pr, full)
        assert comparison.makespan_speedup > 1.0

    def test_mips_everywhere(self):
        """MIPS, the heaviest PRM, exercises every subsystem at once."""
        family = XC6VLX75T.family
        report = synthesize(build_mips(family), family)
        result = evaluate_prm(report.requirements, XC6VLX75T)
        assert result.bitstream.bram_words_per_row > 0
        impl = implement(report, XC6VLX75T, result.placement.region)
        assert impl.succeeded
        parsed = parse_bitstream(
            generate_partial_bitstream(
                XC6VLX75T, result.placement.region
            ).to_bytes()
        )
        assert parsed.section_bytes()["total"] == result.bitstream.total_bytes

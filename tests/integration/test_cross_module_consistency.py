"""Cross-module consistency: independent implementations must agree.

Several quantities are computed twice in this library by design — an
analytical path (the paper's formulas) and a structural path (walking the
fabric / the bitstream).  These tests pin the agreements.
"""

import pytest

from repro.bitgen import generate_partial_bitstream
from repro.core import (
    estimate_bitstream,
    find_prr,
    full_device_bitstream_bytes,
)
from repro.core.bitstream_model import config_frames_per_row
from repro.core.shapes import CompositePRR, composite_bitstream_bytes
from repro.devices import XC5VLX110T, XC6VLX75T
from repro.devices.frames import region_frame_counts
from repro.multitask.preemptive import context_bytes
from repro.relocation import ConfigMemory, save_context

from tests.conftest import paper_requirements

CASES = [
    ("fir", XC5VLX110T),
    ("mips", XC5VLX110T),
    ("sdram", XC5VLX110T),
    ("fir", XC6VLX75T),
    ("mips", XC6VLX75T),
    ("sdram", XC6VLX75T),
]


@pytest.fixture(scope="module")
def placements():
    return {
        (name, device.name): find_prr(
            device, paper_requirements(name, device.family.name)
        )
        for name, device in CASES
    }


class TestFrameAccounting:
    @pytest.mark.parametrize("name,device", CASES, ids=lambda x: getattr(x, "name", x))
    def test_analytical_vs_fabric_walk(self, placements, name, device):
        """Eqs. (20)-(22) vs walking the actual columns of the region."""
        placed = placements[(name, device.name)]
        analytical = config_frames_per_row(
            device.family, placed.geometry.columns
        )
        walked = region_frame_counts(device, placed.region)
        assert walked.config_frames == analytical
        assert (
            walked.bram_content_frames
            == placed.geometry.columns.bram * device.family.df_bram
        )

    @pytest.mark.parametrize("name,device", CASES, ids=lambda x: getattr(x, "name", x))
    def test_context_bytes_vs_memory_snapshot(self, placements, name, device):
        """The preemption cost model's snapshot size equals the actual
        configuration-memory readback size."""
        placed = placements[(name, device.name)]
        bitstream = generate_partial_bitstream(
            device, placed.region, design_name=name
        )
        memory = ConfigMemory(device)
        memory.configure(bitstream.to_bytes())
        context = save_context(memory, placed.region, task_name=name)
        assert context.size_bytes == context_bytes(placed.geometry)


class TestBitstreamAccounting:
    @pytest.mark.parametrize("name,device", CASES, ids=lambda x: getattr(x, "name", x))
    def test_rectangle_as_composite(self, placements, name, device):
        """A 1-part composite prices exactly like the rectangular model."""
        placed = placements[(name, device.name)]
        composite = CompositePRR(device=device, parts=(placed.region,))
        assert composite_bitstream_bytes(composite) == (
            estimate_bitstream(placed.geometry).total_bytes
        )

    def test_full_device_exceeds_sum_of_disjoint_prrs(self, placements):
        """The full bitstream covers strictly more than all paper PRRs of
        a device combined (IOB/CLK frames + the rest of the fabric)."""
        for device in (XC5VLX110T, XC6VLX75T):
            total_partial = sum(
                placements[(name, device.name)].bitstream_bytes
                for name in ("fir", "mips", "sdram")
            )
            assert full_device_bitstream_bytes(device) > total_partial

    @pytest.mark.parametrize("name,device", CASES, ids=lambda x: getattr(x, "name", x))
    def test_reconfig_time_consistency(self, placements, name, device):
        """core.reconfig_model and icap simulation agree when the
        configuration port is the only stage."""
        from repro.core import estimate_reconfig_time
        from repro.icap import BRAM_CACHE, FarmController, simulate_reconfiguration

        nbytes = placements[(name, device.name)].bitstream_bytes
        analytical = estimate_reconfig_time(nbytes).seconds
        simulated = simulate_reconfiguration(
            nbytes,
            FarmController(setup_s=0.0),  # 400 MB/s, no setup
            BRAM_CACHE,
        ).total_seconds
        assert simulated == pytest.approx(analytical, rel=0.01)


class TestRequirementsRoundTrip:
    @pytest.mark.parametrize("name,device", CASES, ids=lambda x: getattr(x, "name", x))
    def test_table5_row_is_self_consistent(self, placements, name, device):
        from repro.core import evaluate_prm

        prm = paper_requirements(name, device.family.name)
        row = evaluate_prm(prm, device).table5_row()
        # Pair identities.
        assert row["LUT_FF_req"] >= max(row["LUT_req"], row["FF_req"])
        assert row["LUT_FF_req"] <= row["LUT_req"] + row["FF_req"]
        # Geometry identities (eq. (7) decomposition).
        width = row["W_CLB"] + row["W_DSP"] + row["W_BRAM"]
        assert width == placements[(name, device.name)].geometry.width
        # RU never exceeds 100 for a feasible placement.
        for key in ("RU_CLB", "RU_FF", "RU_LUT", "RU_DSP", "RU_BRAM"):
            assert 0 <= row[key] <= 100

"""Unit tests for storage media, controllers and reconfiguration simulation."""

import pytest

from repro.icap.controllers import (
    DmaIcapController,
    FarmController,
    IcapController,
    PCController,
)
from repro.icap.reconfig import simulate_reconfiguration
from repro.icap.storage import (
    BRAM_CACHE,
    COMPACT_FLASH,
    DDR_SDRAM,
    STORAGE_MEDIA,
    StorageMedium,
)


class TestStorage:
    def test_catalog_complete(self):
        assert set(STORAGE_MEDIA) == {
            "compact_flash",
            "system_ace",
            "platform_flash",
            "ddr_sdram",
            "bram_cache",
        }

    def test_fetch_seconds(self):
        medium = StorageMedium("m", read_bytes_per_s=1e6, access_latency_s=1e-3)
        assert medium.fetch_seconds(1_000_000) == pytest.approx(1.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            StorageMedium("m", read_bytes_per_s=0, access_latency_s=0)
        with pytest.raises(ValueError):
            StorageMedium("m", read_bytes_per_s=1, access_latency_s=-1)
        with pytest.raises(ValueError):
            COMPACT_FLASH.fetch_seconds(-1)

    def test_validation_messages_name_the_medium_and_value(self):
        with pytest.raises(ValueError, match=r"m: read_bytes_per_s.*-5"):
            StorageMedium("m", read_bytes_per_s=-5, access_latency_s=0)
        with pytest.raises(ValueError, match=r"m: access_latency_s.*-0.1"):
            StorageMedium("m", read_bytes_per_s=1, access_latency_s=-0.1)
        with pytest.raises(ValueError, match="non-empty name"):
            StorageMedium("", read_bytes_per_s=1, access_latency_s=0)

    def test_bandwidth_ordering(self):
        assert (
            COMPACT_FLASH.read_bytes_per_s
            < DDR_SDRAM.read_bytes_per_s
            < BRAM_CACHE.read_bytes_per_s
        )


class TestControllers:
    def test_cpu_icap_is_slow(self):
        cpu = IcapController()
        dma = DmaIcapController()
        assert cpu.write_seconds(100_000) > dma.write_seconds(100_000)

    def test_dma_near_theoretical(self):
        dma = DmaIcapController()
        assert dma.peak_bytes_per_s == pytest.approx(0.95 * 400e6)

    def test_busy_factor_degrades_peak(self):
        clean = DmaIcapController()
        busy = DmaIcapController(busy_factor=0.5)
        assert busy.peak_bytes_per_s == pytest.approx(clean.peak_bytes_per_s / 2)

    def test_farm_compression_shrinks_time(self):
        plain = FarmController()
        squeezed = FarmController(compression_ratio=0.5)
        assert squeezed.write_seconds(1_000_000) < plain.write_seconds(1_000_000)

    def test_pc_is_slowest(self):
        n = 100_000
        assert PCController().write_seconds(n) > IcapController().write_seconds(n)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IcapController(efficiency=0)
        with pytest.raises(ValueError):
            DmaIcapController(busy_factor=1.0)
        with pytest.raises(ValueError):
            FarmController(compression_ratio=0)
        with pytest.raises(ValueError):
            IcapController().write_seconds(-1)

    def test_construction_rejects_degenerate_throughputs(self):
        # Zero/negative port parameters would yield infinite or negative
        # write times; they must fail loudly at construction.
        with pytest.raises(ValueError, match="width_bytes"):
            IcapController(width_bytes=0)
        with pytest.raises(ValueError, match="clock_hz"):
            DmaIcapController(clock_hz=-1e6)
        with pytest.raises(ValueError, match="clock_hz"):
            FarmController(clock_hz=0)
        with pytest.raises(ValueError, match="bytes_per_s"):
            PCController(bytes_per_s=0)

    def test_construction_rejects_negative_setup(self):
        with pytest.raises(ValueError, match="setup_s"):
            PCController(setup_s=-1e-3)
        with pytest.raises(ValueError, match="setup_s"):
            DmaIcapController(setup_s=-1e-6)
        with pytest.raises(ValueError, match="setup_s"):
            FarmController(setup_s=-1e-6)

    def test_validation_messages_name_controller_and_value(self):
        with pytest.raises(ValueError, match=r"cpu_icap: efficiency.*0"):
            IcapController(efficiency=0)
        with pytest.raises(ValueError, match=r"dma_icap: busy_factor.*1.0"):
            DmaIcapController(busy_factor=1.0)


class TestSimulation:
    def test_overlap_takes_max(self):
        result = simulate_reconfiguration(
            1_000_000, DmaIcapController(), COMPACT_FLASH, overlap=True
        )
        assert result.total_seconds == pytest.approx(
            max(result.fetch_seconds, result.write_seconds)
        )

    def test_serial_takes_sum(self):
        result = simulate_reconfiguration(
            1_000_000, DmaIcapController(), COMPACT_FLASH, overlap=False
        )
        assert result.total_seconds == pytest.approx(
            result.fetch_seconds + result.write_seconds
        )

    def test_slow_media_dominates(self):
        result = simulate_reconfiguration(
            1_000_000, DmaIcapController(), COMPACT_FLASH
        )
        assert result.fetch_seconds > result.write_seconds
        assert result.effective_bytes_per_s < 3e6

    def test_fast_media_exposes_controller(self):
        result = simulate_reconfiguration(1_000_000, IcapController(), BRAM_CACHE)
        assert result.write_seconds > result.fetch_seconds

    def test_unit_helpers(self):
        result = simulate_reconfiguration(400_000, DmaIcapController(), DDR_SDRAM)
        assert result.total_microseconds == pytest.approx(
            result.total_seconds * 1e6
        )

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            simulate_reconfiguration(-1, DmaIcapController(), DDR_SDRAM)

"""Tests for shared-ICAP contention in the scheduler."""

import pytest

from repro.core.params import PRMRequirements
from repro.core.prr_model import PRRGeometry
from repro.devices.family import VIRTEX5
from repro.devices.resources import ResourceVector
from repro.multitask.scheduler import simulate_pr
from repro.multitask.tasks import HwTask, Job

PRR = PRRGeometry(VIRTEX5, rows=1, columns=ResourceVector(clb=3))


def burst_jobs(n=4, exec_seconds=1e-4):
    """n distinct tasks arriving simultaneously — maximal ICAP contention."""
    jobs = []
    for i in range(n):
        task = HwTask(
            PRMRequirements(f"t{i}", 100, 80, 60), exec_seconds=exec_seconds
        )
        jobs.append(Job(task, arrival_seconds=0.0, job_id=i))
    return jobs


class TestIcapExclusive:
    def test_serialized_reconfigs_extend_makespan(self):
        jobs = burst_jobs(4)
        parallel = simulate_pr(jobs, [PRR] * 4, icap_exclusive=False)
        serialized = simulate_pr(jobs, [PRR] * 4, icap_exclusive=True)
        assert serialized.makespan_seconds > parallel.makespan_seconds

    def test_no_two_reconfigs_overlap_when_exclusive(self):
        jobs = burst_jobs(4)
        result = simulate_pr(jobs, [PRR] * 4, icap_exclusive=True)
        windows = sorted(
            (j.start - j.reconfig_seconds, j.start)
            for j in result.completed
            if j.reconfig_seconds
        )
        for (a_start, a_end), (b_start, b_end) in zip(windows, windows[1:]):
            assert b_start >= a_end - 1e-12

    def test_reconfig_totals_identical_either_way(self):
        jobs = burst_jobs(4)
        parallel = simulate_pr(jobs, [PRR] * 4, icap_exclusive=False)
        serialized = simulate_pr(jobs, [PRR] * 4, icap_exclusive=True)
        assert parallel.total_reconfig_seconds == pytest.approx(
            serialized.total_reconfig_seconds
        )
        assert parallel.reconfig_count == serialized.reconfig_count

    def test_busy_factor_reported(self):
        jobs = burst_jobs(4, exec_seconds=1e-5)
        result = simulate_pr(jobs, [PRR] * 4, icap_exclusive=True)
        assert 0.0 < result.icap_busy_factor <= 1.0
        # Back-to-back serialized reconfigs with tiny exec: port nearly
        # saturated.
        assert result.icap_busy_factor > 0.8

    def test_single_prr_unaffected_by_exclusivity(self):
        jobs = burst_jobs(3)
        a = simulate_pr(jobs, [PRR], icap_exclusive=False)
        b = simulate_pr(jobs, [PRR], icap_exclusive=True)
        assert a.makespan_seconds == pytest.approx(b.makespan_seconds)

    def test_claus_busy_factor_predicts_contended_time(self):
        """Closing the loop with the Claus model: its busy-factor estimate
        with the realized busy factor bounds a contended reconfiguration."""
        from repro.baselines import claus
        from repro.core.bitstream_model import bitstream_size_bytes

        jobs = burst_jobs(4, exec_seconds=1e-5)
        result = simulate_pr(jobs, [PRR] * 4, icap_exclusive=True)
        nbytes = bitstream_size_bytes(PRR)
        uncontended = claus.estimate(nbytes).seconds
        # The last of 4 serialized reconfigs waits ~3 reconfig times.
        last = max(
            j.start for j in result.completed if j.reconfig_seconds
        )
        assert last >= 3 * uncontended - 1e-12

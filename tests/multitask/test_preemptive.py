"""Tests for preemptive scheduling with context save/restore costs."""

import pytest

from repro.core.params import PRMRequirements
from repro.core.prr_model import PRRGeometry
from repro.devices.family import VIRTEX5
from repro.devices.resources import ResourceVector
from repro.multitask.preemptive import (
    PriorityJob,
    context_bytes,
    simulate_preemptive,
)
from repro.multitask.tasks import HwTask

PRR = PRRGeometry(VIRTEX5, rows=1, columns=ResourceVector(clb=3))
PRM = PRMRequirements("small", 100, 80, 60)


def job(job_id, arrival, priority, exec_seconds=0.01):
    return PriorityJob(
        task=HwTask(PRM, exec_seconds=exec_seconds),
        arrival_seconds=arrival,
        priority=priority,
        job_id=job_id,
    )


class TestContextBytes:
    def test_clb_only_prr(self):
        assert context_bytes(PRR) == 3 * 36 * 41 * 4

    def test_bram_prr_includes_content_frames(self):
        prr = PRRGeometry(VIRTEX5, rows=1, columns=ResourceVector(clb=1, bram=1))
        assert context_bytes(prr) == (36 + 30 + 128) * 41 * 4

    def test_scales_with_rows(self):
        two = PRRGeometry(VIRTEX5, rows=2, columns=ResourceVector(clb=3))
        assert context_bytes(two) == 2 * context_bytes(PRR)


class TestBasicScheduling:
    def test_all_jobs_complete(self):
        jobs = [job(i, i * 0.001, priority=5) for i in range(5)]
        result = simulate_preemptive(jobs, [PRR])
        assert len(result.completed) == 5

    def test_no_preemption_among_equal_priorities(self):
        jobs = [job(i, 0.0, priority=5) for i in range(4)]
        result = simulate_preemptive(jobs, [PRR])
        assert result.preemption_count == 0

    def test_needs_a_prr(self):
        with pytest.raises(ValueError):
            simulate_preemptive([job(0, 0.0, 1)], [])

    def test_makespan_covers_all_work(self):
        jobs = [job(i, 0.0, priority=5, exec_seconds=0.01) for i in range(4)]
        result = simulate_preemptive(jobs, [PRR])
        assert result.makespan_seconds >= 4 * 0.01


class TestPreemption:
    def test_urgent_job_preempts(self):
        background = job(0, 0.0, priority=9, exec_seconds=0.1)
        urgent = job(1, 0.01, priority=1, exec_seconds=0.005)
        result = simulate_preemptive([background, urgent], [PRR])
        assert result.preemption_count == 1
        finishes = {j.job_id: finish for j, _, finish in result.completed}
        assert finishes[1] < finishes[0]

    def test_preemption_improves_urgent_response(self):
        background = job(0, 0.0, priority=9, exec_seconds=0.1)
        urgent = job(1, 0.01, priority=1, exec_seconds=0.005)
        with_p = simulate_preemptive([background, urgent], [PRR])
        without_p = simulate_preemptive(
            [background, urgent], [PRR], allow_preemption=False
        )
        assert (
            with_p.response_seconds(priority=1)[0]
            < without_p.response_seconds(priority=1)[0]
        )

    def test_preempted_work_is_conserved(self):
        background = job(0, 0.0, priority=9, exec_seconds=0.1)
        urgent = job(1, 0.01, priority=1, exec_seconds=0.005)
        result = simulate_preemptive([background, urgent], [PRR])
        # The background job's total on-PRR exec time (finish - first start
        # minus all overheads and the urgent job's slice) preserves its
        # 0.1 s of work: it must finish no earlier than 0.1 s of exec plus
        # the urgent job's service.
        finishes = {j.job_id: finish for j, _, finish in result.completed}
        assert finishes[0] >= 0.1 + 0.005

    def test_context_overheads_accounted(self):
        background = job(0, 0.0, priority=9, exec_seconds=0.1)
        urgent = job(1, 0.01, priority=1, exec_seconds=0.005)
        result = simulate_preemptive([background, urgent], [PRR])
        assert result.context_save_seconds > 0
        assert result.context_restore_seconds > 0
        # Save streams the PRR's frames at 400 MB/s.
        expected_save = context_bytes(PRR) / 400e6
        assert result.context_save_seconds == pytest.approx(expected_save)

    def test_preemption_costs_background_response(self):
        """Preemption helps the urgent class but the preempted job pays
        the save + restore overhead."""
        background = job(0, 0.0, priority=9, exec_seconds=0.1)
        urgent = job(1, 0.01, priority=1, exec_seconds=0.005)
        with_p = simulate_preemptive([background, urgent], [PRR])
        without_p = simulate_preemptive(
            [background, urgent], [PRR], allow_preemption=False
        )
        assert (
            with_p.response_seconds(priority=9)[0]
            > without_p.response_seconds(priority=9)[0]
        )

    def test_urgent_never_preempted_by_less_urgent(self):
        urgent = job(0, 0.0, priority=1, exec_seconds=0.05)
        late = job(1, 0.01, priority=5, exec_seconds=0.01)
        result = simulate_preemptive([urgent, late], [PRR])
        assert result.preemption_count == 0

    def test_two_prrs_avoid_preemption(self):
        background = job(0, 0.0, priority=9, exec_seconds=0.1)
        urgent = job(1, 0.01, priority=1, exec_seconds=0.005)
        result = simulate_preemptive([background, urgent], [PRR, PRR])
        assert result.preemption_count == 0

"""Tests for the hardware-multitasking simulator."""

import pytest

from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.multitask.metrics import compare
from repro.multitask.scheduler import (
    simulate_full_reconfig,
    simulate_pr,
)
from repro.multitask.tasks import HwTask, Job, make_task_set, poisson_arrivals

from tests.conftest import paper_requirements


@pytest.fixture(scope="module")
def tasks():
    return [
        HwTask(paper_requirements("fir", "virtex5"), exec_seconds=0.002),
        HwTask(paper_requirements("sdram", "virtex5"), exec_seconds=0.001),
    ]


@pytest.fixture(scope="module")
def prrs(tasks):
    shared = find_prr(XC5VLX110T, [t.prm for t in tasks])
    return [shared.geometry, shared.geometry]


@pytest.fixture(scope="module")
def jobs(tasks):
    return make_task_set(tasks, rate_per_s=200.0, horizon_s=0.25, seed=7)


class TestTasks:
    def test_task_validation(self, tasks):
        with pytest.raises(ValueError):
            HwTask(tasks[0].prm, exec_seconds=0)

    def test_job_validation(self, tasks):
        with pytest.raises(ValueError):
            Job(tasks[0], arrival_seconds=-1, job_id=0)

    def test_poisson_deterministic(self):
        a = poisson_arrivals(100, 1.0, seed=42)
        b = poisson_arrivals(100, 1.0, seed=42)
        assert a == b

    def test_poisson_rate_roughly_right(self):
        arrivals = poisson_arrivals(1000, 10.0, seed=1)
        assert 9000 < len(arrivals) < 11000

    def test_make_task_set_round_robin_covers_all(self, tasks):
        jobs = make_task_set(tasks, rate_per_s=100, horizon_s=0.5, seed=3)
        names = {job.task.name for job in jobs}
        assert names == {"fir", "sdram"}

    def test_arrivals_sorted(self, jobs):
        times = [j.arrival_seconds for j in jobs]
        assert times == sorted(times)


class TestPrSimulation:
    def test_all_jobs_complete(self, jobs, prrs):
        result = simulate_pr(jobs, prrs)
        assert len(result.completed) == len(jobs)

    def test_causality(self, jobs, prrs):
        result = simulate_pr(jobs, prrs)
        for job in result.completed:
            assert job.start >= job.arrival
            assert job.finish > job.start

    def test_no_prr_double_booking(self, jobs, prrs):
        result = simulate_pr(jobs, prrs)
        by_prr = {}
        for job in result.completed:
            by_prr.setdefault(job.prr_index, []).append(job)
        for prr_jobs in by_prr.values():
            prr_jobs.sort(key=lambda j: j.start)
            for a, b in zip(prr_jobs, prr_jobs[1:]):
                # Next job's reconfig+exec may not start before `a` ends.
                assert b.start - b.reconfig_seconds >= a.finish - 1e-12

    def test_affinity_avoids_reconfig(self, tasks, prrs):
        # Same task back-to-back on an idle system: second run needs no
        # reconfiguration.
        jobs = [
            Job(tasks[0], arrival_seconds=0.0, job_id=0),
            Job(tasks[0], arrival_seconds=0.1, job_id=1),
        ]
        result = simulate_pr(jobs, prrs)
        assert result.completed[0].reconfig_seconds > 0
        assert result.completed[1].reconfig_seconds == 0

    def test_unfittable_task_raises(self, prrs):
        from repro.core.params import PRMRequirements

        monster = HwTask(
            PRMRequirements("monster", 10**6, 10**6, 0), exec_seconds=1.0
        )
        with pytest.raises(ValueError, match="no PRR fits"):
            simulate_pr([Job(monster, 0.0, 0)], prrs)

    def test_needs_a_prr(self, jobs):
        with pytest.raises(ValueError):
            simulate_pr(jobs, [])


class TestFullReconfigBaseline:
    def test_serializes_everything(self, jobs):
        result = simulate_full_reconfig(jobs, XC5VLX110T)
        finished = sorted(result.completed, key=lambda j: j.start)
        for a, b in zip(finished, finished[1:]):
            assert b.start - b.reconfig_seconds >= a.finish - 1e-12

    def test_reconfig_uses_full_bitstream(self, jobs):
        result = simulate_full_reconfig(jobs, XC5VLX110T)
        reconfigs = [
            j.reconfig_seconds for j in result.completed if j.reconfig_seconds
        ]
        # ~3.77 MB at 400 MB/s ≈ 9.4 ms per switch.
        assert min(reconfigs) > 0.005

    def test_halted_time_tracked(self, jobs):
        result = simulate_full_reconfig(jobs, XC5VLX110T)
        assert result.halted_seconds == pytest.approx(
            result.total_reconfig_seconds
        )


class TestComparison:
    def test_pr_beats_full_reconfig(self, jobs, prrs):
        """The Section I claim: PR affords faster reconfiguration and
        better multitasking performance than full reconfiguration."""
        pr = simulate_pr(jobs, prrs)
        full = simulate_full_reconfig(jobs, XC5VLX110T)
        cmp = compare(pr, full)
        assert cmp.makespan_speedup > 1.0
        assert cmp.response_speedup > 1.0
        assert pr.total_reconfig_seconds < full.total_reconfig_seconds

    def test_compare_validates_job_counts(self, jobs, prrs):
        pr = simulate_pr(jobs, prrs)
        full = simulate_full_reconfig(jobs[:-1], XC5VLX110T)
        with pytest.raises(ValueError):
            compare(pr, full)

    def test_summaries_render(self, jobs, prrs):
        pr = simulate_pr(jobs, prrs)
        full = simulate_full_reconfig(jobs, XC5VLX110T)
        assert "makespan" in compare(pr, full).summary()
        assert "jobs" in pr.summary()

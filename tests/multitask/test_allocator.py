"""Tests for the runtime PRR allocator and defragmentation."""

import pytest

from repro.core.params import PRMRequirements
from repro.devices.catalog import XC5VLX110T
from repro.multitask.allocator import AllocationFailed, PRRAllocator

from tests.conftest import paper_requirements


def small_prm(name, pairs=300):
    return PRMRequirements(name, pairs, pairs * 3 // 4, pairs // 2)


class TestAllocateFree:
    def test_allocate_places_validly(self):
        allocator = PRRAllocator(XC5VLX110T)
        allocation = allocator.allocate("a", small_prm("a"))
        assert XC5VLX110T.is_valid_prr(allocation.region)

    def test_allocations_disjoint(self):
        allocator = PRRAllocator(XC5VLX110T)
        regions = [
            allocator.allocate(f"t{i}", small_prm(f"t{i}")).region
            for i in range(4)
        ]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.overlaps(b)

    def test_duplicate_name_rejected(self):
        allocator = PRRAllocator(XC5VLX110T)
        allocator.allocate("a", small_prm("a"))
        with pytest.raises(ValueError, match="already exists"):
            allocator.allocate("a", small_prm("a"))

    def test_free_unknown_rejected(self):
        with pytest.raises(KeyError):
            PRRAllocator(XC5VLX110T).free("ghost")

    def test_free_releases_space(self):
        allocator = PRRAllocator(XC5VLX110T)
        allocation = allocator.allocate("a", small_prm("a"))
        allocator.free("a")
        assert allocator.live_cells == 0
        again = allocator.allocate("b", small_prm("b"))
        assert again.region == allocation.region  # bottom-left reuse

    def test_paper_prms_allocate_together(self):
        allocator = PRRAllocator(XC5VLX110T)
        for workload in ("fir", "mips", "sdram"):
            allocator.allocate(workload, paper_requirements(workload, "virtex5"))
        assert len(allocator.allocations) == 3

    def test_impossible_demand_fails(self):
        allocator = PRRAllocator(XC5VLX110T)
        with pytest.raises(AllocationFailed):
            allocator.allocate("monster", PRMRequirements("m", 10**6, 10**6, 0))
        assert allocator.failed_allocations == 1


class TestFragmentationAndDefrag:
    """Scenario device: one row of 12 interchangeable CLB columns, so
    external fragmentation is purely horizontal and every position is
    relocation-compatible (as in a homogeneous PRR slot architecture)."""

    @staticmethod
    def _toy():
        from repro.devices import VIRTEX5, make_device

        return make_device("toy_alloc", VIRTEX5, rows=1, layout="I C*12 I")

    #: Width-2 tenant: 2 cols x 20 CLBs x 8 pairs = 320 sites.
    TENANT = PRMRequirements("tenant", 300, 225, 150)
    #: Width-4 demand: needs 4 contiguous CLB columns.
    WIDE = PRMRequirements("wide", 640, 480, 320)

    def _fill_then_hole(self, defragment):
        """Six width-2 tenants fill the row; freeing alternating tenants
        leaves three width-2 holes — no width-4 window survives."""
        allocator = PRRAllocator(self._toy(), defragment=defragment)
        for i in range(6):
            allocator.allocate(f"t{i}", self.TENANT)
        for i in range(0, 6, 2):
            allocator.free(f"t{i}")
        return allocator

    def test_fragmentation_metric_in_range(self):
        allocator = self._fill_then_hole(defragment=False)
        frag = allocator.external_fragmentation()
        # 6 free cells, largest free rectangle is 2 wide -> frag = 2/3.
        assert frag == pytest.approx(2 / 3)

    def test_without_defrag_fails(self):
        plain = self._fill_then_hole(defragment=False)
        with pytest.raises(AllocationFailed):
            plain.allocate("wide", self.WIDE)
        assert plain.failed_allocations == 1

    def test_defrag_compacts_and_recovers(self):
        allocator = self._fill_then_hole(defragment=True)
        before = allocator.external_fragmentation()
        allocation = allocator.allocate("wide", self.WIDE)
        assert allocation.region.width == 4
        assert allocator.relocation_count > 0
        assert allocator.external_fragmentation() < before

    def test_compaction_keeps_allocations_disjoint(self):
        allocator = self._fill_then_hole(defragment=True)
        allocator.allocate("wide", self.WIDE)
        regions = allocator.occupied_regions()
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.overlaps(b)

    def test_moves_counted_per_allocation(self):
        allocator = self._fill_then_hole(defragment=True)
        allocator.allocate("wide", self.WIDE)
        moved = [a for a in allocator.allocations.values() if a.moves]
        assert moved
        assert sum(a.moves for a in moved) == allocator.relocation_count

"""Differential: zero-rate fault runtime vs the stock scheduler.

``tests/faults/test_degraded.py`` pins the equivalence on one fixed
workload; here randomized task mixes, arrival processes, PRR counts and
ICAP modes assert it across the input space — every ``ScheduleResult``
field must match, not just the headline numbers.
"""

import dataclasses

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.placement_search import PlacementNotFoundError, find_prr
from repro.devices.catalog import XC5VLX110T
from repro.faults import FaultInjector
from repro.multitask import HwTask, make_task_set, simulate_pr

from tests.conftest import paper_requirements

WORKLOADS = ("fir", "sdram", "mips")


@st.composite
def workloads(draw):
    names = draw(
        st.lists(st.sampled_from(WORKLOADS), min_size=1, max_size=3, unique=True)
    )
    tasks = [
        HwTask(
            paper_requirements(name, "virtex5"),
            exec_seconds=draw(
                st.floats(0.5e-3, 5e-3, allow_nan=False, allow_infinity=False)
            ),
        )
        for name in names
    ]
    jobs = make_task_set(
        tasks,
        rate_per_s=draw(st.floats(50.0, 400.0)),
        horizon_s=draw(st.floats(0.05, 0.2)),
        seed=draw(st.integers(0, 10_000)),
    )
    try:
        shared = find_prr(XC5VLX110T, [t.prm for t in tasks])
    except PlacementNotFoundError:
        assume(False)  # no PRR shared by this mix — not this test's concern
    prr_count = draw(st.integers(1, 3))
    return jobs, [shared.geometry] * prr_count


@given(workloads(), st.booleans(), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_zero_rate_injector_reproduces_stock_scheduler(
    workload, icap_exclusive, injector_seed
):
    jobs, prrs = workload
    stock = simulate_pr(jobs, prrs, icap_exclusive=icap_exclusive)
    faulty = simulate_pr(
        jobs,
        prrs,
        icap_exclusive=icap_exclusive,
        faults=FaultInjector.from_rates(seed=injector_seed),
    )
    assert dataclasses.asdict(faulty) == dataclasses.asdict(stock)

"""Differential: window-indexed compatible-region search vs the naive scan.

``find_compatible_regions`` prefilters candidate start columns with the
device's :class:`ColumnWindowIndex` (counts-multiset match) before the
exact column-kind-sequence check; ``find_compatible_regions_naive``
walks every region.  They must agree — same regions, same (row-major)
order — on any fabric, any source region, and any exclusion list,
because the defragmentation planner's move choices (and therefore every
migration the runtime executes) ride on this list.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import Region, synthetic_device
from repro.relocation import (
    find_compatible_regions,
    find_compatible_regions_naive,
)


@st.composite
def devices(draw):
    rows = draw(st.integers(1, 4))
    n_runs = draw(st.integers(1, 5))
    clb_runs = tuple(draw(st.integers(1, 8)) for _ in range(n_runs))
    boundaries = max(n_runs - 1, 0)
    dsp_positions = (
        tuple(
            sorted(
                draw(st.sets(st.integers(0, boundaries - 1), max_size=boundaries))
            )
        )
        if boundaries
        else ()
    )
    bram_positions = (
        tuple(
            sorted(
                draw(st.sets(st.integers(0, boundaries - 1), max_size=boundaries))
            )
        )
        if boundaries
        else ()
    )
    return synthetic_device(
        rows=rows,
        clb_runs=clb_runs,
        dsp_positions=dsp_positions,
        bram_positions=bram_positions,
    )


@st.composite
def cases(draw):
    device = draw(devices())
    row = draw(st.integers(1, device.rows))
    height = draw(st.integers(1, device.rows - row + 1))
    col = draw(st.integers(1, device.num_columns))
    width = draw(st.integers(1, device.num_columns - col + 1))
    source = Region(row=row, col=col, height=height, width=width)
    n_excl = draw(st.integers(0, 3))
    exclude = []
    for _ in range(n_excl):
        erow = draw(st.integers(1, device.rows))
        eheight = draw(st.integers(1, device.rows - erow + 1))
        ecol = draw(st.integers(1, device.num_columns))
        ewidth = draw(st.integers(1, device.num_columns - ecol + 1))
        exclude.append(Region(row=erow, col=ecol, height=eheight, width=ewidth))
    include_source = draw(st.booleans())
    return device, source, tuple(exclude), include_source


@settings(max_examples=200, deadline=None)
@given(case=cases())
def test_fast_path_matches_naive_scan(case):
    device, source, exclude, include_source = case
    fast = find_compatible_regions(
        device, source, include_source=include_source, exclude=exclude
    )
    naive = find_compatible_regions_naive(
        device, source, include_source=include_source, exclude=exclude
    )
    assert fast == naive


def test_exclude_removes_overlapping_targets():
    device = synthetic_device(rows=1, clb_runs=(8,), name="excl")
    source = Region(row=1, col=2, height=1, width=2)
    unrestricted = find_compatible_regions(device, source)
    assert unrestricted
    blocker = unrestricted[0]
    remaining = find_compatible_regions(device, source, exclude=[blocker])
    assert blocker not in remaining
    assert all(not region.overlaps(blocker) for region in remaining)
    assert set(remaining) <= set(unrestricted)

"""Differential: pruned branch-and-bound front vs the exhaustive front.

The explorer's ``pruned`` mode may drop dominated designs, but its
Pareto front must be *identical* to exhaustive enumeration for any PRM
set — the guarantee its docstring makes.  Randomized small PRM sets
probe it well beyond the paper's fixed three workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.explorer import explore, pareto_front
from repro.core.params import PRMRequirements
from repro.devices.catalog import XC5VLX110T, XC6VLX75T

DEVICES = st.sampled_from([XC5VLX110T, XC6VLX75T])


@st.composite
def prm_sets(draw):
    count = draw(st.integers(2, 4))
    prms = []
    for i in range(count):
        luts = draw(st.integers(50, 3_000))
        ffs = draw(st.integers(0, 3_000))
        pairs = draw(st.integers(max(luts, ffs), luts + ffs))
        prms.append(
            PRMRequirements(
                f"prm{i}",
                pairs,
                luts,
                ffs,
                dsps=draw(st.integers(0, 24)),
                brams=draw(st.integers(0, 12)),
            )
        )
    return prms


def front_keys(designs):
    """Canonical, order-free identity of a Pareto front."""
    return {
        (
            design.objectives,
            tuple(
                sorted(
                    tuple(sorted(p.name for p in a.prms))
                    for a in design.assignments
                )
            ),
        )
        for design in pareto_front(designs)
    }


@given(DEVICES, prm_sets())
@settings(max_examples=20, deadline=None)
def test_pruned_front_equals_exhaustive_front(device, prms):
    exhaustive = explore(device, prms, mode="exhaustive")
    pruned = explore(device, prms, mode="pruned")
    assert front_keys(pruned) == front_keys(exhaustive)
    # Pruning only ever removes designs, never invents them.
    assert len(pruned) <= len(exhaustive)

"""Differential: the numpy batch engine vs the scalar models.

The batch engine re-derives eqs. (1)–(23) and the Fig. 1 selection as
array expressions; nothing but these tests guarantees the two
formulations agree.  Random PRM requirement vectors on random synthetic
fabrics (plus the full catalog) are pushed through both paths and every
observable — feasibility verdict, selected H, column mix, placement
column, bitstream bytes, reconfiguration seconds — must match exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import batch
from repro.core.api import batch_evaluate, evaluate_prm
from repro.core.explorer import explore, pareto_front
from repro.core.fastpath import PlacementCache, RegionOccupancy
from repro.core.params import PRMRequirements
from repro.core.placement_search import PlacementNotFoundError, find_prr
from repro.devices import synthetic_device
from repro.devices.catalog import DEVICES


@st.composite
def fabrics(draw):
    rows = draw(st.integers(1, 8))
    n_runs = draw(st.integers(1, 5))
    clb_runs = tuple(draw(st.integers(1, 8)) for _ in range(n_runs))
    boundaries = max(n_runs - 1, 0)
    dsp_positions = (
        tuple(sorted(draw(st.sets(st.integers(0, boundaries - 1), max_size=boundaries))))
        if boundaries
        else ()
    )
    bram_positions = (
        tuple(sorted(draw(st.sets(st.integers(0, boundaries - 1), max_size=boundaries))))
        if boundaries
        else ()
    )
    return synthetic_device(
        rows=rows,
        clb_runs=clb_runs,
        dsp_positions=dsp_positions,
        bram_positions=bram_positions,
    )


@st.composite
def prm_vectors(draw):
    pairs = draw(st.integers(0, 30_000))
    luts = draw(st.integers(0, pairs)) if pairs else 0
    ffs = draw(st.integers(max(0, pairs - luts), pairs)) if pairs else 0
    return PRMRequirements(
        name=f"prm{draw(st.integers(0, 10**6))}",
        lut_ff_pairs=pairs,
        luts=luts,
        ffs=ffs,
        dsps=draw(st.integers(0, 120)),
        brams=draw(st.integers(0, 60)),
    )


def scalar_verdict(device, prm, objective):
    """(feasible, H, W_CLB, W_DSP, W_BRAM, col, bytes) via the scalar path."""
    try:
        placed = find_prr(device, prm, objective=objective)
    except (PlacementNotFoundError, ValueError):
        # ValueError covers all-zero requirement vectors, which the
        # scalar geometry constructor rejects and the batch engine masks.
        return (False, 0, 0, 0, 0, 0, 0)
    return (
        True,
        placed.geometry.rows,
        placed.geometry.columns.clb,
        placed.geometry.columns.dsp,
        placed.geometry.columns.bram,
        placed.region.col,
        placed.bitstream_bytes,
    )


@given(
    device=fabrics(),
    prms=st.lists(prm_vectors(), min_size=1, max_size=8),
    objective=st.sampled_from(["size", "bitstream"]),
)
@settings(max_examples=60, deadline=None)
def test_batch_select_equals_scalar_loop(device, prms, objective):
    sel = batch.batch_select(
        device,
        [p.lut_ff_pairs for p in prms],
        [p.dsps for p in prms],
        [p.brams for p in prms],
        objective=objective,
    )
    for i, prm in enumerate(prms):
        got = (
            bool(sel.feasible[i]),
            int(sel.rows[i]),
            int(sel.w_clb[i]),
            int(sel.w_dsp[i]),
            int(sel.w_bram[i]),
            int(sel.start_col[i]),
            int(sel.bitstream_bytes[i]),
        )
        assert got == scalar_verdict(device, prm, objective)


@given(device=fabrics(), prms=st.lists(prm_vectors(), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_find_prr_batch_equals_scalar_on_groups(device, prms):
    try:
        expected = find_prr(device, prms)
    except (PlacementNotFoundError, ValueError):
        expected = None
    try:
        got = batch.find_prr_batch(device, prms)
    except PlacementNotFoundError:
        got = None
    assert got == expected


@given(device=fabrics(), prms=st.lists(prm_vectors(), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_batch_evaluate_equals_looped_evaluate_prm(device, prms):
    result = batch_evaluate(prms, device)
    for i, prm in enumerate(prms):
        try:
            expected = evaluate_prm(prm, device)
        except (PlacementNotFoundError, ValueError):
            assert not bool(result.feasible[i])
            continue
        assert bool(result.feasible[i])
        assert result.result(i) == expected


def test_placement_cache_engines_agree_on_catalog():
    prms = [
        PRMRequirements(name="a", lut_ff_pairs=700, luts=700, ffs=350),
        PRMRequirements(
            name="b", lut_ff_pairs=2400, luts=2000, ffs=1500, brams=3
        ),
        PRMRequirements(name="c", lut_ff_pairs=300, luts=300, ffs=200, dsps=4),
    ]
    for device in DEVICES.values():
        for objective in ("size", "bitstream"):
            scalar_cache = PlacementCache(engine="scalar")
            batch_cache = PlacementCache(engine="batch")
            for group in ([prms[0]], [prms[1]], prms, prms[:2]):
                empty = RegionOccupancy()
                try:
                    expected = scalar_cache.find_prr(
                        device, group, forbidden=empty, objective=objective
                    )
                except PlacementNotFoundError:
                    expected = None
                try:
                    got = batch_cache.find_prr(
                        device, group, forbidden=empty, objective=objective
                    )
                except PlacementNotFoundError:
                    got = None
                assert got == expected, (device.name, objective)


def test_explore_pareto_fronts_identical_on_all_catalog_devices():
    """ISSUE 6 acceptance: engine="batch" explores bit-identically."""
    prms = [
        PRMRequirements(name="a", lut_ff_pairs=900, luts=900, ffs=500),
        PRMRequirements(
            name="b", lut_ff_pairs=2400, luts=2000, ffs=1500, brams=3
        ),
        PRMRequirements(name="c", lut_ff_pairs=300, luts=300, ffs=200, dsps=4),
        PRMRequirements(name="d", lut_ff_pairs=5000, luts=5000, ffs=2500),
    ]
    for device in DEVICES.values():
        scalar = explore(device, prms, engine="scalar")
        vector = explore(device, prms, engine="batch")
        assert list(scalar) == list(vector), device.name
        assert pareto_front(scalar) == pareto_front(vector), device.name


def test_explore_modes_agree_under_batch_engine():
    prms = [
        PRMRequirements(name="a", lut_ff_pairs=900, luts=900, ffs=500),
        PRMRequirements(name="b", lut_ff_pairs=2400, luts=2000, ffs=1500),
        PRMRequirements(name="c", lut_ff_pairs=300, luts=300, ffs=200),
    ]
    device = DEVICES["xc5vlx110t"]
    for mode in ("exhaustive", "pruned", "beam"):
        scalar = explore(device, prms, mode=mode, engine="scalar")
        vector = explore(device, prms, mode=mode, engine="batch")
        assert list(scalar) == list(vector), mode

"""Differential: indexed column-window queries vs the naive scan.

The :class:`ColumnWindowIndex` fast path must be observationally
identical to ``find_column_window_naive`` on *any* fabric, not just the
catalog layouts — randomized devices exercise prefix-sum edge cases
(windows touching IOB/CLK columns, empty mixes, out-of-range starts).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import synthetic_device
from repro.devices.resources import ColumnKind, ResourceVector


@st.composite
def devices(draw):
    rows = draw(st.integers(1, 4))
    n_runs = draw(st.integers(1, 6))
    clb_runs = tuple(draw(st.integers(1, 10)) for _ in range(n_runs))
    boundaries = max(n_runs - 1, 0)
    dsp_positions = (
        tuple(
            sorted(
                draw(st.sets(st.integers(0, boundaries - 1), max_size=boundaries))
            )
        )
        if boundaries
        else ()
    )
    bram_positions = (
        tuple(
            sorted(
                draw(st.sets(st.integers(0, boundaries - 1), max_size=boundaries))
            )
        )
        if boundaries
        else ()
    )
    return synthetic_device(
        rows=rows,
        clb_runs=clb_runs,
        dsp_positions=dsp_positions,
        bram_positions=bram_positions,
    )


@st.composite
def requirements(draw):
    clb = draw(st.integers(0, 6))
    dsp = draw(st.integers(0, 2))
    bram = draw(st.integers(0, 2))
    if clb + dsp + bram == 0:
        clb = 1
    return ResourceVector(clb=clb, dsp=dsp, bram=bram)


@given(devices(), requirements(), st.integers(1, 40))
@settings(max_examples=120, deadline=None)
def test_find_matches_naive(device, requirement, start_col):
    """Indexed and naive lookups agree on every (mix, start) query."""
    assert device.find_column_window(
        requirement, start_col=start_col
    ) == device.find_column_window_naive(requirement, start_col=start_col)


@given(devices(), requirements())
@settings(max_examples=80, deadline=None)
def test_feasible_starts_match_naive_enumeration(device, requirement):
    """The cached start list equals a column-by-column naive sweep."""
    naive = [
        col
        for col in range(1, device.num_columns - requirement.total + 2)
        if device.find_column_window_naive(requirement, start_col=col) == col
    ]
    assert list(device.feasible_window_starts(requirement)) == naive


@given(devices(), st.data())
@settings(max_examples=60, deadline=None)
def test_existing_window_is_always_found(device, data):
    """A mix read off the fabric itself must be found by both paths."""
    width = data.draw(st.integers(1, min(4, device.num_columns)))
    start = data.draw(st.integers(1, device.num_columns - width + 1))
    kinds = device.columns[start - 1 : start - 1 + width]
    if not all(kind.reconfigurable for kind in kinds):
        return
    requirement = ResourceVector(
        clb=sum(k is ColumnKind.CLB for k in kinds),
        dsp=sum(k is ColumnKind.DSP for k in kinds),
        bram=sum(k is ColumnKind.BRAM for k in kinds),
    )
    found = device.find_column_window(requirement)
    assert found is not None and found <= start
    assert found == device.find_column_window_naive(requirement)

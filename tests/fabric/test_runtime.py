"""FabricRuntime: admission, defrag, migration rollback, fault retirement."""

import pytest

from repro.core import PRMRequirements
from repro.core.floorplanner import floorplan
from repro.devices import XC5VLX110T, synthetic_device
from repro.errors import InvalidInput
from repro.fabric import (
    AdmissionError,
    FabricConfig,
    FabricRuntime,
    MigrationStep,
    plan_defrag_pass,
)
from repro.faults import FaultInjector

# One fabric row of 12 contiguous CLB columns: every module is a 1xW
# strip, so placements and holes are easy to reason about.
ROW = synthetic_device(rows=1, clb_runs=(12,), name="rowdev")


def clb_demand(name: str, columns: int) -> PRMRequirements:
    """Demand sized to exactly *columns* CLB columns on ROW (H=1)."""
    per_col = ROW.family.clb_per_col * ROW.family.luts_per_clb
    cells = columns * per_col
    return PRMRequirements(name, cells, cells, cells)


class TestAdmission:
    def test_admit_places_and_counts(self):
        rt = FabricRuntime(ROW)
        module = rt.admit("a", clb_demand("a", 3))
        assert module.region.width == 3
        assert rt.admissions == 1
        rt.check_invariants()

    def test_duplicate_name_rejected(self):
        rt = FabricRuntime(ROW)
        rt.admit("a", clb_demand("a", 2))
        with pytest.raises(InvalidInput):
            rt.admit("a", clb_demand("a", 2))

    def test_admission_failure_raises_typed_error(self):
        rt = FabricRuntime(ROW)
        with pytest.raises(AdmissionError):
            rt.admit("huge", clb_demand("huge", 13))
        assert rt.admission_failures == 1

    def test_retire_frees_the_region(self):
        rt = FabricRuntime(ROW)
        rt.admit("a", clb_demand("a", 12))
        rt.retire("a")
        assert rt.module_names() == frozenset()
        rt.admit("b", clb_demand("b", 12))
        rt.check_invariants()

    def test_retire_unknown_module_rejected(self):
        rt = FabricRuntime(ROW)
        with pytest.raises(InvalidInput):
            rt.retire("ghost")

    def test_admit_group_on_empty_fabric_matches_static_floorplan(self):
        groups = [[clb_demand(f"m{i}", 2 + i)] for i in range(3)]
        names = [f"m{i}" for i in range(3)]
        plan = floorplan(XC5VLX110T, groups)
        rt = FabricRuntime(XC5VLX110T)
        modules = rt.admit_group(list(zip(names, groups)))
        assert [m.region for m in modules] == [p.region for p in plan.prrs]
        snapshot = rt.floorplan_snapshot()
        assert snapshot.group_names == tuple(names)
        rt.check_invariants()


class TestDefrag:
    def test_fragmented_admission_recovers_via_defrag(self):
        rt = FabricRuntime(ROW)
        rt.admit("a", clb_demand("a", 4))
        rt.admit("b", clb_demand("b", 4))
        rt.admit("c", clb_demand("c", 4))
        rt.retire("a")
        rt.retire("c")
        # Free space is 4 + 4 split around b; a width-6 demand needs
        # defrag to slide b left first.
        module = rt.admit("wide", clb_demand("wide", 6))
        assert module.region.width == 6
        assert rt.migrations >= 1
        rt.check_invariants()

    def test_no_defrag_config_fails_fragmented_admission(self):
        rt = FabricRuntime(ROW, config=FabricConfig(auto_defrag=False))
        rt.admit("a", clb_demand("a", 4))
        rt.admit("b", clb_demand("b", 4))
        rt.admit("c", clb_demand("c", 4))
        rt.retire("a")
        rt.retire("c")
        with pytest.raises(AdmissionError):
            rt.admit("wide", clb_demand("wide", 6))
        rt.check_invariants()

    def test_defrag_compacts_bottom_left(self):
        rt = FabricRuntime(ROW)
        rt.admit("a", clb_demand("a", 3))
        rt.admit("b", clb_demand("b", 3))
        rt.retire("a")
        before = rt.get("b").region
        result = rt.defrag()
        after = rt.get("b").region
        assert result.moved == ("b",)
        assert (after.row, after.col) < (before.row, before.col)
        rt.check_invariants()

    def test_movable_predicate_pins_modules(self):
        rt = FabricRuntime(ROW)
        rt.admit("a", clb_demand("a", 3))
        rt.admit("b", clb_demand("b", 3))
        rt.retire("a")
        result = rt.defrag(movable=lambda name: False)
        assert result.moved == ()

    def test_planner_never_targets_region_overlapping_source(self):
        steps = plan_defrag_pass(
            ROW,
            {"a": __import__("repro.devices", fromlist=["Region"]).Region(
                row=1, col=3, height=1, width=3
            )},
        )
        for step in steps:
            assert not step.target.overlaps(step.source)


class TestMigrationRollback:
    def _fragmented_runtime(self, **config) -> FabricRuntime:
        rt = FabricRuntime(ROW, **config)
        rt.admit("a", clb_demand("a", 3))
        rt.admit("b", clb_demand("b", 3))
        rt.retire("a")
        return rt

    def test_verify_failure_rolls_back_model_mode(self):
        # fault_rate=1.0: every transfer fails verify -> every migration
        # attempt exhausts its retries and rolls back.
        injector = FaultInjector.from_rates(seed=1, fault_rate=1.0)
        rt = self._fragmented_runtime(injector=injector)
        before = rt.get("b").region
        result = rt.defrag()
        assert result.moved == ()
        assert result.rollbacks >= 1
        assert rt.rollbacks >= 1
        assert rt.get("b").region == before
        rt.check_invariants()

    def test_verify_failure_rolls_back_crc_mode(self):
        injector = FaultInjector.from_rates(seed=1, fault_rate=1.0)
        rt = self._fragmented_runtime(
            config=FabricConfig(verify="crc"), injector=injector
        )
        before = rt.get("b").region
        result = rt.defrag()
        assert result.moved == ()
        assert rt.rollbacks >= 1
        assert rt.get("b").region == before
        # The source image survived the rolled-back migration intact.
        rt.check_invariants()

    def test_crc_mode_migration_moves_configuration(self):
        rt = self._fragmented_runtime(config=FabricConfig(verify="crc"))
        source = rt.get("b").region
        result = rt.defrag()
        assert result.moved == ("b",)
        target = rt.get("b").region
        assert target != source
        assert rt.memory.region_is_configured(target)
        assert not rt.memory.region_is_configured(source)
        rt.check_invariants()


class TestCrashRecovery:
    @pytest.mark.parametrize("phase", ["copy", "verify", "activate", "free"])
    def test_crash_at_phase_never_loses_module(self, phase):
        rt = FabricRuntime(ROW, config=FabricConfig(verify="crc"))
        rt.admit("a", clb_demand("a", 3))
        rt.admit("b", clb_demand("b", 3))
        rt.retire("a")

        def crash(p: str, step: MigrationStep) -> None:
            if p == phase:
                raise RuntimeError("power cut")

        rt.crash_hook = crash
        with pytest.raises(RuntimeError):
            rt.defrag()
        rt.crash_hook = None
        outcome = rt.recover()
        assert outcome in ("completed", "aborted")
        # The module is intact no matter where the crash landed.
        assert rt.module_names() == frozenset({"b"})
        rt.check_invariants()
        if phase == "free":
            assert outcome == "completed"
        else:
            assert outcome == "aborted"

    def test_recover_without_crash_is_noop(self):
        rt = FabricRuntime(ROW)
        assert rt.recover() is None

    def test_next_admit_runs_recovery_automatically(self):
        rt = FabricRuntime(ROW, config=FabricConfig(verify="crc"))
        rt.admit("a", clb_demand("a", 3))
        rt.admit("b", clb_demand("b", 3))
        rt.retire("a")
        rt.crash_hook = lambda p, step: (_ for _ in ()).throw(
            RuntimeError("crash")
        ) if p == "activate" else None
        with pytest.raises(RuntimeError):
            rt.defrag()
        rt.crash_hook = None
        rt.admit("c", clb_demand("c", 3))
        assert rt.module_names() == frozenset({"b", "c"})
        rt.check_invariants()


class TestPermanentFaults:
    def test_retire_column_blacklists_and_migrates(self):
        rt = FabricRuntime(ROW)
        module = rt.admit("a", clb_demand("a", 3))
        struck = module.region.col
        evicted = rt.retire_column(struck)
        assert evicted == []
        assert struck in rt.retired_columns
        assert struck not in rt.get("a").region.col_span
        assert rt.migrations == 1
        rt.check_invariants()

    def test_evicting_unreplaceable_module_keeps_compacted_frames(self):
        # Regression (hypothesis counterexample): a fault strikes a wide
        # module's column on a full fabric; _replace_module clears its
        # frames, the defrag pass compacts a neighbor *into* that old
        # footprint, and re-placement still fails.  The final eviction
        # must not clear the stale region again — that would wipe the
        # neighbor's freshly configured frames.
        device = synthetic_device(rows=1, clb_runs=(10,), name="packed-row")
        per_col = device.family.clb_per_col * device.family.luts_per_clb

        def demand(name, cols):
            return PRMRequirements(name, cols * per_col, cols * per_col,
                                   cols * per_col)

        rt = FabricRuntime(device, config=FabricConfig(verify="crc"))
        rt.admit("wide", demand("wide", 2))
        for i in range(5):
            rt.admit(f"m{i}", demand(f"m{i}", 1))
        rt.admit("tail", demand("tail", 2))
        struck = rt.get("wide").region.col
        evicted = rt.retire_column(struck)
        assert evicted == ["wide"]
        assert rt.module_names() == {"m0", "m1", "m2", "m3", "m4", "tail"}
        rt.check_invariants()  # every surviving region still configured

    def test_retire_column_twice_is_idempotent(self):
        rt = FabricRuntime(ROW)
        rt.retire_column(3)
        assert rt.retire_column(3) == []
        assert rt.columns_retired == 1

    def test_out_of_range_column_rejected(self):
        rt = FabricRuntime(ROW)
        with pytest.raises(InvalidInput):
            rt.retire_column(0)

    def test_eviction_only_when_capacity_truly_shrank(self):
        rt = FabricRuntime(ROW)
        rt.admit("hi", clb_demand("hi", 6), priority=2)
        rt.admit("lo", clb_demand("lo", 6), priority=0)
        # Full fabric, no retired columns: admission fails without
        # touching the admitted modules even though eviction is allowed.
        with pytest.raises(AdmissionError):
            rt.admit("new", clb_demand("new", 3), priority=1,
                     can_evict=lambda name: True)
        assert rt.module_names() == frozenset({"hi", "lo"})
        # Retire a column under "lo": capacity shrank, nothing can host
        # a 6-wide module any more, so the displaced low-priority module
        # is evicted while the high-priority one survives.
        struck = rt.get("lo").region.col
        evicted = rt.retire_column(struck, can_evict=lambda name: True)
        assert evicted == ["lo"]
        assert rt.module_names() == frozenset({"hi"})
        rt.check_invariants()

    def test_displaced_high_priority_evicts_lower(self):
        rt = FabricRuntime(ROW)
        rt.admit("hi", clb_demand("hi", 6), priority=2)
        rt.admit("lo", clb_demand("lo", 6), priority=0)
        struck = rt.get("hi").region.col
        evicted = rt.retire_column(struck, can_evict=lambda name: True)
        # The high-priority module displaces the low-priority one.
        assert evicted == ["lo"]
        assert rt.module_names() == frozenset({"hi"})
        assert struck not in rt.get("hi").region.col_span
        rt.check_invariants()

    def test_quarantine_streak_escalates_to_retirement(self):
        rt = FabricRuntime(ROW, config=FabricConfig(escalation_streak=2))
        assert rt.note_quarantine(4) is False
        assert 4 not in rt.retired_columns
        assert rt.note_quarantine(4) is True
        assert 4 in rt.retired_columns
        # Already permanent: further quarantines do not re-escalate.
        assert rt.note_quarantine(4) is False

    def test_blacklisted_columns_never_receive_placements(self):
        rt = FabricRuntime(ROW)
        for col in (2, 3, 4):
            rt.retire_column(col)
        module = rt.admit("a", clb_demand("a", 3))
        assert not set(module.region.col_span) & rt.retired_columns
        rt.check_invariants()

"""Scheduling on the live fabric: dispatch, churn, faults, determinism."""

import dataclasses

from repro.core import PRMRequirements
from repro.devices import XC5VLX110T
from repro.fabric import FabricConfig, FabricRuntime, simulate_on_fabric
from repro.faults import FaultInjector
from repro.multitask import HwTask, make_task_set, simulate_pr


def task_mix() -> list[HwTask]:
    return [
        HwTask(
            PRMRequirements(f"t{i}", 400 + 100 * i, 300 + 80 * i, 300 + 80 * i),
            exec_seconds=2e-3,
        )
        for i in range(4)
    ]


def job_stream(seed: int = 7):
    return make_task_set(
        task_mix(), rate_per_s=200.0, horizon_s=0.4, seed=seed
    )


class TestDispatch:
    def test_simulate_pr_accepts_a_runtime(self):
        runtime = FabricRuntime(XC5VLX110T)
        result = simulate_pr(job_stream(), runtime)
        assert result.system == "fabric"
        assert result.completed
        assert result.dropped_jobs == 0
        runtime.check_invariants()

    def test_reconfig_accounting_comes_from_the_runtime(self):
        runtime = FabricRuntime(XC5VLX110T)
        result = simulate_on_fabric(job_stream(), runtime)
        assert result.reconfig_count == runtime.admissions + runtime.migrations
        assert result.total_reconfig_seconds > 0


class TestChurn:
    def test_idle_retirement_recycles_modules(self):
        runtime = FabricRuntime(XC5VLX110T)
        result = simulate_on_fabric(
            job_stream(), runtime, idle_retire_s=0.02
        )
        assert runtime.retirements > 0
        assert result.completion_rate == 1.0
        runtime.check_invariants()

    def test_churn_free_run_readmits_nothing(self):
        runtime = FabricRuntime(XC5VLX110T)
        simulate_on_fabric(job_stream(), runtime)
        # One admission per distinct task, no retirements, no migrations
        # forced by faults.
        assert runtime.admissions == len(task_mix())
        assert runtime.retirements == 0


class TestPermanentFaultSoak:
    def test_struck_columns_are_retired_and_modules_survive(self):
        injector = FaultInjector.from_rates(seed=3, permanent_rate_per_s=20.0)
        runtime = FabricRuntime(XC5VLX110T, injector=injector)
        result = simulate_on_fabric(
            job_stream(), runtime, idle_retire_s=0.02
        )
        assert runtime.columns_retired > 0
        assert result.permanent_retirements == runtime.columns_retired
        assert result.fault_events == runtime.columns_retired
        runtime.check_invariants()

    def test_fault_run_is_deterministic(self):
        def soak():
            injector = FaultInjector.from_rates(
                seed=11, permanent_rate_per_s=15.0, fault_rate=0.3
            )
            runtime = FabricRuntime(
                XC5VLX110T,
                config=FabricConfig(verify="crc"),
                injector=injector,
            )
            result = simulate_on_fabric(
                job_stream(seed=11), runtime, idle_retire_s=0.02
            )
            return result, runtime

        first_result, first_rt = soak()
        second_result, second_rt = soak()
        assert dataclasses.asdict(first_result) == dataclasses.asdict(
            second_result
        )
        assert first_rt.stats() == second_rt.stats()
        assert [
            (e.time_s, e.kind, e.detail) for e in first_rt.events
        ] == [(e.time_s, e.kind, e.detail) for e in second_rt.events]

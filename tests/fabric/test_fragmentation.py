"""Free-space accounting: grids, largest rectangle, fragmentation index."""

from repro.devices import XC5VLX110T, Region, synthetic_device
from repro.fabric import (
    fragmentation_index,
    free_cell_grid,
    largest_free_rectangle,
    total_free_cells,
)

# 10 contiguous CLB columns, IOB-bounded with a central CLK column.
STRIP = synthetic_device(rows=2, clb_runs=(5, 5), name="strip")


class TestFreeCellGrid:
    def test_empty_fabric_frees_reconfigurable_cells_only(self):
        grid = free_cell_grid(STRIP, [])
        free = total_free_cells(grid)
        reconfigurable = sum(
            1 for kind in STRIP.columns if kind.reconfigurable
        ) * STRIP.rows
        assert free == reconfigurable
        # IOB/CLK columns are never free.
        for row in grid:
            assert not row[0] and not row[-1]

    def test_occupied_region_is_removed(self):
        region = Region(row=1, col=2, height=1, width=3)
        grid = free_cell_grid(STRIP, [region])
        baseline = total_free_cells(free_cell_grid(STRIP, []))
        assert total_free_cells(grid) == baseline - region.height * region.width
        assert not grid[0][1] and not grid[0][3]
        assert grid[1][1]  # row 2 untouched

    def test_retired_column_is_removed_full_height(self):
        grid = free_cell_grid(STRIP, [], retired_columns=[3])
        for row in grid:
            assert not row[2]
        baseline = total_free_cells(free_cell_grid(STRIP, []))
        assert total_free_cells(grid) == baseline - STRIP.rows


class TestFragmentationIndex:
    def test_contiguous_free_space_scores_zero(self):
        # One CLB run: all free cells form a single rectangle.
        device = synthetic_device(rows=2, clb_runs=(8,), name="solid")
        grid = free_cell_grid(device, [])
        assert largest_free_rectangle(grid) == total_free_cells(grid)
        assert fragmentation_index(grid) == 0.0

    def test_middle_placement_raises_index(self):
        device = synthetic_device(rows=1, clb_runs=(9,), name="row")
        empty = fragmentation_index(free_cell_grid(device, []))
        split = fragmentation_index(
            free_cell_grid(device, [Region(row=1, col=5, height=1, width=1)])
        )
        assert split > empty

    def test_full_fabric_scores_zero(self):
        device = synthetic_device(rows=1, clb_runs=(3,), name="tiny")
        region = Region(row=1, col=2, height=1, width=3)
        grid = free_cell_grid(device, [region])
        assert total_free_cells(grid) == 0
        assert fragmentation_index(grid) == 0.0

    def test_catalog_device_index_in_unit_range(self):
        grid = free_cell_grid(
            XC5VLX110T, [Region(row=2, col=10, height=2, width=4)]
        )
        index = fragmentation_index(grid)
        assert 0.0 <= index < 1.0

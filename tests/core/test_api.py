"""Unit tests for the one-call convenience API."""

import pytest

from repro.core.api import evaluate_prm, evaluate_shared_prr
from repro.devices.catalog import XC5VLX110T, XC6VLX75T

from tests.conftest import TABLE7_BYTES, paper_requirements


class TestEvaluatePrm:
    def test_result_fields_consistent(self):
        prm = paper_requirements("fir", "virtex5")
        result = evaluate_prm(prm, XC5VLX110T)
        assert result.prm is prm
        assert result.device_name == "xc5vlx110t"
        assert result.clb_req == 163
        assert result.bitstream.total_bytes == TABLE7_BYTES[("fir", "xc5vlx110t")]
        assert result.reconfig.bitstream_bytes == result.bitstream.total_bytes

    def test_table5_row_keys(self):
        prm = paper_requirements("mips", "virtex6")
        row = evaluate_prm(prm, XC6VLX75T).table5_row()
        expected_keys = {
            "LUT_FF_req",
            "DSP_req",
            "BRAM_req",
            "LUT_req",
            "FF_req",
            "CLB_req",
            "H_CLB",
            "W_CLB",
            "H_DSP",
            "W_DSP",
            "H_BRAM",
            "W_BRAM",
            "CLB_avail",
            "FF_avail",
            "LUT_avail",
            "DSP_avail",
            "BRAM_avail",
            "RU_CLB",
            "RU_FF",
            "RU_LUT",
            "RU_DSP",
            "RU_BRAM",
        }
        assert expected_keys <= set(row)

    def test_summary_readable(self):
        prm = paper_requirements("sdram", "virtex5")
        text = evaluate_prm(prm, XC5VLX110T).summary()
        assert "sdram" in text and "bitstream=18016" in text

    def test_controller_override(self):
        prm = paper_requirements("sdram", "virtex5")
        slow = evaluate_prm(prm, XC5VLX110T, controller_bytes_per_s=1e6)
        fast = evaluate_prm(prm, XC5VLX110T)
        assert slow.reconfig.seconds > fast.reconfig.seconds


class TestEvaluateSharedPrr:
    def test_all_results_share_placement_and_bytes(self):
        prms = [
            paper_requirements("fir", "virtex6"),
            paper_requirements("mips", "virtex6"),
            paper_requirements("sdram", "virtex6"),
        ]
        results = evaluate_shared_prr(prms, XC6VLX75T)
        assert len(results) == 3
        first = results[0]
        for result in results[1:]:
            assert result.placement is first.placement
            assert result.bitstream.total_bytes == first.bitstream.total_bytes

    def test_shared_utilization_lower_for_small_prm(self):
        prms = [
            paper_requirements("mips", "virtex6"),
            paper_requirements("sdram", "virtex6"),
        ]
        results = {r.prm.name: r for r in evaluate_shared_prr(prms, XC6VLX75T)}
        assert results["sdram"].utilization.clb < results["mips"].utilization.clb

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_shared_prr([], XC6VLX75T)

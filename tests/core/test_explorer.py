"""Unit tests for the partitioning design-space explorer."""

import pytest

from repro.core.explorer import (
    evaluate_partition,
    explore,
    iter_set_partitions,
    pareto_front,
)
from repro.devices.catalog import XC5VLX110T, XC6VLX75T

from tests.conftest import paper_requirements


def bell(n):
    partitions = list(iter_set_partitions(range(n)))
    return len(partitions)


class TestSetPartitions:
    def test_bell_numbers(self):
        assert bell(0) == 1
        assert bell(1) == 1
        assert bell(2) == 2
        assert bell(3) == 5
        assert bell(4) == 15

    def test_partitions_cover_all_items(self):
        for partition in iter_set_partitions([0, 1, 2]):
            flat = sorted(x for group in partition for x in group)
            assert flat == [0, 1, 2]

    def test_partitions_unique(self):
        seen = set()
        for partition in iter_set_partitions(range(4)):
            key = frozenset(frozenset(g) for g in partition)
            assert key not in seen
            seen.add(key)


@pytest.fixture(scope="module")
def v5_prms():
    return [
        paper_requirements("fir", "virtex5"),
        paper_requirements("mips", "virtex5"),
        paper_requirements("sdram", "virtex5"),
    ]


@pytest.fixture(scope="module")
def v6_prms():
    return [
        paper_requirements("fir", "virtex6"),
        paper_requirements("mips", "virtex6"),
        paper_requirements("sdram", "virtex6"),
    ]


class TestEvaluatePartition:
    def test_singletons_place_disjointly(self, v5_prms):
        design = evaluate_partition(XC5VLX110T, [[p] for p in v5_prms])
        assert design is not None
        regions = [a.placement.region for a in design.assignments]
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                assert not a.overlaps(b)

    def test_metrics_positive(self, v5_prms):
        design = evaluate_partition(XC5VLX110T, [[p] for p in v5_prms])
        assert design.total_prr_size > 0
        assert design.total_bitstream_bytes > 0
        assert design.worst_reconfig_seconds > 0

    def test_shared_bitstream_counts_per_prm(self, v6_prms):
        shared = evaluate_partition(XC6VLX75T, [v6_prms])
        assert shared is not None
        assignment = shared.assignments[0]
        assert (
            shared.total_bitstream_bytes
            == assignment.bitstream_bytes * len(v6_prms)
        )

    def test_summary_mentions_groups(self, v5_prms):
        design = evaluate_partition(XC5VLX110T, [[p] for p in v5_prms])
        assert "fir" in design.summary() and "PRR" in design.summary()


class TestExplore:
    def test_explore_v5_returns_sorted(self, v5_prms):
        designs = explore(XC5VLX110T, v5_prms)
        assert designs
        objectives = [d.objectives for d in designs]
        assert objectives == sorted(objectives)

    def test_explore_v6_includes_fully_shared(self, v6_prms):
        designs = explore(XC6VLX75T, v6_prms)
        assert any(d.num_prrs == 1 for d in designs)
        assert any(d.num_prrs == 3 for d in designs)

    def test_max_prrs_filter(self, v6_prms):
        designs = explore(XC6VLX75T, v6_prms, max_prrs=1)
        assert designs and all(d.num_prrs == 1 for d in designs)

    def test_too_many_prms_fall_back_to_beam(self, v5_prms):
        # mode="auto" degrades to beam search above MAX_EXHAUSTIVE_PRMS
        # instead of raising; only an explicit exhaustive request is capped.
        designs = explore(XC5VLX110T, v5_prms * 3)
        assert designs
        objectives = [d.objectives for d in designs]
        assert objectives == sorted(objectives)
        with pytest.raises(ValueError, match="capped"):
            explore(XC5VLX110T, v5_prms * 3, mode="exhaustive")


class TestPareto:
    def test_front_is_nondominated(self, v6_prms):
        designs = explore(XC6VLX75T, v6_prms)
        front = pareto_front(designs)
        assert front
        for candidate in front:
            for other in designs:
                if all(
                    x <= y
                    for x, y in zip(other.objectives, candidate.objectives)
                ):
                    assert other.objectives == candidate.objectives or any(
                        x < y
                        for x, y in zip(candidate.objectives, other.objectives)
                    )

    def test_front_subset_of_designs(self, v6_prms):
        designs = explore(XC6VLX75T, v6_prms)
        front = pareto_front(designs)
        assert all(d in designs for d in front)

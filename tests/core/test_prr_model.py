"""Unit tests for the PRR size/organization cost model (eqs. (1)-(12))."""

import pytest

from repro.core.params import PRMRequirements
from repro.core.prr_model import (
    InfeasibleGeometryError,
    PRRGeometry,
    clb_requirement,
    merge_geometries,
    min_rows_for_dsps,
    prr_geometry_for_rows,
)
from repro.devices.family import VIRTEX5, VIRTEX6
from repro.devices.resources import ResourceVector

from tests.conftest import paper_requirements


class TestEq1:
    def test_paper_clb_requirements(self):
        assert clb_requirement(paper_requirements("fir", "virtex5"), VIRTEX5) == 163
        assert clb_requirement(paper_requirements("mips", "virtex5"), VIRTEX5) == 328
        assert clb_requirement(paper_requirements("sdram", "virtex5"), VIRTEX5) == 42
        assert clb_requirement(paper_requirements("fir", "virtex6"), VIRTEX6) == 184
        assert clb_requirement(paper_requirements("mips", "virtex6"), VIRTEX6) == 405
        assert clb_requirement(paper_requirements("sdram", "virtex6"), VIRTEX6) == 49

    def test_ceiling_behaviour(self):
        prm = PRMRequirements("x", 9, 9, 0)
        assert clb_requirement(prm, VIRTEX5) == 2  # ceil(9/8)


class TestMinRowsForDsps:
    def test_single_column_eq4(self):
        # FIR/V5 needs H >= ceil(32/8) = 4 on the one DSP column.
        prm = paper_requirements("fir", "virtex5")
        assert min_rows_for_dsps(prm, VIRTEX5, single_dsp_column=True) == 4

    def test_multi_column_unconstrained(self):
        prm = paper_requirements("fir", "virtex6")
        assert min_rows_for_dsps(prm, VIRTEX6, single_dsp_column=False) == 1

    def test_no_dsps(self):
        prm = paper_requirements("sdram", "virtex5")
        assert min_rows_for_dsps(prm, VIRTEX5, single_dsp_column=True) == 1


class TestGeometryForRows:
    def test_fir_v5_h5(self):
        geometry = prr_geometry_for_rows(
            paper_requirements("fir", "virtex5"), VIRTEX5, 5, single_dsp_column=True
        )
        assert geometry.columns == ResourceVector(2, 1, 0)
        assert geometry.width == 3
        assert geometry.size == 15

    def test_fir_v5_h4_feasible_but_larger(self):
        geometry = prr_geometry_for_rows(
            paper_requirements("fir", "virtex5"), VIRTEX5, 4, single_dsp_column=True
        )
        assert geometry.columns == ResourceVector(3, 1, 0)
        assert geometry.size == 16  # > 15, hence the flow prefers H=5

    def test_fir_v5_h3_infeasible_by_eq4(self):
        with pytest.raises(InfeasibleGeometryError, match="needs H >= 4"):
            prr_geometry_for_rows(
                paper_requirements("fir", "virtex5"),
                VIRTEX5,
                3,
                single_dsp_column=True,
            )

    def test_mips_v5_h1(self):
        geometry = prr_geometry_for_rows(
            paper_requirements("mips", "virtex5"), VIRTEX5, 1, single_dsp_column=True
        )
        assert geometry.columns == ResourceVector(17, 1, 2)
        assert geometry.size == 20

    def test_mips_v6_h1_uses_eq3(self):
        geometry = prr_geometry_for_rows(
            paper_requirements("mips", "virtex6"), VIRTEX6, 1, single_dsp_column=False
        )
        assert geometry.columns == ResourceVector(11, 1, 1)

    def test_fir_v6_needs_two_dsp_columns(self):
        geometry = prr_geometry_for_rows(
            paper_requirements("fir", "virtex6"), VIRTEX6, 1, single_dsp_column=False
        )
        assert geometry.columns.dsp == 2  # ceil(27/16)

    def test_zero_requirement_kinds_get_zero_columns(self):
        geometry = prr_geometry_for_rows(
            paper_requirements("sdram", "virtex5"), VIRTEX5, 1
        )
        assert geometry.columns == ResourceVector(3, 0, 0)

    def test_rows_validation(self):
        with pytest.raises(ValueError):
            prr_geometry_for_rows(
                paper_requirements("sdram", "virtex5"), VIRTEX5, 0
            )

    def test_empty_requirements_rejected(self):
        with pytest.raises(ValueError):
            prr_geometry_for_rows([], VIRTEX5, 1)


class TestAvailability:
    """Eqs. (8)-(12) against the paper's Table V availability cells."""

    def test_fir_v5(self):
        geometry = prr_geometry_for_rows(
            paper_requirements("fir", "virtex5"), VIRTEX5, 5, single_dsp_column=True
        )
        assert geometry.available == ResourceVector(200, 40, 0)
        assert geometry.ffs_available == 1600
        assert geometry.luts_available == 1600

    def test_mips_v5(self):
        geometry = prr_geometry_for_rows(
            paper_requirements("mips", "virtex5"), VIRTEX5, 1, single_dsp_column=True
        )
        assert geometry.available == ResourceVector(340, 8, 8)

    def test_mips_v6_ff_avail_doubles(self):
        geometry = prr_geometry_for_rows(
            paper_requirements("mips", "virtex6"), VIRTEX6, 1
        )
        assert geometry.available.clb == 440
        assert geometry.ffs_available == 7040  # 16 FFs per CLB on Virtex-6
        assert geometry.luts_available == 3520

    def test_fits(self):
        prm = paper_requirements("fir", "virtex5")
        good = prr_geometry_for_rows(prm, VIRTEX5, 5, single_dsp_column=True)
        assert good.fits(prm)
        small = PRRGeometry(VIRTEX5, rows=1, columns=ResourceVector(1, 0, 0))
        assert not small.fits(prm)


class TestSharedPRRMerge:
    def test_merge_takes_elementwise_max(self):
        fir = prr_geometry_for_rows(
            paper_requirements("fir", "virtex6"), VIRTEX6, 1
        )
        mips = prr_geometry_for_rows(
            paper_requirements("mips", "virtex6"), VIRTEX6, 1
        )
        merged = merge_geometries([fir, mips])
        assert merged.columns == ResourceVector(11, 2, 1)

    def test_merge_requires_same_rows(self):
        a = PRRGeometry(VIRTEX5, 1, ResourceVector(1, 0, 0))
        b = PRRGeometry(VIRTEX5, 2, ResourceVector(1, 0, 0))
        with pytest.raises(ValueError, match="common H"):
            merge_geometries([a, b])

    def test_merge_requires_same_family(self):
        a = PRRGeometry(VIRTEX5, 1, ResourceVector(1, 0, 0))
        b = PRRGeometry(VIRTEX6, 1, ResourceVector(1, 0, 0))
        with pytest.raises(ValueError, match="family"):
            merge_geometries([a, b])

    def test_merge_empty(self):
        with pytest.raises(ValueError):
            merge_geometries([])

    def test_multi_prm_geometry_equals_merge(self):
        prms = [
            paper_requirements("fir", "virtex6"),
            paper_requirements("mips", "virtex6"),
            paper_requirements("sdram", "virtex6"),
        ]
        direct = prr_geometry_for_rows(prms, VIRTEX6, 1)
        merged = merge_geometries(
            [prr_geometry_for_rows(prm, VIRTEX6, 1) for prm in prms]
        )
        assert direct.columns == merged.columns


class TestGeometryValidation:
    def test_needs_a_row(self):
        with pytest.raises(ValueError):
            PRRGeometry(VIRTEX5, 0, ResourceVector(1, 0, 0))

    def test_needs_a_column(self):
        with pytest.raises(ValueError):
            PRRGeometry(VIRTEX5, 1, ResourceVector())

"""Unit tests for the fast-path machinery: window index, occupancy, caches.

Every fast path must be behavior-identical to the naive path it replaces;
these tests assert that equivalence directly.
"""

import random

import pytest

from repro.core.fastpath import (
    GroupBounds,
    PlacementCache,
    RegionOccupancy,
    group_lower_bounds,
)
from repro.core.placement_search import PlacementNotFoundError, find_prr
from repro.core.prr_model import (
    clear_geometry_cache,
    geometry_cache_info,
    prr_geometry_for_rows,
)
from repro.devices import DEVICES, VIRTEX5, ResourceVector
from repro.devices.catalog import synthetic_device
from repro.devices.fabric import Region
from repro.devices.window_index import ColumnWindowIndex

from tests.conftest import paper_requirements


def random_synthetic_devices(seed=7, count=8):
    rng = random.Random(seed)
    devices = []
    for index in range(count):
        runs = tuple(rng.randint(1, 9) for _ in range(rng.randint(2, 6)))
        boundaries = max(len(runs) - 2, 0)
        dsp = tuple(
            sorted(rng.sample(range(boundaries + 1), rng.randint(0, min(2, boundaries + 1))))
        )
        bram = tuple(
            sorted(rng.sample(range(boundaries + 1), rng.randint(0, min(2, boundaries + 1))))
        )
        devices.append(
            synthetic_device(
                rows=rng.randint(1, 8),
                clb_runs=runs,
                dsp_positions=dsp,
                bram_positions=bram,
                name=f"synthetic{index}",
            )
        )
    return devices


class TestColumnWindowIndex:
    @pytest.mark.parametrize("device", DEVICES.values(), ids=lambda d: d.name)
    def test_matches_naive_on_catalog(self, device):
        for clb in range(5):
            for dsp in range(3):
                for bram in range(3):
                    if clb + dsp + bram == 0:
                        continue
                    req = ResourceVector(clb=clb, dsp=dsp, bram=bram)
                    for start in (1, 2, device.num_columns // 2, device.num_columns):
                        assert device.find_column_window(req, start_col=start) == (
                            device.find_column_window_naive(req, start_col=start)
                        ), (device.name, req, start)

    def test_matches_naive_on_random_layouts(self):
        rng = random.Random(11)
        for device in random_synthetic_devices():
            for _ in range(30):
                req = ResourceVector(
                    clb=rng.randint(0, 6), dsp=rng.randint(0, 2), bram=rng.randint(0, 2)
                )
                if req.total == 0:
                    continue
                start = rng.randint(1, device.num_columns)
                assert device.find_column_window(req, start_col=start) == (
                    device.find_column_window_naive(req, start_col=start)
                )

    def test_feasible_starts_sorted_and_exact(self):
        device = DEVICES["xc5vlx110t"]
        req = ResourceVector(clb=3)
        starts = device.feasible_window_starts(req)
        assert list(starts) == sorted(starts)
        for col in starts:
            region = Region(row=1, col=col, height=1, width=req.total)
            assert device.region_column_counts(region) == req
        # every non-listed start must not match
        listed = set(starts)
        for col in range(1, device.num_columns - req.total + 2):
            if col in listed:
                continue
            try:
                counts = device.region_column_counts(
                    Region(row=1, col=col, height=1, width=req.total)
                )
            except ValueError:
                continue  # covers IOB/CLK
            assert counts != req

    def test_zero_requirement_rejected(self):
        device = DEVICES["xc5vlx110t"]
        with pytest.raises(ValueError, match="at least one column"):
            device.find_column_window(ResourceVector())
        with pytest.raises(ValueError, match="at least one column"):
            device.find_column_window_naive(ResourceVector())

    def test_window_counts_prefix_sums(self):
        device = DEVICES["xc6vlx75t"]
        index = device.window_index
        for start in (2, 5, 10):
            width = 4
            region = Region(row=1, col=start, height=1, width=width)
            try:
                expected = device.region_column_counts(region)
            except ValueError:
                with pytest.raises(ValueError):
                    index.window_counts(start, width)
                continue
            assert index.window_counts(start, width) == expected

    def test_window_counts_bounds_checked(self):
        index = ColumnWindowIndex(DEVICES["xc5vlx110t"].columns)
        with pytest.raises(ValueError):
            index.window_counts(0, 3)
        with pytest.raises(ValueError):
            index.window_counts(60, 10)

    def test_index_cached_per_device(self):
        device = DEVICES["xc5vlx110t"]
        assert device.window_index is device.window_index

    def test_wider_than_fabric_returns_none(self):
        device = DEVICES["xc5vlx50t"]
        req = ResourceVector(clb=device.num_columns + 5)
        assert device.find_column_window(req) is None
        assert device.find_column_window_naive(req) is None


class TestRegionOccupancy:
    def test_matches_bruteforce_on_random_sets(self):
        rng = random.Random(3)
        for _ in range(50):
            regions = [
                Region(
                    row=rng.randint(1, 8),
                    col=rng.randint(1, 40),
                    height=rng.randint(1, 4),
                    width=rng.randint(1, 10),
                )
                for _ in range(rng.randint(0, 12))
            ]
            occupancy = RegionOccupancy(regions)
            for _ in range(20):
                candidate = Region(
                    row=rng.randint(1, 8),
                    col=rng.randint(1, 40),
                    height=rng.randint(1, 4),
                    width=rng.randint(1, 10),
                )
                expected = any(candidate.overlaps(r) for r in regions)
                assert occupancy.overlaps(candidate) == expected

    def test_incremental_add(self):
        occupancy = RegionOccupancy()
        a = Region(row=1, col=5, height=2, width=3)
        assert not occupancy.overlaps(a)
        occupancy.add(a)
        assert occupancy.overlaps(Region(row=2, col=6, height=1, width=1))
        assert not occupancy.overlaps(Region(row=3, col=5, height=1, width=3))
        assert len(occupancy) == 1 and occupancy.regions == (a,)

    def test_key_is_order_insensitive(self):
        a = Region(row=1, col=2, height=1, width=2)
        b = Region(row=3, col=9, height=2, width=1)
        assert RegionOccupancy([a, b]).key() == RegionOccupancy([b, a]).key()


class TestGeometryMemoization:
    def test_cache_hits_accumulate(self):
        clear_geometry_cache()
        prm = paper_requirements("fir", "virtex5")
        first = prr_geometry_for_rows(prm, VIRTEX5, 5, single_dsp_column=True)
        before = geometry_cache_info().hits
        second = prr_geometry_for_rows(prm, VIRTEX5, 5, single_dsp_column=True)
        assert geometry_cache_info().hits > before
        assert first == second

    def test_group_order_shares_entry(self):
        clear_geometry_cache()
        fir = paper_requirements("fir", "virtex6")
        mips = paper_requirements("mips", "virtex6")
        a = prr_geometry_for_rows([fir, mips], DEVICES["xc6vlx75t"].family, 1)
        misses = geometry_cache_info().misses
        b = prr_geometry_for_rows([mips, fir], DEVICES["xc6vlx75t"].family, 1)
        assert geometry_cache_info().misses == misses
        assert a == b

    def test_infeasible_verdicts_memoized(self):
        clear_geometry_cache()
        prm = paper_requirements("fir", "virtex5")
        from repro.core.prr_model import InfeasibleGeometryError

        with pytest.raises(InfeasibleGeometryError, match="needs H >="):
            prr_geometry_for_rows(prm, VIRTEX5, 1, single_dsp_column=True)
        before = geometry_cache_info().hits
        with pytest.raises(InfeasibleGeometryError, match="needs H >="):
            prr_geometry_for_rows(prm, VIRTEX5, 1, single_dsp_column=True)
        assert geometry_cache_info().hits > before


class TestPlacementCache:
    def test_cached_equals_uncached(self):
        device = DEVICES["xc5vlx110t"]
        cache = PlacementCache()
        prm = paper_requirements("mips", "virtex5")
        direct = find_prr(device, prm)
        cached = cache.find_prr(device, [prm], forbidden=RegionOccupancy())
        again = cache.find_prr(device, [prm], forbidden=RegionOccupancy())
        assert cached == direct and again == direct
        assert cache.hits == 1 and cache.misses == 1

    def test_not_found_cached(self):
        device = DEVICES["xc5vlx110t"]
        cache = PlacementCache()
        from repro.core.params import PRMRequirements

        monster = PRMRequirements("monster", 10**6, 10**6, 0)
        for _ in range(2):
            with pytest.raises(PlacementNotFoundError, match="monster"):
                cache.find_prr(device, [monster], forbidden=RegionOccupancy())
        assert cache.hits == 1 and cache.misses == 1

    def test_forbidden_set_distinguished(self):
        device = DEVICES["xc5vlx110t"]
        cache = PlacementCache()
        prm = paper_requirements("sdram", "virtex5")
        free = cache.find_prr(device, [prm], forbidden=RegionOccupancy())
        blocked = cache.find_prr(
            device, [prm], forbidden=RegionOccupancy([free.region])
        )
        assert not blocked.region.overlaps(free.region)
        assert cache.misses == 2


class TestGroupBounds:
    def test_bounds_are_admissible_for_paper_cases(self):
        for device_name, family in (("xc5vlx110t", "virtex5"), ("xc6vlx75t", "virtex6")):
            device = DEVICES[device_name]
            for workload in ("fir", "mips", "sdram"):
                prm = paper_requirements(workload, family)
                bounds = group_lower_bounds(device, [prm])
                assert isinstance(bounds, GroupBounds)
                placed = find_prr(device, prm)
                assert bounds.min_size <= placed.size
                assert bounds.min_bytes <= placed.bitstream_bytes

    def test_group_bounds_dominate_members(self):
        device = DEVICES["xc6vlx75t"]
        fir = paper_requirements("fir", "virtex6")
        mips = paper_requirements("mips", "virtex6")
        merged = group_lower_bounds(device, [fir, mips])
        for member in ([fir], [mips]):
            solo = group_lower_bounds(device, member)
            assert merged.min_size >= solo.min_size
            assert merged.min_bytes >= solo.min_bytes

    def test_infeasible_group_returns_none(self):
        from repro.core.params import PRMRequirements

        device = DEVICES["xc5vlx110t"]  # single DSP column, 8 rows
        impossible = PRMRequirements(
            "dsphog", lut_ff_pairs=100, luts=100, ffs=0, dsps=8 * 8 + 1
        )
        assert group_lower_bounds(device, [impossible]) is None

"""Tests for the design advisor."""

import pytest

from repro.core.advisor import Severity, advise
from repro.core.params import PRMRequirements
from repro.devices.catalog import XC5VLX110T, XC6VLX75T

from tests.conftest import paper_requirements


class TestAdviseFir:
    @pytest.fixture(scope="class")
    def advice(self):
        return advise(paper_requirements("fir", "virtex5"), XC5VLX110T)

    def test_geometry_finding(self, advice):
        geometry_findings = [
            f for f in advice.findings if f.topic == "geometry"
        ]
        assert len(geometry_findings) == 1
        assert "H=5" in geometry_findings[0].message

    def test_lshape_suggested_for_fir(self, advice):
        assert advice.lshape is not None
        assert any(f.topic == "shape" for f in advice.suggestions)

    def test_ff_fragmentation_warned(self, advice):
        """FIR/V5's RU_FF is 25% — the advisor flags the waste."""
        messages = [f.message for f in advice.warnings]
        assert any("RU_FF" in m for m in messages)

    def test_render(self, advice):
        text = advice.render()
        assert "fir on xc5vlx110t" in text
        assert "[warning" in text


class TestAdviseSdram:
    def test_no_lshape_for_single_row(self):
        advice = advise(paper_requirements("sdram", "virtex5"), XC5VLX110T)
        assert advice.lshape is None
        assert not any(f.topic == "shape" for f in advice.findings)

    def test_no_dsp_fragmentation_warning_without_dsps(self):
        advice = advise(paper_requirements("sdram", "virtex5"), XC5VLX110T)
        assert not any("RU_DSP" in f.message for f in advice.warnings)


class TestRoutingWarnings:
    def test_dense_prm_gets_routing_warning(self):
        # Pairs sized to ~99% of a 1x1-CLB-column PRR (160 sites).
        dense = PRMRequirements("dense", 159, 120, 80)
        advice = advise(dense, XC5VLX110T)
        assert any(f.topic == "routing" for f in advice.warnings)

    def test_comfortable_prm_has_no_routing_warning(self):
        advice = advise(paper_requirements("sdram", "virtex6"), XC6VLX75T)
        assert not any(f.topic == "routing" for f in advice.warnings)


class TestReconfigBudget:
    def test_short_period_warns(self):
        advice = advise(
            paper_requirements("mips", "virtex6"),
            XC6VLX75T,
            task_period_seconds=1e-3,  # 472 us reconfig vs 1 ms period
        )
        assert any(
            f.topic == "reconfiguration" and f.severity is Severity.WARNING
            for f in advice.findings
        )

    def test_long_period_is_fine(self):
        advice = advise(
            paper_requirements("mips", "virtex6"),
            XC6VLX75T,
            task_period_seconds=1.0,
        )
        reconfig = [
            f for f in advice.findings if f.topic == "reconfiguration"
        ]
        assert all(f.severity is Severity.INFO for f in reconfig)

    def test_no_period_no_overhead_finding(self):
        advice = advise(paper_requirements("mips", "virtex6"), XC6VLX75T)
        assert sum(1 for f in advice.findings if f.topic == "reconfiguration") == 1

"""Tests for non-rectangular (L/T-shaped) PRRs."""

import pytest

from repro.bitgen import generate_composite_bitstream, parse_bitstream
from repro.core.placement_search import find_prr
from repro.core.shapes import (
    CompositePRR,
    composite_bitstream_bytes,
    find_lshape_prr,
)
from repro.devices.catalog import XC5VLX110T
from repro.devices.fabric import Region
from repro.devices.resources import ColumnKind

from tests.conftest import paper_requirements


def clb_region(row, height, width=1, index=0):
    col = XC5VLX110T.columns_of_kind(ColumnKind.CLB)[index]
    return Region(row=row, col=col, height=height, width=width)


class TestCompositePRR:
    def test_needs_parts(self):
        with pytest.raises(ValueError):
            CompositePRR(device=XC5VLX110T, parts=())

    def test_rejects_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            CompositePRR(
                device=XC5VLX110T,
                parts=(clb_region(1, 2), clb_region(2, 2)),
            )

    def test_rejects_invalid_part(self):
        with pytest.raises(ValueError):
            CompositePRR(
                device=XC5VLX110T,
                parts=(Region(row=1, col=1, height=1, width=1),),
            )

    def test_size_sums_parts(self):
        composite = CompositePRR(
            device=XC5VLX110T,
            parts=(clb_region(1, 2, 2), clb_region(3, 1, 1)),
        )
        assert composite.size == 5

    def test_availability_sums_parts(self):
        composite = CompositePRR(
            device=XC5VLX110T,
            parts=(clb_region(1, 2, 2), clb_region(3, 1, 1)),
        )
        assert composite.available.clb == (4 + 1) * 20
        assert composite.luts_available == 5 * 20 * 8

    def test_rectangular_flag(self):
        assert CompositePRR(XC5VLX110T, (clb_region(1, 1),)).is_rectangular
        assert not CompositePRR(
            XC5VLX110T, (clb_region(1, 1), clb_region(2, 1))
        ).is_rectangular


class TestCompositeBitstream:
    def test_single_part_matches_rectangular_model(self):
        from repro.core import bitstream_size_bytes

        placed = find_prr(XC5VLX110T, paper_requirements("sdram", "virtex5"))
        composite = CompositePRR(XC5VLX110T, (placed.region,))
        assert composite_bitstream_bytes(composite) == bitstream_size_bytes(
            placed.geometry
        )

    def test_model_matches_generated(self):
        composite = CompositePRR(
            device=XC5VLX110T,
            parts=(clb_region(1, 3, 2), clb_region(4, 1, 1)),
        )
        bitstream = generate_composite_bitstream(
            XC5VLX110T, composite.parts, design_name="lshape"
        )
        assert bitstream.size_bytes == composite_bitstream_bytes(composite)
        parsed = parse_bitstream(bitstream.to_bytes())
        assert parsed.crc_ok
        assert parsed.rows == 4  # 3 + 1 config blocks

    def test_generator_rejects_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            generate_composite_bitstream(
                XC5VLX110T, [clb_region(1, 2), clb_region(2, 2)]
            )

    def test_generator_rejects_empty(self):
        with pytest.raises(ValueError):
            generate_composite_bitstream(XC5VLX110T, [])


class TestLShapeSearch:
    def test_fir_v5_lshape_improves(self):
        """The Section IV claim quantified: the L shape beats the
        rectangle on area, RU and bitstream size for FIR/V5."""
        prm = paper_requirements("fir", "virtex5")
        rect, lshape = find_lshape_prr(XC5VLX110T, prm)
        assert rect.is_rectangular
        assert not lshape.is_rectangular
        assert lshape.size < rect.size
        assert lshape.fits(prm)
        assert lshape.utilization(prm).clb > rect.utilization(prm).clb
        assert composite_bitstream_bytes(lshape) < composite_bitstream_bytes(
            rect
        )

    def test_fir_v5_exact_shape(self):
        prm = paper_requirements("fir", "virtex5")
        _, lshape = find_lshape_prr(XC5VLX110T, prm)
        assert lshape.size == 13  # 15 -> 13 cells
        assert round(lshape.utilization(prm).clb * 100) == 91

    def test_single_row_prms_have_no_lshape(self):
        prm = paper_requirements("sdram", "virtex5")
        rect, lshape = find_lshape_prr(XC5VLX110T, prm)
        assert lshape is rect

    def test_lshape_never_loses_resources(self):
        for workload in ("fir", "mips", "sdram"):
            prm = paper_requirements(workload, "virtex5")
            _, lshape = find_lshape_prr(XC5VLX110T, prm)
            assert lshape.fits(prm)

"""Unit tests for the Fig. 1 placement search flow."""

import pytest

from repro.core.params import PRMRequirements
from repro.core.placement_search import (
    PlacedPRR,
    PlacementNotFoundError,
    find_prr,
    iter_feasible_placements,
    search_with_trace,
)
from repro.core.prr_model import prr_geometry_for_rows
from repro.devices.catalog import XC5VLX110T, XC6VLX75T
from repro.devices.fabric import Region

from tests.conftest import PAPER_GEOMETRY, paper_requirements


class TestPaperPlacements:
    @pytest.mark.parametrize("workload", ["fir", "mips", "sdram"])
    def test_lx110t_geometry(self, workload):
        prm = paper_requirements(workload, "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        g = placed.geometry
        assert (
            g.rows,
            g.columns.clb,
            g.columns.dsp,
            g.columns.bram,
        ) == PAPER_GEOMETRY[(workload, "xc5vlx110t")]

    @pytest.mark.parametrize("workload", ["fir", "mips", "sdram"])
    def test_lx75t_geometry(self, workload):
        prm = paper_requirements(workload, "virtex6")
        placed = find_prr(XC6VLX75T, prm)
        g = placed.geometry
        assert (
            g.rows,
            g.columns.clb,
            g.columns.dsp,
            g.columns.bram,
        ) == PAPER_GEOMETRY[(workload, "xc6vlx75t")]

    def test_fir_v5_prefers_h5_over_h4(self):
        """The headline Fig. 1 behaviour: H=4 is feasible (size 16) but H=5
        is smaller (size 15)."""
        prm = paper_requirements("fir", "virtex5")
        placements = {p.geometry.rows: p for p in iter_feasible_placements(XC5VLX110T, prm)}
        assert 4 in placements and 5 in placements
        assert placements[4].size == 16
        assert placements[5].size == 15
        assert find_prr(XC5VLX110T, prm).geometry.rows == 5

    def test_objectives_agree_on_paper_cases(self):
        for workload, family in (
            ("fir", "virtex5"),
            ("mips", "virtex5"),
            ("sdram", "virtex5"),
        ):
            prm = paper_requirements(workload, family)
            by_size = find_prr(XC5VLX110T, prm, objective="size")
            by_bytes = find_prr(XC5VLX110T, prm, objective="bitstream")
            assert by_size.geometry == by_bytes.geometry


class TestPlacementMechanics:
    def test_region_matches_geometry(self):
        prm = paper_requirements("mips", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        assert placed.region.height == placed.geometry.rows
        assert placed.region.width == placed.geometry.width
        assert XC5VLX110T.is_valid_prr(placed.region)

    def test_bottom_most_row_selected(self):
        prm = paper_requirements("sdram", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        assert placed.region.row == 1

    def test_forbidden_regions_respected(self):
        prm = paper_requirements("sdram", "virtex5")
        first = find_prr(XC5VLX110T, prm)
        second = find_prr(XC5VLX110T, prm, forbidden=[first.region])
        assert not second.region.overlaps(first.region)

    def test_max_rows_cap(self):
        prm = paper_requirements("fir", "virtex5")
        # DSP demand needs H >= 4; capping below that leaves nothing.
        with pytest.raises(PlacementNotFoundError):
            find_prr(XC5VLX110T, prm, max_rows=3)

    def test_impossible_demand_raises(self):
        monster = PRMRequirements("monster", 10**6, 10**6, 0)
        with pytest.raises(PlacementNotFoundError, match="monster"):
            find_prr(XC5VLX110T, monster)

    def test_placed_prr_validates_consistency(self):
        prm = paper_requirements("sdram", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        with pytest.raises(ValueError):
            PlacedPRR(
                device=placed.device,
                geometry=placed.geometry,
                region=Region(
                    row=placed.region.row,
                    col=placed.region.col,
                    height=placed.region.height + 1,
                    width=placed.region.width,
                ),
            )

    def test_shared_prr_placement(self):
        prms = [
            paper_requirements("fir", "virtex6"),
            paper_requirements("sdram", "virtex6"),
        ]
        placed = find_prr(XC6VLX75T, prms)
        # Shared PRR must dominate both individual column demands.
        fir_geo = prr_geometry_for_rows(
            prms[0], XC6VLX75T.family, placed.geometry.rows
        )
        assert placed.geometry.columns.dominates(fir_geo.columns)

    def test_utilization_for_convenience(self):
        prm = paper_requirements("fir", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        assert placed.utilization_for(prm).as_percentages()["RU_DSP"] == 80


class TestSearchTrace:
    def test_trace_covers_all_rows(self):
        prm = paper_requirements("fir", "virtex5")
        trace = search_with_trace(XC5VLX110T, prm)
        assert len(trace.steps) == XC5VLX110T.rows

    def test_trace_marks_eq4_infeasible_rows(self):
        prm = paper_requirements("fir", "virtex5")
        trace = search_with_trace(XC5VLX110T, prm)
        for rows, geometry, placed in trace.steps:
            if rows < 4:
                assert geometry is None  # single-DSP-column rule
            else:
                assert geometry is not None and placed

    def test_trace_render_mentions_selection(self):
        prm = paper_requirements("sdram", "virtex6")
        text = search_with_trace(XC6VLX75T, prm).render()
        assert "selected" in text and "H=1" in text

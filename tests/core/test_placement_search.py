"""Unit tests for the Fig. 1 placement search flow."""

import pytest

from repro.core.params import PRMRequirements
from repro.core.placement_search import (
    PlacedPRR,
    PlacementNotFoundError,
    find_prr,
    iter_feasible_placements,
    search_with_trace,
)
from repro.core.prr_model import prr_geometry_for_rows
from repro.devices.catalog import XC5VLX110T, XC6VLX75T
from repro.devices.fabric import Region

from tests.conftest import PAPER_GEOMETRY, paper_requirements


class TestPaperPlacements:
    @pytest.mark.parametrize("workload", ["fir", "mips", "sdram"])
    def test_lx110t_geometry(self, workload):
        prm = paper_requirements(workload, "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        g = placed.geometry
        assert (
            g.rows,
            g.columns.clb,
            g.columns.dsp,
            g.columns.bram,
        ) == PAPER_GEOMETRY[(workload, "xc5vlx110t")]

    @pytest.mark.parametrize("workload", ["fir", "mips", "sdram"])
    def test_lx75t_geometry(self, workload):
        prm = paper_requirements(workload, "virtex6")
        placed = find_prr(XC6VLX75T, prm)
        g = placed.geometry
        assert (
            g.rows,
            g.columns.clb,
            g.columns.dsp,
            g.columns.bram,
        ) == PAPER_GEOMETRY[(workload, "xc6vlx75t")]

    def test_fir_v5_prefers_h5_over_h4(self):
        """The headline Fig. 1 behaviour: H=4 is feasible (size 16) but H=5
        is smaller (size 15)."""
        prm = paper_requirements("fir", "virtex5")
        placements = {p.geometry.rows: p for p in iter_feasible_placements(XC5VLX110T, prm)}
        assert 4 in placements and 5 in placements
        assert placements[4].size == 16
        assert placements[5].size == 15
        assert find_prr(XC5VLX110T, prm).geometry.rows == 5

    def test_objectives_agree_on_paper_cases(self):
        for workload, family in (
            ("fir", "virtex5"),
            ("mips", "virtex5"),
            ("sdram", "virtex5"),
        ):
            prm = paper_requirements(workload, family)
            by_size = find_prr(XC5VLX110T, prm, objective="size")
            by_bytes = find_prr(XC5VLX110T, prm, objective="bitstream")
            assert by_size.geometry == by_bytes.geometry


class TestPlacementMechanics:
    def test_region_matches_geometry(self):
        prm = paper_requirements("mips", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        assert placed.region.height == placed.geometry.rows
        assert placed.region.width == placed.geometry.width
        assert XC5VLX110T.is_valid_prr(placed.region)

    def test_bottom_most_row_selected(self):
        prm = paper_requirements("sdram", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        assert placed.region.row == 1

    def test_forbidden_regions_respected(self):
        prm = paper_requirements("sdram", "virtex5")
        first = find_prr(XC5VLX110T, prm)
        second = find_prr(XC5VLX110T, prm, forbidden=[first.region])
        assert not second.region.overlaps(first.region)

    def test_max_rows_cap(self):
        prm = paper_requirements("fir", "virtex5")
        # DSP demand needs H >= 4; capping below that leaves nothing.
        with pytest.raises(PlacementNotFoundError):
            find_prr(XC5VLX110T, prm, max_rows=3)

    def test_impossible_demand_raises(self):
        monster = PRMRequirements("monster", 10**6, 10**6, 0)
        with pytest.raises(PlacementNotFoundError, match="monster"):
            find_prr(XC5VLX110T, monster)

    def test_placed_prr_validates_consistency(self):
        prm = paper_requirements("sdram", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        with pytest.raises(ValueError):
            PlacedPRR(
                device=placed.device,
                geometry=placed.geometry,
                region=Region(
                    row=placed.region.row,
                    col=placed.region.col,
                    height=placed.region.height + 1,
                    width=placed.region.width,
                ),
            )

    def test_shared_prr_placement(self):
        prms = [
            paper_requirements("fir", "virtex6"),
            paper_requirements("sdram", "virtex6"),
        ]
        placed = find_prr(XC6VLX75T, prms)
        # Shared PRR must dominate both individual column demands.
        fir_geo = prr_geometry_for_rows(
            prms[0], XC6VLX75T.family, placed.geometry.rows
        )
        assert placed.geometry.columns.dominates(fir_geo.columns)

    def test_utilization_for_convenience(self):
        prm = paper_requirements("fir", "virtex5")
        placed = find_prr(XC5VLX110T, prm)
        assert placed.utilization_for(prm).as_percentages()["RU_DSP"] == 80


class TestSearchTrace:
    def test_trace_covers_all_rows(self):
        prm = paper_requirements("fir", "virtex5")
        trace = search_with_trace(XC5VLX110T, prm)
        assert len(trace.steps) == XC5VLX110T.rows

    def test_trace_marks_eq4_infeasible_rows(self):
        prm = paper_requirements("fir", "virtex5")
        trace = search_with_trace(XC5VLX110T, prm)
        for rows, geometry, placed in trace.steps:
            if rows < 4:
                assert geometry is None  # single-DSP-column rule
            else:
                assert geometry is not None and placed

    def test_trace_render_mentions_selection(self):
        prm = paper_requirements("sdram", "virtex6")
        text = search_with_trace(XC6VLX75T, prm).render()
        assert "selected" in text and "H=1" in text


class TestObjectiveTieBreaking:
    """A fabricated device where "size" and "bitstream" disagree.

    On a 4-row Virtex-5 fabric with a single central DSP column, the
    single-DSP-column rule (eq. 4) knocks out H=1; H=2 and H=3 both land
    on PRR size 6, but H=3 swaps a 36-frame CLB column for the 28-frame
    DSP column mix, so its bitstream is smaller.  The size objective
    breaks the size tie towards smaller H (H=2), the bitstream objective
    picks H=3 — different geometries from identical inputs.
    """

    @pytest.fixture(scope="class")
    def tiebreak_case(self):
        from repro.devices.catalog import make_device
        from repro.devices.family import VIRTEX5

        device = make_device(
            "tiebreak", VIRTEX5, rows=4, layout="I C*4 D C*4 I"
        )
        prm = PRMRequirements(
            "tie", lut_ff_pairs=328, luts=328, ffs=0, dsps=16
        )
        return device, prm

    def test_objectives_select_different_geometries(self, tiebreak_case):
        device, prm = tiebreak_case
        by_size = find_prr(device, prm, objective="size")
        by_bytes = find_prr(device, prm, objective="bitstream")
        assert by_size.geometry != by_bytes.geometry
        assert by_size.geometry.rows == 2
        assert by_bytes.geometry.rows == 3

    def test_each_objective_is_optimal_for_itself(self, tiebreak_case):
        device, prm = tiebreak_case
        placements = list(iter_feasible_placements(device, prm))
        by_size = find_prr(device, prm, objective="size")
        by_bytes = find_prr(device, prm, objective="bitstream")
        assert by_size.size == min(p.size for p in placements)
        assert by_bytes.bitstream_bytes == min(
            p.bitstream_bytes for p in placements
        )
        assert by_size.bitstream_bytes > by_bytes.bitstream_bytes
        assert by_size.size == by_bytes.size  # the tie the objectives split


class TestCachedVersusUncached:
    """Geometry/bounds caches must not change any Table V search result."""

    PAPER_CASES = [
        (workload, device)
        for workload in ("fir", "mips", "sdram")
        for device in (XC5VLX110T, XC6VLX75T)
    ]

    @pytest.mark.parametrize(
        "workload,device",
        PAPER_CASES,
        ids=[f"{w}@{d.name}" for w, d in PAPER_CASES],
    )
    def test_same_placed_prr_and_trace(self, workload, device):
        from repro.core.fastpath import clear_bounds_cache
        from repro.core.prr_model import clear_geometry_cache

        family = {"xc5vlx110t": "virtex5", "xc6vlx75t": "virtex6"}[device.name]
        prm = paper_requirements(workload, family)

        clear_geometry_cache()
        clear_bounds_cache()
        cold_placed = find_prr(device, prm)
        clear_geometry_cache()
        cold_trace = search_with_trace(device, prm)

        # Warm caches, then repeat: results must be identical objects
        # value-wise, including every recorded Fig. 1 step.
        warm_placed = find_prr(device, prm)
        warm_trace = search_with_trace(device, prm)

        assert warm_placed == cold_placed
        assert warm_trace.steps == cold_trace.steps
        assert warm_trace.selected == cold_trace.selected
        assert warm_trace.render() == cold_trace.render()

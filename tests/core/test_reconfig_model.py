"""Unit tests for the reconfiguration-time model."""

import pytest

from repro.core.reconfig_model import (
    ICAP_VIRTEX5_BYTES_PER_S,
    estimate_reconfig_time,
)


class TestEstimate:
    def test_icap_peak(self):
        est = estimate_reconfig_time(400_000_000)
        assert est.seconds == pytest.approx(1.0)

    def test_fir_v5_microseconds(self):
        # 83040 bytes over 400 MB/s = 207.6 us.
        est = estimate_reconfig_time(83040)
        assert est.microseconds == pytest.approx(207.6)

    def test_media_bottleneck(self):
        est = estimate_reconfig_time(1_000_000, media_bytes_per_s=2e6)
        assert est.effective_bytes_per_s == 2e6
        assert est.seconds == pytest.approx(0.5)

    def test_controller_bottleneck_when_media_fast(self):
        est = estimate_reconfig_time(1_000_000, media_bytes_per_s=1e9)
        assert est.effective_bytes_per_s == ICAP_VIRTEX5_BYTES_PER_S

    def test_busy_factor_degrades(self):
        clean = estimate_reconfig_time(1000)
        busy = estimate_reconfig_time(1000, busy_factor=0.5)
        assert busy.seconds == pytest.approx(2 * clean.seconds)

    def test_unit_conversions(self):
        est = estimate_reconfig_time(400)
        assert est.microseconds == pytest.approx(1.0)
        assert est.milliseconds == pytest.approx(0.001)

    def test_zero_bytes(self):
        assert estimate_reconfig_time(0).seconds == 0.0


class TestValidation:
    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            estimate_reconfig_time(-1)

    def test_bad_controller(self):
        with pytest.raises(ValueError):
            estimate_reconfig_time(1, controller_bytes_per_s=0)

    def test_bad_media(self):
        with pytest.raises(ValueError):
            estimate_reconfig_time(1, media_bytes_per_s=0)

    def test_bad_busy_factor(self):
        with pytest.raises(ValueError):
            estimate_reconfig_time(1, busy_factor=1.0)
        with pytest.raises(ValueError):
            estimate_reconfig_time(1, busy_factor=-0.1)

"""Unit and edge-case tests for the numpy columnar batch engine."""

import numpy as np
import pytest

from repro.core import batch
from repro.core.api import batch_evaluate, evaluate_prm
from repro.core.params import PRMRequirements
from repro.core.placement_search import PlacementNotFoundError, find_prr
from repro.devices import synthetic_device
from repro.devices.catalog import DEVICES, get_device
from repro.errors import InvalidInput, MissingDependency, ReproError
from repro.obs import trace as obs


def prm(name="p", pairs=1000, dsps=0, brams=0):
    return PRMRequirements(
        name=name, lut_ff_pairs=pairs, luts=pairs, ffs=pairs // 2,
        dsps=dsps, brams=brams,
    )


class TestNumpyGate:
    def test_numpy_available_here(self):
        assert batch.numpy_available()
        assert batch.require_numpy() is np

    def test_missing_numpy_raises_typed_error(self, monkeypatch):
        monkeypatch.setattr(batch, "np", None)
        assert not batch.numpy_available()
        with pytest.raises(MissingDependency) as excinfo:
            batch.require_numpy()
        # Typed (ReproError) and back-compat (ImportError) at once.
        assert isinstance(excinfo.value, ReproError)
        assert isinstance(excinfo.value, ImportError)
        assert excinfo.value.code == "missing_dependency"
        assert excinfo.value.dependency == "numpy"
        assert "numpy" in str(excinfo.value)

    def test_explore_engine_batch_requires_numpy(self, monkeypatch):
        from repro.core.explorer import explore

        monkeypatch.setattr(batch, "np", None)
        with pytest.raises(MissingDependency):
            explore(get_device("xc5vlx110t"), [prm()], engine="batch")


class TestDeviceColumns:
    def test_prefix_sums_match_window_index(self):
        device = get_device("xc5vlx110t")
        cols = batch.device_columns(device)
        prefixes = device.window_index.prefix_sums()
        for key, attr in (
            ("clb", cols.clb_prefix),
            ("dsp", cols.dsp_prefix),
            ("bram", cols.bram_prefix),
            ("blocked", cols.blocked_prefix),
        ):
            assert attr.tolist() == list(prefixes[key])
            assert attr.shape == (device.num_columns + 1,)

    def test_cached_per_device_instance(self):
        device = get_device("xc6vlx75t")
        assert batch.device_columns(device) is batch.device_columns(device)

    def test_family_constants_copied(self):
        device = get_device("xc6slx45")  # spartan6: bytes_per_word=2
        cols = batch.device_columns(device)
        assert cols.bytes_per_word == device.family.bytes_per_word
        assert cols.frame_words == device.family.frame_words
        assert cols.single_dsp_column == device.has_single_dsp_column


class TestGeometryGrid:
    def test_grid_shape_and_heights(self):
        device = get_device("xc5vlx110t")
        grid = batch.batch_prr_geometry(device, [1000, 2000], [0, 4], [0, 1])
        assert grid.w_clb.shape == (2, device.rows)
        assert grid.heights.tolist() == list(range(1, device.rows + 1))

    def test_matches_scalar_formulas(self):
        device = get_device("xc5vlx110t")
        family = device.family
        grid = batch.batch_prr_geometry(device, [1234], [0], [3])
        for h in range(1, device.rows + 1):
            clb_req = -(-1234 // family.luts_per_clb)
            assert grid.w_clb[0, h - 1] == -(-clb_req // (h * family.clb_per_col))
            assert grid.w_bram[0, h - 1] == -(-3 // (h * family.bram_per_col))

    def test_single_dsp_column_rule(self):
        device = get_device("xc5vlx110t")
        assert device.has_single_dsp_column
        # H_DSP = ceil(dsps / dsp_per_col); H below that is infeasible.
        dsps = 3 * device.family.dsp_per_col
        grid = batch.batch_prr_geometry(device, [100], [dsps], [0])
        assert not grid.feasible[0, 0]
        assert not grid.feasible[0, 1]
        assert grid.feasible[0, 2]
        assert (grid.w_dsp[0, :] == 1).all()

    def test_zero_requirements_masked_not_raised(self):
        device = get_device("xc5vlx110t")
        grid = batch.batch_prr_geometry(device, [0], [0], [0])
        assert not grid.feasible.any()

    def test_negative_requirements_rejected(self):
        device = get_device("xc5vlx110t")
        with pytest.raises(InvalidInput):
            batch.batch_prr_geometry(device, [-1], [0], [0])

    def test_shape_mismatch_rejected(self):
        device = get_device("xc5vlx110t")
        with pytest.raises(InvalidInput):
            batch.batch_prr_geometry(device, [1, 2], [0], [0])


class TestWindowPlacement:
    def test_window_wider_than_fabric_is_masked(self):
        device = synthetic_device(rows=2, clb_runs=(4,))
        # Demand more CLB columns than the fabric has at H=1.
        w = device.num_columns + 3
        has, first = batch.batch_window_placement(device, [w], [0], [0])
        assert not has[0]
        assert first[0] == 0

    def test_first_col_matches_window_index(self):
        device = get_device("xc5vlx110t")
        grid = batch.batch_prr_geometry(device, [3000], [0], [2])
        has, first = batch.batch_window_placement(
            device, grid.w_clb, grid.w_dsp, grid.w_bram, mask=grid.feasible
        )
        from repro.devices.resources import ResourceVector

        for j in range(device.rows):
            mix = ResourceVector(
                clb=int(grid.w_clb[0, j]),
                dsp=int(grid.w_dsp[0, j]),
                bram=int(grid.w_bram[0, j]),
            )
            starts = device.feasible_window_starts(mix)
            if has[0, j]:
                assert starts and starts[0] == int(first[0, j])
            else:
                assert not starts or grid.width[0, j] > device.num_columns


class TestBitstreamAndReconfig:
    def test_bytes_match_scalar_model(self):
        from repro.core.bitstream_model import bitstream_size_bytes
        from repro.core.prr_model import PRRGeometry
        from repro.devices.resources import ResourceVector

        device = get_device("xc6vlx75t")
        got = batch.batch_bitstream_bytes(device, [2, 3], [4, 1], [1, 0], [0, 2])
        for i, (h, wc, wd, wb) in enumerate([(2, 4, 1, 0), (3, 1, 0, 2)]):
            geometry = PRRGeometry(
                family=device.family,
                rows=h,
                columns=ResourceVector(clb=wc, dsp=wd, bram=wb),
            )
            assert int(got[i]) == bitstream_size_bytes(geometry)

    def test_reconfig_matches_scalar_and_broadcasts(self):
        from repro.core.reconfig_model import estimate_reconfig_time

        sizes = [100_000, 250_000]
        seconds = batch.batch_reconfig_time(
            sizes, controller_bytes_per_s=[400e6, 100e6], media_bytes_per_s=200e6
        )
        for i, rate in enumerate([400e6, 100e6]):
            scalar = estimate_reconfig_time(
                sizes[i], controller_bytes_per_s=rate, media_bytes_per_s=200e6
            )
            assert float(seconds[i]) == pytest.approx(scalar.seconds)

    def test_reconfig_validation(self):
        with pytest.raises(InvalidInput):
            batch.batch_reconfig_time([100], controller_bytes_per_s=0.0)
        with pytest.raises(InvalidInput):
            batch.batch_reconfig_time([-1])
        with pytest.raises(InvalidInput):
            batch.batch_reconfig_time([100], busy_factor=1.0)
        with pytest.raises(InvalidInput):
            batch.batch_reconfig_time([100], media_bytes_per_s=-1.0)


class TestBatchSelect:
    def test_unknown_objective(self):
        device = get_device("xc5vlx110t")
        with pytest.raises(InvalidInput):
            batch.batch_select(device, [100], [0], [0], objective="area")

    def test_infeasible_members_zeroed(self):
        device = get_device("xc5vlx110t")
        sel = batch.batch_select(device, [1000, 0], [0, 0], [0, 0])
        assert sel.feasible.tolist() == [True, False]
        assert int(sel.rows[1]) == 0
        assert int(sel.bitstream_bytes[1]) == 0
        assert sel.n_feasible == 1

    def test_empty_batch(self):
        device = get_device("xc5vlx110t")
        sel = batch.batch_select(device, [], [], [])
        assert len(sel) == 0
        assert sel.n_feasible == 0


class TestFindPrrBatch:
    def test_matches_scalar_on_groups(self):
        device = get_device("xc6vlx75t")
        group = [prm("a", 900), prm("b", 2500, brams=2)]
        scalar = find_prr(device, group)
        vector = batch.find_prr_batch(device, group)
        assert vector == scalar

    def test_raises_scalar_error_type(self):
        device = synthetic_device(rows=1, clb_runs=(2,))
        with pytest.raises(PlacementNotFoundError):
            batch.find_prr_batch(device, prm("huge", 10**6))

    def test_empty_group_rejected(self):
        with pytest.raises(InvalidInput):
            batch.find_prr_batch(get_device("xc5vlx110t"), [])


class TestBatchEvaluateApi:
    def test_results_match_scalar(self):
        prms = [prm("a", 800), prm("b", 3000, brams=1), prm("c", 50)]
        result = batch_evaluate(prms, "xc5vlx110t")
        for i, p in enumerate(prms):
            assert result.result(i) == evaluate_prm(p, "xc5vlx110t")
        materialized = result.results()
        assert all(m is not None for m in materialized)

    def test_zero_resource_prm_masked(self):
        zero = PRMRequirements(name="zero", lut_ff_pairs=0, luts=0, ffs=0)
        result = batch_evaluate([prm("ok"), zero], "xc5vlx110t")
        assert result.feasible.tolist() == [True, False]
        with pytest.raises(PlacementNotFoundError):
            result.result(1)
        assert result.results()[1] is None

    def test_per_prm_controller_rates(self):
        prms = [prm("a"), prm("b")]
        result = batch_evaluate(
            prms, "xc5vlx110t", controller_bytes_per_s=[400e6, 100e6]
        )
        assert result.result(1) == evaluate_prm(
            prms[1], "xc5vlx110t", controller_bytes_per_s=100e6
        )
        assert float(result.reconfig_seconds[1]) == pytest.approx(
            result.result(1).reconfig.seconds
        )

    def test_rate_length_mismatch(self):
        with pytest.raises(InvalidInput):
            batch_evaluate([prm()], "xc5vlx110t", controller_bytes_per_s=[1e6, 2e6])

    def test_bad_rate_rejected(self):
        with pytest.raises(InvalidInput):
            batch_evaluate([prm()], "xc5vlx110t", controller_bytes_per_s=-1.0)

    def test_unknown_device_rejected(self):
        with pytest.raises(InvalidInput):
            batch_evaluate([prm()], "xc9nope")

    def test_to_dict_roundtrips_plain_types(self):
        import json

        result = batch_evaluate([prm("a"), prm("b", 2000)], "xc5vlx110t")
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["n_prms"] == 2
        assert doc["prm_names"] == ["a", "b"]
        assert doc["n_feasible"] == 2


class TestBatchMetrics:
    def test_counters_and_histogram_recorded(self):
        device = get_device("xc5vlx110t")
        with obs.capture(command="test") as session:
            batch.batch_select(device, [1000, 0], [0, 0], [0, 0])
        doc = session.to_dict()
        counters = doc["metrics"]["counters"]
        assert counters["batch.calls"] == 1
        assert counters["batch.prms_evaluated"] == 2
        assert counters["batch.cells_evaluated"] == 2 * device.rows
        assert counters["batch.infeasible_prms"] == 1
        assert doc["metrics"]["gauges"]["batch.vectorization_ratio"] == 2.0

    def test_disabled_obs_records_nothing(self):
        device = get_device("xc5vlx110t")
        sel = batch.batch_select(device, [1000], [0], [0])
        assert sel.n_feasible == 1  # no session: metrics are a no-op


@pytest.mark.parametrize("device_name", sorted(DEVICES))
def test_catalog_devices_all_supported(device_name):
    device = get_device(device_name)
    result = batch_evaluate([prm("probe", 500)], device)
    if bool(result.feasible[0]):
        assert result.result(0) == evaluate_prm(
            PRMRequirements(name="probe", lut_ff_pairs=500, luts=500, ffs=250),
            device,
        )

"""FloorplanError diagnostics: unplaceable demand, best partial, counts."""

import pytest

from repro.core import PRMRequirements
from repro.core.floorplanner import FloorplanError, floorplan
from repro.devices import Region, synthetic_device

ROW = synthetic_device(rows=1, clb_runs=(8,), name="diagrow")


def clb_demand(name: str, columns: int) -> PRMRequirements:
    cells = columns * ROW.family.clb_per_col * ROW.family.luts_per_clb
    return PRMRequirements(name, cells, cells, cells)


def overfull_error() -> FloorplanError:
    # 5 + 5 CLB columns on an 8-column row: any order places the first
    # demand and fails the second.
    with pytest.raises(FloorplanError) as excinfo:
        floorplan(ROW, [[clb_demand("alpha", 5)], [clb_demand("beta", 5)]])
    return excinfo.value


class TestDiagnostics:
    def test_unplaceable_demand_is_named(self):
        error = overfull_error()
        assert error.unplaceable in ("alpha", "beta")
        assert error.details["unplaceable"] == error.unplaceable

    def test_best_partial_carries_placements(self):
        error = overfull_error()
        assert len(error.best_partial) == 1
        name, prr = error.best_partial[0]
        assert name in ("alpha", "beta")
        assert prr.region.width == 5
        assert error.details["placed"] == 1

    def test_candidate_counts_cover_every_demand(self):
        error = overfull_error()
        assert set(error.candidate_counts) == {"alpha", "beta"}
        # Each 5-wide demand fits at 4 start columns of the 8-column run.
        assert error.candidate_counts["alpha"] == 4
        assert error.candidate_counts["beta"] == 4

    def test_lone_infeasible_demand_counts_zero(self):
        with pytest.raises(FloorplanError) as excinfo:
            floorplan(ROW, [[clb_demand("huge", 9)]])
        error = excinfo.value
        assert error.unplaceable == "huge"
        assert error.candidate_counts["huge"] == 0
        assert error.best_partial == ()

    def test_render_diagnostics_mentions_all_sections(self):
        report = overfull_error().render_diagnostics()
        assert "first unplaceable demand:" in report
        assert "best partial placement (1):" in report
        assert "per-demand candidate placements:" in report
        assert "alpha=4" in report and "beta=4" in report

    def test_render_diagnostics_without_partial(self):
        with pytest.raises(FloorplanError) as excinfo:
            floorplan(ROW, [[clb_demand("huge", 9)]])
        report = excinfo.value.render_diagnostics()
        assert "best partial placement: none" in report


class TestForbiddenRegions:
    def test_forbidden_region_blocks_placement(self):
        demand = [[clb_demand("solo", 8)]]
        assert floorplan(ROW, demand).prrs[0].region.width == 8
        blocked = Region(row=1, col=5, height=1, width=1)
        with pytest.raises(FloorplanError):
            floorplan(ROW, demand, forbidden=(blocked,))

    def test_placement_avoids_forbidden_region(self):
        blocked = Region(row=1, col=2, height=1, width=2)
        plan = floorplan(ROW, [[clb_demand("solo", 4)]], forbidden=(blocked,))
        assert not plan.prrs[0].region.overlaps(blocked)

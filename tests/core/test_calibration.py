"""Tests for regression calibration of family constants."""

import pytest

from repro.bitgen import generate_partial_bitstream, parse_bitstream
from repro.core.calibration import (
    FittedConstants,
    SizeSample,
    fit_family_constants,
)
from repro.core.bitstream_model import estimate_bitstream
from repro.core.prr_model import PRRGeometry
from repro.devices.catalog import XC5VLX110T
from repro.devices.family import VIRTEX5, VIRTEX6
from repro.devices.resources import ResourceVector

#: Geometrically diverse AND placeable on the LX110T (so the same list
#: serves the model-only and generated-bitstream fits).
GEOMETRIES = [
    (1, ResourceVector(clb=1)),
    (2, ResourceVector(clb=3)),
    (1, ResourceVector(clb=2, dsp=1)),
    (1, ResourceVector(clb=2, bram=1)),
    (4, ResourceVector(clb=5, bram=1)),
    (1, ResourceVector(clb=17, dsp=1, bram=2)),
    (2, ResourceVector(clb=2, bram=1)),
    (3, ResourceVector(clb=17, dsp=1, bram=2)),
]


def model_samples(family, with_sections=False):
    samples = []
    for rows, columns in GEOMETRIES:
        est = estimate_bitstream(PRRGeometry(family, rows, columns))
        samples.append(
            SizeSample(
                rows=rows,
                columns=columns,
                total_bytes=est.total_bytes,
                bram_init_bytes=(
                    est.bram_init_bytes if with_sections else None
                ),
            )
        )
    return samples


class TestFitFromModelSizes:
    @pytest.mark.parametrize("family", [VIRTEX5, VIRTEX6], ids=lambda f: f.name)
    def test_recovers_constants_exactly(self, family):
        fitted = fit_family_constants(
            model_samples(family),
            frame_words=family.frame_words,
            bytes_per_word=family.bytes_per_word,
        )
        assert fitted.exact
        assert fitted.header_trailer_words == (
            family.initial_words + family.final_words
        )
        assert fitted.far_fdri_words == family.far_fdri_words
        assert fitted.cf_clb == family.cf_clb
        assert fitted.cf_dsp == family.cf_dsp
        assert fitted.cf_bram_plus_df == family.cf_bram + family.df_bram

    def test_sections_separate_bram_constants(self):
        fitted = fit_family_constants(
            model_samples(VIRTEX5, with_sections=True),
            frame_words=41,
            bytes_per_word=4,
        )
        assert fitted.cf_bram == VIRTEX5.cf_bram
        assert fitted.df_bram == VIRTEX5.df_bram

    def test_without_sections_bram_split_unknown(self):
        fitted = fit_family_constants(
            model_samples(VIRTEX5), frame_words=41, bytes_per_word=4
        )
        assert fitted.cf_bram is None and fitted.df_bram is None


class TestFitFromGeneratedBitstreams:
    def test_recovers_from_measured_bitstreams(self):
        """The real use case: measured bytes in, constants out."""
        samples = []
        used = 0
        for rows, columns in GEOMETRIES:
            region = _find_region(rows, columns)
            if region is None:
                continue
            bitstream = generate_partial_bitstream(XC5VLX110T, region)
            parsed = parse_bitstream(bitstream.to_bytes())
            samples.append(
                SizeSample(
                    rows=rows,
                    columns=columns,
                    total_bytes=bitstream.size_bytes,
                    bram_init_bytes=parsed.section_bytes()[
                        "bram_initialization"
                    ],
                )
            )
            used += 1
        assert used >= 6
        fitted = fit_family_constants(samples, frame_words=41, bytes_per_word=4)
        assert fitted.exact
        assert (fitted.cf_clb, fitted.cf_dsp) == (36, 28)
        assert (fitted.cf_bram, fitted.df_bram) == (30, 128)


def _find_region(rows, columns):
    from repro.devices.fabric import Region

    if rows > XC5VLX110T.rows:
        return None
    col = XC5VLX110T.find_column_window(columns)
    if col is None:
        return None
    return Region(row=1, col=col, height=rows, width=columns.total)


class TestValidation:
    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="at least 6"):
            fit_family_constants(
                model_samples(VIRTEX5)[:4], frame_words=41, bytes_per_word=4
            )

    def test_degenerate_samples_rejected(self):
        flat = [
            SizeSample(rows=1, columns=ResourceVector(clb=1), total_bytes=1000)
        ] * 8
        with pytest.raises(ValueError, match="rank"):
            fit_family_constants(flat, frame_words=41, bytes_per_word=4)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            SizeSample(rows=0, columns=ResourceVector(clb=1), total_bytes=1)
        with pytest.raises(ValueError):
            SizeSample(rows=1, columns=ResourceVector(clb=1), total_bytes=0)

    def test_bad_physical_constants(self):
        with pytest.raises(ValueError):
            fit_family_constants(
                model_samples(VIRTEX5), frame_words=0, bytes_per_word=4
            )

    def test_fitted_constants_dataclass(self):
        fitted = FittedConstants(
            header_trailer_words=30,
            far_fdri_words=5,
            cf_clb=36,
            cf_dsp=28,
            cf_bram_plus_df=158,
            cf_bram=None,
            df_bram=None,
            max_residual_words=0.1,
        )
        assert fitted.exact

"""End-to-end reproduction of the paper's Table V from the live pipeline.

netlist generators -> synthesis -> cost models -> Table V cells, asserted
against the reference values reconstructed from the paper (DESIGN.md §5).
"""

import pytest

from repro.core.api import evaluate_prm
from repro.devices.catalog import XC5VLX110T, XC6VLX75T
from repro.synth.xst import synthesize
from repro.workloads import build_fir, build_mips, build_sdram

from tests.conftest import PAPER_GEOMETRY, PAPER_RU, PAPER_SYNTH

_BUILDERS = {"fir": build_fir, "mips": build_mips, "sdram": build_sdram}
_DEVICES = {"xc5vlx110t": XC5VLX110T, "xc6vlx75t": XC6VLX75T}

CASES = [
    (workload, device_name)
    for device_name in ("xc5vlx110t", "xc6vlx75t")
    for workload in ("fir", "mips", "sdram")
]


@pytest.fixture(scope="module")
def results():
    out = {}
    for workload, device_name in CASES:
        device = _DEVICES[device_name]
        report = synthesize(_BUILDERS[workload](device.family), device.family)
        out[(workload, device_name)] = evaluate_prm(report.requirements, device)
    return out


class TestTable5Requirements:
    """The requirement rows (synthesis outputs)."""

    @pytest.mark.parametrize("workload,device_name", CASES)
    def test_requirement_cells(self, results, workload, device_name):
        family = _DEVICES[device_name].family.name
        pairs, luts, ffs, dsps, brams = PAPER_SYNTH[(workload, family)]
        row = results[(workload, device_name)].table5_row()
        assert row["LUT_FF_req"] == pairs
        assert row["LUT_req"] == luts
        assert row["FF_req"] == ffs
        assert row["DSP_req"] == dsps
        assert row["BRAM_req"] == brams


class TestTable5Geometry:
    """The H/W geometry rows (PRR model + Fig. 1 flow outputs)."""

    @pytest.mark.parametrize("workload,device_name", CASES)
    def test_geometry_cells(self, results, workload, device_name):
        h, w_clb, w_dsp, w_bram = PAPER_GEOMETRY[(workload, device_name)]
        row = results[(workload, device_name)].table5_row()
        assert row["H_CLB"] == h
        assert row["W_CLB"] == w_clb
        assert row["W_DSP"] == w_dsp
        assert row["W_BRAM"] == w_bram


class TestTable5Utilization:
    """The RU percentage rows.

    Note: MIPS/V5 RU_CLB computes to 96.47% -> 96; the paper prints 97
    (±1 rounding discrepancy documented in EXPERIMENTS.md).  PAPER_RU in
    conftest carries the computed value, so this asserts all 30 cells.
    """

    @pytest.mark.parametrize("workload,device_name", CASES)
    def test_ru_cells(self, results, workload, device_name):
        clb, ff, lut, dsp, bram = PAPER_RU[(workload, device_name)]
        pct = results[(workload, device_name)].utilization.as_percentages()
        assert pct["RU_CLB"] == clb
        assert pct["RU_FF"] == ff
        assert pct["RU_LUT"] == lut
        assert pct["RU_DSP"] == dsp
        assert pct["RU_BRAM"] == bram

    def test_mips_v5_ru_clb_is_the_documented_rounding_case(self, results):
        ru = results[("mips", "xc5vlx110t")].utilization
        assert ru.clb == pytest.approx(328 / 340)
        assert 0.96 < ru.clb < 0.97  # the paper rounded this cell to 97%


class TestTable5Availability:
    @pytest.mark.parametrize("workload,device_name", CASES)
    def test_availability_consistent_with_geometry(
        self, results, workload, device_name
    ):
        row = results[(workload, device_name)].table5_row()
        family = _DEVICES[device_name].family
        assert (
            row["CLB_avail"]
            == row["H_CLB"] * row["W_CLB"] * family.clb_per_col
        )
        assert row["FF_avail"] == row["CLB_avail"] * family.ffs_per_clb
        assert row["LUT_avail"] == row["CLB_avail"] * family.luts_per_clb

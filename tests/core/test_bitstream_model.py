"""Unit tests for the bitstream size cost model (eqs. (18)-(23))."""

import pytest

from repro.core.bitstream_model import (
    bitstream_size_bytes,
    config_frames_per_row,
    estimate_bitstream,
    full_device_bitstream_bytes,
    ncw_row,
    ndw_bram,
)
from repro.core.prr_model import PRRGeometry
from repro.devices.catalog import XC5VLX110T, XC6VLX75T
from repro.devices.family import SPARTAN6, VIRTEX5, VIRTEX6
from repro.devices.resources import ResourceVector

from tests.conftest import TABLE7_BYTES


def geo(family, rows, clb, dsp=0, bram=0):
    return PRRGeometry(family, rows, ResourceVector(clb, dsp, bram))


class TestEq19to22:
    def test_ncw_row_fir_v5(self):
        # W_CLB=2, W_DSP=1: 5 + (2*36 + 28 + 1)*41 = 4146.
        assert ncw_row(VIRTEX5, ResourceVector(2, 1, 0)) == 4146

    def test_ncw_row_mips_v5(self):
        # 17*36 + 28 + 2*30 = 700 frames; 5 + 701*41 = 28746.
        assert ncw_row(VIRTEX5, ResourceVector(17, 1, 2)) == 28746

    def test_config_frames_per_row(self):
        assert config_frames_per_row(VIRTEX5, ResourceVector(17, 1, 2)) == 700
        assert config_frames_per_row(VIRTEX6, ResourceVector(11, 1, 1)) == 452


class TestEq23:
    def test_ndw_with_brams(self):
        # 2 BRAM cols: 5 + (2*128 + 1)*41 = 10542.
        assert ndw_bram(VIRTEX5, ResourceVector(17, 1, 2)) == 10542

    def test_ndw_zero_without_brams(self):
        """The BRAM guard: no BRAM columns -> no BRAM init block at all."""
        assert ndw_bram(VIRTEX5, ResourceVector(2, 1, 0)) == 0


class TestEq18:
    @pytest.mark.parametrize(
        "key,geometry",
        [
            (("fir", "xc5vlx110t"), geo(VIRTEX5, 5, 2, 1, 0)),
            (("mips", "xc5vlx110t"), geo(VIRTEX5, 1, 17, 1, 2)),
            (("sdram", "xc5vlx110t"), geo(VIRTEX5, 1, 3)),
            (("fir", "xc6vlx75t"), geo(VIRTEX6, 1, 5, 2, 0)),
            (("mips", "xc6vlx75t"), geo(VIRTEX6, 1, 11, 1, 1)),
            (("sdram", "xc6vlx75t"), geo(VIRTEX6, 1, 2)),
        ],
    )
    def test_table7_sizes(self, key, geometry):
        assert bitstream_size_bytes(geometry) == TABLE7_BYTES[key]

    def test_size_scales_linearly_with_rows(self):
        one = bitstream_size_bytes(geo(VIRTEX5, 1, 3))
        two = bitstream_size_bytes(geo(VIRTEX5, 2, 3))
        three = bitstream_size_bytes(geo(VIRTEX5, 3, 3))
        assert two - one == three - two  # constant per-row increment

    def test_spartan6_halves_bytes_per_word(self):
        v5 = estimate_bitstream(geo(VIRTEX5, 1, 3))
        s6 = estimate_bitstream(geo(SPARTAN6, 1, 3))
        assert s6.bytes_per_word == 2
        assert s6.total_bytes == s6.total_words * 2
        assert v5.total_bytes == v5.total_words * 4


class TestBreakdown:
    def test_breakdown_sums_to_total(self):
        est = estimate_bitstream(geo(VIRTEX5, 2, 4, 1, 1))
        parts = est.breakdown()
        assert (
            parts["initial"]
            + parts["configuration"]
            + parts["bram_initialization"]
            + parts["final"]
            == parts["total"]
        )

    def test_header_trailer_bytes(self):
        est = estimate_bitstream(geo(VIRTEX5, 1, 1))
        assert est.header_and_trailer_bytes == (16 + 14) * 4

    def test_bram_bytes_zero_without_brams(self):
        est = estimate_bitstream(geo(VIRTEX5, 3, 4, 1, 0))
        assert est.bram_init_bytes == 0

    def test_words_per_row(self):
        est = estimate_bitstream(geo(VIRTEX5, 1, 17, 1, 2))
        assert est.words_per_row == 28746 + 10542


class TestFullDeviceBitstream:
    def test_lx110t_is_megabytes(self):
        size = full_device_bitstream_bytes(XC5VLX110T)
        # The real LX110T full bitstream is ~3.9 MB.
        assert 3_000_000 < size < 4_500_000

    def test_full_exceeds_any_partial(self):
        partial = bitstream_size_bytes(geo(VIRTEX5, 8, 17, 1, 2))
        assert full_device_bitstream_bytes(XC5VLX110T) > partial

    def test_lx75t(self):
        size = full_device_bitstream_bytes(XC6VLX75T)
        assert size > 1_000_000

"""Tests for the automatic multi-PRR floorplanner (future-work feature)."""

import pytest

from repro.core.floorplanner import (
    FloorplanError,
    floorplan,
    render_floorplan,
)
from repro.core.params import PRMRequirements
from repro.devices.catalog import XC5VLX110T, XC6VLX75T

from tests.conftest import paper_requirements


@pytest.fixture(scope="module")
def v5_prms():
    return [
        paper_requirements("fir", "virtex5"),
        paper_requirements("mips", "virtex5"),
        paper_requirements("sdram", "virtex5"),
    ]


class TestFloorplan:
    def test_three_dedicated_prrs(self, v5_prms):
        plan = floorplan(XC5VLX110T, v5_prms)
        assert len(plan.prrs) == 3
        assert plan.group_names == ("fir", "mips", "sdram")

    def test_prrs_disjoint(self, v5_prms):
        plan = floorplan(XC5VLX110T, v5_prms)
        for i, a in enumerate(plan.prrs):
            for b in plan.prrs[i + 1 :]:
                assert not a.region.overlaps(b.region)

    def test_each_prr_fits_its_group(self, v5_prms):
        plan = floorplan(XC5VLX110T, v5_prms)
        for prm, prr in zip(v5_prms, plan.prrs):
            assert prr.geometry.fits(prm)

    def test_shared_groups_supported(self, v5_prms):
        fir, mips, sdram = v5_prms
        plan = floorplan(XC5VLX110T, [[fir, sdram], mips])
        assert len(plan.prrs) == 2
        assert plan.group_names[0] == "fir+sdram"

    def test_static_budget_enforced(self, v5_prms):
        eligible = (
            sum(1 for k in XC5VLX110T.columns if k.reconfigurable)
            * XC5VLX110T.rows
        )
        with pytest.raises(FloorplanError):
            floorplan(XC5VLX110T, v5_prms, static_min_cells=eligible)

    def test_static_cells_accounting(self, v5_prms):
        plan = floorplan(XC5VLX110T, v5_prms)
        eligible = (
            sum(1 for k in XC5VLX110T.columns if k.reconfigurable)
            * XC5VLX110T.rows
        )
        assert plan.static_cells == eligible - plan.total_prr_cells

    def test_infeasible_demand(self):
        monster = PRMRequirements("monster", 10**6, 10**6, 0)
        with pytest.raises(FloorplanError):
            floorplan(XC5VLX110T, [monster])

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            floorplan(XC5VLX110T, [])

    def test_fragmentation_bounded(self, v5_prms):
        plan = floorplan(XC5VLX110T, v5_prms)
        assert 0.0 <= plan.static_fragmentation() <= 1.0

    def test_optimize_static_no_worse_than_greedy(self, v5_prms):
        greedy = floorplan(XC5VLX110T, v5_prms, optimize_static=False)
        optimized = floorplan(XC5VLX110T, v5_prms, optimize_static=True)
        assert (
            optimized.total_prr_cells,
            optimized.static_fragmentation(),
        ) <= (greedy.total_prr_cells, greedy.static_fragmentation())

    def test_v6_device(self):
        prms = [
            paper_requirements("fir", "virtex6"),
            paper_requirements("sdram", "virtex6"),
        ]
        plan = floorplan(XC6VLX75T, prms)
        assert len(plan.prrs) == 2

    def test_total_bitstream_bytes(self, v5_prms):
        plan = floorplan(XC5VLX110T, v5_prms)
        assert plan.total_partial_bitstream_bytes == sum(
            prr.bitstream_bytes for prr in plan.prrs
        )


class TestRender:
    def test_render_marks_each_prr(self, v5_prms):
        plan = floorplan(XC5VLX110T, v5_prms)
        art = render_floorplan(plan)
        lines = art.splitlines()
        assert len(lines) == XC5VLX110T.rows + 1  # rows + legend
        body = "\n".join(lines[:-1])
        for mark in "012":
            assert mark in body
        assert "0=fir" in lines[-1]

    def test_render_cell_count(self, v5_prms):
        plan = floorplan(XC5VLX110T, v5_prms)
        art = render_floorplan(plan).splitlines()[:-1]
        marked = sum(row.count("0") + row.count("1") + row.count("2") for row in art)
        assert marked == plan.total_prr_cells

    def test_summary(self, v5_prms):
        plan = floorplan(XC5VLX110T, v5_prms)
        assert "static frag" in plan.summary()

"""Acceptance tests for the fast-path explorer (ISSUE criteria).

* the pruned search returns a byte-identical Pareto front to exhaustive
  enumeration on the paper's 3-PRM workload / XC5VLX110T;
* a 10-PRM exploration completes via the beam fallback instead of
  raising, and its best design is no worse than exhaustive search's on
  an 8-PRM subset;
* the parallel evaluator returns exactly the serial result list.
"""

import pytest

from repro.core.explorer import (
    DEFAULT_BEAM_WIDTH,
    MAX_EXHAUSTIVE_PRMS,
    explore,
    pareto_front,
)

from scripts.bench_explorer import WIDE_DEVICE, synthetic_prms
from repro.devices.catalog import XC5VLX110T


@pytest.fixture(scope="module")
def v5_prms():
    from tests.conftest import paper_requirements

    return [
        paper_requirements("fir", "virtex5"),
        paper_requirements("mips", "virtex5"),
        paper_requirements("sdram", "virtex5"),
    ]


class TestPrunedMatchesExhaustive:
    def test_paper_front_byte_identical(self, v5_prms):
        exhaustive = explore(XC5VLX110T, v5_prms, mode="exhaustive")
        pruned = explore(XC5VLX110T, v5_prms, mode="pruned")
        assert pareto_front(pruned) == pareto_front(exhaustive)
        # the front objects themselves compare equal field-by-field
        for fast, slow in zip(pareto_front(pruned), pareto_front(exhaustive)):
            assert fast.assignments == slow.assignments
            assert fast.objectives == slow.objectives

    def test_synthetic8_front_identical(self):
        # Tie order among equal-objective designs follows enumeration
        # order, so compare the fronts as canonically sorted sets.
        def canon(design):
            return (
                design.objectives,
                sorted(
                    tuple(sorted(p.name for p in g.prms))
                    for g in design.assignments
                ),
            )

        prms = synthetic_prms(8)
        exhaustive = explore(WIDE_DEVICE, prms, mode="exhaustive")
        pruned = explore(WIDE_DEVICE, prms, mode="pruned")
        assert sorted(map(canon, pareto_front(pruned))) == sorted(
            map(canon, pareto_front(exhaustive))
        )

    def test_pruned_front_members_exist_exhaustively(self, v5_prms):
        exhaustive = explore(XC5VLX110T, v5_prms, mode="exhaustive")
        pruned = explore(XC5VLX110T, v5_prms, mode="pruned")
        objectives = {d.objectives for d in exhaustive}
        assert all(d.objectives in objectives for d in pruned)


class TestBeamFallback:
    def test_ten_prms_complete_without_raising(self):
        prms = synthetic_prms(10)
        assert len(prms) > MAX_EXHAUSTIVE_PRMS
        designs = explore(WIDE_DEVICE, prms)  # auto -> beam
        assert designs
        objectives = [d.objectives for d in designs]
        assert objectives == sorted(objectives)
        for design in designs:
            placed = sorted(
                prm.name
                for assignment in design.assignments
                for prm in assignment.prms
            )
            assert placed == sorted(p.name for p in prms)

    def test_beam_best_no_worse_than_exhaustive_on_8(self):
        prms = synthetic_prms(8)
        exhaustive = explore(WIDE_DEVICE, prms, mode="exhaustive")
        beam = explore(
            WIDE_DEVICE, prms, mode="beam", beam_width=DEFAULT_BEAM_WIDTH
        )
        assert beam
        assert beam[0].objectives <= exhaustive[0].objectives

    def test_beam_width_one_is_greedy_but_valid(self):
        prms = synthetic_prms(9)
        designs = explore(WIDE_DEVICE, prms, mode="beam", beam_width=1)
        assert designs
        assert len({tuple(sorted(d.objectives for d in designs))}) == 1


class TestParallelEvaluator:
    def test_workers_match_serial(self, v5_prms):
        serial = explore(XC5VLX110T, v5_prms, mode="exhaustive")
        parallel = explore(
            XC5VLX110T, v5_prms, mode="exhaustive", workers=2
        )
        assert parallel == serial

    def test_workers_one_is_serial_path(self, v5_prms):
        assert explore(XC5VLX110T, v5_prms, workers=1) == explore(
            XC5VLX110T, v5_prms
        )

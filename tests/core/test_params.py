"""Unit tests for PRMRequirements and the parameter glossaries."""

import pytest

from repro.core.params import (
    PRMRequirements,
    TABLE1_PARAMETERS,
    TABLE3_PARAMETERS,
)
from repro.devices.resources import ResourceVector


class TestPRMRequirementsValidation:
    def test_valid_paper_values(self):
        prm = PRMRequirements("fir", 1300, 1150, 394, dsps=32)
        assert prm.lut_ff_pairs == 1300

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PRMRequirements("x", 10, 5, -1)

    def test_luts_cannot_exceed_pairs(self):
        # Every used LUT occupies a pair.
        with pytest.raises(ValueError, match="LUT_req"):
            PRMRequirements("x", 10, 11, 5)

    def test_ffs_cannot_exceed_pairs(self):
        with pytest.raises(ValueError, match="FF_req"):
            PRMRequirements("x", 10, 5, 11)

    def test_pairs_cannot_exceed_lut_plus_ff(self):
        with pytest.raises(ValueError, match="at least one"):
            PRMRequirements("x", 16, 5, 10)

    def test_zero_everything_allowed(self):
        prm = PRMRequirements("empty", 0, 0, 0)
        assert prm.full_pairs == 0


class TestPairClassIdentities:
    """The Section III.B pair-class identities."""

    @pytest.mark.parametrize(
        "pairs,luts,ffs",
        [(1300, 1150, 394), (2617, 1527, 1592), (332, 157, 292), (10, 10, 10)],
    )
    def test_classes_sum_to_pairs(self, pairs, luts, ffs):
        prm = PRMRequirements("x", pairs, luts, ffs)
        assert (
            prm.full_pairs + prm.lut_only_pairs + prm.ff_only_pairs
            == prm.lut_ff_pairs
        )

    def test_lut_req_is_full_plus_lut_only(self):
        prm = PRMRequirements("x", 1300, 1150, 394)
        assert prm.full_pairs + prm.lut_only_pairs == prm.luts

    def test_ff_req_is_full_plus_ff_only(self):
        prm = PRMRequirements("x", 1300, 1150, 394)
        assert prm.full_pairs + prm.ff_only_pairs == prm.ffs

    def test_paper_full_pair_values(self):
        assert PRMRequirements("fir", 1300, 1150, 394).full_pairs == 244
        assert PRMRequirements("mips", 2617, 1527, 1592).full_pairs == 502


class TestHelpers:
    def test_requires_kind_vector(self):
        prm = PRMRequirements("mips", 2617, 1527, 1592, dsps=4, brams=6)
        assert prm.requires_kind_vector(328) == ResourceVector(328, 4, 6)

    def test_scaled_doubles(self):
        prm = PRMRequirements("x", 100, 80, 60, dsps=3, brams=2)
        big = prm.scaled(2.0)
        assert big.luts == 160 and big.ffs == 120
        assert big.dsps == 6 and big.brams == 4
        assert big.name == "xx2"

    def test_scaled_preserves_invariants(self):
        prm = PRMRequirements("x", 100, 80, 60)
        for factor in (0.1, 0.33, 1.7, 10.0):
            scaled = prm.scaled(factor)  # must not raise
            assert scaled.lut_ff_pairs >= max(scaled.luts, scaled.ffs)
            assert scaled.lut_ff_pairs <= scaled.luts + scaled.ffs

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PRMRequirements("x", 1, 1, 1).scaled(0)


class TestGlossaries:
    def test_table1_has_all_paper_parameters(self):
        names = {name for name, _ in TABLE1_PARAMETERS}
        assert {"LUT_FF_req", "CLB_req", "W_CLB", "H", "W", "PRR_size"} <= names

    def test_table3_has_all_paper_parameters(self):
        names = {name for name, _ in TABLE3_PARAMETERS}
        assert {"IW", "FW", "FAR_FDRI", "NCW_row", "NDW_BRAM", "S_bitstream"} <= names

    def test_descriptions_nonempty(self):
        for _, desc in TABLE1_PARAMETERS + TABLE3_PARAMETERS:
            assert desc

"""Unit tests for RU / internal fragmentation (eqs. (13)-(17))."""

import pytest

from repro.core.params import PRMRequirements
from repro.core.prr_model import PRRGeometry, prr_geometry_for_rows
from repro.core.utilization import utilization
from repro.devices.family import VIRTEX5
from repro.devices.resources import ResourceVector

from tests.conftest import paper_requirements


class TestUtilizationMath:
    def test_fir_v5_fractions(self):
        prm = paper_requirements("fir", "virtex5")
        geometry = prr_geometry_for_rows(prm, VIRTEX5, 5, single_dsp_column=True)
        ru = utilization(prm, geometry)
        assert ru.clb == pytest.approx(163 / 200)
        assert ru.ff == pytest.approx(394 / 1600)
        assert ru.lut == pytest.approx(1150 / 1600)
        assert ru.dsp == pytest.approx(32 / 40)
        assert ru.bram == 0.0

    def test_zero_requirement_is_zero_ru(self):
        prm = paper_requirements("sdram", "virtex5")
        geometry = prr_geometry_for_rows(prm, VIRTEX5, 1)
        ru = utilization(prm, geometry)
        assert ru.dsp == 0.0 and ru.bram == 0.0

    def test_requirement_without_capacity_raises(self):
        prm = PRMRequirements("x", 8, 8, 0, dsps=1)
        geometry = PRRGeometry(VIRTEX5, 1, ResourceVector(1, 0, 0))
        with pytest.raises(ValueError, match="zero availability"):
            utilization(prm, geometry)

    def test_as_percentages_rounds(self):
        prm = paper_requirements("mips", "virtex5")
        geometry = prr_geometry_for_rows(prm, VIRTEX5, 1, single_dsp_column=True)
        pct = utilization(prm, geometry).as_percentages()
        # 328/340 = 96.47% -> 96 (the paper printed 97; ±1 rounding).
        assert pct == {
            "RU_CLB": 96,
            "RU_FF": 59,
            "RU_LUT": 56,
            "RU_DSP": 50,
            "RU_BRAM": 75,
        }

    def test_internal_fragmentation_complements_ru(self):
        prm = paper_requirements("fir", "virtex5")
        geometry = prr_geometry_for_rows(prm, VIRTEX5, 5, single_dsp_column=True)
        ru = utilization(prm, geometry)
        frag = ru.internal_fragmentation
        assert frag["CLB"] == pytest.approx(1 - ru.clb)
        assert frag["DSP"] == pytest.approx(0.2)

    def test_worst_primary(self):
        prm = paper_requirements("fir", "virtex5")
        geometry = prr_geometry_for_rows(prm, VIRTEX5, 5, single_dsp_column=True)
        ru = utilization(prm, geometry)
        assert ru.worst_primary == pytest.approx(163 / 200)

    def test_ru_at_most_one_for_fitting_prm(self):
        for workload in ("fir", "mips", "sdram"):
            prm = paper_requirements(workload, "virtex5")
            rows = 5 if workload == "fir" else 1
            geometry = prr_geometry_for_rows(
                prm, VIRTEX5, rows, single_dsp_column=True
            )
            ru = utilization(prm, geometry)
            for value in (ru.clb, ru.ff, ru.lut, ru.dsp, ru.bram):
                assert 0.0 <= value <= 1.0

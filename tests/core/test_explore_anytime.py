"""Anytime exploration: budgets, degradation, escalation, back-compat."""

import time

import pytest

from repro.core.budget import Budget
from repro.core.explorer import (
    ExploreResult,
    _bell_number,
    _escalate_mode,
    explore,
    pareto_front,
)
from repro.devices.catalog import XC5VLX110T
from repro.errors import InvalidInput

from tests.conftest import paper_requirements


@pytest.fixture(scope="module")
def v5_prms():
    return [
        paper_requirements("fir", "virtex5"),
        paper_requirements("mips", "virtex5"),
        paper_requirements("sdram", "virtex5"),
    ]


class TestBudget:
    def test_unlimited_budget_never_expires(self):
        budget = Budget()
        assert not budget.limited
        budget.charge(10_000)
        assert not budget.expired
        assert budget.exhausted_reason is None

    def test_evaluation_budget_expires_sticky(self):
        budget = Budget(max_evaluations=2)
        budget.charge()
        assert not budget.expired
        budget.charge()
        assert budget.expired
        assert budget.exhausted_reason == "evaluations"
        assert budget.expired  # sticky

    def test_deadline_budget_expires(self):
        budget = Budget(deadline_s=0.01)
        time.sleep(0.02)
        assert budget.expired
        assert budget.exhausted_reason == "deadline"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0},
            {"deadline_s": -1.0},
            {"max_evaluations": 0},
            {"max_evaluations": -3},
        ],
    )
    def test_invalid_budget_rejected(self, kwargs):
        with pytest.raises(InvalidInput):
            Budget(**kwargs)


class TestExploreResultBackCompat:
    def test_unbudgeted_result_is_plain_exhausted_list(self, v5_prms):
        result = explore(XC5VLX110T, v5_prms)
        assert isinstance(result, ExploreResult)
        assert isinstance(result, list)
        assert result.status == "exhausted"
        assert not result.degraded
        # list behaviours callers rely on
        assert result[:1] == [result[0]]
        assert list(result) == result

    def test_front_property_matches_pareto_front(self, v5_prms):
        result = explore(XC5VLX110T, v5_prms)
        assert result.front == pareto_front(result)


class TestDeadlines:
    def test_deadline_respected_with_margin(self, v5_prms):
        deadline = 0.5
        start = time.perf_counter()
        result = explore(XC5VLX110T, v5_prms, deadline_s=deadline)
        elapsed = time.perf_counter() - start
        assert elapsed < deadline * 1.1 + 0.2
        assert result  # never empty: the incumbent is always merged

    def test_tiny_deadline_returns_degraded_incumbent(self, v5_prms):
        result = explore(XC5VLX110T, v5_prms, deadline_s=1e-9, mode="exhaustive")
        assert result.degraded
        assert result.exhausted_reason == "deadline"
        assert len(result) >= 1
        # the incumbent is an endpoint grouping: all-shared when feasible,
        # else one PRR per PRM
        assert any(
            len(d.assignments) in (1, len(v5_prms)) for d in result
        )

    def test_invalid_deadline_rejected(self, v5_prms):
        with pytest.raises(InvalidInput):
            explore(XC5VLX110T, v5_prms, deadline_s=-1.0)
        with pytest.raises(InvalidInput):
            explore(XC5VLX110T, v5_prms, mode="warp")


class TestEvaluationBudgets:
    @staticmethod
    def _grouping(design):
        return frozenset(
            frozenset(p.name for p in a.prms) for a in design.assignments
        )

    def test_degraded_designs_subset_of_exhaustive(self, v5_prms):
        full = explore(XC5VLX110T, v5_prms, mode="exhaustive")
        full_keys = {self._grouping(d) for d in full}
        for cut in (2, 3, 4):
            degraded = explore(
                XC5VLX110T, v5_prms, mode="exhaustive", max_evaluations=cut
            )
            assert degraded.degraded
            assert degraded.exhausted_reason == "evaluations"
            degraded_keys = {self._grouping(d) for d in degraded}
            # no invented designs: everything found under the budget is a
            # real design the exhaustive search also finds
            assert degraded_keys <= full_keys
            # and the degraded front is exactly the front of what it found
            assert degraded.front == pareto_front(list(degraded))

    def test_evaluation_budget_is_deterministic(self, v5_prms):
        first = explore(XC5VLX110T, v5_prms, mode="exhaustive", max_evaluations=3)
        second = explore(XC5VLX110T, v5_prms, mode="exhaustive", max_evaluations=3)
        assert [d.objectives for d in first] == [d.objectives for d in second]
        assert first.evaluations == second.evaluations

    def test_generous_budget_matches_unbudgeted(self, v5_prms):
        unbudgeted = explore(XC5VLX110T, v5_prms, mode="exhaustive")
        budgeted = explore(
            XC5VLX110T, v5_prms, mode="exhaustive", max_evaluations=10_000
        )
        assert budgeted.status == "exhausted"
        assert [d.objectives for d in budgeted] == [
            d.objectives for d in unbudgeted
        ]

    @pytest.mark.parametrize("mode", ["pruned", "beam"])
    def test_other_modes_degrade_not_raise(self, v5_prms, mode):
        result = explore(XC5VLX110T, v5_prms, mode=mode, max_evaluations=2)
        assert result.degraded
        assert len(result) >= 1


class TestModeEscalation:
    def test_bell_numbers(self):
        assert [_bell_number(n) for n in range(6)] == [1, 1, 2, 5, 15, 52]

    def test_roomy_deadline_stays_exhaustive(self):
        budget = Budget(deadline_s=100.0)
        assert _escalate_mode(3, budget, probe_s=1e-4) == "exhaustive"

    def test_tight_deadline_escalates_to_pruned_then_beam(self):
        budget = Budget(deadline_s=100.0)
        # projected exhaustive cost >> deadline -> beam
        assert _escalate_mode(8, budget, probe_s=1e3) == "beam"

    def test_auto_with_budget_records_resolved_mode(self, v5_prms):
        result = explore(XC5VLX110T, v5_prms, mode="auto", deadline_s=60.0)
        assert result.mode in ("exhaustive", "pruned", "beam")
        assert result.status == "exhausted"

"""API-surface guards: every advertised name exists and imports cleanly."""

import doctest
import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.devices",
    "repro.synth",
    "repro.workloads",
    "repro.core",
    "repro.par",
    "repro.bitgen",
    "repro.icap",
    "repro.baselines",
    "repro.faults",
    "repro.relocation",
    "repro.multitask",
    "repro.validation",
    "repro.reports",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_has_docstring(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20


DOCTEST_MODULES = [
    "repro.devices.resources",
    "repro.devices.family",
    "repro.devices.catalog",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


def test_version_string():
    import repro

    assert repro.__version__ == "1.0.0"


def test_console_entry_point_importable():
    from repro.cli import main  # noqa: F401

"""Unit tests for constrained placement and the routability model."""

import pytest

from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T, XC6VLX75T
from repro.devices.fabric import Region
from repro.devices.resources import ColumnKind
from repro.par.optimizer import optimize
from repro.par.placer import PlacementError, place
from repro.par.router import (
    DEFAULT_ROUTING_CAPACITY,
    ROUTING_CAPACITY,
    route,
)
from repro.synth.xst import synthesize
from repro.workloads import build_fir, build_mips, build_sdram

from tests.conftest import paper_requirements


@pytest.fixture(scope="module")
def fir_design():
    report = synthesize(build_fir(XC5VLX110T.family), XC5VLX110T.family)
    return optimize(report)


@pytest.fixture(scope="module")
def fir_region():
    placed = find_prr(XC5VLX110T, paper_requirements("fir", "virtex5"))
    return placed.region


class TestPlacer:
    def test_successful_placement(self, fir_design, fir_region):
        result = place(fir_design, XC5VLX110T, fir_region)
        assert result.design_name == "fir"
        assert 0 < result.pair_utilization <= 1
        assert result.dsp_utilization == pytest.approx(32 / 40)

    def test_column_fill_covers_demand(self, fir_design, fir_region):
        result = place(fir_design, XC5VLX110T, fir_region)
        assert (
            sum(pairs for _, pairs in result.column_fill)
            == fir_design.post.lut_ff_pairs
        )
        for col, _ in result.column_fill:
            assert XC5VLX110T.column_kind(col) is ColumnKind.CLB

    def test_column_fill_respects_capacity(self, fir_design, fir_region):
        result = place(fir_design, XC5VLX110T, fir_region)
        per_column = (
            fir_region.height
            * XC5VLX110T.family.clb_per_col
            * XC5VLX110T.family.luts_per_clb
        )
        assert result.max_column_fill <= per_column

    def test_too_small_region_raises(self, fir_design):
        clb_col = XC5VLX110T.columns_of_kind(ColumnKind.CLB)[0]
        tiny = Region(row=1, col=clb_col, height=1, width=1)
        with pytest.raises(PlacementError, match="does not fit"):
            place(fir_design, XC5VLX110T, tiny)

    def test_region_without_dsps_raises(self, fir_design):
        clb_cols = XC5VLX110T.columns_of_kind(ColumnKind.CLB)
        # An all-CLB region big enough for the pairs but with no DSPs.
        region = Region(row=1, col=clb_cols[0], height=6, width=6)
        if not XC5VLX110T.is_valid_prr(region):
            pytest.skip("layout shifted; pick a different window")
        with pytest.raises(PlacementError, match="DSP"):
            place(fir_design, XC5VLX110T, region)


class TestRouter:
    def test_capacities_calibrated(self):
        assert ROUTING_CAPACITY["virtex5"] == pytest.approx(0.98)
        assert ROUTING_CAPACITY["virtex6"] == pytest.approx(0.91)

    def test_unknown_family_uses_default(self, fir_design, fir_region):
        placement = place(fir_design, XC5VLX110T, fir_region)
        result = route(placement, "nonexistent")
        assert result.capacity == DEFAULT_ROUTING_CAPACITY

    def test_fir_routes_on_v5(self, fir_design, fir_region):
        placement = place(fir_design, XC5VLX110T, fir_region)
        result = route(placement, "virtex5")
        assert result.routed
        assert result.headroom > 0

    @pytest.mark.parametrize(
        "device,builder",
        [
            (XC5VLX110T, build_fir),
            (XC5VLX110T, build_mips),
            (XC5VLX110T, build_sdram),
            (XC6VLX75T, build_fir),
            (XC6VLX75T, build_mips),
            (XC6VLX75T, build_sdram),
        ],
        ids=lambda x: getattr(x, "name", getattr(x, "__name__", str(x))),
    )
    def test_all_original_implementations_route(self, device, builder):
        """Table VI reports post-PAR numbers for all six cases — every
        original (Table V geometry) implementation succeeded."""
        report = synthesize(builder(device.family), device.family)
        placed = find_prr(device, report.requirements)
        placement = place(optimize(report), device, placed.region)
        assert route(placement, device.family.name).routed

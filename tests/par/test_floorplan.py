"""Unit tests for AREA_GROUP floorplan constraints."""

import pytest

from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.devices.fabric import Region
from repro.par.floorplan import AreaGroup, render_ucf

from tests.conftest import paper_requirements


@pytest.fixture(scope="module")
def mips_group():
    placed = find_prr(XC5VLX110T, paper_requirements("mips", "virtex5"))
    return AreaGroup(name="pblock_mips", device=XC5VLX110T, region=placed.region)


class TestAreaGroup:
    def test_requires_name(self):
        placed = find_prr(XC5VLX110T, paper_requirements("sdram", "virtex5"))
        with pytest.raises(ValueError):
            AreaGroup(name="", device=XC5VLX110T, region=placed.region)

    def test_rejects_iob_region(self):
        with pytest.raises(ValueError):
            AreaGroup(
                name="bad",
                device=XC5VLX110T,
                region=Region(row=1, col=1, height=1, width=2),
            )

    def test_slice_range_geometry(self, mips_group):
        x0, y0, x1, y1 = mips_group.slice_range
        # Bottom row: slice Y spans one row of 20 CLBs.
        assert y0 == 0 and y1 == 19
        # 17 CLB columns -> 34 slice columns.
        assert x1 - x0 + 1 == 34

    def test_slice_range_row_offset(self):
        placed = find_prr(XC5VLX110T, paper_requirements("sdram", "virtex5"))
        higher = Region(
            row=3,
            col=placed.region.col,
            height=placed.region.height,
            width=placed.region.width,
        )
        group = AreaGroup("g", XC5VLX110T, higher)
        _, y0, _, _ = group.slice_range
        assert y0 == 2 * 20


class TestRenderUcf:
    def test_contains_required_statements(self, mips_group):
        text = render_ucf(mips_group, instance="u_mips")
        assert 'INST "u_mips" AREA_GROUP = "pblock_mips";' in text
        assert "RANGE = SLICE_X" in text
        assert "RANGE = DSP48_X" in text  # MIPS PRR has a DSP column
        assert "RANGE = RAMB36_X" in text  # and BRAM columns
        assert 'MODE = RECONFIG;' in text

    def test_clb_only_region_omits_dsp_bram_ranges(self):
        placed = find_prr(XC5VLX110T, paper_requirements("sdram", "virtex5"))
        group = AreaGroup("pblock_sdram", XC5VLX110T, placed.region)
        text = render_ucf(group)
        assert "DSP48" not in text
        assert "RAMB36" not in text

"""Unit tests for the implementation flow and the re-tighten experiment."""

import pytest

from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T, XC6VLX75T
from repro.par.flow import (
    implement,
    retighten,
    simulated_implementation_seconds,
)
from repro.synth.xst import synthesize
from repro.workloads import build_fir, build_mips, build_sdram

BUILDERS = {"fir": build_fir, "mips": build_mips, "sdram": build_sdram}


def setup_case(workload, device):
    report = synthesize(BUILDERS[workload](device.family), device.family)
    placed = find_prr(device, report.requirements)
    return report, placed


class TestImplement:
    def test_result_fields(self):
        report, placed = setup_case("fir", XC5VLX110T)
        result = implement(report, XC5VLX110T, placed.region)
        assert result.succeeded
        assert result.design.post.lut_ff_pairs == 1082
        assert result.simulated_seconds > 100
        assert "routed" in result.summary()

    def test_family_mismatch_rejected(self):
        report, _ = setup_case("fir", XC5VLX110T)
        placed_v6 = find_prr(XC6VLX75T, report.requirements)
        with pytest.raises(ValueError, match="cannot implement"):
            implement(report, XC6VLX75T, placed_v6.region)

    def test_runtime_model_monotone(self):
        assert simulated_implementation_seconds(
            1000, 0.5
        ) < simulated_implementation_seconds(2000, 0.5)
        assert simulated_implementation_seconds(
            1000, 0.5
        ) < simulated_implementation_seconds(1000, 0.9)

    def test_runtime_model_validation(self):
        with pytest.raises(ValueError):
            simulated_implementation_seconds(-1, 0.5)
        with pytest.raises(ValueError):
            simulated_implementation_seconds(10, 1.5)

    def test_paper_scale_implementation_minutes(self):
        # Table VIII implementation times: 2m55s-5m50s (175-350 s).
        for device in (XC5VLX110T, XC6VLX75T):
            for workload in BUILDERS:
                report, placed = setup_case(workload, device)
                result = implement(report, device, placed.region)
                assert 150 <= result.simulated_seconds <= 360


class TestRetighten:
    """Section IV's re-tightening experiment.

    Paper outcomes: SDRAM unchanged on both devices; FIR saves two/one CLB
    column-cells on Virtex-5/-6; MIPS saves columns on Virtex-5 but FAILS
    place and route on Virtex-6.
    """

    def test_sdram_unchanged_v5(self):
        report, placed = setup_case("sdram", XC5VLX110T)
        outcome = retighten(report, XC5VLX110T, placed.region)
        assert outcome.unchanged and outcome.succeeded
        assert outcome.clb_column_rows_saved == 0

    def test_sdram_unchanged_v6(self):
        report, placed = setup_case("sdram", XC6VLX75T)
        outcome = retighten(report, XC6VLX75T, placed.region)
        assert outcome.unchanged and outcome.succeeded

    def test_fir_v5_saves_two_clb_column_cells(self):
        report, placed = setup_case("fir", XC5VLX110T)
        outcome = retighten(report, XC5VLX110T, placed.region)
        assert outcome.succeeded
        assert outcome.clb_column_rows_saved == 2
        # The re-derived PRR drops from H=5 to H=4 (136 CLBs fit 4 rows).
        assert outcome.retightened_region.height == 4

    def test_fir_v6_saves_one_clb_column(self):
        report, placed = setup_case("fir", XC6VLX75T)
        outcome = retighten(report, XC6VLX75T, placed.region)
        assert outcome.succeeded
        assert outcome.clb_column_rows_saved == 1

    def test_mips_v5_succeeds_with_savings(self):
        """Our model saves 3 CLB columns (the paper reports 2 — documented
        divergence, see EXPERIMENTS.md)."""
        report, placed = setup_case("mips", XC5VLX110T)
        outcome = retighten(report, XC5VLX110T, placed.region)
        assert outcome.succeeded
        assert outcome.clb_column_rows_saved == 3

    def test_mips_v6_fails_routing(self):
        """The paper's headline failure: 'MIPS failed place and route on
        the Virtex-6'."""
        report, placed = setup_case("mips", XC6VLX75T)
        outcome = retighten(report, XC6VLX75T, placed.region)
        assert not outcome.succeeded
        assert outcome.retightened_region is not None  # a window exists...
        assert outcome.implementation is not None
        assert not outcome.implementation.routing.routed  # ...but won't route

    def test_mips_v6_failure_is_congestion_not_capacity(self):
        report, placed = setup_case("mips", XC6VLX75T)
        outcome = retighten(report, XC6VLX75T, placed.region)
        routing = outcome.implementation.routing
        assert routing.pair_utilization <= 1.0  # it *fits*
        assert routing.pair_utilization > routing.capacity  # but won't route

"""Unit tests for the implementation-time optimizer (Table VI effect)."""

import pytest

from repro.devices.family import VIRTEX5, VIRTEX6
from repro.par.optimizer import optimize
from repro.synth.netlist import OptimizationHints
from repro.synth.packer import PairBreakdown
from repro.synth.report import SynthesisReport
from repro.synth.xst import synthesize
from repro.workloads import build_fir, build_mips, build_sdram

from tests.conftest import PAPER_POST_IMPL

BUILDERS = {"fir": build_fir, "mips": build_mips, "sdram": build_sdram}


def make_report(pairs, hints):
    return SynthesisReport(
        design_name="x",
        family_name="virtex5",
        pairs=pairs,
        dsps=1,
        brams=2,
        hints=hints,
    )


class TestPasses:
    def test_lut_combining(self):
        report = make_report(
            PairBreakdown(10, 90, 0), OptimizationHints(combinable_luts=20)
        )
        assert optimize(report).post.luts == 80

    def test_routethru_increases_luts(self):
        report = make_report(
            PairBreakdown(10, 90, 0), OptimizationHints(routethru_luts=5)
        )
        assert optimize(report).post.luts == 105

    def test_ff_duplication(self):
        report = make_report(
            PairBreakdown(10, 0, 40), OptimizationHints(duplicable_ffs=16)
        )
        assert optimize(report).post.ffs == 66

    def test_crosspacking_shrinks_pairs(self):
        pre = PairBreakdown(full_pairs=0, lut_only_pairs=50, ff_only_pairs=50)
        report = make_report(pre, OptimizationHints(crosspackable_pairs=30))
        post = optimize(report).post
        assert post.full_pairs == 30
        assert post.lut_ff_pairs == 70

    def test_crosspacking_capped_at_min(self):
        pre = PairBreakdown(full_pairs=0, lut_only_pairs=10, ff_only_pairs=50)
        report = make_report(pre, OptimizationHints(crosspackable_pairs=100))
        post = optimize(report).post
        assert post.full_pairs == 10  # capped at post LUTs

    def test_combining_more_than_luts_rejected(self):
        report = make_report(
            PairBreakdown(0, 10, 0), OptimizationHints(combinable_luts=11)
        )
        with pytest.raises(ValueError, match="combinable_luts"):
            optimize(report)

    def test_dsp_bram_never_change(self):
        report = make_report(PairBreakdown(5, 5, 5), OptimizationHints())
        design = optimize(report)
        assert design.dsps == report.dsps
        assert design.brams == report.brams


class TestTable6Reproduction:
    @pytest.mark.parametrize("workload", ["fir", "mips", "sdram"])
    @pytest.mark.parametrize("family", [VIRTEX5, VIRTEX6], ids=lambda f: f.name)
    def test_post_counts(self, workload, family):
        report = synthesize(BUILDERS[workload](family), family)
        post = optimize(report).post
        pairs, luts, ffs = PAPER_POST_IMPL[(workload, family.name)]
        assert post.lut_ff_pairs == pairs
        assert post.luts == luts
        assert post.ffs == ffs

    def test_fir_v5_savings_percentages(self):
        """The Table VI parenthesized numbers for FIR on Virtex-5."""
        report = synthesize(build_fir(VIRTEX5), VIRTEX5)
        savings = optimize(report).savings_percent()
        assert savings["LUT_FF_req"] == pytest.approx(16.8, abs=0.05)
        assert savings["LUT_req"] == pytest.approx(11.7, abs=0.05)
        assert savings["FF_req"] == pytest.approx(-4.1, abs=0.05)
        assert savings["DSP_req"] == 0.0
        assert savings["BRAM_req"] == 0.0

    def test_sdram_v5_lut_increase(self):
        """SDRAM's LUTs *increase* 21.7% from route-thrus (Table VI)."""
        report = synthesize(build_sdram(VIRTEX5), VIRTEX5)
        savings = optimize(report).savings_percent()
        assert savings["LUT_req"] == pytest.approx(-21.7, abs=0.1)

    def test_mips_v6_savings(self):
        report = synthesize(build_mips(VIRTEX6), VIRTEX6)
        savings = optimize(report).savings_percent()
        assert savings["LUT_FF_req"] == pytest.approx(18.8, abs=0.05)
        assert savings["LUT_req"] == pytest.approx(7.8, abs=0.05)
        assert savings["FF_req"] == 0.0

    def test_post_requirements_valid(self):
        for family in (VIRTEX5, VIRTEX6):
            for builder in BUILDERS.values():
                report = synthesize(builder(family), family)
                optimize(report).requirements  # must not raise invariants

"""Tests for partition-pin (proxy logic) overhead modeling."""


from repro.core import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.devices.family import VIRTEX5
from repro.par.partition_pins import (
    apply_partition_pins,
    interface_width,
    proxy_overhead,
)
from repro.synth.netlist import Memory, Module, Mux, Netlist, RegisterBank
from repro.synth.xst import synthesize
from repro.workloads import build_fir, build_mips, build_sdram


def netlist_of(*components):
    top = Module("top")
    for component in components:
        top.add(component)
    return Netlist("t", top)


class TestInterfaceWidth:
    def test_minimal_netlist(self):
        width = interface_width(netlist_of(Mux(ways=2, width=1)))
        assert width == 2 * 1 + 4  # in + out + control

    def test_register_banks_are_internal(self):
        base = interface_width(netlist_of(Mux(ways=2, width=8)))
        with_bank = interface_width(
            netlist_of(Mux(ways=2, width=8), RegisterBank(width=150))
        )
        assert with_bank == base  # pipeline state is not a port

    def test_wide_datapath_dominates(self):
        narrow = interface_width(netlist_of(Mux(ways=2, width=8)))
        wide = interface_width(netlist_of(Mux(ways=2, width=64)))
        assert wide > narrow

    def test_memory_adds_address_bus(self):
        without = interface_width(netlist_of(Mux(ways=2, width=32)))
        with_mem = interface_width(
            netlist_of(Mux(ways=2, width=32), Memory(depth=2048, width=32))
        )
        assert with_mem == without + 11  # log2(2048)

    def test_mux_counts_width_not_ways(self):
        few = interface_width(netlist_of(Mux(ways=2, width=16)))
        many = interface_width(netlist_of(Mux(ways=16, width=16)))
        assert few == many

    def test_paper_prms_have_plausible_interfaces(self):
        for builder in (build_fir, build_mips, build_sdram):
            signals = interface_width(builder(VIRTEX5))
            assert 30 <= signals <= 200  # data+addr+control scale


class TestProxyOverhead:
    def test_one_lut_per_signal(self):
        estimate = proxy_overhead(netlist_of(Mux(ways=2, width=16)))
        assert estimate.proxy_luts == estimate.signals
        assert estimate.proxy_pairs == estimate.proxy_luts

    def test_apply_inflates_luts_only(self):
        netlist = build_sdram(VIRTEX5)
        report = synthesize(netlist, VIRTEX5)
        estimate = proxy_overhead(netlist)
        adjusted = apply_partition_pins(report.requirements, estimate)
        assert adjusted.luts == report.requirements.luts + estimate.proxy_luts
        assert (
            adjusted.lut_ff_pairs
            == report.requirements.lut_ff_pairs + estimate.proxy_luts
        )
        assert adjusted.ffs == report.requirements.ffs
        assert adjusted.dsps == report.requirements.dsps
        assert adjusted.name.endswith("+pins")

    def test_adjusted_requirements_stay_valid(self):
        for builder in (build_fir, build_mips, build_sdram):
            netlist = builder(VIRTEX5)
            report = synthesize(netlist, VIRTEX5)
            adjusted = apply_partition_pins(
                report.requirements, proxy_overhead(netlist)
            )
            # Valid PRMRequirements (constructor enforces the invariants)
            # and still placeable.
            placed = find_prr(XC5VLX110T, adjusted)
            assert placed.geometry.fits(adjusted)

    def test_pins_can_grow_the_prr(self):
        """A PRM near a column boundary tips over with proxy overhead —
        the early-sizing reason to model pins at all."""
        from repro.core.params import PRMRequirements

        # 42 CLBs (SDRAM/V5) fit 3 columns at 70% RU; pins push past 60.
        base = PRMRequirements("edge", 470, 330, 200)
        placed_base = find_prr(XC5VLX110T, base)
        bumped = apply_partition_pins(
            base,
            proxy_overhead(netlist_of(RegisterBank(width=60))),
        )
        placed_bumped = find_prr(XC5VLX110T, bumped)
        assert placed_bumped.size >= placed_base.size

"""Tests for verified reconfiguration with retry/backoff."""

import pytest

from repro.bitgen.generator import generate_partial_bitstream
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.faults import (
    ControllerStallFault,
    FaultInjector,
    ReliableReconfigurer,
    RetryPolicy,
    TransferBitFlipFault,
    payload_crc,
)
from repro.icap.controllers import DmaIcapController
from repro.icap.reconfig import simulate_reconfiguration
from repro.icap.storage import DDR_SDRAM

from tests.conftest import paper_requirements

CONTROLLER = DmaIcapController()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="deadline_s"):
            RetryPolicy(deadline_s=0.0)

    def test_no_retry_is_single_attempt(self):
        assert RetryPolicy.no_retry().max_attempts == 1

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=1e-4, backoff_factor=2.0, backoff_cap_s=3e-4
        )
        assert policy.backoff_seconds(1) == pytest.approx(1e-4)
        assert policy.backoff_seconds(2) == pytest.approx(2e-4)
        assert policy.backoff_seconds(3) == pytest.approx(3e-4)  # capped
        assert policy.backoff_seconds(0) == 0.0


class TestPayloadCrc:
    def test_any_flipped_bit_changes_crc(self):
        data = bytes(range(256)) * 4
        base = payload_crc(data)
        for bit in (0, 7, 1000, len(data) * 8 - 1):
            corrupted = bytearray(data)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            assert payload_crc(bytes(corrupted)) != base

    def test_partial_word_padded(self):
        assert payload_crc(b"\x01\x02\x03") == payload_crc(b"\x01\x02\x03\x00")


class TestFaultFree:
    def test_single_clean_attempt_matches_simulate_reconfiguration(self):
        rel = ReliableReconfigurer(CONTROLLER, DDR_SDRAM, verify_bytes_per_s=1e12)
        result = rel.reconfigure(100_000)
        base = simulate_reconfiguration(100_000, CONTROLLER, DDR_SDRAM)
        assert result.success and len(result.attempts) == 1
        assert result.retries == 0
        verify = 100_000 / 1e12
        assert result.total_seconds == pytest.approx(
            base.total_seconds + verify, rel=1e-9
        )

    def test_negative_size_rejected(self):
        rel = ReliableReconfigurer(CONTROLLER, DDR_SDRAM)
        with pytest.raises(ValueError):
            rel.reconfigure(-1)

    def test_bad_verify_rate_rejected(self):
        with pytest.raises(ValueError, match="verify_bytes_per_s"):
            ReliableReconfigurer(CONTROLLER, DDR_SDRAM, verify_bytes_per_s=0)


class TestRetryLoop:
    def test_always_corrupted_exhausts_attempts(self):
        injector = FaultInjector(seed=1, transfer=TransferBitFlipFault(1.0))
        rel = ReliableReconfigurer(
            CONTROLLER,
            DDR_SDRAM,
            injector=injector,
            policy=RetryPolicy(max_attempts=4),
        )
        result = rel.reconfigure(10_000)
        assert not result.success
        assert len(result.attempts) == 4
        assert [a.outcome for a in result.attempts] == ["crc_mismatch"] * 4
        # Backoff charged after every failed attempt except the last.
        assert [a.backoff_seconds > 0 for a in result.attempts] == [
            True,
            True,
            True,
            False,
        ]

    def test_timeout_outcome_recorded(self):
        injector = FaultInjector(
            seed=2,
            stall=ControllerStallFault(1.0, stall_seconds=1e-3, timeout_probability=1.0),
        )
        rel = ReliableReconfigurer(
            CONTROLLER, DDR_SDRAM, injector=injector, policy=RetryPolicy.no_retry()
        )
        result = rel.reconfigure(10_000)
        assert not result.success
        assert result.attempts[0].outcome == "timeout"
        # The stall still consumed port time.
        assert result.attempts[0].write_seconds > 1e-3

    def test_deadline_budget_aborts(self):
        injector = FaultInjector(seed=3, transfer=TransferBitFlipFault(1.0))
        rel = ReliableReconfigurer(
            CONTROLLER,
            DDR_SDRAM,
            injector=injector,
            policy=RetryPolicy(max_attempts=100, deadline_s=2e-3),
        )
        result = rel.reconfigure(100_000)
        assert not result.success and result.deadline_exceeded
        assert len(result.attempts) < 100

    def test_eventual_success_counts_retries(self):
        injector = FaultInjector(seed=7, transfer=TransferBitFlipFault(0.5))
        rel = ReliableReconfigurer(
            CONTROLLER,
            DDR_SDRAM,
            injector=injector,
            policy=RetryPolicy(max_attempts=50),
        )
        result = rel.reconfigure(10_000)
        assert result.success
        assert result.attempts[-1].outcome == "ok"
        assert result.retries == len(result.attempts) - 1

    def test_deterministic_given_seed(self):
        def run():
            injector = FaultInjector(seed=11, transfer=TransferBitFlipFault(0.4))
            rel = ReliableReconfigurer(
                CONTROLLER,
                DDR_SDRAM,
                injector=injector,
                policy=RetryPolicy(max_attempts=10),
            )
            return rel.reconfigure(50_000)

        first, second = run(), run()
        assert first.attempts == second.attempts
        assert first.total_seconds == second.total_seconds

    def test_breakdown_renders_every_attempt(self):
        injector = FaultInjector(seed=1, transfer=TransferBitFlipFault(1.0))
        rel = ReliableReconfigurer(
            CONTROLLER,
            DDR_SDRAM,
            injector=injector,
            policy=RetryPolicy(max_attempts=2),
        )
        text = rel.reconfigure(1_000).breakdown()
        assert "attempt 1" in text and "attempt 2" in text and "FAILED" in text


class TestByteLevel:
    """Real partial bitstream: corruption detected by the CRC itself."""

    @pytest.fixture(scope="class")
    def bitstream_bytes(self):
        placed = find_prr(XC5VLX110T, paper_requirements("sdram", "virtex5"))
        return generate_partial_bitstream(
            XC5VLX110T, placed.region, design_name="sdram"
        ).to_bytes()

    def test_clean_transfer_verifies(self, bitstream_bytes):
        rel = ReliableReconfigurer(CONTROLLER, DDR_SDRAM)
        result = rel.reconfigure(bitstream_bytes)
        assert result.success
        assert result.verified_crc == payload_crc(bitstream_bytes)

    def test_injected_flip_caught_by_crc_then_retried(self, bitstream_bytes):
        injector = FaultInjector(seed=1, transfer=TransferBitFlipFault(0.7))
        rel = ReliableReconfigurer(
            CONTROLLER,
            DDR_SDRAM,
            injector=injector,
            policy=RetryPolicy(max_attempts=30),
        )
        result = rel.reconfigure(bitstream_bytes)
        assert result.success
        mismatches = [a for a in result.attempts if a.outcome == "crc_mismatch"]
        assert len(mismatches) == result.retries >= 1
        assert injector.fault_counts["transfer_bitflip"] == len(mismatches)

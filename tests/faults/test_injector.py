"""Tests for the fault models and the seedable injector."""

import numpy as np
import pytest

from repro.faults import (
    ControllerStallFault,
    FaultEvent,
    FaultInjector,
    SeuArrivalFault,
    StorageFetchFault,
    TransferBitFlipFault,
)


class TestModels:
    def test_probability_range_enforced(self):
        with pytest.raises(ValueError, match="probability"):
            TransferBitFlipFault(1.5)
        with pytest.raises(ValueError, match="probability"):
            StorageFetchFault(-0.1)
        with pytest.raises(ValueError, match="timeout_probability"):
            ControllerStallFault(0.5, timeout_probability=2.0)

    def test_bit_flips_positive(self):
        with pytest.raises(ValueError, match="bit_flips"):
            TransferBitFlipFault(0.1, bit_flips=0)

    def test_stall_seconds_non_negative(self):
        with pytest.raises(ValueError, match="stall_seconds"):
            ControllerStallFault(0.1, stall_seconds=-1e-3)

    def test_seu_rate_non_negative(self):
        with pytest.raises(ValueError, match="rate_per_s"):
            SeuArrivalFault(-1.0)

    def test_event_render(self):
        event = FaultEvent(time_s=1e-3, kind="seu", target="prr2")
        assert "seu" in event.render() and "prr2" in event.render()


class TestInjectorConstruction:
    def test_requires_exactly_one_of_seed_rng(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultInjector()
        with pytest.raises(ValueError, match="exactly one"):
            FaultInjector(seed=1, rng=np.random.default_rng(1))

    def test_accepts_external_generator(self):
        rng = np.random.default_rng(5)
        injector = FaultInjector(rng=rng, transfer=TransferBitFlipFault(1.0))
        assert injector.rng is rng

    def test_from_rates_disables_zero_mechanisms(self):
        injector = FaultInjector.from_rates(seed=1, fault_rate=0.5)
        assert injector.transfer is not None
        assert injector.fetch is None
        assert injector.stall is None
        assert injector.seu is None


class TestDraws:
    def test_deterministic_across_runs(self):
        def history(seed):
            injector = FaultInjector.from_rates(
                seed=seed, fault_rate=0.3, stall_rate=0.2, seu_rate_per_s=50.0
            )
            outcomes = [
                injector.transfer_outcome(i * 1e-3, f"prr{i % 2}")
                for i in range(50)
            ]
            outcomes.append(injector.seu_arrivals(0.0, 1.0))
            return outcomes, injector.events

        assert history(99) == history(99)

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(seed=1)
        for i in range(100):
            outcome = injector.transfer_outcome(0.0, "prr0")
            assert outcome.ok and outcome.stall_seconds == 0.0
        assert injector.events == []

    def test_certain_fault_always_fires(self):
        injector = FaultInjector(seed=1, transfer=TransferBitFlipFault(1.0))
        assert all(
            injector.transfer_outcome(0.0, "prr0").corrupted for _ in range(10)
        )
        assert injector.fault_counts["transfer_bitflip"] == 10

    def test_stall_adds_latency_and_can_time_out(self):
        injector = FaultInjector(
            seed=3,
            stall=ControllerStallFault(
                1.0, stall_seconds=5e-3, timeout_probability=1.0
            ),
        )
        outcome = injector.transfer_outcome(0.0, "icap")
        assert outcome.stall_seconds == 5e-3 and outcome.timed_out
        assert injector.fault_counts["timeout"] == 1

    def test_seu_arrivals_poisson_scale(self):
        injector = FaultInjector(seed=11, seu=SeuArrivalFault(1000.0))
        hits = injector.seu_arrivals(0.0, 1.0)
        assert 800 < hits < 1200

    def test_seu_disabled_returns_zero(self):
        injector = FaultInjector(seed=11)
        assert injector.seu_arrivals(0.0, 10.0) == 0

    def test_corrupt_bytes_flips_requested_bits(self):
        injector = FaultInjector(
            seed=4, transfer=TransferBitFlipFault(1.0, bit_flips=3)
        )
        data = bytes(64)
        received, offsets = injector.corrupt_bytes(data, 0.0, "prr0")
        assert len(offsets) == 3
        assert received != data
        assert len(received) == len(data)

    def test_corrupt_bytes_clean_when_no_fault(self):
        injector = FaultInjector(seed=4)
        data = bytes(range(16))
        received, offsets = injector.corrupt_bytes(data, 0.0, "prr0")
        assert received == data and offsets == []

    def test_choose_uniform_and_validated(self):
        injector = FaultInjector(seed=7)
        assert all(0 <= injector.choose(3) < 3 for _ in range(30))
        with pytest.raises(ValueError):
            injector.choose(0)

    def test_render_log_limits(self):
        injector = FaultInjector(seed=1, transfer=TransferBitFlipFault(1.0))
        for i in range(5):
            injector.transfer_outcome(i * 1e-3, "prr0", attempt=1)
        assert len(injector.render_log(limit=2).splitlines()) == 2
        assert len(injector.render_log().splitlines()) == 5

"""Tests for fault-aware (degraded-mode) multitasking simulation."""

import dataclasses

import pytest

from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.faults import (
    DegradedModePolicy,
    FaultInjector,
    RetryPolicy,
    TransferBitFlipFault,
)
from repro.multitask import HwTask, compare, make_task_set, simulate_pr

from tests.conftest import paper_requirements


@pytest.fixture(scope="module")
def tasks():
    return [
        HwTask(paper_requirements("fir", "virtex5"), exec_seconds=0.002),
        HwTask(paper_requirements("sdram", "virtex5"), exec_seconds=0.001),
    ]


@pytest.fixture(scope="module")
def prr_pair(tasks):
    shared = find_prr(XC5VLX110T, [t.prm for t in tasks])
    return [shared.geometry, shared.geometry]


@pytest.fixture(scope="module")
def single_prr(prr_pair):
    return prr_pair[:1]


@pytest.fixture(scope="module")
def jobs(tasks):
    return make_task_set(tasks, rate_per_s=200.0, horizon_s=0.25, seed=7)


def zero_injector():
    return FaultInjector.from_rates(seed=1)


class TestZeroFaultEquivalence:
    """Fault rate 0 must reproduce the base scheduler *exactly*."""

    @pytest.mark.parametrize("icap_exclusive", [False, True])
    def test_identical_schedule(self, jobs, prr_pair, icap_exclusive):
        base = simulate_pr(jobs, prr_pair, icap_exclusive=icap_exclusive)
        faulty = simulate_pr(
            jobs,
            prr_pair,
            icap_exclusive=icap_exclusive,
            faults=zero_injector(),
        )
        assert faulty.completed == base.completed  # same completion times
        assert faulty.reconfig_count == base.reconfig_count
        assert faulty.total_reconfig_seconds == base.total_reconfig_seconds
        assert faulty.makespan_seconds == base.makespan_seconds
        assert faulty.icap_busy_seconds == base.icap_busy_seconds

    def test_zero_rate_leaves_counters_zero(self, jobs, prr_pair):
        result = simulate_pr(jobs, prr_pair, faults=zero_injector())
        assert dataclasses.asdict(result) | {"completed": None} == (
            dataclasses.asdict(simulate_pr(jobs, prr_pair)) | {"completed": None}
        )
        assert result.fault_events == 0 and result.retries == 0
        assert result.completion_rate == 1.0

    def test_policy_without_injector_rejected(self, jobs, prr_pair):
        with pytest.raises(ValueError, match="fault_policy requires"):
            simulate_pr(jobs, prr_pair, fault_policy=DegradedModePolicy())

    def test_unfittable_task_still_raises(self, tasks, prr_pair):
        big = HwTask(paper_requirements("mips", "virtex5"), exec_seconds=0.004)
        jobs = make_task_set([big], rate_per_s=10, horizon_s=0.5, seed=1)
        with pytest.raises(ValueError, match="no PRR fits"):
            simulate_pr(jobs, prr_pair, faults=zero_injector())


class TestPolicyValidation:
    def test_quarantine_threshold_positive(self):
        with pytest.raises(ValueError, match="quarantine_threshold"):
            DegradedModePolicy(quarantine_threshold=0)

    def test_scrub_period_positive(self):
        with pytest.raises(ValueError, match="scrub_period_s"):
            DegradedModePolicy(scrub_period_s=0.0)

    def test_verify_overhead_non_negative(self):
        with pytest.raises(ValueError, match="verify_overhead_factor"):
            DegradedModePolicy(verify_overhead_factor=-0.1)

    def test_no_retry_constructor(self):
        assert DegradedModePolicy.no_retry().retry.max_attempts == 1


class TestDeterminism:
    def test_same_seed_same_everything(self, jobs, single_prr):
        def run():
            return simulate_pr(
                jobs,
                single_prr,
                faults=FaultInjector.from_rates(
                    seed=42, fault_rate=0.4, stall_rate=0.1, seu_rate_per_s=30.0
                ),
                fault_policy=DegradedModePolicy(
                    scrub_period_s=0.02, quarantine_threshold=2
                ),
                device=XC5VLX110T,
            )

        first, second = run(), run()
        assert first.fault_summary() == second.fault_summary()
        assert first.completed == second.completed
        assert first.makespan_seconds == second.makespan_seconds

    def test_different_seed_different_faults(self, jobs, single_prr):
        def run(seed):
            return simulate_pr(
                jobs,
                single_prr,
                faults=FaultInjector.from_rates(seed=seed, fault_rate=0.4),
                fault_policy=DegradedModePolicy(spill_to_full=False),
            )

        assert run(1).fault_summary() != run(2).fault_summary()


class TestDegradedBehaviour:
    def test_retries_consume_schedule_time(self, jobs, single_prr):
        clean = simulate_pr(jobs, single_prr)
        faulty = simulate_pr(
            jobs,
            single_prr,
            faults=FaultInjector.from_rates(seed=42, fault_rate=0.4),
            fault_policy=DegradedModePolicy(retry=RetryPolicy(max_attempts=6)),
            device=XC5VLX110T,
        )
        assert faulty.retries > 0
        assert faulty.total_reconfig_seconds > clean.total_reconfig_seconds

    def test_retry_dominates_no_retry_on_completion(self, jobs, single_prr):
        def run(policy):
            return simulate_pr(
                jobs,
                single_prr,
                faults=FaultInjector.from_rates(seed=42, fault_rate=0.4),
                fault_policy=policy,
            )

        no_retry = run(DegradedModePolicy.no_retry(spill_to_full=False))
        retry = run(DegradedModePolicy(spill_to_full=False))
        assert no_retry.dropped_jobs > 0
        assert retry.completion_rate > no_retry.completion_rate

    def test_quarantine_without_scrub_goes_offline(self, jobs, single_prr):
        # Every transfer corrupted, no retry, no spill: the PRR fails its
        # first jobs, hits the threshold, and the rest of the stream drops.
        result = simulate_pr(
            jobs,
            single_prr,
            faults=FaultInjector(seed=1, transfer=TransferBitFlipFault(1.0)),
            fault_policy=DegradedModePolicy.no_retry(
                quarantine_threshold=2, spill_to_full=False
            ),
        )
        assert result.quarantines == 1
        assert result.scrub_repairs == 0
        assert len(result.completed) == 0
        assert result.dropped_jobs == len(jobs)

    def test_scrub_restores_quarantined_prr(self, jobs, single_prr):
        result = simulate_pr(
            jobs,
            single_prr,
            faults=FaultInjector.from_rates(seed=42, fault_rate=0.6),
            fault_policy=DegradedModePolicy.no_retry(
                quarantine_threshold=2,
                scrub_period_s=0.01,
                spill_to_full=False,
            ),
        )
        assert result.quarantines > 0
        assert result.scrub_repairs == result.quarantines
        # Restored PRRs keep serving jobs after their quarantines.
        assert len(result.completed) > 0

    def test_spill_path_completes_everything(self, jobs, single_prr):
        result = simulate_pr(
            jobs,
            single_prr,
            faults=FaultInjector.from_rates(seed=42, fault_rate=0.6),
            fault_policy=DegradedModePolicy.no_retry(quarantine_threshold=2),
            device=XC5VLX110T,
        )
        assert result.spilled_jobs > 0
        assert result.dropped_jobs == 0
        assert result.completion_rate == 1.0
        spilled = [j for j in result.completed if j.prr_index == -1]
        assert len(spilled) == result.spilled_jobs
        # Spilled jobs paid the whole-device reconfiguration at least once.
        assert result.halted_seconds > 0

    def test_seu_forces_extra_reconfig(self, tasks, prr_pair):
        # One task only: without SEUs the PRM stays loaded and exactly one
        # reconfiguration per PRR ever happens; SEUs invalidate it.
        jobs = make_task_set(tasks[:1], rate_per_s=300.0, horizon_s=0.3, seed=3)
        clean = simulate_pr(jobs, prr_pair, faults=zero_injector())
        seu = simulate_pr(
            jobs,
            prr_pair,
            faults=FaultInjector.from_rates(seed=8, seu_rate_per_s=200.0),
        )
        assert seu.seu_hits > 0
        assert seu.reconfig_count > clean.reconfig_count

    def test_deadline_budget_counted(self, jobs, single_prr):
        result = simulate_pr(
            jobs,
            single_prr,
            faults=FaultInjector.from_rates(seed=42, fault_rate=0.9),
            fault_policy=DegradedModePolicy(
                retry=RetryPolicy(max_attempts=50, deadline_s=1e-4),
                spill_to_full=False,
            ),
        )
        assert result.deadline_misses > 0

    def test_fault_summary_shape(self, jobs, single_prr):
        result = simulate_pr(
            jobs,
            single_prr,
            faults=FaultInjector.from_rates(seed=42, fault_rate=0.3),
            fault_policy=DegradedModePolicy(spill_to_full=False),
        )
        text = result.fault_summary()
        for key in (
            "faults=",
            "retries=",
            "quarantines=",
            "scrub_repairs=",
            "dropped=",
            "completion=",
        ):
            assert key in text


class TestComparisonWithDrops:
    def test_strict_compare_rejects_different_counts(self, jobs, single_prr):
        full = simulate_pr(jobs, single_prr)
        lossy = simulate_pr(
            jobs,
            single_prr,
            faults=FaultInjector.from_rates(seed=42, fault_rate=0.5),
            fault_policy=DegradedModePolicy.no_retry(spill_to_full=False),
        )
        assert lossy.dropped_jobs > 0
        with pytest.raises(ValueError, match="different job counts"):
            compare(lossy, full)
        comparison = compare(lossy, full, strict=False)
        assert comparison.completion_rate_delta < 0
        assert "completion" in comparison.summary()

"""Tests for the repro-fpga command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_prm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synth", "nonexistent"])

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synth", "fir", "--device", "bogus"])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "xc5vlx110t" in out and "layout:" in out

    def test_synth(self, capsys):
        assert main(["synth", "fir", "--device", "xc5vlx110t"]) == 0
        out = capsys.readouterr().out
        assert "Number of LUT Flip Flop pairs used:   1300" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "sdram", "--device", "xc5vlx110t"]) == 0
        out = capsys.readouterr().out
        assert "bitstream=18016" in out

    def test_trace(self, capsys):
        assert main(["trace", "fir", "--device", "xc5vlx110t"]) == 0
        assert "selected: H=5" in capsys.readouterr().out

    def test_bitgen_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "fir.bit"
        assert (
            main(["bitgen", "fir", "--device", "xc5vlx110t", "-o", str(out_file)])
            == 0
        )
        assert out_file.stat().st_size == 83040

    def test_simulate_fault_free(self, capsys):
        assert main(["simulate", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "53 jobs (fir+sdram) on 2 PRR(s)" in out
        assert "faults=" not in out  # fault-free fast path

    def test_simulate_fault_run_deterministic(self, capsys):
        argv = [
            "simulate",
            "--prrs", "1",
            "--arrival-rate", "120",
            "--fault-rate", "0.3",
            "--scrub-period-ms", "20",
            "--seed", "7",
            "--baseline",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "faults=" in first and "completion=" in first
        assert "PR vs full_reconfig" in first

    def test_simulate_no_retry_drops_jobs(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--prrs", "1",
                    "--arrival-rate", "120",
                    "--fault-rate", "0.3",
                    "--no-retry",
                    "--no-spill",
                    "--seed", "7",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "dropped=8" in out and "completion=0.7576" in out

    def test_simulate_show_faults_prints_log(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--prrs", "1",
                    "--arrival-rate", "120",
                    "--fault-rate", "0.3",
                    "--seed", "7",
                    "--show-faults", "2",
                ]
            )
            == 0
        )
        assert "transfer_bitflip" in capsys.readouterr().out

    def test_simulate_rejects_bad_prr_count(self, capsys):
        assert main(["simulate", "--prrs", "0"]) == 2

    def test_table_static(self, capsys):
        assert main(["table", "2"]) == 0
        assert "CLB_col" in capsys.readouterr().out

    def test_table_evaluation(self, capsys):
        assert main(["table", "7"]) == 0
        out = capsys.readouterr().out
        assert "83040" in out and "188728" in out

    def test_figure_2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "BRAM init" in capsys.readouterr().out

    def test_explore(self, capsys):
        assert main(["explore", "--device", "xc6vlx75t"]) == 0
        assert "feasible partitionings" in capsys.readouterr().out


class TestExtensionCommands:
    def test_floorplan(self, capsys):
        assert main(["floorplan", "--device", "xc5vlx110t"]) == 0
        out = capsys.readouterr().out
        assert "0=fir" in out and "static frag" in out

    def test_fabric_soak(self, capsys):
        assert main(["fabric", "--horizon", "0.2", "--show-events", "3"]) == 0
        out = capsys.readouterr().out
        assert "defrag on" in out
        assert "fabric: admission_failures=" in out
        assert "migrations=" in out

    def test_fabric_permanent_faults_deterministic(self, capsys):
        argv = ["fabric", "--horizon", "0.2", "--permanent-rate", "10",
                "--seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "columns_retired=" in first
        assert "permanent=" in first  # fault summary line

    def test_fabric_no_defrag_renders(self, capsys):
        assert main(["fabric", "--horizon", "0.1", "--no-defrag",
                     "--render"]) == 0
        out = capsys.readouterr().out
        assert "defrag off" in out
        assert "defrag_passes=0" in out

    def test_relocate(self, capsys):
        assert main(["relocate", "mips", "--device", "xc5vlx110t"]) == 0
        out = capsys.readouterr().out
        assert "relocation-compatible" in out
        assert "payloads preserved" in out

    def test_advise(self, capsys):
        assert main(["advise", "fir", "--device", "xc5vlx110t",
                     "--period-ms", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "[suggestion]" in out and "L-shaped" in out
        assert "task period" in out


class TestTypedErrorExitCodes:
    def test_explore_deadline_reports_anytime_status(self, capsys):
        assert main(["explore", "--device", "xc5vlx110t",
                     "--deadline", "30"]) == 0
        out = capsys.readouterr().out
        assert "status=" in out and "evaluations=" in out

    def test_unknown_device_exits_2_without_traceback(
        self, capsys, monkeypatch
    ):
        import repro.cli as cli_module
        from repro.devices.catalog import get_device

        monkeypatch.setattr(
            cli_module, "get_device", lambda name: get_device("bogus")
        )
        rc = main(["estimate", "fir", "--device", "xc5vlx110t"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error: invalid_input" in captured.err
        assert "valid choices" in captured.err
        assert "Traceback" not in captured.err

    def test_infeasible_placement_exits_3(self, capsys, monkeypatch):
        import repro.cli as cli_module
        from repro.core.placement_search import PlacementNotFoundError

        def no_fit(*args, **kwargs):
            raise PlacementNotFoundError("no feasible PRR for this PRM")

        monkeypatch.setattr(cli_module, "find_prr", no_fit)
        rc = main(["bitgen", "fir", "--device", "xc5vlx110t"])
        captured = capsys.readouterr()
        assert rc == 3
        assert "error: infeasible_placement" in captured.err

"""Shared fixtures: paper reference constants and evaluation objects.

The PAPER_* dictionaries are the ground truth reconstructed from the
paper's Tables V/VI (DESIGN.md §5); tests assert the live pipeline
reproduces them.
"""

from __future__ import annotations

import pytest

from repro.core.params import PRMRequirements
from repro.devices import XC5VLX110T, XC6VLX75T, VIRTEX5, VIRTEX6


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden report files instead of comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run should regenerate golden files."""
    return request.config.getoption("--update-golden")


# --- Table V reference (reconstructed; see DESIGN.md §5) -------------------

#: (workload, family) -> (LUT_FF_req, LUT_req, FF_req, DSP_req, BRAM_req)
PAPER_SYNTH = {
    ("fir", "virtex5"): (1300, 1150, 394, 32, 0),
    ("mips", "virtex5"): (2617, 1527, 1592, 4, 6),
    ("sdram", "virtex5"): (332, 157, 292, 0, 0),
    ("fir", "virtex6"): (1467, 1316, 394, 27, 0),
    ("mips", "virtex6"): (3239, 2095, 1860, 4, 6),
    ("sdram", "virtex6"): (385, 181, 324, 0, 0),
}

#: (workload, device) -> (H, W_CLB, W_DSP, W_BRAM)
PAPER_GEOMETRY = {
    ("fir", "xc5vlx110t"): (5, 2, 1, 0),
    ("mips", "xc5vlx110t"): (1, 17, 1, 2),
    ("sdram", "xc5vlx110t"): (1, 3, 0, 0),
    ("fir", "xc6vlx75t"): (1, 5, 2, 0),
    ("mips", "xc6vlx75t"): (1, 11, 1, 1),
    ("sdram", "xc6vlx75t"): (1, 2, 0, 0),
}

#: (workload, device) -> Table V RU percentages (CLB, FF, LUT, DSP, BRAM).
#: MIPS/V5 RU_CLB computes to 96.47% -> 96; the paper prints 97 (±1 rounding,
#: see EXPERIMENTS.md), so the reference here is the computed value.
PAPER_RU = {
    ("fir", "xc5vlx110t"): (82, 25, 72, 80, 0),
    ("mips", "xc5vlx110t"): (96, 59, 56, 50, 75),
    ("sdram", "xc5vlx110t"): (70, 61, 33, 0, 0),
    ("fir", "xc6vlx75t"): (92, 12, 82, 84, 0),
    ("mips", "xc6vlx75t"): (92, 26, 60, 25, 75),
    ("sdram", "xc6vlx75t"): (61, 25, 28, 0, 0),
}

#: (workload, family) -> Table VI post-implementation
#: (LUT_FF_req, LUT_req, FF_req).
PAPER_POST_IMPL = {
    ("fir", "virtex5"): (1082, 1015, 410),
    ("mips", "virtex5"): (2183, 1528, 1592),
    ("sdram", "virtex5"): (324, 191, 292),
    ("fir", "virtex6"): (999, 999, 394),
    ("mips", "virtex6"): (2630, 1932, 1860),
    ("sdram", "virtex6"): (370, 215, 324),
}

#: Model-computed Table VII partial bitstream sizes in bytes (the paper's
#: numeric cells did not survive the source conversion; these derive from
#: eqs. (18)-(23) with the Table IV constants and are independently
#: verified against the word-exact bitstream generator).
TABLE7_BYTES = {
    ("fir", "xc5vlx110t"): 83040,
    ("mips", "xc5vlx110t"): 157272,
    ("sdram", "xc5vlx110t"): 18016,
    ("fir", "xc6vlx75t"): 76928,
    ("mips", "xc6vlx75t"): 188728,
    ("sdram", "xc6vlx75t"): 23792,
}


def paper_requirements(workload: str, family_name: str) -> PRMRequirements:
    """Reference PRMRequirements straight from the reconstructed Table V."""
    pairs, luts, ffs, dsps, brams = PAPER_SYNTH[(workload, family_name)]
    return PRMRequirements(
        name=workload, lut_ff_pairs=pairs, luts=luts, ffs=ffs, dsps=dsps, brams=brams
    )


@pytest.fixture(scope="session")
def lx110t():
    return XC5VLX110T


@pytest.fixture(scope="session")
def lx75t():
    return XC6VLX75T


@pytest.fixture(scope="session", params=[XC5VLX110T, XC6VLX75T], ids=lambda d: d.name)
def eval_device(request):
    """Parametrized over the two evaluation devices."""
    return request.param


@pytest.fixture(scope="session")
def paper_reports():
    """Synthesis reports for all six evaluation cases, keyed by
    (workload, family name)."""
    from repro.synth import synthesize
    from repro.workloads import build_fir, build_mips, build_sdram

    reports = {}
    for family in (VIRTEX5, VIRTEX6):
        for builder in (build_fir, build_mips, build_sdram):
            report = synthesize(builder(family), family)
            reports[(report.design_name, family.name)] = report
    return reports

"""Unit tests for error metrics."""

import pytest

from repro.validation.compare import (
    mape,
    percent_error,
    signed_percent_error,
    within_percent,
)


class TestSignedPercentError:
    def test_overestimate_positive(self):
        assert signed_percent_error(110, 100) == pytest.approx(10.0)

    def test_underestimate_negative(self):
        assert signed_percent_error(90, 100) == pytest.approx(-10.0)

    def test_zero_reference(self):
        with pytest.raises(ZeroDivisionError):
            signed_percent_error(1, 0)


class TestPercentError:
    def test_absolute(self):
        assert percent_error(90, 100) == pytest.approx(10.0)
        assert percent_error(110, 100) == pytest.approx(10.0)


class TestMape:
    def test_mean(self):
        assert mape([110, 90], [100, 100]) == pytest.approx(10.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mape([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            mape([], [])


class TestWithinPercent:
    def test_inside(self):
        assert within_percent(104, 100, 5)

    def test_outside(self):
        assert not within_percent(106, 100, 5)

    def test_boundary(self):
        assert within_percent(105, 100, 5)

    def test_negative_tolerance(self):
        with pytest.raises(ValueError):
            within_percent(1, 1, -1)

"""Unit tests for the zero-dependency trace-schema validator."""

import copy

import pytest

import repro.obs as obs
from repro.obs.schema import (
    TRACE_SCHEMA_PATH,
    SchemaError,
    load_trace_schema,
    validate_trace,
)


def make_doc():
    """A minimal but complete valid trace document."""
    return {
        "version": 1,
        "command": "test",
        "spans": [
            {
                "name": "root",
                "start_s": 0.0,
                "wall_s": 0.5,
                "cpu_s": 0.4,
                "attrs": {"mode": "pruned"},
                "children": [
                    {
                        "name": "child",
                        "start_s": 0.1,
                        "wall_s": 0.2,
                        "cpu_s": 0.1,
                        "attrs": {},
                        "children": [],
                    }
                ],
            }
        ],
        "metrics": {
            "counters": {"explore.candidates_evaluated": 4},
            "gauges": {"icap.effective_bytes_per_s": 4e8},
            "histograms": {
                "sched.wait_seconds": {
                    "boundaries": [1e-3, 1.0],
                    "bucket_counts": [2, 1, 0],
                    "count": 3,
                    "sum": 0.004,
                }
            },
        },
    }


def test_schema_file_is_checked_in():
    assert TRACE_SCHEMA_PATH.exists()
    schema = load_trace_schema()
    assert schema["required"] == ["version", "command", "spans", "metrics"]


def test_valid_document_passes():
    validate_trace(make_doc())


def test_real_capture_passes():
    with obs.capture(command="real") as session:
        with obs.trace_span("outer", k=1):
            with obs.trace_span("inner"):
                pass
        obs.metrics().counter("c").inc()
        obs.metrics().histogram("h").observe(0.01)
    validate_trace(session.to_dict())


@pytest.mark.parametrize("missing", ["version", "command", "spans", "metrics"])
def test_missing_required_top_level_field(missing):
    doc = make_doc()
    del doc[missing]
    with pytest.raises(SchemaError, match=missing):
        validate_trace(doc)


def test_wrong_type_rejected():
    doc = make_doc()
    doc["version"] = "one"
    with pytest.raises(SchemaError, match="version"):
        validate_trace(doc)


def test_bool_is_not_a_number():
    doc = make_doc()
    doc["metrics"]["counters"]["flag"] = True
    with pytest.raises(SchemaError):
        validate_trace(doc)


def test_nested_span_validated_through_ref():
    doc = make_doc()
    doc["spans"][0]["children"][0].pop("wall_s")
    with pytest.raises(SchemaError, match="wall_s"):
        validate_trace(doc)


def test_negative_timing_rejected():
    doc = make_doc()
    doc["spans"][0]["start_s"] = -0.1
    with pytest.raises(SchemaError, match="minimum"):
        validate_trace(doc)


def test_histogram_shape_enforced():
    doc = make_doc()
    doc["metrics"]["histograms"]["sched.wait_seconds"].pop("bucket_counts")
    with pytest.raises(SchemaError, match="bucket_counts"):
        validate_trace(doc)


def test_negative_bucket_count_rejected():
    doc = make_doc()
    doc["metrics"]["histograms"]["sched.wait_seconds"]["bucket_counts"] = [-1, 0, 0]
    with pytest.raises(SchemaError):
        validate_trace(doc)


def test_error_paths_point_at_the_offender():
    doc = make_doc()
    doc["spans"][0]["children"][0]["cpu_s"] = "fast"
    with pytest.raises(SchemaError) as excinfo:
        validate_trace(doc)
    assert "spans" in str(excinfo.value) and "cpu_s" in str(excinfo.value)


def test_validator_does_not_mutate_document():
    doc = make_doc()
    frozen = copy.deepcopy(doc)
    validate_trace(doc)
    assert doc == frozen

"""Unit tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_zero_increment_is_allowed(self):
        c = Counter("c")
        c.inc(0)
        assert c.value == 0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(4.0)
        g.set(-2.0)
        assert g.value == -2.0


class TestHistogram:
    def test_bucketing_uses_upper_bounds(self):
        h = Histogram("h", (1.0, 10.0))
        h.observe(0.5)  # <= 1.0
        h.observe(1.0)  # <= 1.0 (inclusive upper bound)
        h.observe(5.0)  # <= 10.0
        h.observe(50.0)  # overflow
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(56.5)
        assert h.mean == pytest.approx(56.5 / 4)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", (1.0,)).mean == 0.0

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError, match="at least one boundary"):
            Histogram("h", ())

    def test_to_dict_shape(self):
        h = Histogram("h", (1.0,))
        h.observe(0.2)
        assert h.to_dict() == {
            "boundaries": [1.0],
            "bucket_counts": [1, 0],
            "count": 1,
            "sum": 0.2,
        }

    def test_default_bucket_constants_are_increasing(self):
        for buckets in (SECONDS_BUCKETS, SIZE_BUCKETS):
            assert list(buckets) == sorted(set(buckets))


class TestRegistry:
    def test_get_or_create_semantics(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("a") is reg.gauge("a")
        assert reg.histogram("a") is reg.histogram("a")

    def test_kinds_are_separate_namespaces(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.gauge("x").set(9)
        assert reg.counter("x").value == 1
        assert reg.gauge("x").value == 9

    def test_histogram_reregistration_boundary_mismatch(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError, match="different boundaries"):
            reg.histogram("h", (1.0, 3.0))
        # Same boundaries are fine.
        assert reg.histogram("h", (1.0, 2.0)).name == "h"

    def test_to_dict_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("g").set(0.5)
        reg.histogram("h", (1.0,)).observe(3.0)
        doc = reg.to_dict()
        assert list(doc["counters"]) == ["a", "b"]
        assert doc["counters"] == {"a": 1, "b": 2}
        assert doc["gauges"] == {"g": 0.5}
        assert doc["histograms"]["h"]["bucket_counts"] == [0, 1]

"""Unit tests for the trace renderer behind ``repro-fpga stats``."""

from repro.obs.stats import render_metrics, render_span_tree, render_trace

from tests.obs.test_schema import make_doc


def test_span_tree_indents_children():
    text = render_span_tree(make_doc())
    lines = text.splitlines()
    assert lines[0].startswith("root: wall ")
    assert lines[1].startswith("  child: wall ")
    assert "[mode=pruned]" in lines[0]


def test_empty_document_renders_placeholders():
    doc = {"version": 1, "command": "", "spans": [], "metrics": {}}
    assert render_span_tree(doc) == "(no spans)"
    assert render_metrics(doc) == "(no metrics)"
    assert "(unknown)" in render_trace(doc)


def test_metrics_sections_present_and_sorted():
    text = render_metrics(make_doc())
    assert "counters:" in text
    assert "explore.candidates_evaluated" in text
    assert "gauges:" in text
    assert "histogram sched.wait_seconds: count=3" in text
    # Only non-empty buckets are listed.
    assert "> 1.000s" not in text


def test_render_trace_is_deterministic():
    doc = make_doc()
    assert render_trace(doc) == render_trace(doc)


def test_header_carries_command_and_version():
    header = render_trace(make_doc()).splitlines()[0]
    assert header == "trace: command=test version=1"

"""Obs-suite guard: tracing must never leak across tests."""

import pytest

from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def obs_stays_disabled():
    assert not obs_trace.enabled, "tracing enabled before test started"
    yield
    obs_trace.disable()

"""Determinism: same seed ⇒ same fault log and same trace document.

Wall-clock timings are the only fields allowed to differ between two
runs of the same seeded experiment; everything else — fault event logs,
span structure and attributes, every counter/gauge/histogram — must be
byte-identical once ``TIMING_FIELDS`` are scrubbed.
"""

import json

import repro.obs as obs
from repro.core.placement_search import find_prr
from repro.devices.catalog import XC5VLX110T
from repro.faults import FaultInjector
from repro.multitask import HwTask, make_task_set, simulate_pr
from repro.obs.trace import TIMING_FIELDS

from tests.conftest import paper_requirements

SEED = 424242


def make_workload():
    tasks = [
        HwTask(paper_requirements("fir", "virtex5"), exec_seconds=2e-3),
        HwTask(paper_requirements("sdram", "virtex5"), exec_seconds=1e-3),
    ]
    jobs = make_task_set(tasks, rate_per_s=300.0, horizon_s=0.2, seed=SEED)
    shared = find_prr(XC5VLX110T, [t.prm for t in tasks])
    return jobs, [shared.geometry, shared.geometry]


def run_faulty(seed, *, traced=False):
    jobs, prrs = make_workload()
    injector = FaultInjector.from_rates(
        seed=seed, fault_rate=0.25, stall_rate=0.1, seu_rate_per_s=15.0
    )
    if traced:
        with obs.capture(command="determinism") as session:
            simulate_pr(jobs, prrs, faults=injector, device=XC5VLX110T)
        return injector, session.to_dict()
    return injector, simulate_pr(
        jobs, prrs, faults=injector, device=XC5VLX110T
    )


def scrub_timing(document):
    """Trace document with every wall-clock field removed."""
    doc = json.loads(json.dumps(document))

    def strip(span):
        for field in TIMING_FIELDS:
            span.pop(field, None)
        for child in span.get("children", []):
            strip(child)

    for span in doc.get("spans", []):
        strip(span)
    return doc


class TestFaultLogDeterminism:
    def test_same_seed_identical_event_logs(self):
        first, _ = run_faulty(SEED)
        second, _ = run_faulty(SEED)
        assert first.events  # the rates above must actually fire
        assert first.events == second.events
        assert first.render_log() == second.render_log()

    def test_different_seed_diverges(self):
        first, _ = run_faulty(SEED)
        other, _ = run_faulty(SEED + 1)
        assert first.events != other.events

    def test_same_seed_identical_results(self):
        import dataclasses

        _, first = run_faulty(SEED)
        _, second = run_faulty(SEED)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)


class TestTraceDeterminism:
    def test_trace_documents_identical_modulo_timing(self):
        _, first = run_faulty(SEED, traced=True)
        _, second = run_faulty(SEED, traced=True)
        assert json.dumps(scrub_timing(first), sort_keys=True) == json.dumps(
            scrub_timing(second), sort_keys=True
        )

    def test_metrics_identical_without_scrubbing(self):
        # Metrics are pure model-domain values — no scrub needed at all.
        _, first = run_faulty(SEED, traced=True)
        _, second = run_faulty(SEED, traced=True)
        assert first["metrics"] == second["metrics"]
        assert first["metrics"]["counters"]["faults.events"] > 0

    def test_explore_trace_deterministic(self):
        from repro.core.explorer import explore

        prms = [
            paper_requirements("fir", "virtex5"),
            paper_requirements("sdram", "virtex5"),
            paper_requirements("mips", "virtex5"),
        ]
        # Warm the device-level window-index cache first: the trace
        # records per-run *deltas*, so both captured runs must start from
        # the same cache state.
        explore(XC5VLX110T, prms, mode="pruned")
        docs = []
        for _ in range(2):
            with obs.capture(command="explore") as session:
                explore(XC5VLX110T, prms, mode="pruned")
            docs.append(session.to_dict())
        assert scrub_timing(docs[0]) == scrub_timing(docs[1])

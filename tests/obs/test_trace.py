"""Unit tests for the span tracer: off-by-default, nesting, sessions."""

import repro.obs as obs
from repro.obs import trace as obs_trace


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert obs.enabled is False
        assert obs_trace.enabled is False

    def test_trace_span_returns_shared_null_span(self):
        a = obs_trace.trace_span("x")
        b = obs_trace.trace_span("y", k=1)
        assert a is b  # preallocated singleton: no per-call allocation

    def test_null_span_is_inert(self):
        with obs_trace.trace_span("x") as span:
            span.set("k", "v")  # must not raise or record anything
        assert obs_trace.snapshot() is None

    def test_accessors_return_none(self):
        assert obs_trace.metrics() is None
        assert obs_trace.active_session() is None
        assert obs_trace.current_span() is None
        assert obs_trace.snapshot() is None


class TestCapture:
    def test_enable_disable_cycle(self):
        with obs.capture(command="t") as session:
            assert obs_trace.enabled is True
            assert obs.enabled is True  # package attr tracks the live flag
            assert obs_trace.active_session() is session
        assert obs_trace.enabled is False
        assert obs_trace.active_session() is None

    def test_session_readable_after_exit(self):
        with obs.capture(command="after") as session:
            with obs_trace.trace_span("work"):
                pass
        doc = session.to_dict()
        assert doc["command"] == "after"
        assert [s["name"] for s in doc["spans"]] == ["work"]

    def test_nested_spans(self):
        with obs.capture() as session:
            with obs_trace.trace_span("outer", mode="m"):
                with obs_trace.trace_span("inner"):
                    assert obs_trace.current_span().name == "inner"
                assert obs_trace.current_span().name == "outer"
        doc = session.to_dict()
        (outer,) = doc["spans"]
        assert outer["name"] == "outer"
        assert outer["attrs"] == {"mode": "m"}
        assert [c["name"] for c in outer["children"]] == ["inner"]

    def test_sibling_spans_are_both_roots(self):
        with obs.capture() as session:
            with obs_trace.trace_span("a"):
                pass
            with obs_trace.trace_span("b"):
                pass
        assert [s["name"] for s in session.to_dict()["spans"]] == ["a", "b"]

    def test_span_set_attribute(self):
        with obs.capture() as session:
            with obs_trace.trace_span("s") as span:
                span.set("designs", 7)
        assert session.to_dict()["spans"][0]["attrs"]["designs"] == 7

    def test_span_timings_are_nonnegative_and_monotone(self):
        with obs.capture() as session:
            with obs_trace.trace_span("outer"):
                with obs_trace.trace_span("inner"):
                    sum(range(1_000))
        (outer,) = session.to_dict()["spans"]
        inner = outer["children"][0]
        for span in (outer, inner):
            assert span["start_s"] >= 0
            assert span["wall_s"] >= 0
            assert span["cpu_s"] >= 0
        assert inner["start_s"] >= outer["start_s"]
        assert inner["wall_s"] <= outer["wall_s"]

    def test_snapshot_matches_session(self):
        with obs.capture(command="snap") as session:
            with obs_trace.trace_span("s"):
                snap = obs_trace.snapshot()
        assert snap["command"] == "snap"
        assert snap["version"] == 1
        # snapshot() mid-run already carries the open span
        assert snap["spans"][0]["name"] == "s"
        assert session.to_dict()["command"] == "snap"

    def test_sessions_do_not_bleed(self):
        with obs.capture() as first:
            obs_trace.metrics().counter("c").inc()
        with obs.capture() as second:
            pass
        assert first.to_dict()["metrics"]["counters"] == {"c": 1}
        assert second.to_dict()["metrics"]["counters"] == {}

    def test_timing_fields_constant(self):
        assert obs_trace.TIMING_FIELDS == ("start_s", "wall_s", "cpu_s")
        with obs.capture() as session:
            with obs_trace.trace_span("s"):
                pass
        span = session.to_dict()["spans"][0]
        for field in obs_trace.TIMING_FIELDS:
            assert field in span

"""``repro-fpga`` — command-line front end.

Subcommands::

    repro-fpga devices                      list catalog devices
    repro-fpga synth fir --device xc5vlx110t      synthesize a paper PRM
    repro-fpga estimate fir --device xc5vlx110t   run both cost models
    repro-fpga trace mips --device xc6vlx75t      replay the Fig. 1 flow
    repro-fpga bitgen fir --device xc5vlx110t -o fir.bit
    repro-fpga table 5                      regenerate a paper table
    repro-fpga explore --device xc5vlx110t  partitioning design space
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .bitgen.generator import generate_partial_bitstream
from .core.api import evaluate_prm
from .core.explorer import explore, pareto_front
from .core.placement_search import find_prr, search_with_trace
from .devices.catalog import DEVICES, get_device
from .reports import tables as report_tables
from .reports.figures import fig1_traces, fig2_structure, render_fig2
from .synth.report import render_syr
from .synth.xst import synthesize
from .workloads import PAPER_WORKLOADS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fpga",
        description="PRR and bitstream cost models for PR FPGAs (IPPS'15 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list catalog devices")

    for name, help_text in (
        ("synth", "synthesize a paper PRM and print the .syr report"),
        ("estimate", "run both cost models for a paper PRM"),
        ("trace", "replay the Fig. 1 search flow for a paper PRM"),
        ("bitgen", "generate the PRM's partial bitstream"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("prm", choices=sorted(PAPER_WORKLOADS))
        p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))
        if name == "bitgen":
            p.add_argument("-o", "--output", help="write bitstream bytes to file")

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=range(1, 9))

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int, choices=(1, 2))

    p = sub.add_parser("explore", help="explore PRM->PRR partitionings")
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))
    p.add_argument(
        "--mode",
        default="auto",
        choices=("auto", "exhaustive", "pruned", "beam"),
        help="search strategy (auto: exhaustive <=8 PRMs, else beam)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="evaluate partitions on a process pool of this size",
    )

    p = sub.add_parser(
        "floorplan", help="floorplan all paper PRMs and render the fabric"
    )
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))

    p = sub.add_parser(
        "relocate", help="demonstrate task relocation for a paper PRM"
    )
    p.add_argument("prm", choices=sorted(PAPER_WORKLOADS))
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))

    p = sub.add_parser(
        "advise", help="design-advisor findings for a paper PRM"
    )
    p.add_argument("prm", choices=sorted(PAPER_WORKLOADS))
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))
    p.add_argument(
        "--period-ms", type=float, default=None,
        help="expected task swap period for reconfiguration-budget advice",
    )

    sub.add_parser("report", help="print the full reproduction report")
    return parser


def _cmd_devices() -> int:
    for device in DEVICES.values():
        print(device.summary())
        print(f"  layout: {device.layout_string()}")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    print(render_syr(report))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    result = evaluate_prm(report.requirements, device)
    print(result.summary())
    for key, value in result.table5_row().items():
        print(f"  {key:12} {value}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    print(search_with_trace(device, report.requirements).render())
    return 0


def _cmd_bitgen(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    placed = find_prr(device, report.requirements)
    bitstream = generate_partial_bitstream(
        device, placed.region, design_name=args.prm
    )
    print(
        f"{args.prm} on {device.name}: {bitstream.size_bytes} bytes "
        f"({len(bitstream)} words), region {placed.region}"
    )
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(bitstream.to_bytes())
        print(f"wrote {args.output}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    number = args.number
    if number in (1, 2, 3, 4):
        rows = getattr(report_tables, f"table{number}")()
        print(report_tables.render_grid(rows))
        return 0
    data = getattr(report_tables, f"table{number}")()
    rows = []
    for (prm, device_name), cells in data.items():
        row = {"prm": prm, "device": device_name}
        for key, value in cells.items():
            row[key] = value
        rows.append(row)
    print(report_tables.render_grid(rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.number == 1:
        for trace in fig1_traces().values():
            print(trace.render())
            print()
    else:
        print(render_fig2(fig2_structure()))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    prms = [
        synthesize(builder(device.family), device.family).requirements
        for builder in PAPER_WORKLOADS.values()
    ]
    designs = explore(device, prms, mode=args.mode, workers=args.workers)
    print(f"{len(designs)} feasible partitionings on {device.name}")
    for design in pareto_front(designs):
        print("  *", design.summary())
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    from .core.floorplanner import floorplan, render_floorplan

    device = get_device(args.device)
    prms = [
        synthesize(builder(device.family), device.family).requirements
        for builder in PAPER_WORKLOADS.values()
    ]
    plan = floorplan(device, prms)
    print(plan.summary())
    print(render_floorplan(plan))
    return 0


def _cmd_relocate(args: argparse.Namespace) -> int:
    from .relocation import find_compatible_regions, relocate_bitstream

    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    placed = find_prr(device, report.requirements)
    bitstream = generate_partial_bitstream(
        device, placed.region, design_name=args.prm
    )
    targets = find_compatible_regions(device, placed.region)
    print(f"{args.prm} PRR at {placed.region}")
    print(f"{len(targets)} relocation-compatible region(s)")
    if targets:
        moved = relocate_bitstream(device, bitstream, targets[0])
        print(
            f"relocated to {targets[0]}: {moved.size_bytes} bytes "
            f"(payloads preserved)"
        )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .core.advisor import advise

    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    advice = advise(
        report.requirements,
        device,
        task_period_seconds=(
            args.period_ms / 1e3 if args.period_ms is not None else None
        ),
    )
    print(advice.render())
    return 0


def _cmd_report() -> int:
    from .reports.experiments import generate_report

    print(generate_report())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "devices": lambda: _cmd_devices(),
        "synth": lambda: _cmd_synth(args),
        "estimate": lambda: _cmd_estimate(args),
        "trace": lambda: _cmd_trace(args),
        "bitgen": lambda: _cmd_bitgen(args),
        "table": lambda: _cmd_table(args),
        "figure": lambda: _cmd_figure(args),
        "explore": lambda: _cmd_explore(args),
        "floorplan": lambda: _cmd_floorplan(args),
        "relocate": lambda: _cmd_relocate(args),
        "advise": lambda: _cmd_advise(args),
        "report": lambda: _cmd_report(),
    }
    return handlers[args.command]()


if __name__ == "__main__":
    sys.exit(main())

"""``repro-fpga`` — command-line front end.

Subcommands::

    repro-fpga devices                      list catalog devices
    repro-fpga synth fir --device xc5vlx110t      synthesize a paper PRM
    repro-fpga estimate fir --device xc5vlx110t   run both cost models
    repro-fpga trace mips --device xc6vlx75t      replay the Fig. 1 flow
    repro-fpga bitgen fir --device xc5vlx110t -o fir.bit
    repro-fpga table 5                      regenerate a paper table
    repro-fpga explore --device xc5vlx110t  partitioning design space
    repro-fpga simulate --fault-rate 0.05   fault-injected multitasking run
    repro-fpga trace explore --trace-out t.json   traced explorer run
    repro-fpga trace simulate --fault-rate 0.05   traced simulation run
    repro-fpga stats t.json                 summarize a trace file
    repro-fpga analyze --fail-on-new        domain-aware static analysis
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .bitgen.generator import generate_partial_bitstream
from .core.api import evaluate_prm
from .core.explorer import explore, pareto_front
from .core.placement_search import find_prr, search_with_trace
from .devices.catalog import DEVICES, get_device
from .errors import ReproError
from .reports import tables as report_tables
from .reports.figures import fig1_traces, fig2_structure, render_fig2
from .synth.report import render_syr
from .synth.xst import synthesize
from .workloads import PAPER_WORKLOADS

__all__ = ["main", "build_parser"]


def _add_explore_args(p: argparse.ArgumentParser) -> None:
    """Register the `explore` options (shared with `trace explore`)."""
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))
    p.add_argument(
        "--mode",
        default="auto",
        choices=("auto", "exhaustive", "pruned", "beam"),
        help="search strategy (auto: exhaustive <=8 PRMs, else beam)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="evaluate partitions on a process pool of this size",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="anytime search: return the best designs found within this "
        "wall-clock budget (the result is marked degraded if cut short)",
    )
    p.add_argument(
        "--engine",
        default="scalar",
        choices=("scalar", "batch"),
        help="placement backend: scalar Fig. 1 loop or the numpy batch "
        "engine (identical designs; batch requires numpy)",
    )


def _add_simulate_args(p: argparse.ArgumentParser) -> None:
    """Register the `simulate` options (shared with `trace simulate`)."""
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))
    p.add_argument(
        "--tasks",
        nargs="+",
        default=["fir", "sdram"],
        choices=sorted(PAPER_WORKLOADS),
        help="PRMs to multiplex (must share a feasible PRR)",
    )
    p.add_argument("--prrs", type=int, default=2, help="number of PRRs")
    p.add_argument("--arrival-rate", type=float, default=200.0, help="jobs/s")
    p.add_argument("--horizon", type=float, default=0.25, help="seconds simulated")
    p.add_argument("--seed", type=int, default=2015, help="workload + fault seed")
    p.add_argument(
        "--icap-exclusive",
        action="store_true",
        help="serialize reconfigurations on the single shared ICAP",
    )
    p.add_argument(
        "--baseline",
        action="store_true",
        help="also run the full-reconfiguration baseline and compare",
    )
    faults = p.add_argument_group("faults (all zero = fault-free fast path)")
    faults.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="per-transfer write-path bit-flip probability",
    )
    faults.add_argument(
        "--fetch-rate", type=float, default=0.0,
        help="storage-fetch corruption probability",
    )
    faults.add_argument(
        "--stall-rate", type=float, default=0.0,
        help="transient controller stall probability",
    )
    faults.add_argument(
        "--stall-ms", type=float, default=1.0, help="stall length when it fires"
    )
    faults.add_argument(
        "--timeout-prob", type=float, default=0.0,
        help="probability a stall escalates to a watchdog timeout",
    )
    faults.add_argument(
        "--seu-rate", type=float, default=0.0,
        help="background SEU arrivals per second over the fabric",
    )
    policy = p.add_argument_group("degraded-mode policy")
    policy.add_argument(
        "--max-attempts", type=int, default=3,
        help="verified-write attempts per reconfiguration",
    )
    policy.add_argument(
        "--no-retry", action="store_true", help="fail on the first bad transfer"
    )
    policy.add_argument(
        "--backoff-us", type=float, default=100.0,
        help="backoff before the second attempt (doubles per retry)",
    )
    policy.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-job reconfiguration time budget",
    )
    policy.add_argument(
        "--quarantine-threshold", type=int, default=3,
        help="consecutive failed jobs before a PRR is taken offline",
    )
    policy.add_argument(
        "--scrub-period-ms", type=float, default=None,
        help="periodic scrub pass restoring quarantined PRRs",
    )
    policy.add_argument(
        "--no-spill", action="store_true",
        help="drop unplaceable jobs instead of spilling to full reconfig",
    )
    policy.add_argument(
        "--show-faults", type=int, default=0, metavar="N",
        help="print the first N fault-log events",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fpga",
        description="PRR and bitstream cost models for PR FPGAs (IPPS'15 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list catalog devices")

    for name, help_text in (
        ("synth", "synthesize a paper PRM and print the .syr report"),
        ("estimate", "run both cost models for a paper PRM"),
        ("bitgen", "generate the PRM's partial bitstream"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("prm", choices=sorted(PAPER_WORKLOADS))
        p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))
        if name == "bitgen":
            p.add_argument("-o", "--output", help="write bitstream bytes to file")

    # ``trace <prm>`` replays the Fig. 1 flow (original behaviour);
    # ``trace explore|simulate`` runs the command with the obs layer on
    # and writes/prints the span+metric document.
    p = sub.add_parser(
        "trace",
        help="replay the Fig. 1 flow for a PRM, or run explore/simulate traced",
    )
    trace_sub = p.add_subparsers(dest="trace_target", required=True)
    for prm_name in sorted(PAPER_WORKLOADS):
        tp = trace_sub.add_parser(
            prm_name, help=f"replay the Fig. 1 search flow for {prm_name}"
        )
        tp.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))
        tp.set_defaults(prm=prm_name)
    for target, adder in (("explore", _add_explore_args), ("simulate", _add_simulate_args)):
        tp = trace_sub.add_parser(target, help=f"run `{target}` with tracing on")
        adder(tp)
        tp.add_argument(
            "--trace-out",
            metavar="FILE",
            default=None,
            help="write the trace document as JSON (default: print a summary)",
        )

    p = sub.add_parser("table", help="regenerate a paper table")
    p.add_argument("number", type=int, choices=range(1, 9))

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("number", type=int, choices=(1, 2))

    p = sub.add_parser("explore", help="explore PRM->PRR partitionings")
    _add_explore_args(p)

    p = sub.add_parser(
        "simulate",
        help="hardware-multitasking simulation, optionally fault-injected",
    )
    _add_simulate_args(p)

    p = sub.add_parser("stats", help="summarize a trace file written by `trace`")
    p.add_argument("trace_file", help="JSON trace document from --trace-out")

    p = sub.add_parser(
        "floorplan", help="floorplan all paper PRMs and render the fabric"
    )
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))

    p = sub.add_parser(
        "relocate", help="demonstrate task relocation for a paper PRM"
    )
    p.add_argument("prm", choices=sorted(PAPER_WORKLOADS))
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))

    p = sub.add_parser(
        "advise", help="design-advisor findings for a paper PRM"
    )
    p.add_argument("prm", choices=sorted(PAPER_WORKLOADS))
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))
    p.add_argument(
        "--period-ms", type=float, default=None,
        help="expected task swap period for reconfiguration-budget advice",
    )

    p = sub.add_parser(
        "cluster",
        help="mini soak of the sharded serving tier; prints stats and health",
    )
    p.add_argument(
        "--shards", type=int, default=2, help="worker processes (default 2)"
    )
    p.add_argument(
        "--requests", type=int, default=24,
        help="evaluate requests to push through the tier (default 24)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="persistent cache directory (default: memory-only)",
    )
    p.add_argument(
        "--chaos", action="store_true",
        help="crash one shard mid-soak to exercise the circuit breaker",
    )

    p = sub.add_parser(
        "fabric",
        help="self-healing fabric soak: churn, defrag, permanent faults",
    )
    p.add_argument("--device", default="xc5vlx110t", choices=sorted(DEVICES))
    p.add_argument(
        "--tasks",
        nargs="+",
        default=["fir", "sdram", "mips"],
        choices=sorted(PAPER_WORKLOADS),
        help="PRMs cycling through the fabric",
    )
    p.add_argument("--arrival-rate", type=float, default=200.0, help="jobs/s")
    p.add_argument("--horizon", type=float, default=0.25, help="seconds simulated")
    p.add_argument("--seed", type=int, default=2015, help="workload + fault seed")
    p.add_argument(
        "--permanent-rate", type=float, default=0.0,
        help="permanent column faults per second (Poisson)",
    )
    p.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="per-transfer bit-flip probability during migration verify",
    )
    p.add_argument(
        "--idle-retire-ms", type=float, default=20.0,
        help="retire a module idle this long (the churn source); 0 disables",
    )
    p.add_argument(
        "--no-defrag", action="store_true",
        help="disable automatic defragmentation (ablation arm)",
    )
    p.add_argument(
        "--render", action="store_true",
        help="render the final floorplan snapshot",
    )
    p.add_argument(
        "--show-events", type=int, default=0, metavar="N",
        help="print the last N runtime events",
    )

    p = sub.add_parser(
        "analyze",
        help="run the domain-aware static analysis suite (repro.analysis)",
    )
    from .analysis.cli import build_parser as _build_analyze_parser

    _build_analyze_parser(p)

    sub.add_parser("report", help="print the full reproduction report")
    return parser


def _cmd_devices() -> int:
    for device in DEVICES.values():
        print(device.summary())
        print(f"  layout: {device.layout_string()}")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    print(render_syr(report))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    result = evaluate_prm(report.requirements, device)
    print(result.summary())
    for key, value in result.table5_row().items():
        print(f"  {key:12} {value}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_target in ("explore", "simulate"):
        return _cmd_trace_run(args)
    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    print(search_with_trace(device, report.requirements).render())
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    """Run explore/simulate with the obs layer on; export the document."""
    import json

    from . import obs

    runner = _cmd_explore if args.trace_target == "explore" else _cmd_simulate
    with obs.capture(command=f"trace {args.trace_target}") as session:
        rc = runner(args)
    doc = session.to_dict()
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=False)
            handle.write("\n")
        print(f"wrote trace to {args.trace_out}")
    else:
        print()
        print(obs.render_trace(doc))
    return rc


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from . import obs

    try:
        with open(args.trace_file, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return 2
    try:
        obs.validate_trace(doc)
    except obs.SchemaError as exc:
        print(f"error: not a valid trace document: {exc}", file=sys.stderr)
        return 2
    print(obs.render_trace(doc))
    return 0


def _cmd_bitgen(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    placed = find_prr(device, report.requirements)
    bitstream = generate_partial_bitstream(
        device, placed.region, design_name=args.prm
    )
    print(
        f"{args.prm} on {device.name}: {bitstream.size_bytes} bytes "
        f"({len(bitstream)} words), region {placed.region}"
    )
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(bitstream.to_bytes())
        print(f"wrote {args.output}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    number = args.number
    if number in (1, 2, 3, 4):
        rows = getattr(report_tables, f"table{number}")()
        print(report_tables.render_grid(rows))
        return 0
    data = getattr(report_tables, f"table{number}")()
    rows = []
    for (prm, device_name), cells in data.items():
        row = {"prm": prm, "device": device_name}
        for key, value in cells.items():
            row[key] = value
        rows.append(row)
    print(report_tables.render_grid(rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.number == 1:
        for trace in fig1_traces().values():
            print(trace.render())
            print()
    else:
        print(render_fig2(fig2_structure()))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    device = get_device(args.device)
    prms = [
        synthesize(builder(device.family), device.family).requirements
        for builder in PAPER_WORKLOADS.values()
    ]
    designs = explore(
        device,
        prms,
        mode=args.mode,
        workers=args.workers,
        deadline_s=args.deadline,
        engine=args.engine,
    )
    print(f"{len(designs)} feasible partitionings on {device.name}")
    if args.deadline is not None:
        print(
            f"  status={designs.status} mode={designs.mode} "
            f"elapsed={designs.elapsed_s:.3f}s "
            f"evaluations={designs.evaluations}"
        )
    for design in pareto_front(designs):
        print("  *", design.summary())
    return 0


#: Per-PRM job service times for the multitasking simulator (seconds).
SIMULATE_EXEC_SECONDS = {
    "fir": 2e-3,
    "sdram": 1e-3,
    "mips": 4e-3,
}


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .faults import DegradedModePolicy, FaultInjector, RetryPolicy
    from .multitask import (
        HwTask,
        compare,
        make_task_set,
        simulate_full_reconfig,
        simulate_pr,
    )

    device = get_device(args.device)
    tasks = [
        HwTask(
            synthesize(
                PAPER_WORKLOADS[name](device.family), device.family
            ).requirements,
            exec_seconds=SIMULATE_EXEC_SECONDS.get(name, 2e-3),
        )
        for name in dict.fromkeys(args.tasks)
    ]
    if args.prrs < 1:
        print("error: --prrs must be >= 1", file=sys.stderr)
        return 2
    shared = find_prr(device, [t.prm for t in tasks])
    prrs = [shared.geometry] * args.prrs
    jobs = make_task_set(
        tasks,
        rate_per_s=args.arrival_rate,
        horizon_s=args.horizon,
        seed=args.seed,
    )
    fault_enabled = any(
        rate > 0 for rate in (args.fault_rate, args.fetch_rate, args.stall_rate, args.seu_rate)
    )
    injector = None
    fault_policy = None
    if fault_enabled:
        injector = FaultInjector.from_rates(
            seed=args.seed,
            fault_rate=args.fault_rate,
            fetch_rate=args.fetch_rate,
            stall_rate=args.stall_rate,
            stall_seconds=args.stall_ms / 1e3,
            timeout_probability=args.timeout_prob,
            seu_rate_per_s=args.seu_rate,
        )
        retry = (
            RetryPolicy.no_retry()
            if args.no_retry
            else RetryPolicy(
                max_attempts=args.max_attempts,
                backoff_base_s=args.backoff_us / 1e6,
                deadline_s=(
                    args.deadline_ms / 1e3 if args.deadline_ms is not None else None
                ),
            )
        )
        fault_policy = DegradedModePolicy(
            retry=retry,
            quarantine_threshold=args.quarantine_threshold,
            scrub_period_s=(
                args.scrub_period_ms / 1e3
                if args.scrub_period_ms is not None
                else None
            ),
            spill_to_full=not args.no_spill,
        )
    result = simulate_pr(
        jobs,
        prrs,
        icap_exclusive=args.icap_exclusive,
        faults=injector,
        fault_policy=fault_policy,
        device=device,
    )
    print(
        f"{len(jobs)} jobs ({'+'.join(t.name for t in tasks)}) on "
        f"{args.prrs} PRR(s), {device.name}, seed {args.seed}"
    )
    print(result.summary())
    if fault_enabled:
        print(result.fault_summary())
        if args.show_faults and injector is not None:
            print(injector.render_log(limit=args.show_faults))
    if args.baseline:
        baseline = simulate_full_reconfig(jobs, device)
        print(baseline.summary())
        print(compare(result, baseline, strict=not fault_enabled).summary())
    return 0


def _cmd_floorplan(args: argparse.Namespace) -> int:
    from .core.floorplanner import FloorplanError, floorplan, render_floorplan

    device = get_device(args.device)
    prms = [
        synthesize(builder(device.family), device.family).requirements
        for builder in PAPER_WORKLOADS.values()
    ]
    try:
        plan = floorplan(device, prms)
    except FloorplanError as error:
        print(f"error: {error.describe()}", file=sys.stderr)
        print(error.render_diagnostics(), file=sys.stderr)
        return error.exit_code
    print(plan.summary())
    print(render_floorplan(plan))
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    from .core.floorplanner import render_floorplan
    from .fabric import FabricConfig, FabricRuntime, simulate_on_fabric
    from .faults import FaultInjector
    from .multitask import HwTask, make_task_set

    device = get_device(args.device)
    tasks = [
        HwTask(
            synthesize(
                PAPER_WORKLOADS[name](device.family), device.family
            ).requirements,
            exec_seconds=SIMULATE_EXEC_SECONDS.get(name, 2e-3),
        )
        for name in dict.fromkeys(args.tasks)
    ]
    jobs = make_task_set(
        tasks,
        rate_per_s=args.arrival_rate,
        horizon_s=args.horizon,
        seed=args.seed,
    )
    injector = None
    if args.permanent_rate > 0 or args.fault_rate > 0:
        injector = FaultInjector.from_rates(
            seed=args.seed,
            fault_rate=args.fault_rate,
            permanent_rate_per_s=args.permanent_rate,
        )
    runtime = FabricRuntime(
        device,
        config=FabricConfig(auto_defrag=not args.no_defrag),
        injector=injector,
    )
    result = simulate_on_fabric(
        jobs,
        runtime,
        idle_retire_s=(
            args.idle_retire_ms / 1e3 if args.idle_retire_ms > 0 else None
        ),
    )
    runtime.check_invariants()
    print(
        f"{len(jobs)} jobs ({'+'.join(t.name for t in tasks)}) on "
        f"{device.name}, seed {args.seed}, "
        f"defrag {'off' if args.no_defrag else 'on'}"
    )
    print(result.summary())
    stats = runtime.stats()
    print(
        "fabric: "
        + " ".join(f"{key}={stats[key]}" for key in sorted(stats))
    )
    if injector is not None:
        print(result.fault_summary())
    if args.show_events:
        for event in runtime.events[-args.show_events :]:
            print(event.render())
    if args.render:
        print(render_floorplan(runtime.floorplan_snapshot()))
    return 0


def _cmd_relocate(args: argparse.Namespace) -> int:
    from .relocation import find_compatible_regions, relocate_bitstream

    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    placed = find_prr(device, report.requirements)
    bitstream = generate_partial_bitstream(
        device, placed.region, design_name=args.prm
    )
    targets = find_compatible_regions(device, placed.region)
    print(f"{args.prm} PRR at {placed.region}")
    print(f"{len(targets)} relocation-compatible region(s)")
    if targets:
        moved = relocate_bitstream(device, bitstream, targets[0])
        print(
            f"relocated to {targets[0]}: {moved.size_bytes} bytes "
            f"(payloads preserved)"
        )
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    from .core.advisor import advise

    device = get_device(args.device)
    report = synthesize(PAPER_WORKLOADS[args.prm](device.family), device.family)
    advice = advise(
        report.requirements,
        device,
        task_period_seconds=(
            args.period_ms / 1e3 if args.period_ms is not None else None
        ),
    )
    print(advice.render())
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .errors import ReproError as _ReproError
    from .faults import ShardChaos
    from .serve import ClusterConfig, ClusterService, EvaluateRequest
    from .synth import synthesize
    from .workloads import PAPER_WORKLOADS as _WORKLOADS

    chaos = ()
    if args.chaos:
        plans = [ShardChaos() for _ in range(args.shards)]
        plans[0] = ShardChaos(crash_after_requests=2)
        chaos = tuple(plans)
    config = ClusterConfig(
        shards=args.shards,
        probe_interval_s=0.1,
        cache_dir=args.cache_dir,
        chaos=chaos,
    )
    # The paper workloads only carry reference targets for the two
    # evaluation devices, so the soak sticks to those.
    device_names = ["xc5vlx110t", "xc6vlx75t"]
    requests = []
    for index in range(args.requests):
        device = DEVICES[device_names[index % len(device_names)]]
        builder = list(_WORKLOADS.values())[index % len(_WORKLOADS)]
        prm = synthesize(builder(device.family), device.family).requirements
        requests.append(EvaluateRequest(prm, device.name))
    completed = typed = 0
    with ClusterService(config) as cluster:
        tickets = [cluster.submit(request) for request in requests]
        for ticket in tickets:
            try:
                ticket.result(timeout=120)
            except _ReproError:
                typed += 1
            else:
                completed += 1
        stats = cluster.stats()
        health = cluster.health()
    print(f"cluster soak: {args.requests} requests over {args.shards} shards")
    print(
        f"  completed={completed} typed_errors={typed} "
        f"cache_hits={stats['cache_hits']} coalesced={stats['coalesced']} "
        f"restarts={stats['restarts']} hedges={stats['hedges']}"
    )
    for row in health:
        print(
            f"  shard {row['shard_id']}: {row['health']} "
            f"(restarts={row['restarts']}, "
            f"probe={row['probe_latency_s'] * 1e3:.1f}ms)"
        )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis.cli import run as _analysis_run

    return _analysis_run(args)


def _cmd_report() -> int:
    from .reports.experiments import generate_report

    print(generate_report())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "devices": lambda: _cmd_devices(),
        "synth": lambda: _cmd_synth(args),
        "estimate": lambda: _cmd_estimate(args),
        "trace": lambda: _cmd_trace(args),
        "bitgen": lambda: _cmd_bitgen(args),
        "table": lambda: _cmd_table(args),
        "figure": lambda: _cmd_figure(args),
        "explore": lambda: _cmd_explore(args),
        "simulate": lambda: _cmd_simulate(args),
        "stats": lambda: _cmd_stats(args),
        "floorplan": lambda: _cmd_floorplan(args),
        "fabric": lambda: _cmd_fabric(args),
        "relocate": lambda: _cmd_relocate(args),
        "advise": lambda: _cmd_advise(args),
        "cluster": lambda: _cmd_cluster(args),
        "analyze": lambda: _cmd_analyze(args),
        "report": lambda: _cmd_report(),
    }
    try:
        return handlers[args.command]()
    except ReproError as error:
        # Typed taxonomy failures exit cleanly with their documented
        # status code — no traceback spew for expected error classes.
        print(f"error: {error.describe()}", file=sys.stderr)
        return error.exit_code


if __name__ == "__main__":
    sys.exit(main())

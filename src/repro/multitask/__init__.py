"""Hardware-multitasking simulator (the paper's Section I motivation).

Jobs of PRM-backed hardware tasks time-multiplex PRRs with
bitstream-size-driven reconfiguration costs; a full-reconfiguration
baseline quantifies the PR benefit.
"""

from .allocator import Allocation, AllocationFailed, PRRAllocator
from .metrics import Comparison, compare
from .preemptive import (
    PreemptiveResult,
    PriorityJob,
    context_bytes,
    simulate_preemptive,
)
from .scheduler import (
    CompletedJob,
    PRRState,
    ScheduleResult,
    simulate_full_reconfig,
    simulate_pr,
)
from .tasks import HwTask, Job, make_task_set, poisson_arrivals

__all__ = [
    "Allocation",
    "AllocationFailed",
    "PRRAllocator",
    "PriorityJob",
    "PreemptiveResult",
    "context_bytes",
    "simulate_preemptive",
    "HwTask",
    "Job",
    "make_task_set",
    "poisson_arrivals",
    "PRRState",
    "CompletedJob",
    "ScheduleResult",
    "simulate_pr",
    "simulate_full_reconfig",
    "Comparison",
    "compare",
]

"""Preemptive hardware multitasking with context save/restore costs.

The authors' FCCM'13 work [5] exists precisely so PR systems can *preempt*
hardware tasks: save the running task's context (frame readback), load
another PRM, and resume the first one later (restore bitstream).  This
simulator prices that mechanism:

* **preempt** = context save (readback of every PRR frame at the
  configuration port's read throughput) + reconfiguration to the new PRM;
* **resume** = restore-bitstream write (same size as the PRR's partial
  bitstream) before the remaining execution continues.

Policy: fixed-priority preemptive (lower number = more urgent).  An
arriving job takes an idle fitting PRR if one exists; otherwise it may
preempt the lowest-priority running job (if strictly less urgent) on a
fitting PRR; otherwise it queues.  Completion events dispatch the most
urgent queued job.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ..core.bitstream_model import bitstream_size_bytes
from ..core.prr_model import PRRGeometry
from ..devices.frames import BLOCK_TYPE_BRAM_CONTENT  # noqa: F401 (doc ref)
from .tasks import HwTask

__all__ = [
    "PriorityJob",
    "PreemptiveResult",
    "context_bytes",
    "simulate_preemptive",
]


def context_bytes(geometry: PRRGeometry) -> int:
    """Readback snapshot size of a PRR: every config + BRAM content frame.

    (No packet overhead — readback streams raw frames via FDRO.)
    """
    family = geometry.family
    config_frames = (
        geometry.columns.clb * family.cf_clb
        + geometry.columns.dsp * family.cf_dsp
        + geometry.columns.bram * family.cf_bram
    )
    bram_frames = geometry.columns.bram * family.df_bram
    return geometry.rows * (config_frames + bram_frames) * family.frame_bytes


@dataclass(frozen=True, slots=True)
class PriorityJob:
    """A job with a fixed priority (lower = more urgent)."""

    task: HwTask
    arrival_seconds: float
    priority: int
    job_id: int


@dataclass
class _Running:
    job: PriorityJob
    remaining: float
    resume_pending: bool  # needs a restore write before running


@dataclass
class PreemptiveResult:
    """Outcome of a preemptive simulation."""

    completed: list[tuple[PriorityJob, float, float]] = field(
        default_factory=list
    )  #: (job, first_start, finish)
    preemption_count: int = 0
    context_save_seconds: float = 0.0
    context_restore_seconds: float = 0.0
    makespan_seconds: float = 0.0

    def response_seconds(self, priority: int | None = None) -> list[float]:
        return [
            finish - job.arrival_seconds
            for job, _, finish in self.completed
            if priority is None or job.priority == priority
        ]

    @property
    def context_overhead_seconds(self) -> float:
        return self.context_save_seconds + self.context_restore_seconds


def simulate_preemptive(
    jobs: list[PriorityJob],
    prrs: list[PRRGeometry],
    *,
    port_bytes_per_s: float = 400e6,
    readback_bytes_per_s: float = 400e6,
    allow_preemption: bool = True,
) -> PreemptiveResult:
    """Run the fixed-priority preemptive simulation.

    ``allow_preemption=False`` gives the non-preemptive baseline with the
    same dispatch policy, isolating the preemption benefit/overhead.
    """
    if not prrs:
        raise ValueError("need at least one PRR")

    result = PreemptiveResult()
    counter = itertools.count()

    # Per-PRR state.
    running: list[_Running | None] = [None] * len(prrs)
    loaded: list[str | None] = [None] * len(prrs)
    free_at = [0.0] * len(prrs)

    # Jobs not yet dispatched: (priority, arrival, tiebreak, job-state).
    pending: list[tuple[int, float, int, _Running]] = []

    # Event queue: (time, order, kind, payload).
    events: list[tuple[float, int, str, object]] = []
    for job in jobs:
        heapq.heappush(
            events, (job.arrival_seconds, next(counter), "arrival", job)
        )
    first_start: dict[int, float] = {}

    def reconfig_time(prr_index: int) -> float:
        return bitstream_size_bytes(prrs[prr_index]) / port_bytes_per_s

    def save_time(prr_index: int) -> float:
        return context_bytes(prrs[prr_index]) / readback_bytes_per_s

    def dispatch(prr_index: int, state: _Running, now: float) -> None:
        """Start (or resume) a job on a PRR at *now*."""
        overhead = 0.0
        if loaded[prr_index] != state.job.task.name:
            overhead += reconfig_time(prr_index)
            loaded[prr_index] = state.job.task.name
        elif state.resume_pending:
            overhead += reconfig_time(prr_index)
        if state.resume_pending:
            result.context_restore_seconds += overhead
            state.resume_pending = False
        start = now + overhead
        first_start.setdefault(state.job.job_id, start)
        finish = start + state.remaining
        running[prr_index] = state
        free_at[prr_index] = finish
        heapq.heappush(
            events, (finish, next(counter), "completion", prr_index)
        )

    def fits(state: _Running, prr_index: int) -> bool:
        return prrs[prr_index].fits(state.job.task.prm)

    now = 0.0
    while events:
        now, _, kind, payload = heapq.heappop(events)

        if kind == "completion":
            prr_index = payload
            state = running[prr_index]
            if state is None or free_at[prr_index] > now + 1e-15:
                continue  # stale event (job was preempted)
            running[prr_index] = None
            result.completed.append(
                (state.job, first_start[state.job.job_id], now)
            )
            # Dispatch the most urgent fitting pending job.
            for entry in sorted(pending):
                _, _, _, queued = entry
                if fits(queued, prr_index):
                    pending.remove(entry)
                    dispatch(prr_index, queued, now)
                    break
            continue

        # Arrival.
        job: PriorityJob = payload
        state = _Running(job=job, remaining=job.task.exec_seconds,
                         resume_pending=False)
        idle = [
            i
            for i in range(len(prrs))
            if running[i] is None and fits(state, i)
        ]
        if idle:
            preferred = [i for i in idle if loaded[i] == job.task.name]
            dispatch((preferred or idle)[0], state, now)
            continue

        if allow_preemption:
            victims = [
                (running[i].job.priority, i)
                for i in range(len(prrs))
                if running[i] is not None
                and fits(state, i)
                and running[i].job.priority > job.priority
            ]
            if victims:
                _, prr_index = max(victims)  # least urgent victim
                victim = running[prr_index]
                assert victim is not None
                save = save_time(prr_index)
                result.context_save_seconds += save
                result.preemption_count += 1
                victim.remaining = max(0.0, free_at[prr_index] - now)
                victim.resume_pending = True
                pending.append(
                    (
                        victim.job.priority,
                        victim.job.arrival_seconds,
                        next(counter),
                        victim,
                    )
                )
                running[prr_index] = None
                # The save occupies the PRR before the new job's reconfig.
                dispatch(prr_index, state, now + save)
                continue

        pending.append(
            (job.priority, job.arrival_seconds, next(counter), state)
        )

    if pending:
        raise RuntimeError("simulation ended with undispatched jobs")
    result.makespan_seconds = max(
        (finish for _, _, finish in result.completed), default=0.0
    )
    return result

"""Runtime PRR allocation with relocation-based defragmentation.

Hardware multitasking systems that create and destroy PRRs at run time
fragment the fabric: freed regions leave holes that no longer fit new
tasks even when total free capacity suffices.  This module provides:

* :class:`PRRAllocator` — an online allocator over a device: allocate a
  PRR for a PRM (via the Fig. 1 flow with occupied regions forbidden),
  free it, and measure external fragmentation;
* relocation-based **defragmentation**: when an allocation fails, compact
  live PRRs toward the bottom-left using compatibility-checked moves
  (each move is a real relocation the :mod:`repro.relocation` machinery
  could execute), then retry.

The Ablation I benchmark shows the allocator with defragmentation
sustaining allocation streams that the plain allocator fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.params import PRMRequirements
from ..core.placement_search import (
    PlacementNotFoundError,
    find_prr,
)
from ..devices.fabric import Device, Region
from ..errors import InfeasiblePlacement
from ..relocation.relocate import compatible_regions

__all__ = ["Allocation", "AllocationFailed", "PRRAllocator"]


class AllocationFailed(InfeasiblePlacement):
    """No PRR fits, even after defragmentation (when enabled)."""


@dataclass
class Allocation:
    """One live PRR allocation."""

    name: str
    prm: PRMRequirements
    region: Region
    moves: int = 0  #: times this allocation has been relocated


@dataclass
class PRRAllocator:
    """Online PRR allocator for one device."""

    device: Device
    defragment: bool = True
    allocations: dict[str, Allocation] = field(default_factory=dict)
    relocation_count: int = 0
    failed_allocations: int = 0

    # -- allocation ---------------------------------------------------------

    def occupied_regions(self) -> list[Region]:
        return [allocation.region for allocation in self.allocations.values()]

    def allocate(self, name: str, prm: PRMRequirements) -> Allocation:
        """Allocate a PRR for *prm*; defragment and retry on failure."""
        if name in self.allocations:
            raise ValueError(f"allocation {name!r} already exists")
        try:
            placed = find_prr(self.device, prm, forbidden=self.occupied_regions())
        except PlacementNotFoundError:
            if not self.defragment or not self._compact():
                self.failed_allocations += 1
                raise AllocationFailed(
                    f"no PRR fits {prm.name!r} on {self.device.name} "
                    f"({len(self.allocations)} live allocations)"
                ) from None
            try:
                placed = find_prr(
                    self.device, prm, forbidden=self.occupied_regions()
                )
            except PlacementNotFoundError:
                self.failed_allocations += 1
                raise AllocationFailed(
                    f"no PRR fits {prm.name!r} even after defragmentation"
                ) from None
        allocation = Allocation(name=name, prm=prm, region=placed.region)
        self.allocations[name] = allocation
        return allocation

    def free(self, name: str) -> None:
        try:
            del self.allocations[name]
        except KeyError:
            raise KeyError(f"no allocation named {name!r}") from None

    # -- defragmentation -----------------------------------------------------

    def _compact(self) -> bool:
        """Slide live PRRs toward the bottom-left via compatible moves.

        Processes allocations bottom-left first; each is moved to the
        lowest/left-most compatible free region.  Returns True when at
        least one PRR moved (so a retry is worthwhile).
        """
        moved_any = False
        ordered = sorted(
            self.allocations.values(),
            key=lambda a: (a.region.row, a.region.col),
        )
        for allocation in ordered:
            target = self._best_target(allocation)
            if target is not None:
                allocation.region = target
                allocation.moves += 1
                self.relocation_count += 1
                moved_any = True
        return moved_any

    def _best_target(self, allocation: Allocation) -> Region | None:
        """The lowest/left-most compatible free region strictly better
        (lower row, then lower col) than the current one."""
        source = allocation.region
        others = [
            a.region for a in self.allocations.values() if a is not allocation
        ]
        for row in range(1, source.row + 1):
            for col in range(1, self.device.num_columns - source.width + 2):
                if (row, col) >= (source.row, source.col):
                    break
                candidate = Region(
                    row=row, col=col, height=source.height, width=source.width
                )
                if not compatible_regions(self.device, source, candidate):
                    continue
                if any(candidate.overlaps(other) for other in others):
                    continue
                return candidate
        return None

    # -- metrics ---------------------------------------------------------------

    @property
    def live_cells(self) -> int:
        return sum(a.region.size for a in self.allocations.values())

    def external_fragmentation(self) -> float:
        """1 - (largest placeable free rectangle / total free cells) over
        PRR-eligible columns."""
        from ..core.floorplanner import _largest_rectangle

        grid = [
            [
                self.device.columns[c].reconfigurable
                for c in range(self.device.num_columns)
            ]
            for _ in range(self.device.rows)
        ]
        for region in self.occupied_regions():
            for row in region.row_span:
                for col in region.col_span:
                    grid[row - 1][col - 1] = False
        free = sum(sum(row) for row in grid)
        if free == 0:
            return 0.0
        return 1.0 - _largest_rectangle(grid) / free

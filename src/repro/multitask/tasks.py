"""Hardware task model for the multitasking simulator.

A :class:`HwTask` is a PRM plus execution semantics: each *job* of the
task occupies a PRR for ``exec_seconds`` once its PRM is configured.  Task
sets with deterministic pseudo-random arrivals are built by
:func:`make_task_set` (seeded — no global RNG state).
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # soft import: only the arrival sampling needs numpy
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the package
    np = None  # type: ignore[assignment]

from ..core.params import PRMRequirements
from ..errors import MissingDependency

__all__ = ["HwTask", "Job", "make_task_set", "poisson_arrivals"]


@dataclass(frozen=True, slots=True)
class HwTask:
    """A hardware task: its PRM requirements and per-job execution time."""

    prm: PRMRequirements
    exec_seconds: float

    def __post_init__(self) -> None:
        if self.exec_seconds <= 0:
            raise ValueError("exec_seconds must be positive")

    @property
    def name(self) -> str:
        return self.prm.name


@dataclass(frozen=True, slots=True)
class Job:
    """One arrival of a task."""

    task: HwTask
    arrival_seconds: float
    job_id: int

    def __post_init__(self) -> None:
        if self.arrival_seconds < 0:
            raise ValueError("arrival time must be non-negative")


def poisson_arrivals(
    rate_per_s: float, horizon_s: float, *, seed: int
) -> list[float]:
    """Deterministic Poisson arrival times over ``[0, horizon_s)``."""
    if rate_per_s <= 0 or horizon_s <= 0:
        raise ValueError("rate and horizon must be positive")
    if np is None:  # pragma: no cover
        raise MissingDependency(
            "poisson_arrivals samples with a numpy Generator, and numpy "
            "is not importable in this environment",
            dependency="numpy",
        )
    rng = np.random.default_rng(seed)
    times: list[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_per_s)
        if t >= horizon_s:
            return times
        times.append(t)


def make_task_set(
    tasks: list[HwTask],
    *,
    rate_per_s: float,
    horizon_s: float,
    seed: int = 2015,
) -> list[Job]:
    """A job stream: Poisson arrivals, tasks drawn round-robin-with-jitter.

    Round-robin keeps every PRM exercised (a uniform draw can starve one),
    with a seeded shuffle so inter-arrival orderings vary between seeds.
    """
    if not tasks:
        raise ValueError("need at least one task")
    arrivals = poisson_arrivals(rate_per_s, horizon_s, seed=seed)
    rng = np.random.default_rng(seed + 1)
    order: list[HwTask] = []
    while len(order) < len(arrivals):
        batch = list(tasks)
        rng.shuffle(batch)
        order.extend(batch)
    return [
        Job(task=order[i], arrival_seconds=t, job_id=i)
        for i, t in enumerate(arrivals)
    ]

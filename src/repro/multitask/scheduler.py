"""Event-driven hardware-multitasking simulator.

Simulates PRMs time-multiplexing PRRs (the paper's Section I motivation):
jobs arrive, the scheduler dispatches each to a PRR whose geometry fits
its PRM, pays the reconfiguration time (partial bitstream size / port
throughput) whenever the PRR currently holds a different PRM, then runs
the job.  Two system models are compared:

* **PR system** — one or more PRRs reconfigure independently while the
  rest of the device keeps running; reconfiguration cost is per-PRR,
  proportional to the *partial* bitstream.
* **non-PR baseline** — "full reconfiguration ... halts the entire FPGA's
  execution": any module switch reconfigures the whole device (full
  bitstream) and nothing executes meanwhile, i.e. one exclusive context.

The scheduler is deterministic FCFS with an idle-PRR affinity heuristic
(prefer a PRR already holding the PRM — zero reconfiguration).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ..core.bitstream_model import (
    bitstream_size_bytes,
    full_device_bitstream_bytes,
)
from ..core.prr_model import PRRGeometry
from ..devices.fabric import Device
from ..icap.controllers import record_transfer
from ..obs import trace as _obs
from .tasks import Job

__all__ = ["PRRState", "CompletedJob", "ScheduleResult", "simulate_pr", "simulate_full_reconfig"]


@dataclass
class PRRState:
    """Mutable state of one PRR during simulation."""

    index: int
    geometry: PRRGeometry
    loaded_prm: str | None = None
    busy_until: float = 0.0
    reconfig_count: int = 0
    reconfig_seconds: float = 0.0
    busy_seconds: float = 0.0

    @property
    def partial_bitstream_bytes(self) -> int:
        return bitstream_size_bytes(self.geometry)


@dataclass(frozen=True, slots=True)
class CompletedJob:
    """Timing record of one finished job."""

    job_id: int
    task_name: str
    prr_index: int
    arrival: float
    start: float
    reconfig_seconds: float
    finish: float

    @property
    def response_seconds(self) -> float:
        return self.finish - self.arrival

    @property
    def waiting_seconds(self) -> float:
        return self.start - self.arrival


@dataclass
class ScheduleResult:
    """Outcome of one simulation run."""

    system: str
    completed: list[CompletedJob] = field(default_factory=list)
    makespan_seconds: float = 0.0
    total_reconfig_seconds: float = 0.0
    reconfig_count: int = 0
    halted_seconds: float = 0.0  #: time the whole device was halted
    icap_busy_seconds: float = 0.0  #: time the configuration port was busy
    # Fault counters (all stay zero outside fault-aware mode).
    fault_events: int = 0  #: faults the injector recorded during the run
    retries: int = 0  #: re-streamed transfers after a failed verify
    failed_reconfigs: int = 0  #: (job, PRR) reconfigurations that gave up
    deadline_misses: int = 0  #: retry loops aborted by the per-job budget
    quarantines: int = 0  #: PRRs taken offline for repeated failures
    scrub_repairs: int = 0  #: quarantined PRRs restored by periodic scrub
    permanent_retirements: int = 0  #: PRRs/columns retired for good (hard faults)
    seu_hits: int = 0  #: background upsets that struck a PRR
    spilled_jobs: int = 0  #: jobs rerouted to the full-reconfig context
    dropped_jobs: int = 0  #: jobs that could not be placed anywhere
    #: Observability export: the active obs session's span/metric document
    #: (see :mod:`repro.obs`) captured at the end of the run; ``None``
    #: whenever tracing is disabled, which is the default.
    trace: dict | None = None

    @property
    def mean_response_seconds(self) -> float:
        if not self.completed:
            return 0.0
        return sum(j.response_seconds for j in self.completed) / len(self.completed)

    @property
    def reconfig_overhead_fraction(self) -> float:
        if self.makespan_seconds <= 0:
            return 0.0
        return self.total_reconfig_seconds / self.makespan_seconds

    @property
    def icap_busy_factor(self) -> float:
        """Fraction of the run the configuration port spent busy — the
        realized Claus busy factor."""
        if self.makespan_seconds <= 0:
            return 0.0
        return min(1.0, self.icap_busy_seconds / self.makespan_seconds)

    @property
    def offered_jobs(self) -> int:
        """Jobs the run was asked to place (completed plus dropped)."""
        return len(self.completed) + self.dropped_jobs

    @property
    def completion_rate(self) -> float:
        """Fraction of offered jobs that completed (1.0 when none offered)."""
        if self.offered_jobs == 0:
            return 1.0
        return len(self.completed) / self.offered_jobs

    def summary(self) -> str:
        return (
            f"{self.system}: {len(self.completed)} jobs, makespan "
            f"{self.makespan_seconds:.3f}s, mean response "
            f"{self.mean_response_seconds * 1e3:.2f}ms, reconfig "
            f"{self.reconfig_count}x / {self.total_reconfig_seconds * 1e3:.2f}ms"
        )

    def fault_summary(self) -> str:
        """One deterministic line of the run's fault counters."""
        return (
            f"faults={self.fault_events} retries={self.retries} "
            f"failed={self.failed_reconfigs} deadline_misses={self.deadline_misses} "
            f"quarantines={self.quarantines} scrub_repairs={self.scrub_repairs} "
            f"permanent={self.permanent_retirements} "
            f"seu_hits={self.seu_hits} spilled={self.spilled_jobs} "
            f"dropped={self.dropped_jobs} "
            f"completion={self.completion_rate:.4f}"
        )


def record_schedule_observations(
    result: ScheduleResult, states: "list[PRRState] | None" = None
) -> None:
    """Publish one run's scheduling telemetry (no-op when obs disabled).

    Per-job queue-wait and reconfiguration times go to fixed-bucket
    histograms; run totals go to counters; per-PRR port traffic feeds the
    ICAP throughput metrics.  All values are simulated (model) time, so
    the export is deterministic for a fixed seed.
    """
    registry = _obs.metrics()
    if registry is None:
        return
    wait = registry.histogram("sched.wait_seconds")
    reconfig = registry.histogram("sched.reconfig_seconds")
    for job in result.completed:
        wait.observe(job.waiting_seconds)
        reconfig.observe(job.reconfig_seconds)
    registry.counter("sched.jobs_completed").inc(len(result.completed))
    registry.counter("sched.jobs_dropped").inc(result.dropped_jobs)
    registry.counter("sched.jobs_spilled").inc(result.spilled_jobs)
    registry.counter("sched.reconfigs").inc(result.reconfig_count)
    registry.counter("sched.retries").inc(result.retries)
    registry.counter("sched.quarantines").inc(result.quarantines)
    registry.gauge("sched.makespan_seconds").set(result.makespan_seconds)
    registry.gauge("sched.completion_rate").set(result.completion_rate)
    if states is not None:
        for state in states:
            record_transfer(
                state.partial_bitstream_bytes * state.reconfig_count,
                state.reconfig_seconds,
            )


def simulate_pr(
    jobs: list[Job],
    prrs: list[PRRGeometry],
    *,
    port_bytes_per_s: float = 400e6,
    icap_exclusive: bool = False,
    faults=None,
    fault_policy=None,
    device: Device | None = None,
) -> ScheduleResult:
    """Simulate the PR system: FCFS over independently reconfiguring PRRs.

    ``icap_exclusive=True`` models the single shared ICAP: only one PRR
    can reconfigure at a time, so concurrent reconfigurations serialize —
    the contention the Claus busy-factor model (ref. [1]) abstracts.  The
    result's ``icap_busy_seconds`` lets callers derive the realized busy
    factor.

    Passing ``faults`` (a :class:`repro.faults.FaultInjector`) switches to
    the fault-aware mode of :mod:`repro.faults.degraded`: verified writes
    retried per ``fault_policy`` (a
    :class:`~repro.faults.degraded.DegradedModePolicy`), failing PRRs
    quarantined and scrub-restored, and unplaceable jobs spilled to the
    full-reconfiguration path when *device* is given.  With a zero-rate
    injector the result is identical to the fault-free mode.

    ``prrs`` may also be a :class:`repro.fabric.FabricRuntime` — the run
    then schedules on the live fabric (dynamic admission, defrag on
    fragmentation, permanent-fault column retirement) instead of a fixed
    PRR set; see :func:`repro.fabric.simulate_on_fabric`.
    """
    from ..fabric.runtime import FabricRuntime

    if isinstance(prrs, FabricRuntime):
        from ..fabric.schedule import simulate_on_fabric

        return simulate_on_fabric(
            jobs,
            prrs,
            port_bytes_per_s=port_bytes_per_s,
            faults=faults,
            fault_policy=fault_policy,
        )
    if not prrs:
        raise ValueError("need at least one PRR")
    if faults is not None:
        from ..faults.degraded import simulate_pr_with_faults

        return simulate_pr_with_faults(
            jobs,
            prrs,
            injector=faults,
            policy=fault_policy,
            port_bytes_per_s=port_bytes_per_s,
            icap_exclusive=icap_exclusive,
            device=device,
        )
    if fault_policy is not None:
        raise ValueError("fault_policy requires a faults= injector")
    states = [PRRState(index=i, geometry=g) for i, g in enumerate(prrs)]
    result = ScheduleResult(system="pr")
    counter = itertools.count()
    # (ready_time, tiebreak, state) heap of PRR availability.
    ready: list[tuple[float, int, PRRState]] = [
        (0.0, next(counter), s) for s in states
    ]
    heapq.heapify(ready)
    icap_free_at = 0.0

    with _obs.trace_span(
        "simulate_pr",
        jobs=len(jobs),
        prrs=len(prrs),
        icap_exclusive=icap_exclusive,
    ):
        for job in sorted(jobs, key=lambda j: (j.arrival_seconds, j.job_id)):
            fitting = [s for s in states if _fits(job, s.geometry)]
            if not fitting:
                raise ValueError(
                    f"no PRR fits task {job.task.name!r} "
                    f"(needs {job.task.prm.lut_ff_pairs} pairs)"
                )
            # Affinity first: an already-loaded, earliest-free PRR;
            # otherwise the earliest-free fitting PRR.
            loaded = [s for s in fitting if s.loaded_prm == job.task.name]
            candidates = loaded or fitting
            state = min(candidates, key=lambda s: (s.busy_until, s.index))

            start_ready = max(state.busy_until, job.arrival_seconds)
            reconfig = 0.0
            if state.loaded_prm != job.task.name:
                reconfig = state.partial_bitstream_bytes / port_bytes_per_s
                if icap_exclusive:
                    start_ready = max(start_ready, icap_free_at)
                    icap_free_at = start_ready + reconfig
                state.loaded_prm = job.task.name
                state.reconfig_count += 1
                state.reconfig_seconds += reconfig
            start = start_ready + reconfig
            finish = start + job.task.exec_seconds
            state.busy_until = finish
            state.busy_seconds += job.task.exec_seconds
            result.completed.append(
                CompletedJob(
                    job_id=job.job_id,
                    task_name=job.task.name,
                    prr_index=state.index,
                    arrival=job.arrival_seconds,
                    start=start,
                    reconfig_seconds=reconfig,
                    finish=finish,
                )
            )

        result.makespan_seconds = max(
            (j.finish for j in result.completed), default=0.0
        )
        result.total_reconfig_seconds = sum(s.reconfig_seconds for s in states)
        result.reconfig_count = sum(s.reconfig_count for s in states)
        result.icap_busy_seconds = result.total_reconfig_seconds
        if _obs.enabled:
            record_schedule_observations(result, states)
    if _obs.enabled:
        result.trace = _obs.snapshot()
    return result


def simulate_full_reconfig(
    jobs: list[Job],
    device: Device,
    *,
    port_bytes_per_s: float = 400e6,
) -> ScheduleResult:
    """Simulate the non-PR baseline: the whole device is one context.

    Every module switch loads the full bitstream and halts everything;
    jobs run one at a time (the device hosts one hardware task per
    configuration, as in a module-per-bitstream non-PR design).
    """
    full_bytes = full_device_bitstream_bytes(device)
    full_reconfig = full_bytes / port_bytes_per_s
    result = ScheduleResult(system="full_reconfig")
    now = 0.0
    loaded: str | None = None
    with _obs.trace_span(
        "simulate_full_reconfig", jobs=len(jobs), device=device.name
    ):
        for job in sorted(jobs, key=lambda j: (j.arrival_seconds, j.job_id)):
            start_ready = max(now, job.arrival_seconds)
            reconfig = 0.0
            if loaded != job.task.name:
                reconfig = full_reconfig
                loaded = job.task.name
                result.reconfig_count += 1
                result.total_reconfig_seconds += reconfig
                result.halted_seconds += reconfig
            start = start_ready + reconfig
            finish = start + job.task.exec_seconds
            now = finish
            result.completed.append(
                CompletedJob(
                    job_id=job.job_id,
                    task_name=job.task.name,
                    prr_index=0,
                    arrival=job.arrival_seconds,
                    start=start,
                    reconfig_seconds=reconfig,
                    finish=finish,
                )
            )
        result.makespan_seconds = max(
            (j.finish for j in result.completed), default=0.0
        )
        if _obs.enabled:
            record_schedule_observations(result)
            record_transfer(
                full_bytes * result.reconfig_count,
                result.total_reconfig_seconds,
            )
    if _obs.enabled:
        result.trace = _obs.snapshot()
    return result


def _fits(job: Job, geometry: PRRGeometry) -> bool:
    return geometry.fits(job.task.prm)

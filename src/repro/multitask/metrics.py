"""Comparison metrics for multitasking simulation runs."""

from __future__ import annotations

from dataclasses import dataclass

from .scheduler import ScheduleResult

__all__ = ["Comparison", "compare"]


@dataclass(frozen=True, slots=True)
class Comparison:
    """PR-vs-baseline comparison of two runs over the same job stream."""

    pr: ScheduleResult
    baseline: ScheduleResult

    @property
    def makespan_speedup(self) -> float:
        """Baseline makespan / PR makespan (> 1 means PR wins)."""
        if self.pr.makespan_seconds <= 0:
            return float("inf")
        return self.baseline.makespan_seconds / self.pr.makespan_seconds

    @property
    def response_speedup(self) -> float:
        if self.pr.mean_response_seconds <= 0:
            return float("inf")
        return self.baseline.mean_response_seconds / self.pr.mean_response_seconds

    @property
    def reconfig_byte_ratio(self) -> float:
        """Baseline reconfig seconds / PR reconfig seconds."""
        if self.pr.total_reconfig_seconds <= 0:
            return float("inf")
        return (
            self.baseline.total_reconfig_seconds / self.pr.total_reconfig_seconds
        )

    @property
    def completion_rate_delta(self) -> float:
        """PR completion rate minus baseline's (fault runs drop jobs)."""
        return self.pr.completion_rate - self.baseline.completion_rate

    def summary(self) -> str:
        line = (
            f"PR vs {self.baseline.system}: makespan speedup "
            f"{self.makespan_speedup:.2f}x, response speedup "
            f"{self.response_speedup:.2f}x, reconfig-time ratio "
            f"{self.reconfig_byte_ratio:.1f}x"
        )
        if self.pr.dropped_jobs or self.baseline.dropped_jobs:
            line += (
                f", completion {self.pr.completion_rate:.4f}"
                f" vs {self.baseline.completion_rate:.4f}"
            )
        return line


def compare(
    pr: ScheduleResult, baseline: ScheduleResult, *, strict: bool = True
) -> Comparison:
    """Pair two runs of the same job stream for comparison.

    ``strict=False`` permits differing completed-job counts — fault-aware
    runs may drop jobs, which is exactly what the reliability ablation
    compares via :attr:`Comparison.completion_rate_delta`.
    """
    if strict and len(pr.completed) != len(baseline.completed):
        raise ValueError("runs completed different job counts")
    return Comparison(pr=pr, baseline=baseline)

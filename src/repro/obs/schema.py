"""Trace-document schema: checked-in JSON Schema + zero-dep validator.

``trace.schema.json`` (shipped inside the package so the CI smoke step
and external tools validate against the exact committed contract) is a
deliberately small JSON-Schema subset, and :func:`validate_trace`
interprets exactly that subset — ``type``, ``required``, ``properties``,
``additionalProperties`` (schema-valued), ``items``, ``minimum``,
``enum`` and local ``$ref``s into ``$defs`` — so the repo needs no
``jsonschema`` dependency.  Anything the subset cannot express belongs
in a test, not the schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import ParseError

__all__ = ["TRACE_SCHEMA_PATH", "load_trace_schema", "validate_trace", "SchemaError"]

TRACE_SCHEMA_PATH = Path(__file__).with_name("trace.schema.json")


class SchemaError(ParseError):
    """A document does not conform to the trace schema."""


def load_trace_schema() -> dict[str, Any]:
    """The committed trace schema, parsed fresh from disk."""
    return json.loads(TRACE_SCHEMA_PATH.read_text())


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON types keep them apart.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: dict[str, Any]) -> dict[str, Any]:
    if not ref.startswith("#/"):
        raise SchemaError(f"only local $refs are supported, got {ref!r}")
    node: Any = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"unresolvable $ref {ref!r}")
        node = node[part]
    return node


def _check(value: Any, schema: dict[str, Any], root: dict[str, Any], path: str) -> None:
    if "$ref" in schema:
        _check(value, _resolve_ref(schema["$ref"], root), root, path)
        return

    declared = schema.get("type")
    if declared is not None:
        types = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            raise SchemaError(
                f"{path}: expected type {declared}, got {type(value).__name__}"
            )

    if "enum" in schema and value not in schema["enum"]:
        raise SchemaError(f"{path}: {value!r} not in enum {schema['enum']}")

    if "minimum" in schema and isinstance(value, (int, float)):
        if not isinstance(value, bool) and value < schema["minimum"]:
            raise SchemaError(
                f"{path}: {value!r} below minimum {schema['minimum']}"
            )

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise SchemaError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                _check(value[key], sub, root, f"{path}.{key}")
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, item in value.items():
                if key not in properties:
                    _check(item, extra, root, f"{path}.{key}")
        elif extra is False:
            unknown = set(value) - set(properties)
            if unknown:
                raise SchemaError(f"{path}: unknown keys {sorted(unknown)}")

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _check(item, schema["items"], root, f"{path}[{index}]")


def validate_trace(document: Any, schema: dict[str, Any] | None = None) -> None:
    """Raise :class:`SchemaError` unless *document* matches the schema.

    With *schema* omitted the committed ``trace.schema.json`` is used —
    that is what the CLI, the tests and the CI smoke step all validate
    against.
    """
    root = schema if schema is not None else load_trace_schema()
    _check(document, root, root, "$")

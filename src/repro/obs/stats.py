"""Human-readable summaries of trace documents (``repro-fpga stats``).

Pure functions from a trace dict (the JSON written by ``repro-fpga
trace ... --trace-out``) to aligned text: the nested span tree with
wall/CPU timings and attributes, then the counters/gauges, then each
histogram with per-bucket counts.  Keep this renderer dependency-free
and deterministic for a given document — its output is itself asserted
in tests.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["render_trace", "render_span_tree", "render_metrics"]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _walk_spans(
    spans: list[dict[str, Any]], depth: int = 0
) -> Iterator[tuple[int, dict[str, Any]]]:
    for span in spans:
        yield depth, span
        yield from _walk_spans(span.get("children", []), depth + 1)


def render_span_tree(document: dict[str, Any]) -> str:
    """Indented span tree: name, wall/CPU time, inline attributes."""
    lines = []
    for depth, span in _walk_spans(document.get("spans", [])):
        attrs = span.get("attrs", {})
        attr_text = (
            " [" + " ".join(f"{k}={_fmt_value(v)}" for k, v in attrs.items()) + "]"
            if attrs
            else ""
        )
        lines.append(
            f"{'  ' * depth}{span['name']}: wall {_fmt_seconds(span['wall_s'])} "
            f"cpu {_fmt_seconds(span['cpu_s'])}{attr_text}"
        )
    return "\n".join(lines) if lines else "(no spans)"


def _aligned(rows: list[tuple[str, str]]) -> str:
    width = max((len(name) for name, _ in rows), default=0)
    return "\n".join(f"  {name.ljust(width)}  {value}" for name, value in rows)


def render_metrics(document: dict[str, Any]) -> str:
    """Counters and gauges as one aligned block, histograms after."""
    metrics = document.get("metrics", {})
    sections: list[str] = []

    counters = metrics.get("counters", {})
    if counters:
        rows = [
            (name, _fmt_value(counters[name])) for name in sorted(counters)
        ]
        sections.append("counters:\n" + _aligned(rows))

    gauges = metrics.get("gauges", {})
    if gauges:
        rows = [(name, _fmt_value(gauges[name])) for name in sorted(gauges)]
        sections.append("gauges:\n" + _aligned(rows))

    histograms = metrics.get("histograms", {})
    for name in sorted(histograms):
        hist = histograms[name]
        count = hist["count"]
        mean = hist["sum"] / count if count else 0.0
        lines = [
            f"histogram {name}: count={count} mean={_fmt_seconds(mean)}"
        ]
        bounds = hist["boundaries"]
        labels = [f"<= {_fmt_seconds(b)}" for b in bounds] + [
            f"> {_fmt_seconds(bounds[-1])}"
        ]
        for label, bucket in zip(labels, hist["bucket_counts"]):
            if bucket:
                lines.append(f"  {label.ljust(12)} {bucket}")
        sections.append("\n".join(lines))

    return "\n\n".join(sections) if sections else "(no metrics)"


def render_trace(document: dict[str, Any]) -> str:
    """Full ``repro-fpga stats`` report for one trace document."""
    header = f"trace: command={document.get('command') or '(unknown)'} " \
             f"version={document.get('version')}"
    return "\n\n".join(
        [header, render_span_tree(document), render_metrics(document)]
    )

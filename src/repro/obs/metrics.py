"""Minimal metrics registry: counters, gauges, fixed-bucket histograms.

No labels, no exemplars, no background threads — just named values a
single-process run accumulates and exports as one JSON object.  The
registry is per-:class:`~repro.obs.trace.ObsSession`, so metrics from
different captures never bleed into each other.

Everything recorded here is *model-domain* data (simulated seconds,
bytes, counts), never wall-clock time — that keeps the metrics half of a
trace document byte-for-byte reproducible for a fixed seed, which the
determinism suite asserts.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
]

#: Default boundaries for duration histograms (simulated seconds).  Fixed
#: so histograms from different runs/versions are directly comparable.
SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Default boundaries for byte-size histograms.
SIZE_BUCKETS: tuple[float, ...] = (
    1024.0, 16384.0, 65536.0, 262144.0, 1048576.0, 16777216.0,
)


class Counter:
    """Monotonically increasing value (ints or model-time floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease by {amount}")
        self.value += amount

    def to_value(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def to_value(self) -> float:
        return self.value


class Histogram:
    """Fixed-boundary histogram (cumulative-free, one count per bucket).

    ``boundaries`` are upper bounds; a value lands in the first bucket
    whose bound is >= value, or the implicit overflow bucket.  Boundaries
    are fixed at construction so that exported histograms from any two
    runs line up bucket-for-bucket.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "total")

    def __init__(self, name: str, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name}: need at least one boundary")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name}: boundaries must be strictly increasing"
            )
        self.name = name
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Named metric store; get-or-create semantics per metric kind."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, boundaries: Sequence[float] = SECONDS_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, boundaries)
        elif tuple(float(b) for b in boundaries) != metric.boundaries:
            raise ValueError(
                f"histogram {name} already registered with different boundaries"
            )
        return metric

    @property
    def counters(self) -> Mapping[str, Counter]:
        return self._counters

    @property
    def gauges(self) -> Mapping[str, Gauge]:
        return self._gauges

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return self._histograms

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready export, keys sorted for stable diffs."""
        return {
            "counters": {
                name: self._counters[name].to_value()
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].to_value()
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

"""Minimal metrics registry: counters, gauges, fixed-bucket histograms.

No labels, no exemplars, no background threads — just named values a
single-process run accumulates and exports as one JSON object.  The
registry is per-:class:`~repro.obs.trace.ObsSession`, so metrics from
different captures never bleed into each other.

Everything recorded here is *model-domain* data (simulated seconds,
bytes, counts), never wall-clock time — that keeps the metrics half of a
trace document byte-for-byte reproducible for a fixed seed, which the
determinism suite asserts.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRIC_NAMES",
    "METRIC_PREFIXES",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
]

#: Every metric name this codebase records.  This is the schema of the
#: metrics half of every exported trace document: dashboards and the
#: golden-trace tests key on these strings, so a typo at a call site
#: silently forks a new time series.  The ``obs-hygiene`` analysis rule
#: (``repro analyze``) cross-checks every literal ``counter``/``gauge``/
#: ``histogram`` name against this declaration — add new names here
#: first.
METRIC_NAMES: frozenset[str] = frozenset(
    {
        "batch.calls",
        "batch.cells_evaluated",
        "batch.infeasible_prms",
        "batch.prms_evaluated",
        "batch.size",
        "batch.vectorization_ratio",
        "explore.branches_pruned",
        "explore.budget_cutoffs",
        "explore.candidates_evaluated",
        "explore.chunks_serial_fallback",
        "explore.designs_feasible",
        "explore.placement_cache_hits",
        "explore.placement_cache_misses",
        "explore.pool_circuit_tripped",
        "explore.pool_retry_rounds",
        "explore.worker_crashes",
        "fabric.admission_failures",
        "fabric.admissions",
        "fabric.columns_retired",
        "fabric.defrag_passes",
        "fabric.evictions",
        "fabric.fragmentation",
        "fabric.migrations",
        "fabric.rollbacks",
        "faults.events",
        "reconfig.attempts",
        "reconfig.crc_mismatches",
        "reconfig.deadline_exceeded",
        "reconfig.failures",
        "reconfig.retries",
        "reconfig.timeouts",
        "sched.completion_rate",
        "sched.deadline_misses",
        "sched.failed_reconfigs",
        "sched.jobs_completed",
        "sched.jobs_dropped",
        "sched.jobs_spilled",
        "sched.makespan_seconds",
        "sched.permanent_retirements",
        "sched.quarantine_seconds",
        "sched.quarantine_seconds_total",
        "sched.quarantines",
        "sched.reconfig_seconds",
        "sched.reconfigs",
        "sched.retries",
        "sched.retry_seconds",
        "sched.retry_seconds_total",
        "sched.scrub_repairs",
        "sched.seu_hits",
        "sched.wait_seconds",
        "serve.accepted",
        "serve.batch_calls",
        "serve.batch_coalesced",
        "serve.batch_fallbacks",
        "serve.batch_size",
        "serve.cluster.accepted",
        "serve.cluster.cache_hits",
        "serve.cluster.cache_invalidated",
        "serve.cluster.cache_misses",
        "serve.cluster.cache_quarantined",
        "serve.cluster.cache_write_errors",
        "serve.cluster.coalesced",
        "serve.cluster.completed",
        "serve.cluster.hedge_duplicates",
        "serve.cluster.hedges",
        "serve.cluster.hedges_lost",
        "serve.cluster.hedges_won",
        "serve.cluster.inline_fallbacks",
        "serve.cluster.probe_misses",
        "serve.cluster.redispatches",
        "serve.cluster.restarts",
        "serve.cluster.shed",
        "serve.cluster.typed_errors",
        "serve.completed",
        "serve.deadline_exceeded",
        "serve.degraded_results",
        "serve.errors",
        "serve.shed",
    }
)

#: Prefixes that legitimize dynamically built (f-string) metric names:
#: per-error-code counters, per-shard gauges, per-window counters, and
#: per-ICAP-port transfer metrics keyed by the port name.
METRIC_PREFIXES: tuple[str, ...] = (
    "serve.cluster.errors.",
    "serve.cluster.shard",
    "serve.errors.",
    "window_index.",
    "icap.",
)

#: Default boundaries for duration histograms (simulated seconds).  Fixed
#: so histograms from different runs/versions are directly comparable.
SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Default boundaries for byte-size histograms.
SIZE_BUCKETS: tuple[float, ...] = (
    1024.0, 16384.0, 65536.0, 262144.0, 1048576.0, 16777216.0,
)


class Counter:
    """Monotonically increasing value (ints or model-time floats)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease by {amount}")
        self.value += amount

    def to_value(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def to_value(self) -> float:
        return self.value


class Histogram:
    """Fixed-boundary histogram (cumulative-free, one count per bucket).

    ``boundaries`` are upper bounds; a value lands in the first bucket
    whose bound is >= value, or the implicit overflow bucket.  Boundaries
    are fixed at construction so that exported histograms from any two
    runs line up bucket-for-bucket.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "total")

    def __init__(self, name: str, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name}: need at least one boundary")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name}: boundaries must be strictly increasing"
            )
        self.name = name
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
        }


class MetricsRegistry:
    """Named metric store; get-or-create semantics per metric kind."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, boundaries: Sequence[float] = SECONDS_BUCKETS
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, boundaries)
        elif tuple(float(b) for b in boundaries) != metric.boundaries:
            raise ValueError(
                f"histogram {name} already registered with different boundaries"
            )
        return metric

    @property
    def counters(self) -> Mapping[str, Counter]:
        return self._counters

    @property
    def gauges(self) -> Mapping[str, Gauge]:
        return self._gauges

    @property
    def histograms(self) -> Mapping[str, Histogram]:
        return self._histograms

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready export, keys sorted for stable diffs."""
        return {
            "counters": {
                name: self._counters[name].to_value()
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].to_value()
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

"""Zero-dependency span tracer with an off-by-default module flag.

The observability layer has one hard requirement: when disabled it may
not slow the hot paths down (the ``benchmarks/test_obs_overhead.py``
gate asserts <2% on a full explorer run).  Everything here is built
around that constraint:

* ``enabled`` is a plain module-level boolean; every instrumentation
  site guards on it before doing any work;
* :func:`trace_span` returns a preallocated no-op context manager when
  disabled — one attribute read, one branch, no allocation;
* all span bookkeeping (stacks, dict building, clocks) happens only
  inside an active :func:`capture` session.

Spans nest via an explicit stack on the active :class:`ObsSession`:

    with obs.capture(command="explore") as session:
        with obs.trace_span("explore", mode="pruned") as span:
            ...
            span.set("designs", len(designs))
    doc = session.to_dict()   # JSON-ready: nested spans + metrics

Wall time comes from ``time.perf_counter`` and CPU time from
``time.process_time``; both land on the span as ``wall_s`` / ``cpu_s``
(the *only* non-deterministic fields of a trace — the determinism suite
compares trace documents with them scrubbed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

from .metrics import MetricsRegistry

__all__ = [
    "enabled",
    "enable",
    "disable",
    "capture",
    "active_session",
    "trace_span",
    "current_span",
    "metrics",
    "snapshot",
    "Span",
    "ObsSession",
    "TIMING_FIELDS",
]

#: Module-level master switch.  Instrumented call sites read this
#: attribute directly; nothing else in this module runs while it is
#: False.  Mutate it only through :func:`enable` / :func:`disable` /
#: :func:`capture` so the active session stays consistent.
enabled = False

#: Span fields that carry wall-clock measurements (and therefore differ
#: between otherwise identical runs).  The determinism tests and any
#: trace-diffing tooling scrub exactly these.
TIMING_FIELDS = ("start_s", "wall_s", "cpu_s")


@dataclass
class Span:
    """One timed, attributed, nestable unit of work."""

    name: str
    attrs: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0  #: perf_counter at entry (session-relative)
    wall_s: float = 0.0
    cpu_s: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one structured attribute."""
        self.attrs[key] = value

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }


class ObsSession:
    """One capture window: a forest of root spans plus a metrics registry."""

    def __init__(self, *, command: str = "") -> None:
        self.command = command
        self.roots: list[Span] = []
        self.metrics = MetricsRegistry()
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready trace document (see ``trace.schema.json``)."""
        return {
            "version": 1,
            "command": self.command,
            "spans": [span.to_dict() for span in self.roots],
            "metrics": self.metrics.to_dict(),
        }


_session: ObsSession | None = None


class _NullSpan:
    """Shared no-op stand-in so disabled call sites never allocate."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span on the active session."""

    __slots__ = ("span", "_cpu0", "_wall0")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.span = Span(name=name, attrs=attrs)

    def __enter__(self) -> Span:
        session = _session
        if session is None:  # disabled between construction and entry
            return self.span
        stack = session._stack
        if stack:
            stack[-1].children.append(self.span)
        else:
            session.roots.append(self.span)
        stack.append(self.span)
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self.span.start_s = self._wall0 - session._epoch
        return self.span

    def __exit__(self, *exc: object) -> bool:
        self.span.wall_s = time.perf_counter() - self._wall0
        self.span.cpu_s = time.process_time() - self._cpu0
        session = _session
        if session is not None and session._stack and session._stack[-1] is self.span:
            session._stack.pop()
        return False


def trace_span(name: str, **attrs: Any):
    """Open a nested span; a shared no-op when tracing is disabled.

    Usable both as ``with trace_span("x") as span`` (``span.set(...)``
    works in either mode) and as a cheap guard-free call site.
    """
    if not enabled:
        return _NULL_SPAN
    return _LiveSpan(name, attrs)


def current_span() -> Span | None:
    """Innermost open span of the active session, if any."""
    if _session is None or not _session._stack:
        return None
    return _session._stack[-1]


def active_session() -> ObsSession | None:
    return _session


def metrics() -> MetricsRegistry | None:
    """Metrics registry of the active session (None when disabled)."""
    return _session.metrics if _session is not None else None


def snapshot() -> dict[str, Any] | None:
    """JSON-ready snapshot of the active session, or ``None`` if disabled.

    Instrumented entry points attach this to their results (e.g.
    ``ScheduleResult.trace``) so callers get the telemetry without
    talking to the obs module themselves.
    """
    return _session.to_dict() if _session is not None else None


def enable(*, command: str = "") -> ObsSession:
    """Switch tracing on, starting a fresh session."""
    global enabled, _session
    _session = ObsSession(command=command)
    enabled = True
    return _session


def disable() -> None:
    """Switch tracing off and drop the active session."""
    global enabled, _session
    enabled = False
    _session = None


def capture(*, command: str = "") -> Iterator[ObsSession]:
    """Context manager: enable tracing for a block, then disable.

    The yielded :class:`ObsSession` stays readable after exit —
    ``session.to_dict()`` is how the CLI builds ``--trace-out`` files.
    """
    return _Capture(command)


class _Capture:
    __slots__ = ("_command", "_session")

    def __init__(self, command: str) -> None:
        self._command = command

    def __enter__(self) -> ObsSession:
        self._session = enable(command=self._command)
        return self._session

    def __exit__(self, *exc: object) -> bool:
        disable()
        return False

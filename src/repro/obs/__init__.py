"""``repro.obs`` — zero-dependency tracing, metrics and profiling hooks.

The observability layer for the exploration engine and the multitasking
runtime (ISSUE 4).  Three pieces:

* :mod:`~repro.obs.trace` — span-based tracer (``trace_span`` nesting,
  wall/CPU time, structured attributes) behind an off-by-default
  module flag;
* :mod:`~repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms scoped to one capture session;
* :mod:`~repro.obs.schema` / :mod:`~repro.obs.stats` — the committed
  JSON schema every exported trace validates against, and the
  human-readable renderer behind ``repro-fpga stats``.

Typical use::

    from repro import obs

    with obs.capture(command="explore") as session:
        designs = explore(device, prms, mode="pruned")
    doc = session.to_dict()          # schema-valid JSON document
    obs.validate_trace(doc)

Instrumented modules guard every hook on ``obs.enabled`` (re-exported
from :mod:`~repro.obs.trace`); with the flag off the hooks cost one
attribute read and a branch — the disabled-overhead budget asserted in
``benchmarks/test_obs_overhead.py``.
"""

from __future__ import annotations

from . import trace as _trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
)
from .schema import (
    SchemaError,
    TRACE_SCHEMA_PATH,
    load_trace_schema,
    validate_trace,
)
from .stats import render_metrics, render_span_tree, render_trace
from .trace import (
    ObsSession,
    Span,
    TIMING_FIELDS,
    active_session,
    capture,
    current_span,
    disable,
    enable,
    metrics,
    snapshot,
    trace_span,
)

__all__ = [
    "enabled",
    "enable",
    "disable",
    "capture",
    "active_session",
    "trace_span",
    "current_span",
    "metrics",
    "snapshot",
    "Span",
    "ObsSession",
    "TIMING_FIELDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "SIZE_BUCKETS",
    "SchemaError",
    "TRACE_SCHEMA_PATH",
    "load_trace_schema",
    "validate_trace",
    "render_trace",
    "render_span_tree",
    "render_metrics",
]


def __getattr__(name: str):
    # ``obs.enabled`` must always reflect the live flag in obs.trace;
    # re-exporting the boolean by value would freeze it at import time.
    if name == "enabled":
        return _trace.enabled
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

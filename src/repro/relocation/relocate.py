"""Hardware task relocation (HTR) — the authors' ARC'13 work [6].

A PRM's partial bitstream is bound to its PRR's frame addresses.  To
migrate a running task to a *different* PRR ("HTR: on-chip hardware task
relocation for partially reconfigurable FPGAs"), the bitstream's frame
data must be re-addressed to the target region — which is only possible
when the two regions are *compatible*: same height and the same
column-kind sequence, so every frame lands on an identical resource.

:func:`compatible_regions` checks that; :func:`find_compatible_regions`
enumerates relocation targets on a device; :func:`relocate_bitstream`
produces the re-addressed bitstream, preserving every frame's payload
(and therefore the task's logic and captured state).
"""

from __future__ import annotations

from typing import Sequence

from ..bitgen.generator import PartialBitstream, generate_partial_bitstream
from ..devices.fabric import Device, Region
from ..devices.frames import FrameAddress
from ..errors import InvalidInput
from .memory import ConfigMemory

__all__ = [
    "RelocationError",
    "compatible_regions",
    "find_compatible_regions",
    "find_compatible_regions_naive",
    "relocate_bitstream",
]


class RelocationError(InvalidInput):
    """The source bitstream cannot be relocated to the target region."""


def compatible_regions(device: Device, source: Region, target: Region) -> bool:
    """True when a bitstream for *source* can be re-addressed to *target*.

    Requires identical height, identical width and an identical
    column-kind sequence (so frame k of the burst configures the same
    resource kind at the same offset).  Row position may differ freely —
    Virtex-class rows are interchangeable for PRR columns.
    """
    if not (device.is_valid_prr(source) and device.is_valid_prr(target)):
        return False
    if source.height != target.height or source.width != target.width:
        return False
    return device.region_column_kinds(source) == device.region_column_kinds(
        target
    )


def find_compatible_regions(
    device: Device,
    source: Region,
    *,
    include_source: bool = False,
    exclude: Sequence[Region] = (),
) -> list[Region]:
    """All regions of *device* a *source* bitstream could relocate to.

    ``exclude`` is a blacklist of fabric regions (occupied PRRs, columns
    a fabric runtime retired after permanent faults): any candidate
    overlapping one is skipped.

    Candidate columns come from the device's
    :class:`~repro.devices.window_index.ColumnWindowIndex` — the same
    window semantics every placement query uses (column-count multiset
    match with no IOB/CLK column), amortized O(1) per query — then the
    exact column-kind *sequence* check relocation physically requires.
    :func:`find_compatible_regions_naive` keeps the original full scan;
    a differential test pins the two to identical results.
    """
    if not device.is_valid_prr(source):
        return []
    source_kinds = device.region_column_kinds(source)
    counts = device.region_column_counts(source)
    exclusions = tuple(exclude)
    targets = []
    # feasible_starts prunes to count-matching, blocked-free windows;
    # compatibility additionally needs the exact kind sequence.
    start_cols = [
        col
        for col in device.feasible_window_starts(counts)
        if device.columns[col - 1 : col - 1 + source.width] == source_kinds
    ]
    for row in range(1, device.rows - source.height + 2):
        for col in start_cols:
            candidate = Region(
                row=row, col=col, height=source.height, width=source.width
            )
            if candidate == source and not include_source:
                continue
            if any(candidate.overlaps(banned) for banned in exclusions):
                continue
            targets.append(candidate)
    return targets


def find_compatible_regions_naive(
    device: Device,
    source: Region,
    *,
    include_source: bool = False,
    exclude: Sequence[Region] = (),
) -> list[Region]:
    """Reference implementation of :func:`find_compatible_regions`.

    Scans every (row, col) offset and re-checks compatibility from
    scratch.  Behaviorally identical to the indexed path (asserted by
    the differential test); kept as the baseline.
    """
    exclusions = tuple(exclude)
    targets = []
    for row in range(1, device.rows - source.height + 2):
        for col in range(1, device.num_columns - source.width + 2):
            candidate = Region(
                row=row, col=col, height=source.height, width=source.width
            )
            if candidate == source and not include_source:
                continue
            if any(candidate.overlaps(banned) for banned in exclusions):
                continue
            if compatible_regions(device, source, candidate):
                targets.append(candidate)
    return targets


def relocate_bitstream(
    device: Device,
    bitstream: PartialBitstream,
    target: Region,
) -> PartialBitstream:
    """Re-address *bitstream* from its region to *target*.

    Applies the source bitstream to a scratch configuration memory, reads
    each frame back, and regenerates the bitstream for the target region
    with the captured payloads — the read-modify-write flow the HTR paper
    implements on-chip.  Raises :class:`RelocationError` on incompatible
    regions.
    """
    source = bitstream.region
    if not compatible_regions(device, source, target):
        raise RelocationError(
            f"region {target} is not relocation-compatible with {source} "
            f"on {device.name}"
        )

    memory = ConfigMemory(device)
    memory.configure(bitstream.to_bytes())

    row_offset = target.row - source.row
    col_offset = target.col - source.col

    def payload_fn(block_type: int, far_word: int) -> list[int]:
        far = FrameAddress.decode(far_word)
        source_far = FrameAddress(
            block_type=far.block_type,
            row=far.row - row_offset,
            major=far.major - col_offset,
            minor=far.minor,
            top=far.top,
        )
        return list(memory.read_frame(source_far))

    return generate_partial_bitstream(
        device,
        target,
        design_name=f"{bitstream.design_name}@relocated",
        payload_fn=payload_fn,
    )

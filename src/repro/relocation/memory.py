"""Configuration memory (CM) model.

"A frame is the minimum unit of information used to configure/read the
FFs' stored values and BRAMs in the device's configuration memory (CM)"
(Section III.A).  :class:`ConfigMemory` holds the device's frames,
applies partial bitstreams (the ICAP write path) and reads frames back
(the FDRO readback path the authors' context save/restore work [5] uses).

Frame ordering inside an FDRI burst follows the hardware's auto-
increment: minors within a column, then the next column to the right —
exactly the order the generator writes, reproduced here by
:func:`iter_burst_fars`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..bitgen.parser import BitstreamParseError
from ..bitgen.words import (
    Command,
    ConfigRegister,
    NOOP,
    Opcode,
    SYNC_WORD,
    decode_header,
)
from ..devices.fabric import Device, Region
from ..devices.frames import (
    BLOCK_TYPE_BRAM_CONTENT,
    BLOCK_TYPE_CONFIG,
    FrameAddress,
    frames_in_column,
)

__all__ = ["ConfigMemory", "iter_burst_fars"]


def iter_burst_fars(
    device: Device, start: FrameAddress, n_frames: int
) -> Iterator[FrameAddress]:
    """FARs of an *n_frames* burst starting at *start*, hardware order.

    Walks minors within the start column, then subsequent columns left to
    right in the same row, honouring each column's frame count for the
    burst's block type.
    """
    produced = 0
    major = start.major
    minor = start.minor
    while produced < n_frames:
        if major >= device.num_columns:
            raise ValueError(
                f"burst of {n_frames} frames from {start} runs off the fabric"
            )
        column_frames = frames_in_column(device, major + 1, start.block_type)
        if minor >= column_frames:
            major += 1
            minor = 0
            continue
        yield FrameAddress(
            block_type=start.block_type,
            row=start.row,
            major=major,
            minor=minor,
        )
        produced += 1
        minor += 1


@dataclass
class ConfigMemory:
    """Frame store for one device, keyed by encoded FAR."""

    device: Device
    frames: dict[int, tuple[int, ...]] = field(default_factory=dict)
    configure_count: int = 0

    def write_frame(self, far: FrameAddress, words: tuple[int, ...]) -> None:
        if len(words) != self.device.family.frame_words:
            raise ValueError(
                f"frame at {far} must be {self.device.family.frame_words} words"
            )
        self.frames[far.encode()] = tuple(words)

    def read_frame(self, far: FrameAddress) -> tuple[int, ...]:
        """FDRO readback of one frame (zeros when never configured)."""
        return self.frames.get(
            far.encode(), (0,) * self.device.family.frame_words
        )

    def configure(self, bitstream_bytes: bytes) -> None:
        """Apply a partial bitstream: the ICAP write path.

        Walks the packet stream the same way the device would — FAR write,
        CMD=WCFG, type-2 FDRI burst — and commits each data frame to the
        addressed location.  The trailing flush frame of each burst is
        pipeline padding and is not committed.
        """
        words = [
            int.from_bytes(bitstream_bytes[i : i + 4], "big")
            for i in range(0, len(bitstream_bytes), 4)
        ]
        try:
            index = words.index(SYNC_WORD) + 1
        except ValueError:
            raise BitstreamParseError("no sync word") from None

        frame_words = self.device.family.frame_words
        current_far: FrameAddress | None = None
        while index < len(words):
            word = words[index]
            if word == NOOP:
                index += 1
                continue
            header = decode_header(word)
            if header.packet_type == 2:
                if current_far is None:
                    raise BitstreamParseError("FDRI burst without FAR")
                burst = words[index + 1 : index + 1 + header.word_count]
                if len(burst) != header.word_count:
                    raise BitstreamParseError("truncated burst")
                n_frames = header.word_count // frame_words
                data_frames = n_frames - 1  # last frame is the flush
                fars = list(
                    iter_burst_fars(self.device, current_far, data_frames)
                )
                for frame_index, far in enumerate(fars):
                    offset = frame_index * frame_words
                    self.write_frame(
                        far, tuple(burst[offset : offset + frame_words])
                    )
                current_far = None
                index += 1 + header.word_count
                continue
            payload = words[index + 1 : index + 1 + header.word_count]
            if header.opcode is Opcode.WRITE and header.register is ConfigRegister.FAR:
                current_far = FrameAddress.decode(payload[0])
            if (
                header.opcode is Opcode.WRITE
                and header.register is ConfigRegister.CMD
                and payload
                and payload[0] == Command.DESYNC
            ):
                break
            index += 1 + header.word_count
        self.configure_count += 1

    def region_frames(
        self, region: Region, block_type: int
    ) -> list[tuple[FrameAddress, tuple[int, ...]]]:
        """Readback of every *block_type* frame covered by *region*."""
        out = []
        for row in region.row_span:
            for col in region.col_span:
                for minor in range(
                    frames_in_column(self.device, col, block_type)
                ):
                    far = FrameAddress(
                        block_type=block_type,
                        row=row - 1,
                        major=col - 1,
                        minor=minor,
                    )
                    out.append((far, self.read_frame(far)))
        return out

    def region_is_configured(self, region: Region) -> bool:
        """True when every config frame of *region* has been written."""
        return all(
            far.encode() in self.frames
            for far, _ in self.region_frames(region, BLOCK_TYPE_CONFIG)
        )

    def clear_region(self, region: Region) -> None:
        """Blanking (the AGHIGH/shutdown path): drop the region's frames."""
        for block_type in (BLOCK_TYPE_CONFIG, BLOCK_TYPE_BRAM_CONTENT):
            for far, _ in self.region_frames(region, block_type):
                self.frames.pop(far.encode(), None)

"""Configuration scrubbing: SEU detection and repair via readback + PR.

Partially reconfigurable systems routinely pair the readback path with
partial reconfiguration to fight single-event upsets (SEUs): periodically
read frames back, compare against golden signatures, and rewrite any
corrupted frame's region with its partial bitstream.  This module builds
that loop on the :mod:`repro.relocation.memory` substrate:

* :func:`golden_signatures` — per-frame CRC32 signatures of a configured
  region (what a scrubber stores off-chip);
* :func:`inject_upsets` — deterministic fault injection (bit flips in
  random frames) for testing;
* :class:`Scrubber` — scan / detect / repair, with counters.

Repair granularity is the PRR: the scrubber rewrites the region's partial
bitstream (the standard blind-scrub approach), so one scrub pass restores
any number of upsets in that region.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

try:  # soft import: only upset injection draws random bits
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the package
    np = None  # type: ignore[assignment]

from ..bitgen.generator import PartialBitstream
from ..devices.fabric import Region
from ..devices.frames import BLOCK_TYPE_BRAM_CONTENT, BLOCK_TYPE_CONFIG
from ..errors import MissingDependency
from .memory import ConfigMemory

__all__ = ["golden_signatures", "inject_upsets", "ScrubReport", "Scrubber"]


def _frame_crc(words: tuple[int, ...]) -> int:
    data = b"".join(word.to_bytes(4, "big") for word in words)
    return zlib.crc32(data) & 0xFFFFFFFF


def golden_signatures(
    memory: ConfigMemory, region: Region
) -> dict[int, int]:
    """Per-frame CRC32 signatures of *region*, keyed by encoded FAR."""
    signatures: dict[int, int] = {}
    for block_type in (BLOCK_TYPE_CONFIG, BLOCK_TYPE_BRAM_CONTENT):
        for far, words in memory.region_frames(region, block_type):
            signatures[far.encode()] = _frame_crc(words)
    return signatures


def inject_upsets(
    memory: ConfigMemory,
    region: Region,
    *,
    count: int,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> list[int]:
    """Flip *count* random bits in the region's frames; returns the
    encoded FARs of the corrupted frames (duplicates possible).

    Exactly one of ``seed`` / ``rng`` must be given: a seed builds a
    fresh generator (the historical behaviour), while passing the
    experiment's own ``numpy.random.Generator`` lets multi-region fault
    campaigns share one reproducible stream — no module-level RNG state
    anywhere.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if (seed is None) == (rng is None):
        raise ValueError("provide exactly one of seed= or rng=")
    if rng is None:
        if np is None:  # pragma: no cover
            raise MissingDependency(
                "inject_upsets draws bit positions with a numpy "
                "Generator, and numpy is not importable in this "
                "environment",
                dependency="numpy",
            )
        rng = np.random.default_rng(seed)
    frames = [
        far
        for block_type in (BLOCK_TYPE_CONFIG, BLOCK_TYPE_BRAM_CONTENT)
        for far, _ in memory.region_frames(region, block_type)
    ]
    hit: list[int] = []
    frame_words = memory.device.family.frame_words
    for _ in range(count):
        far = frames[int(rng.integers(len(frames)))]
        words = list(memory.read_frame(far))
        word_index = int(rng.integers(frame_words))
        bit = int(rng.integers(32))
        words[word_index] ^= 1 << bit
        memory.write_frame(far, tuple(words))
        hit.append(far.encode())
    return hit


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    frames_scanned: int
    corrupted_fars: list[int] = field(default_factory=list)
    repaired: bool = False

    @property
    def upset_detected(self) -> bool:
        return bool(self.corrupted_fars)


@dataclass
class Scrubber:
    """Readback scrubber for one PRR."""

    memory: ConfigMemory
    region: Region
    golden: dict[int, int]
    repair_bitstream: PartialBitstream
    scrub_count: int = 0
    repairs: int = 0

    @classmethod
    def for_region(
        cls,
        memory: ConfigMemory,
        region: Region,
        repair_bitstream: PartialBitstream,
    ) -> "Scrubber":
        """Snapshot the current (known-good) state as golden."""
        if repair_bitstream.region != region:
            raise ValueError("repair bitstream targets a different region")
        return cls(
            memory=memory,
            region=region,
            golden=golden_signatures(memory, region),
            repair_bitstream=repair_bitstream,
        )

    def scan(self) -> ScrubReport:
        """Readback + compare; no repair."""
        self.scrub_count += 1
        corrupted = []
        scanned = 0
        for block_type in (BLOCK_TYPE_CONFIG, BLOCK_TYPE_BRAM_CONTENT):
            for far, words in self.memory.region_frames(self.region, block_type):
                scanned += 1
                if _frame_crc(words) != self.golden[far.encode()]:
                    corrupted.append(far.encode())
        return ScrubReport(frames_scanned=scanned, corrupted_fars=corrupted)

    def scrub(self) -> ScrubReport:
        """Scan and, when upsets are found, rewrite the region."""
        report = self.scan()
        if report.upset_detected:
            self.memory.configure(self.repair_bitstream.to_bytes())
            self.repairs += 1
            report.repaired = True
        return report

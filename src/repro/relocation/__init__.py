"""Hardware task relocation and context save/restore.

The paper builds on the authors' prior work — on-chip context save and
restore (FCCM'13, ref. [5]) and hardware task relocation (ARC'13, ref.
[6]).  This package implements both on top of the bitstream substrate:
a configuration-memory model with write/readback paths
(:mod:`memory`), bitstream re-addressing between compatible PRRs
(:mod:`relocate`) and task-state snapshots that restore in place or into
another PRR (:mod:`context`).
"""

from .context import TaskContext, restore_context, save_context
from .memory import ConfigMemory, iter_burst_fars
from .scrubber import ScrubReport, Scrubber, golden_signatures, inject_upsets
from .relocate import (
    RelocationError,
    compatible_regions,
    find_compatible_regions,
    find_compatible_regions_naive,
    relocate_bitstream,
)

__all__ = [
    "ConfigMemory",
    "iter_burst_fars",
    "RelocationError",
    "compatible_regions",
    "find_compatible_regions",
    "find_compatible_regions_naive",
    "relocate_bitstream",
    "TaskContext",
    "save_context",
    "restore_context",
    "Scrubber",
    "ScrubReport",
    "golden_signatures",
    "inject_upsets",
]

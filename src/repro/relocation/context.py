"""On-chip context save and restore — the authors' FCCM'13 work [5].

Preempting a hardware task means capturing its live state (FF values and
BRAM contents, which the GCAPTURE command folds into the configuration
frames), storing it, and later restoring it — possibly into a different
compatible PRR, which composes with :mod:`repro.relocation.relocate`.

:class:`TaskContext` is the saved snapshot; :func:`save_context` performs
capture + readback from a :class:`~repro.relocation.memory.ConfigMemory`;
:func:`restore_context` regenerates the restoring partial bitstream
(GRESTORE transfers the frame values back into the flip-flops).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bitgen.generator import PartialBitstream, generate_partial_bitstream
from ..devices.fabric import Device, Region
from ..devices.frames import (
    BLOCK_TYPE_BRAM_CONTENT,
    BLOCK_TYPE_CONFIG,
    FrameAddress,
)
from .memory import ConfigMemory
from .relocate import RelocationError, compatible_regions

__all__ = ["TaskContext", "save_context", "restore_context"]


@dataclass(frozen=True)
class TaskContext:
    """A saved hardware-task context: every frame of its PRR."""

    task_name: str
    device_name: str
    region: Region
    frames: tuple[tuple[int, tuple[int, ...]], ...]  #: (encoded FAR, words)

    @property
    def frame_count(self) -> int:
        return len(self.frames)

    @property
    def size_bytes(self) -> int:
        """Storage footprint of the snapshot."""
        if not self.frames:
            return 0
        words_per_frame = len(self.frames[0][1])
        return self.frame_count * words_per_frame * 4

    def payload_map(self) -> dict[int, tuple[int, ...]]:
        return dict(self.frames)


def save_context(
    memory: ConfigMemory, region: Region, *, task_name: str
) -> TaskContext:
    """Capture and read back every frame of *region* (GCAPTURE + FDRO)."""
    if not memory.device.is_valid_prr(region):
        raise ValueError(f"{region} is not a valid PRR on {memory.device.name}")
    frames: list[tuple[int, tuple[int, ...]]] = []
    for block_type in (BLOCK_TYPE_CONFIG, BLOCK_TYPE_BRAM_CONTENT):
        for far, words in memory.region_frames(region, block_type):
            frames.append((far.encode(), words))
    return TaskContext(
        task_name=task_name,
        device_name=memory.device.name,
        region=region,
        frames=tuple(frames),
    )


def restore_context(
    device: Device,
    context: TaskContext,
    *,
    target: Region | None = None,
) -> PartialBitstream:
    """Build the partial bitstream restoring *context*.

    With ``target=None`` the context restores in place; otherwise it is
    relocated to the (compatibility-checked) target region — preempt on
    one PRR, resume on another.
    """
    if device.name != context.device_name:
        raise RelocationError(
            f"context saved on {context.device_name} cannot restore on "
            f"{device.name}"
        )
    destination = target if target is not None else context.region
    if destination != context.region and not compatible_regions(
        device, context.region, destination
    ):
        raise RelocationError(
            f"target {destination} is not compatible with the context's "
            f"region {context.region}"
        )

    payloads = context.payload_map()
    row_offset = destination.row - context.region.row
    col_offset = destination.col - context.region.col

    def payload_fn(block_type: int, far_word: int) -> list[int]:
        far = FrameAddress.decode(far_word)
        source_far = FrameAddress(
            block_type=far.block_type,
            row=far.row - row_offset,
            major=far.major - col_offset,
            minor=far.minor,
            top=far.top,
        )
        try:
            return list(payloads[source_far.encode()])
        except KeyError:
            raise RelocationError(
                f"context for {context.task_name!r} lacks frame {source_far}"
            ) from None

    return generate_partial_bitstream(
        device,
        destination,
        design_name=f"{context.task_name}@restore",
        payload_fn=payload_fn,
    )

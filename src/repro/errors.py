"""``repro.errors`` — the shared typed error taxonomy.

Every failure the library can report deliberately is an instance of
:class:`ReproError`, so callers (the CLI, :mod:`repro.serve`, user code)
can write one ``except ReproError`` and branch on type instead of
pattern-matching message strings:

====================  ===========================================  =====
class                 meaning                                      exit
====================  ===========================================  =====
InvalidInput          caller passed nonsense (bad counts, unknown  2
                      device, bad mode string, ...)
InfeasiblePlacement   the model says "no": no feasible PRR exists  3
ParseError            external input (``.syr`` text, trace JSON)   4
                      could not be parsed
DeadlineExceeded      a time budget ran out before any result      5
                      existed (anytime paths return degraded
                      results instead of raising)
Overloaded            a bounded queue shed the request; retry       6
                      after ``retry_after_s``
BackendBroken         a worker pool / subprocess backend died and   7
                      recovery was exhausted
MissingDependency     an optional/runtime dependency (numpy for     8
                      the batch engine) is not importable
====================  ===========================================  =====

Back-compat is part of the contract: the taxonomy *multiply inherits*
from the stdlib types the library used to raise (``InvalidInput`` is a
``ValueError``, ``InfeasiblePlacement`` a ``LookupError``, ``ParseError``
a ``ValueError``), so pre-existing ``except ValueError`` call sites and
tests keep working unchanged.

``retryable`` tells a serving layer whether re-submitting the identical
request can ever succeed (``Overloaded``/``BackendBroken`` yes;
``InvalidInput``/``InfeasiblePlacement`` no).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ReproError",
    "InvalidInput",
    "InfeasiblePlacement",
    "ParseError",
    "DeadlineExceeded",
    "Overloaded",
    "BackendBroken",
    "MissingDependency",
]


class ReproError(Exception):
    """Base of the typed taxonomy.

    ``code`` is a stable machine-readable slug (CLI prefixes messages
    with it), ``exit_code`` the process exit status the CLI maps the
    error to, and ``retryable`` whether re-submitting the same request
    later can succeed.
    """

    code: str = "error"
    exit_code: int = 1
    retryable: bool = False

    def __init__(self, message: str = "", **details: Any) -> None:
        super().__init__(message)
        self.message = message
        self.details = details

    def __str__(self) -> str:  # KeyError quotes its args; bypass that
        return self.message

    def describe(self) -> str:
        """``code: message [k=v ...]`` — the CLI's one-line rendering."""
        extras = " ".join(
            f"{key}={value!r}"
            for key, value in sorted(self.details.items())
            if value is not None
        )
        text = f"{self.code}: {self.message}"
        return f"{text} [{extras}]" if extras else text


class InvalidInput(ReproError, ValueError):
    """The caller's request can never succeed as stated.

    Where a closed set of valid choices exists (device names, explore
    modes) the message lists them.
    """

    code = "invalid_input"
    exit_code = 2


class InfeasiblePlacement(ReproError, LookupError):
    """The cost model proved no feasible PRR/geometry exists.

    Not an input error: the request was well-formed, the fabric just
    cannot host it.  ``repro.core.placement_search.PlacementNotFoundError``
    subclasses this, so existing handlers keep working.
    """

    code = "infeasible_placement"
    exit_code = 3


class ParseError(ReproError, ValueError):
    """External text (a ``.syr`` report, a trace file) failed to parse.

    ``line_no`` (1-based) and ``line`` pin the offending input when the
    failure is attributable to one line.
    """

    code = "parse_error"
    exit_code = 4

    def __init__(
        self,
        message: str = "",
        *,
        line_no: int | None = None,
        line: str | None = None,
        **details: Any,
    ) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        if line is not None:
            preview = line if len(line) <= 120 else line[:117] + "..."
            message = f"{message} (offending text: {preview!r})"
        super().__init__(message, **details)
        self.line_no = line_no
        self.line = line


class DeadlineExceeded(ReproError):
    """A deadline expired before *any* result existed.

    Anytime paths (``explore(..., deadline_s=...)``) prefer returning a
    degraded result over raising; this error is for hard boundaries —
    a queued request whose budget elapsed before service began.
    """

    code = "deadline_exceeded"
    exit_code = 5
    retryable = True

    def __init__(
        self,
        message: str = "",
        *,
        deadline_s: float | None = None,
        elapsed_s: float | None = None,
        **details: Any,
    ) -> None:
        super().__init__(
            message, deadline_s=deadline_s, elapsed_s=elapsed_s, **details
        )
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s


class Overloaded(ReproError):
    """A bounded queue shed the request (backpressure).

    ``retry_after_s`` is the server's hint for when capacity is likely
    to exist again.
    """

    code = "overloaded"
    exit_code = 6
    retryable = True

    def __init__(
        self,
        message: str = "",
        *,
        retry_after_s: float | None = None,
        queue_depth: int | None = None,
        **details: Any,
    ) -> None:
        super().__init__(
            message, retry_after_s=retry_after_s, queue_depth=queue_depth, **details
        )
        self.retry_after_s = retry_after_s
        self.queue_depth = queue_depth


class BackendBroken(ReproError, RuntimeError):
    """A worker backend (process pool, subprocess) died unrecoverably.

    Raised only after retry/backoff *and* the serial fallback failed;
    ``cause`` carries the last underlying exception's text.
    """

    code = "backend_broken"
    exit_code = 7
    retryable = True

    def __init__(self, message: str = "", *, cause: str | None = None, **details: Any) -> None:
        super().__init__(message, cause=cause, **details)
        self.cause = cause


class MissingDependency(ReproError, ImportError):
    """A dependency the requested feature needs could not be imported.

    Raised instead of a bare ``ImportError`` so callers get the one-line
    ``code: message`` treatment (and an install hint) rather than a
    traceback.  ``dependency`` names the missing distribution.
    """

    code = "missing_dependency"
    exit_code = 8

    def __init__(
        self,
        message: str = "",
        *,
        dependency: str | None = None,
        **details: Any,
    ) -> None:
        super().__init__(message, dependency=dependency, **details)
        self.dependency = dependency

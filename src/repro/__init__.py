"""repro — partial region and bitstream cost models for PR FPGAs.

A from-scratch Python reproduction of Morales-Villanueva & Gordon-Ross,
"Partial Region and Bitstream Cost Models for Hardware Multitasking on
Partially Reconfigurable FPGAs" (IPPS 2015), together with every substrate
the paper's evaluation depends on: device fabric models, an XST-like
synthesis engine, workload (PRM) generators, a place-and-route simulator,
a word-exact partial bitstream generator/parser, reconfiguration
controller models, prior-work baseline models and a hardware-multitasking
simulator.

Quickstart::

    from repro import core, devices, synth, workloads

    prm = workloads.build_fir(device_family=devices.VIRTEX5)
    report = synth.synthesize(prm, devices.VIRTEX5)
    result = core.evaluate_prm(report.requirements, devices.XC5VLX110T)
    print(result.summary())
"""

from . import core, devices, errors, serve

__version__ = "1.0.0"

__all__ = ["core", "devices", "errors", "serve", "__version__"]

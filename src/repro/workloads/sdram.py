"""SDRAM controller PRM — "a 32-bit synchronous dynamic random access
memory (SDRAM) controller" (Section IV).

Structure: the command FSM (init → idle → activate → read/write →
precharge → refresh), refresh/timing counters, row/column address mux,
bidirectional data capture registers, bank-state comparators and command
decode logic.  No DSPs or BRAMs — the reference design is pure
CLB logic, which is why its Table V PRR has only CLB columns.
"""

from __future__ import annotations

from ..devices.family import DeviceFamily, VIRTEX5, VIRTEX6
from ..synth.netlist import (
    FSM,
    Adder,
    Comparator,
    LogicCloud,
    Module,
    Mux,
    Netlist,
    OptimizationHints,
    RegisterBank,
)
from .common import SynthesisTargets, calibrate

__all__ = ["SDRAM_TARGETS", "build_sdram"]

SDRAM_TARGETS: dict[str, SynthesisTargets] = {
    VIRTEX5.name: SynthesisTargets(
        lut_ff_pairs=332,
        luts=157,
        ffs=292,
        dsps=0,
        brams=0,
        hints=OptimizationHints(
            combinable_luts=0,
            routethru_luts=34,
            duplicable_ffs=0,
            crosspackable_pairs=42,
        ),
    ),
    VIRTEX6.name: SynthesisTargets(
        lut_ff_pairs=385,
        luts=181,
        ffs=324,
        dsps=0,
        brams=0,
        hints=OptimizationHints(
            combinable_luts=0,
            routethru_luts=34,
            duplicable_ffs=0,
            crosspackable_pairs=49,
        ),
    ),
}


def build_sdram(
    family: DeviceFamily = VIRTEX5,
    *,
    data_width: int = 32,
    row_bits: int = 13,
    calibrated: bool = True,
) -> Netlist:
    """Build the SDRAM controller PRM netlist."""
    top = Module("sdram_top")

    # Command state machine.
    top.add(FSM(states=12, inputs=8, outputs=8, control_set="ctrl"))

    # Timing machinery: refresh interval, precharge timer, init counter.
    top.add(Adder(width=12, registered=True, control_set="refresh"))
    top.add(Adder(width=8, registered=True, control_set="timer"))
    top.add(Adder(width=16, registered=True, control_set="init"))

    # Row/column/precharge address mux onto the SDRAM address bus
    # (registered at the pads).
    top.add(Mux(ways=3, width=row_bits, registered=True, control_set="addr"))

    # Data capture: input + output registers for the DQ bus.
    top.add(RegisterBank(width=2 * data_width, control_set="dq_ce"))

    # Bank state tracking.
    top.add(Comparator(width=12))
    top.add(Comparator(width=12))

    # Command decode (registered onto the command pins).
    top.add(LogicCloud(fanin=6, width=8, registered=True, control_set="cmd"))

    netlist = Netlist(name="sdram", top=top)
    if not calibrated:
        return netlist
    if family.name not in SDRAM_TARGETS:
        raise ValueError(
            f"no SDRAM reference targets for family {family.name!r}; "
            "use calibrated=False"
        )
    if (data_width, row_bits) != (32, 13):
        raise ValueError(
            "calibrated SDRAM requires the paper's default parameters; "
            "use calibrated=False for custom sweeps"
        )
    return calibrate(netlist, family, SDRAM_TARGETS[family.name])

"""MIPS PRM — "a 5-stage pipeline of MIPS R3000 32-bit processor"
(Section IV).

Structure: four pipeline register banks (IF/ID, ID/EX, EX/MEM, MEM/WB), a
dual-port LUTRAM register file, an ALU (adder + logic cloud + result mux),
a DSP-mapped 32x32 multiply unit (4 DSP48 tiles), BRAM instruction and
data memories (2 + 4 RAMB36 = the reference's 6 BRAMs), branch address
adder, hazard/forwarding comparators and a control FSM.  The many distinct
control sets (per-stage enables, stall/flush domains) are what make MIPS
the router's hardest customer in Table VI.
"""

from __future__ import annotations

from ..devices.family import DeviceFamily, VIRTEX5, VIRTEX6
from ..synth.netlist import (
    FSM,
    Adder,
    Comparator,
    LogicCloud,
    Memory,
    Module,
    Multiplier,
    Mux,
    Netlist,
    OptimizationHints,
    RegisterBank,
)
from .common import SynthesisTargets, calibrate

__all__ = ["MIPS_TARGETS", "build_mips"]

MIPS_TARGETS: dict[str, SynthesisTargets] = {
    VIRTEX5.name: SynthesisTargets(
        lut_ff_pairs=2617,
        luts=1527,
        ffs=1592,
        dsps=4,
        brams=6,
        hints=OptimizationHints(
            combinable_luts=0,
            routethru_luts=1,
            duplicable_ffs=0,
            crosspackable_pairs=435,
        ),
    ),
    VIRTEX6.name: SynthesisTargets(
        lut_ff_pairs=3239,
        luts=2095,
        ffs=1860,
        dsps=4,
        brams=6,
        hints=OptimizationHints(
            combinable_luts=163,
            routethru_luts=0,
            duplicable_ffs=0,
            crosspackable_pairs=446,
        ),
    ),
}

#: Pipeline register bank widths (IF/ID, ID/EX, EX/MEM, MEM/WB).
_PIPELINE_WIDTHS = {"if_id": 64, "id_ex": 150, "ex_mem": 107, "mem_wb": 71}


def build_mips(
    family: DeviceFamily = VIRTEX5,
    *,
    xlen: int = 32,
    imem_words: int = 2048,
    dmem_words: int = 4096,
    calibrated: bool = True,
) -> Netlist:
    """Build the MIPS 5-stage pipeline PRM netlist."""
    top = Module("mips_top")

    # Pipeline register banks, one control set (stall/flush domain) each.
    for stage, width in _PIPELINE_WIDTHS.items():
        top.add(RegisterBank(width=width, control_set=f"stage_{stage}"))
    top.add(RegisterBank(width=xlen, control_set="pc"))  # program counter

    # Register file: 32 x xlen dual-port LUTRAM.
    top.add(Memory(depth=32, width=xlen, dual_port=True, control_set="rf_we"))

    # Execute stage.
    top.add(Adder(width=xlen, registered=False))  # ALU add/sub
    top.add(LogicCloud(fanin=12, width=xlen))  # ALU logic ops + shifter mux
    top.add(Mux(ways=8, width=xlen))  # ALU result select
    top.add(Adder(width=xlen, registered=False))  # branch target adder
    top.add(
        Multiplier(a_width=xlen, b_width=xlen, use_dsp=True, control_set="mult_en")
    )

    # Memories: 2 + 4 RAMB36 with the default sizes.
    top.add(Memory(depth=imem_words, width=xlen, force_bram=True, control_set="imem"))
    top.add(Memory(depth=dmem_words, width=xlen, force_bram=True, control_set="dmem"))

    # Hazard detection / forwarding.
    top.add(LogicCloud(fanin=10, width=20, control_set=""))
    for index in range(4):
        top.add(Comparator(width=5, control_set=""))

    # Main control.
    top.add(FSM(states=8, inputs=12, outputs=16, control_set="ctrl"))

    netlist = Netlist(name="mips", top=top)
    if not calibrated:
        return netlist
    if family.name not in MIPS_TARGETS:
        raise ValueError(
            f"no MIPS reference targets for family {family.name!r}; "
            "use calibrated=False"
        )
    if (xlen, imem_words, dmem_words) != (32, 2048, 4096):
        raise ValueError(
            "calibrated MIPS requires the paper's default parameters; "
            "use calibrated=False for custom sweeps"
        )
    return calibrate(netlist, family, MIPS_TARGETS[family.name])

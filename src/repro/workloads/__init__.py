"""PRM (PR module) generators.

The three paper workloads — :func:`build_fir`, :func:`build_mips`,
:func:`build_sdram` — build structural netlists calibrated to the
reference synthesis counts of the paper's evaluation (see DESIGN.md §5);
``calibrated=False`` gives the raw structure for sweeps.  The extras
(:func:`build_aes`, :func:`build_fft`, :func:`build_matmul`,
:func:`build_uart`) are structure-only PRMs for exploration and
multitasking studies.
"""

from .common import CalibrationError, SynthesisTargets, calibrate
from .extras import build_aes, build_fft, build_matmul, build_uart
from .fir import FIR_TARGETS, build_fir
from .mips import MIPS_TARGETS, build_mips
from .sdram import SDRAM_TARGETS, build_sdram

__all__ = [
    "SynthesisTargets",
    "CalibrationError",
    "calibrate",
    "build_fir",
    "build_mips",
    "build_sdram",
    "build_aes",
    "build_fft",
    "build_matmul",
    "build_uart",
    "FIR_TARGETS",
    "MIPS_TARGETS",
    "SDRAM_TARGETS",
]

#: The paper's three evaluation PRMs, keyed by name.
PAPER_WORKLOADS = {
    "fir": build_fir,
    "mips": build_mips,
    "sdram": build_sdram,
}

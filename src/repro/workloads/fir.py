"""FIR filter PRM — "a finite impulse response (FIR) filter with 32
coefficients" (Section IV).

Structure: a coefficient LUTRAM, an SRL-based input delay line, one
DSP-mapped multiplier per tap, a wide accumulate adder, an output register
and a small control FSM.  The reference synthesis inferred 32 DSP48Es on
Virtex-5 but only 27 on Virtex-6 (XST folds symmetric taps more
aggressively there), so the tap-multiplier count is family-calibrated.
"""

from __future__ import annotations

from ..devices.family import DeviceFamily, VIRTEX5, VIRTEX6
from ..synth.netlist import (
    FSM,
    Adder,
    Memory,
    Module,
    Multiplier,
    Netlist,
    OptimizationHints,
    RegisterBank,
    ShiftRegister,
)
from .common import SynthesisTargets, calibrate

__all__ = ["FIR_TARGETS", "build_fir"]

#: Reference synthesis counts (DESIGN.md §5) and P&R optimization slack
#: (DESIGN.md §6) per family.
FIR_TARGETS: dict[str, SynthesisTargets] = {
    VIRTEX5.name: SynthesisTargets(
        lut_ff_pairs=1300,
        luts=1150,
        ffs=394,
        dsps=32,
        brams=0,
        hints=OptimizationHints(
            combinable_luts=135,
            routethru_luts=0,
            duplicable_ffs=16,
            crosspackable_pairs=99,
        ),
    ),
    VIRTEX6.name: SynthesisTargets(
        lut_ff_pairs=1467,
        luts=1316,
        ffs=394,
        dsps=27,
        brams=0,
        hints=OptimizationHints(
            combinable_luts=317,
            routethru_luts=0,
            duplicable_ffs=0,
            crosspackable_pairs=151,
        ),
    ),
}

#: DSP-mapped tap multipliers the reference synthesis kept, per family.
_DSP_TAPS = {VIRTEX5.name: 32, VIRTEX6.name: 27}


def build_fir(
    family: DeviceFamily = VIRTEX5,
    *,
    taps: int = 32,
    data_width: int = 16,
    coef_width: int = 16,
    accumulator_width: int = 40,
    calibrated: bool = True,
) -> Netlist:
    """Build the FIR PRM netlist.

    With the paper's default parameters and ``calibrated=True`` (requires a
    family with reference targets: Virtex-5 or Virtex-6), synthesis
    reproduces the reference resource counts exactly.  ``calibrated=False``
    returns the raw structural netlist for any family/parameters.
    """
    top = Module("fir_top")
    top.add(Memory(depth=taps, width=coef_width, control_set=""))
    top.add(
        ShiftRegister(depth=taps, width=data_width, tapped=False, control_set="clk_en")
    )
    dsp_taps = _DSP_TAPS.get(family.name, taps) if calibrated else taps
    for _ in range(dsp_taps):
        top.add(
            Multiplier(
                a_width=data_width,
                b_width=coef_width,
                use_dsp=True,
                control_set="clk_en",
            )
        )
    top.add(Adder(width=accumulator_width, registered=True, control_set="acc_en"))
    top.add(RegisterBank(width=accumulator_width, control_set="out_en"))
    top.add(FSM(states=4, inputs=3, outputs=4, control_set="ctrl"))

    netlist = Netlist(name="fir", top=top)
    if not calibrated:
        return netlist
    if family.name not in FIR_TARGETS:
        raise ValueError(
            f"no FIR reference targets for family {family.name!r}; "
            "use calibrated=False"
        )
    if (taps, data_width, coef_width, accumulator_width) != (32, 16, 16, 40):
        raise ValueError(
            "calibrated FIR requires the paper's default parameters; "
            "use calibrated=False for custom sweeps"
        )
    return calibrate(netlist, family, FIR_TARGETS[family.name])

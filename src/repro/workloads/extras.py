"""Additional structural PRMs for exploration/multitasking studies.

These are not paper workloads; they populate the design-space explorer
and the hardware-multitasking simulator with realistically shaped tasks
of varied resource mixes.  All are structure-only (no calibration).
"""

from __future__ import annotations

from ..synth.netlist import (
    FSM,
    Adder,
    Comparator,
    LogicCloud,
    Memory,
    Module,
    Multiplier,
    Netlist,
    RegisterBank,
    ShiftRegister,
)

__all__ = ["build_aes", "build_fft", "build_matmul", "build_uart"]


def build_aes(*, rounds_unrolled: int = 2) -> Netlist:
    """AES-128 core: BRAM S-boxes + wide XOR clouds, BRAM-heavy profile."""
    if rounds_unrolled < 1:
        raise ValueError("rounds_unrolled must be >= 1")
    top = Module("aes_top")
    for round_index in range(rounds_unrolled):
        cs = f"round{round_index}"
        # 16 S-box lookups share 4 dual-port BRAMs per round (256x8 each,
        # forced to BRAM as the reference cores do for timing).
        for _ in range(4):
            top.add(
                Memory(depth=256, width=32, dual_port=True, force_bram=True,
                       control_set=cs)
            )
        # MixColumns + AddRoundKey XOR network.
        top.add(LogicCloud(fanin=8, width=128, registered=True, control_set=cs))
    # Key schedule.
    top.add(RegisterBank(width=128, control_set="key"))
    top.add(LogicCloud(fanin=6, width=32, registered=True, control_set="key"))
    top.add(FSM(states=12, inputs=4, outputs=8, control_set="ctrl"))
    return Netlist(name="aes", top=top)


def build_fft(*, points: int = 256, width: int = 16) -> Netlist:
    """Radix-2 pipelined FFT: DSP butterflies + BRAM delay/twiddle stores."""
    if points < 4 or points & (points - 1):
        raise ValueError("points must be a power of two >= 4")
    stages = points.bit_length() - 1
    top = Module("fft_top")
    for stage in range(stages):
        cs = f"stage{stage}"
        # Complex multiply: 4 real multipliers folded to 3 DSP tiles.
        for _ in range(3):
            top.add(Multiplier(a_width=width, b_width=width, control_set=cs))
        # Butterfly add/sub.
        top.add(Adder(width=width + 1, registered=True, control_set=cs))
        top.add(Adder(width=width + 1, registered=True, control_set=cs))
        # Stage delay line: SRL for short stages, BRAM for long ones.
        delay = points >> (stage + 1)
        if delay >= 128:
            top.add(Memory(depth=delay, width=2 * width, force_bram=True,
                           control_set=cs))
        elif delay >= 1:
            top.add(ShiftRegister(depth=delay, width=2 * width, control_set=cs))
    # Twiddle ROM.
    top.add(Memory(depth=points // 2, width=2 * width, force_bram=True,
                   control_set="twiddle"))
    top.add(FSM(states=6, inputs=4, outputs=6, control_set="ctrl"))
    return Netlist(name="fft", top=top)


def build_matmul(*, tile: int = 4, width: int = 16) -> Netlist:
    """Blocked matrix-multiply accelerator: a tile x tile MAC array."""
    if tile < 1:
        raise ValueError("tile must be >= 1")
    top = Module("matmul_top")
    for row in range(tile):
        for col in range(tile):
            cs = f"pe_{row}_{col}"
            top.add(Multiplier(a_width=width, b_width=width, control_set=cs))
            top.add(Adder(width=2 * width + 4, registered=True, control_set=cs))
    # Operand buffers.
    top.add(Memory(depth=1024, width=tile * width, force_bram=True,
                   control_set="buf_a"))
    top.add(Memory(depth=1024, width=tile * width, force_bram=True,
                   control_set="buf_b"))
    top.add(FSM(states=8, inputs=6, outputs=10, control_set="ctrl"))
    top.add(Adder(width=12, registered=True, control_set="index"))
    return Netlist(name="matmul", top=top)


def build_uart(*, fifo_depth: int = 16) -> Netlist:
    """UART with TX/RX FIFOs: a tiny CLB-only PRM."""
    if fifo_depth < 1:
        raise ValueError("fifo_depth must be >= 1")
    top = Module("uart_top")
    top.add(FSM(states=6, inputs=3, outputs=4, control_set="tx"))
    top.add(FSM(states=6, inputs=3, outputs=4, control_set="rx"))
    top.add(Adder(width=12, registered=True, control_set="baud"))
    top.add(ShiftRegister(depth=10, width=1, control_set="tx"))
    top.add(ShiftRegister(depth=10, width=1, control_set="rx"))
    for cs in ("tx", "rx"):
        top.add(Memory(depth=fifo_depth, width=8, dual_port=True, control_set=cs))
        top.add(Adder(width=5, registered=True, control_set=cs))
        top.add(Comparator(width=5, control_set=cs))
    top.add(RegisterBank(width=8, control_set="status"))
    return Netlist(name="uart", top=top)

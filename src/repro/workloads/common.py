"""Shared machinery for calibrated workload (PRM) generators.

The three paper PRMs (FIR, MIPS, SDRAM) must synthesize to the reference
resource counts reconstructed from the paper's Tables V/VI (see DESIGN.md
§5).  Each generator builds its real structural netlist first, then
:func:`calibrate` measures the structural counts, verifies they fit under
the reference targets, and appends one :class:`GlueLogic` component
carrying the residual — modelling the interface/control logic of the
reference RTL that the macro IR does not itemize.  The calibration is an
explicit, validated build step, not a mapper fudge: synthesizing the
result reproduces the targets exactly, and ``calibrated=False`` skips the
step for structure-only studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.family import DeviceFamily
from ..errors import InvalidInput
from ..synth.library import library_for
from ..synth.mapper import map_netlist
from ..synth.netlist import GlueLogic, Netlist, OptimizationHints

__all__ = ["SynthesisTargets", "CalibrationError", "calibrate"]


@dataclass(frozen=True, slots=True)
class SynthesisTargets:
    """Reference synthesis counts for one (workload, family) pair.

    ``full_pairs`` is derived: ``luts + ffs - lut_ff_pairs``.
    """

    lut_ff_pairs: int
    luts: int
    ffs: int
    dsps: int
    brams: int
    hints: OptimizationHints = OptimizationHints()

    @property
    def full_pairs(self) -> int:
        return self.luts + self.ffs - self.lut_ff_pairs

    def __post_init__(self) -> None:
        if self.full_pairs < 0:
            raise ValueError(
                "targets violate LUT_FF_req <= LUT_req + FF_req"
            )
        if self.lut_ff_pairs < max(self.luts, self.ffs):
            raise ValueError(
                "targets violate LUT_FF_req >= max(LUT_req, FF_req)"
            )


class CalibrationError(InvalidInput):
    """Structural netlist counts exceed the reference targets.

    Raised when a generator's structural parts are larger than the counts
    the reference design synthesized to — the structure must be shrunk,
    never silently truncated.
    """


def calibrate(
    netlist: Netlist, family: DeviceFamily, targets: SynthesisTargets
) -> Netlist:
    """Append the glue residual so synthesis reproduces *targets* exactly.

    Validates structural-count headroom (every primitive class must be at
    or under target) and pairing feasibility of the residual.
    """
    counts = map_netlist(netlist, library_for(family))
    structural_full = min(counts.paired_ffs, counts.luts, counts.ffs)

    checks = (
        ("LUTs", counts.luts, targets.luts),
        ("FFs", counts.ffs, targets.ffs),
        ("DSPs", counts.dsps, targets.dsps),
        ("BRAMs", counts.brams, targets.brams),
        ("full pairs", structural_full, targets.full_pairs),
    )
    for label, have, want in checks:
        if have > want:
            raise CalibrationError(
                f"{netlist.name} [{family.name}]: structural {label} "
                f"({have}) exceed reference target ({want})"
            )
    if counts.dsps != targets.dsps:
        raise CalibrationError(
            f"{netlist.name} [{family.name}]: structural DSPs "
            f"({counts.dsps}) must equal the target ({targets.dsps}) — "
            "DSP inference is fully structural"
        )
    if counts.brams != targets.brams:
        raise CalibrationError(
            f"{netlist.name} [{family.name}]: structural BRAMs "
            f"({counts.brams}) must equal the target ({targets.brams}) — "
            "BRAM inference is fully structural"
        )

    glue_luts = targets.luts - counts.luts
    glue_ffs = targets.ffs - counts.ffs
    glue_full = targets.full_pairs - structural_full
    if glue_full > min(glue_luts, glue_ffs):
        raise CalibrationError(
            f"{netlist.name} [{family.name}]: residual full pairs "
            f"({glue_full}) cannot exceed residual LUTs/FFs "
            f"({glue_luts}/{glue_ffs})"
        )
    if glue_luts or glue_ffs:
        netlist.top.add(
            GlueLogic(
                luts=glue_luts,
                ffs=glue_ffs,
                paired_ffs=glue_full,
                control_set="glue",
            )
        )
    netlist.hints = targets.hints
    return netlist

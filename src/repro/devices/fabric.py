"""Device fabric model: a row/column grid of typed resource columns.

Virtex-5-class devices organize the fabric as ``rows x columns`` where every
column holds one resource kind for its full height and each (row, column)
cell corresponds to one column-worth of resources in that row (e.g. 20 CLBs
for a Virtex-5 CLB column).  A PRR is a rectangle: ``H`` contiguous rows by
``W`` contiguous columns, and may only cover CLB/DSP/BRAM columns.

:class:`Device` captures a concrete device: its family, row count and
column-kind sequence.  It answers the queries the Fig. 1 search flow and the
place-and-route substrate need: column windows, per-kind counts, resource
capacities of rectangular regions, and PRR validity checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .family import DeviceFamily
from .resources import ColumnKind, ResourceVector
from .window_index import ColumnWindowIndex

__all__ = ["Device", "Region", "column_kind_counts"]


def column_kind_counts(kinds: Sequence[ColumnKind]) -> ResourceVector:
    """Count CLB/DSP/BRAM columns in a kind sequence.

    Raises :class:`ValueError` if the sequence contains a kind that cannot
    be part of a PRR (IOB/CLK).
    """
    clb = dsp = bram = 0
    for kind in kinds:
        if kind is ColumnKind.CLB:
            clb += 1
        elif kind is ColumnKind.DSP:
            dsp += 1
        elif kind is ColumnKind.BRAM:
            bram += 1
        else:
            raise ValueError(f"{kind} column cannot be part of a PRR")
    return ResourceVector(clb=clb, dsp=dsp, bram=bram)


@dataclass(frozen=True, slots=True)
class Region:
    """A rectangular fabric region: rows ``[row, row+height)`` by columns
    ``[col, col+width)``.

    Rows are numbered bottom-up from 1 as in the paper ("The search for a
    PRR starts at the bottom of the device fabric (row = 1)"); columns are
    numbered left-to-right from 1.
    """

    row: int
    col: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.row < 1 or self.col < 1:
            raise ValueError("row and col are 1-based and must be >= 1")
        if self.height < 1 or self.width < 1:
            raise ValueError("height and width must be >= 1")

    @property
    def row_span(self) -> range:
        """1-based rows covered, bottom to top."""
        return range(self.row, self.row + self.height)

    @property
    def col_span(self) -> range:
        """1-based columns covered, left to right."""
        return range(self.col, self.col + self.width)

    @property
    def size(self) -> int:
        """PRR_size = H * W (eq. (7))."""
        return self.height * self.width

    def overlaps(self, other: "Region") -> bool:
        """True when the two rectangles share at least one cell."""
        return not (
            self.row + self.height <= other.row
            or other.row + other.height <= self.row
            or self.col + self.width <= other.col
            or other.col + other.width <= self.col
        )

    def __repr__(self) -> str:
        return (
            f"Region(row={self.row}, col={self.col}, "
            f"height={self.height}, width={self.width})"
        )


@dataclass(frozen=True)
class Device:
    """A concrete FPGA device: family constants + fabric layout.

    Parameters
    ----------
    name:
        Device part name, e.g. ``"xc5vlx110t"``.
    family:
        The :class:`~repro.devices.family.DeviceFamily` constants.
    rows:
        Number of fabric rows (``R`` in the paper; clock regions stacked
        vertically — the LX110T has 8, the LX75T has 3).
    columns:
        Left-to-right sequence of column kinds.  The layout is uniform
        across rows, matching Virtex-class devices where a column keeps its
        kind for the full device height.
    """

    name: str
    family: DeviceFamily
    rows: int
    columns: tuple[ColumnKind, ...]
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError("device must have at least one row")
        if not self.columns:
            raise ValueError("device must have at least one column")
        object.__setattr__(self, "columns", tuple(self.columns))

    # -- basic geometry -----------------------------------------------------

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column_kind(self, col: int) -> ColumnKind:
        """Kind of 1-based column *col*."""
        if not 1 <= col <= self.num_columns:
            raise IndexError(f"column {col} out of range 1..{self.num_columns}")
        return self.columns[col - 1]

    def columns_of_kind(self, kind: ColumnKind) -> tuple[int, ...]:
        """1-based indices of all columns of *kind*."""
        return tuple(
            index + 1 for index, k in enumerate(self.columns) if k is kind
        )

    def count_columns(self, kind: ColumnKind) -> int:
        return sum(1 for k in self.columns if k is kind)

    @property
    def dsp_column_count(self) -> int:
        """Number of DSP columns in the fabric.

        Drives the eq. (3) vs eq. (4) choice: "some Xilinx devices include
        only one DSP column in the fabric, which sets W_DSP = 1".
        """
        return self.count_columns(ColumnKind.DSP)

    @property
    def has_single_dsp_column(self) -> bool:
        return self.dsp_column_count == 1

    # -- capacities -----------------------------------------------------------

    @property
    def total_resources(self) -> ResourceVector:
        """Device-wide CLB/DSP/BRAM counts."""
        fam = self.family
        return ResourceVector(
            clb=self.count_columns(ColumnKind.CLB) * fam.clb_per_col * self.rows,
            dsp=self.count_columns(ColumnKind.DSP) * fam.dsp_per_col * self.rows,
            bram=self.count_columns(ColumnKind.BRAM) * fam.bram_per_col * self.rows,
        )

    @property
    def total_luts(self) -> int:
        return self.family.luts_in_clbs(self.total_resources.clb)

    @property
    def total_ffs(self) -> int:
        return self.family.ffs_in_clbs(self.total_resources.clb)

    def region_column_kinds(self, region: Region) -> tuple[ColumnKind, ...]:
        """Kinds of the columns covered by *region* (left to right)."""
        self._check_region_bounds(region)
        return self.columns[region.col - 1 : region.col - 1 + region.width]

    def region_column_counts(self, region: Region) -> ResourceVector:
        """(W_CLB, W_DSP, W_BRAM) of a region.

        Raises :class:`ValueError` if the region covers an IOB or CLK
        column, which disqualifies it as a PRR.
        """
        return column_kind_counts(self.region_column_kinds(region))

    def region_resources(self, region: Region) -> ResourceVector:
        """Eqs. (8), (11), (12): resources available in a region."""
        counts = self.region_column_counts(region)
        fam = self.family
        return ResourceVector(
            clb=region.height * counts.clb * fam.clb_per_col,
            dsp=region.height * counts.dsp * fam.dsp_per_col,
            bram=region.height * counts.bram * fam.bram_per_col,
        )

    # -- PRR validity -----------------------------------------------------------

    def is_valid_prr(self, region: Region) -> bool:
        """True when *region* is in bounds and covers no IOB/CLK column."""
        try:
            self._check_region_bounds(region)
        except ValueError:
            return False
        return all(
            kind.reconfigurable for kind in self.region_column_kinds(region)
        )

    def _check_region_bounds(self, region: Region) -> None:
        if region.row + region.height - 1 > self.rows:
            raise ValueError(
                f"region rows {region.row}..{region.row + region.height - 1} "
                f"exceed device rows 1..{self.rows}"
            )
        if region.col + region.width - 1 > self.num_columns:
            raise ValueError(
                f"region columns {region.col}..{region.col + region.width - 1} "
                f"exceed device columns 1..{self.num_columns}"
            )

    # -- window scanning (Fig. 1 support) -----------------------------------

    def iter_windows(self, width: int) -> Iterator[tuple[int, tuple[ColumnKind, ...]]]:
        """Yield ``(start_col, kinds)`` for every width-*width* column window.

        Windows containing IOB/CLK columns are still yielded (the caller
        filters); scanning is left-to-right as in the Fig. 1 flow.
        """
        if width < 1:
            raise ValueError("width must be >= 1")
        for start in range(1, self.num_columns - width + 2):
            yield start, self.columns[start - 1 : start - 1 + width]

    @property
    def window_index(self) -> ColumnWindowIndex:
        """Lazily built prefix-sum index over the column layout.

        The layout is immutable, so the index is computed once per device
        and cached on the instance; every fast-path fabric query goes
        through it.
        """
        index = self.__dict__.get("_window_index")
        if index is None:
            index = ColumnWindowIndex(self.columns)
            object.__setattr__(self, "_window_index", index)
        return index

    def feasible_window_starts(self, requirement: ResourceVector) -> tuple[int, ...]:
        """All 1-based start columns whose window matches *requirement*.

        Column windows are row-independent (a column keeps its kind for
        the full device height), so one lookup serves every fabric row.
        """
        return self.window_index.feasible_starts(requirement)

    def find_column_window(
        self, requirement: ResourceVector, *, start_col: int = 1
    ) -> int | None:
        """Find the left-most window matching a column-count requirement.

        The window width is ``requirement.total`` (eq. (6)), and its column
        multiset must equal the requirement exactly ("distributing the CLB,
        DSP, and BRAM columns in any order") with no IOB/CLK columns.
        Returns the 1-based start column, or ``None``.

        Served by :attr:`window_index` — O(log n) after the first query
        for a given mix.  :meth:`find_column_window_naive` keeps the
        original O(columns x width) scan for equivalence tests and
        benchmarks.
        """
        if requirement.total == 0:
            raise ValueError("requirement must include at least one column")
        return self.window_index.find(requirement, start_col)

    def find_column_window_naive(
        self, requirement: ResourceVector, *, start_col: int = 1
    ) -> int | None:
        """Reference implementation of :meth:`find_column_window`.

        Slices and recounts every candidate window; behaviorally identical
        to the indexed path (asserted by tests), retained as the baseline
        the perf benchmark measures the index against.
        """
        width = requirement.total
        if width == 0:
            raise ValueError("requirement must include at least one column")
        for col, kinds in self.iter_windows(width):
            if col < start_col:
                continue
            if not all(kind.reconfigurable for kind in kinds):
                continue
            if column_kind_counts(kinds) == requirement:
                return col
        return None

    # -- summary ------------------------------------------------------------

    def layout_string(self) -> str:
        """Compact one-character-per-column layout (C/D/B/I/K)."""
        letters = {
            ColumnKind.CLB: "C",
            ColumnKind.DSP: "D",
            ColumnKind.BRAM: "B",
            ColumnKind.IOB: "I",
            ColumnKind.CLK: "K",
        }
        return "".join(letters[kind] for kind in self.columns)

    def summary(self) -> str:
        """Human-readable capacity summary."""
        total = self.total_resources
        return (
            f"{self.name} ({self.family.name}): {self.rows} rows x "
            f"{self.num_columns} columns | CLBs={total.clb} "
            f"(LUTs={self.total_luts}, FFs={self.total_ffs}), "
            f"DSPs={total.dsp}, BRAMs={total.bram}"
        )

    def __repr__(self) -> str:
        return f"Device(name={self.name!r}, rows={self.rows}, cols={self.num_columns})"

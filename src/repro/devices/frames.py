"""Configuration frame addressing (FAR) and frame accounting.

A *frame* is the smallest unit of configuration memory ("the minimum unit
of information used to configure/read the FFs' stored values and BRAMs",
Section III.A).  The frame address register (FAR) names a frame by:

* ``block_type`` — 0 for interconnect/configuration frames (CLB, DSP, BRAM
  interconnect, IOB, CLK), 1 for BRAM *content* frames;
* ``top`` — top/bottom half select (kept 0 here: our fabric model numbers
  rows 1..R bottom-up without the split, which does not affect sizes);
* ``row`` — fabric row;
* ``major`` — column index;
* ``minor`` — frame index within the column.

This module provides UG191-style FAR pack/unpack plus per-region frame
accounting used by both the bitstream generator and sanity checks of the
analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fabric import Device, Region
from .resources import ColumnKind

__all__ = [
    "BLOCK_TYPE_CONFIG",
    "BLOCK_TYPE_BRAM_CONTENT",
    "FrameAddress",
    "frames_in_column",
    "region_frame_counts",
    "RegionFrameCounts",
    "iter_region_frame_addresses",
]

#: Block type for interconnect/configuration frames.
BLOCK_TYPE_CONFIG = 0
#: Block type for BRAM content (initialization) frames.
BLOCK_TYPE_BRAM_CONTENT = 1

# UG191-style field widths (Virtex-5): type[23:21] top[20] row[19:15]
# major[14:7] minor[6:0].
_MINOR_BITS = 7
_MAJOR_BITS = 8
_ROW_BITS = 5
_TOP_BITS = 1
_TYPE_BITS = 3

_MINOR_SHIFT = 0
_MAJOR_SHIFT = _MINOR_BITS
_ROW_SHIFT = _MAJOR_SHIFT + _MAJOR_BITS
_TOP_SHIFT = _ROW_SHIFT + _ROW_BITS
_TYPE_SHIFT = _TOP_SHIFT + _TOP_BITS


@dataclass(frozen=True, slots=True)
class FrameAddress:
    """A decoded frame address.

    ``row`` and ``major`` are 0-based in the encoded word (hardware
    convention) while the :class:`~repro.devices.fabric.Region` API is
    1-based; conversion happens at the call sites that bridge the two.
    """

    block_type: int
    row: int
    major: int
    minor: int
    top: int = 0

    def __post_init__(self) -> None:
        limits = (
            ("block_type", self.block_type, 1 << _TYPE_BITS),
            ("top", self.top, 1 << _TOP_BITS),
            ("row", self.row, 1 << _ROW_BITS),
            ("major", self.major, 1 << _MAJOR_BITS),
            ("minor", self.minor, 1 << _MINOR_BITS),
        )
        for name, value, bound in limits:
            if not 0 <= value < bound:
                raise ValueError(f"{name}={value} outside 0..{bound - 1}")

    def encode(self) -> int:
        """Pack into a 32-bit FAR word."""
        return (
            (self.block_type << _TYPE_SHIFT)
            | (self.top << _TOP_SHIFT)
            | (self.row << _ROW_SHIFT)
            | (self.major << _MAJOR_SHIFT)
            | (self.minor << _MINOR_SHIFT)
        )

    @classmethod
    def decode(cls, word: int) -> "FrameAddress":
        """Unpack a 32-bit FAR word."""
        if not 0 <= word < 1 << 32:
            raise ValueError("FAR word must fit in 32 bits")
        return cls(
            block_type=(word >> _TYPE_SHIFT) & ((1 << _TYPE_BITS) - 1),
            top=(word >> _TOP_SHIFT) & ((1 << _TOP_BITS) - 1),
            row=(word >> _ROW_SHIFT) & ((1 << _ROW_BITS) - 1),
            major=(word >> _MAJOR_SHIFT) & ((1 << _MAJOR_BITS) - 1),
            minor=(word >> _MINOR_SHIFT) & ((1 << _MINOR_BITS) - 1),
        )

    def next_minor(self) -> "FrameAddress":
        """Address of the next frame within the same column."""
        return FrameAddress(
            self.block_type, self.row, self.major, self.minor + 1, self.top
        )


def frames_in_column(device: Device, col: int, block_type: int) -> int:
    """Number of frames of *block_type* in 1-based column *col*, per row."""
    kind = device.column_kind(col)
    if block_type == BLOCK_TYPE_CONFIG:
        return device.family.config_frames(kind)
    if block_type == BLOCK_TYPE_BRAM_CONTENT:
        return device.family.df_bram if kind is ColumnKind.BRAM else 0
    raise ValueError(f"unknown block type {block_type}")


@dataclass(frozen=True, slots=True)
class RegionFrameCounts:
    """Frame totals for one PRR row band (all covered columns, one row)."""

    config_frames: int  #: NCF_CLB + NCF_DSP + NCF_BRAM (eqs. (20)-(22))
    bram_content_frames: int  #: W_BRAM * DF_BRAM (inside eq. (23))

    @property
    def total(self) -> int:
        return self.config_frames + self.bram_content_frames


def region_frame_counts(device: Device, region: Region) -> RegionFrameCounts:
    """Frame totals for one row of *region* (validated as a PRR).

    The analytical model computes the same quantities from W_CLB/W_DSP/
    W_BRAM alone; this walks the actual columns and is used to cross-check.
    """
    counts = device.region_column_counts(region)  # raises on IOB/CLK
    fam = device.family
    config = (
        counts.clb * fam.cf_clb + counts.dsp * fam.cf_dsp + counts.bram * fam.cf_bram
    )
    return RegionFrameCounts(
        config_frames=config,
        bram_content_frames=counts.bram * fam.df_bram,
    )


def iter_region_frame_addresses(
    device: Device, region: Region, block_type: int
):
    """Yield every :class:`FrameAddress` of *block_type* covered by *region*.

    Frames are ordered row-major (bottom row first), then column
    left-to-right, then minor — the order the bitstream generator writes
    them.  For ``BLOCK_TYPE_BRAM_CONTENT`` only BRAM columns contribute.
    """
    for row in region.row_span:
        for col in region.col_span:
            n_frames = frames_in_column(device, col, block_type)
            for minor in range(n_frames):
                yield FrameAddress(
                    block_type=block_type,
                    row=row - 1,
                    major=col - 1,
                    minor=minor,
                )

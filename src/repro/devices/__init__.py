"""FPGA device fabric substrate.

Everything the cost models need to know about a physical device: resource
kinds and arithmetic (:mod:`~repro.devices.resources`), device-family
constants — the paper's Tables II and IV (:mod:`~repro.devices.family`),
row/column fabric layouts (:mod:`~repro.devices.fabric`), a precomputed
column-window index for fast placement queries
(:mod:`~repro.devices.window_index`), a catalog of concrete parts
including the two evaluation devices (:mod:`~repro.devices.catalog`) and
configuration frame addressing (:mod:`~repro.devices.frames`).
"""

from .family import (
    FAMILIES,
    SERIES7,
    SPARTAN6,
    VIRTEX4,
    VIRTEX5,
    VIRTEX6,
    DeviceFamily,
    get_family,
)
from .fabric import Device, Region, column_kind_counts
from .catalog import (
    DEVICES,
    XC4VLX60,
    XC5VLX50T,
    XC5VLX110T,
    XC6SLX45,
    XC6VLX75T,
    XC7Z020,
    get_device,
    make_device,
    parse_layout,
    synthetic_device,
)
from .frames import (
    BLOCK_TYPE_BRAM_CONTENT,
    BLOCK_TYPE_CONFIG,
    FrameAddress,
    RegionFrameCounts,
    frames_in_column,
    iter_region_frame_addresses,
    region_frame_counts,
)
from .resources import PRR_COLUMN_KINDS, ColumnKind, ResourceVector
from .window_index import ColumnWindowIndex

__all__ = [
    "ColumnKind",
    "ResourceVector",
    "PRR_COLUMN_KINDS",
    "DeviceFamily",
    "VIRTEX4",
    "VIRTEX5",
    "VIRTEX6",
    "SERIES7",
    "SPARTAN6",
    "FAMILIES",
    "get_family",
    "Device",
    "Region",
    "column_kind_counts",
    "ColumnWindowIndex",
    "DEVICES",
    "get_device",
    "make_device",
    "parse_layout",
    "synthetic_device",
    "XC5VLX110T",
    "XC6VLX75T",
    "XC5VLX50T",
    "XC4VLX60",
    "XC7Z020",
    "XC6SLX45",
    "FrameAddress",
    "RegionFrameCounts",
    "BLOCK_TYPE_CONFIG",
    "BLOCK_TYPE_BRAM_CONTENT",
    "frames_in_column",
    "region_frame_counts",
    "iter_region_frame_addresses",
]

"""Precomputed column-window index for fast fabric queries.

The Fig. 1 flow and the partitioning explorer ask the same question over
and over: "where can a window of ``W`` contiguous reconfigurable columns
with exactly (W_CLB, W_DSP, W_BRAM) of each kind start?".  The naive
answer slices the column tuple and recounts kinds for every candidate
start — O(columns x width) per query.

:class:`ColumnWindowIndex` answers it from two precomputed structures:

* per-kind **prefix sums** over the column sequence, so the kind counts of
  any window are three subtractions (O(1)), and a fourth prefix sum over
  non-reconfigurable (IOB/CLK) columns rejects dirty windows equally fast;
* a **cached map** from column-mix :class:`ResourceVector` to the sorted
  tuple of all feasible start columns, built lazily per distinct mix in
  one O(columns) sweep and then answered with an O(log n) bisect for any
  ``start_col``.

The index is derived purely from the immutable column layout, so it is
computed once per :class:`~repro.devices.fabric.Device` and shared by
every search that runs on it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from .resources import ColumnKind, ResourceVector

__all__ = ["ColumnWindowIndex"]


class ColumnWindowIndex:
    """Prefix-sum index over a fabric's column-kind sequence.

    Built from the same left-to-right column tuple a
    :class:`~repro.devices.fabric.Device` holds; all column numbers in the
    public API are 1-based to match the rest of the fabric model.
    """

    __slots__ = (
        "_num_columns",
        "_clb",
        "_dsp",
        "_bram",
        "_blocked",
        "_starts",
        "queries",
        "mix_builds",
    )

    def __init__(self, columns: Sequence[ColumnKind]) -> None:
        n = len(columns)
        clb = [0] * (n + 1)
        dsp = [0] * (n + 1)
        bram = [0] * (n + 1)
        blocked = [0] * (n + 1)
        for i, kind in enumerate(columns):
            clb[i + 1] = clb[i] + (kind is ColumnKind.CLB)
            dsp[i + 1] = dsp[i] + (kind is ColumnKind.DSP)
            bram[i + 1] = bram[i] + (kind is ColumnKind.BRAM)
            blocked[i + 1] = blocked[i] + (not kind.reconfigurable)
        self._num_columns = n
        self._clb = clb
        self._dsp = dsp
        self._bram = bram
        self._blocked = blocked
        self._starts: dict[ResourceVector, tuple[int, ...]] = {}
        #: Profiling counters (plain ints — cheap enough to keep always
        #: on; the obs layer snapshots deltas around an instrumented run).
        self.queries = 0
        self.mix_builds = 0

    @property
    def num_columns(self) -> int:
        return self._num_columns

    def window_counts(self, start: int, width: int) -> ResourceVector:
        """(W_CLB, W_DSP, W_BRAM) of the window starting at 1-based *start*.

        O(1) via the prefix sums.  Raises :class:`ValueError` when the
        window contains an IOB/CLK column (mirroring
        :func:`~repro.devices.fabric.column_kind_counts`) or runs out of
        bounds.
        """
        if width < 1:
            raise ValueError("width must be >= 1")
        if start < 1 or start + width - 1 > self._num_columns:
            raise ValueError(
                f"window {start}..{start + width - 1} exceeds columns "
                f"1..{self._num_columns}"
            )
        lo, hi = start - 1, start - 1 + width
        if self._blocked[hi] - self._blocked[lo]:
            raise ValueError("window covers an IOB/CLK column")
        return ResourceVector(
            clb=self._clb[hi] - self._clb[lo],
            dsp=self._dsp[hi] - self._dsp[lo],
            bram=self._bram[hi] - self._bram[lo],
        )

    def feasible_starts(self, requirement: ResourceVector) -> tuple[int, ...]:
        """All 1-based start columns whose window matches *requirement*.

        A window matches when its kind counts equal the requirement
        exactly and it covers no IOB/CLK column.  Results are cached per
        distinct mix; the first query for a mix costs one O(columns)
        sweep, later ones are a dict hit.
        """
        cached = self._starts.get(requirement)
        if cached is not None:
            return cached
        self.mix_builds += 1
        width = requirement.total
        if width == 0:
            raise ValueError("requirement must include at least one column")
        clb, dsp, bram, blocked = self._clb, self._dsp, self._bram, self._blocked
        want_clb, want_dsp, want_bram = (
            requirement.clb,
            requirement.dsp,
            requirement.bram,
        )
        starts: list[int] = []
        for lo in range(self._num_columns - width + 1):
            hi = lo + width
            if blocked[hi] - blocked[lo]:
                continue
            if (
                clb[hi] - clb[lo] == want_clb
                and dsp[hi] - dsp[lo] == want_dsp
                and bram[hi] - bram[lo] == want_bram
            ):
                starts.append(lo + 1)
        result = tuple(starts)
        self._starts[requirement] = result
        return result

    def find(self, requirement: ResourceVector, start_col: int = 1) -> int | None:
        """Left-most feasible start column >= *start_col*, or ``None``.

        O(log n) bisect over the cached feasible-start list.
        """
        self.queries += 1
        starts = self.feasible_starts(requirement)
        index = bisect_left(starts, start_col)
        return starts[index] if index < len(starts) else None

    def prefix_sums(self) -> dict[str, Sequence[int]]:
        """The four per-kind prefix-sum sequences (length ``columns + 1``).

        ``clb``/``dsp``/``bram`` count columns of that kind in
        ``columns[:i]``; ``blocked`` counts IOB/CLK columns.  Exposed so
        the batch engine (:mod:`repro.core.batch`) can lift the exact
        arrays this index already computed into numpy columns instead of
        re-walking the layout.
        """
        return {
            "clb": self._clb,
            "dsp": self._dsp,
            "bram": self._bram,
            "blocked": self._blocked,
        }

    def stats(self) -> dict[str, int]:
        """Lifetime query counters (the obs layer diffs two snapshots)."""
        return {
            "queries": self.queries,
            "mix_builds": self.mix_builds,
            "mixes_cached": len(self._starts),
        }

"""Resource kinds and resource-count arithmetic for FPGA fabrics.

The cost models in :mod:`repro.core` reason about three reconfigurable
resource kinds — CLBs, DSP blocks and BRAM blocks — plus the two column
kinds (IOB and clock) that the Xilinx tools exclude from partially
reconfigurable regions (PRRs).  This module defines the shared vocabulary:

* :class:`ColumnKind` — the type of a fabric column.
* :class:`ResourceVector` — an immutable (CLB, DSP, BRAM) count triple with
  elementwise arithmetic, used for PRM requirements, PRR capacities and
  utilization math throughout the library.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping


class ColumnKind(enum.Enum):
    """Kind of a physical fabric column.

    ``CLB``, ``DSP`` and ``BRAM`` columns may be included in a PRR.  ``IOB``
    and ``CLK`` columns may not (Section III.A of the paper: "Input/output
    blocks (IOBs) and clock (CLK) resources are not supported as part of the
    PRRs").
    """

    CLB = "CLB"
    DSP = "DSP"
    BRAM = "BRAM"
    IOB = "IOB"
    CLK = "CLK"

    @property
    def reconfigurable(self) -> bool:
        """Whether a column of this kind may be part of a PRR."""
        return self in _RECONFIGURABLE_KINDS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnKind.{self.name}"


_RECONFIGURABLE_KINDS = frozenset(
    {ColumnKind.CLB, ColumnKind.DSP, ColumnKind.BRAM}
)

#: Column kinds that may appear inside a PRR, in canonical order.
PRR_COLUMN_KINDS: tuple[ColumnKind, ...] = (
    ColumnKind.CLB,
    ColumnKind.DSP,
    ColumnKind.BRAM,
)


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """Immutable (clb, dsp, bram) count triple with elementwise arithmetic.

    Used for PRM requirements (``CLB_req``, ``DSP_req``, ``BRAM_req``), PRR
    capacities (``CLB_avail`` etc.) and column-count vectors
    (``W_CLB``/``W_DSP``/``W_BRAM``).

    >>> ResourceVector(clb=2, dsp=1) + ResourceVector(clb=1, bram=3)
    ResourceVector(clb=3, dsp=1, bram=3)
    """

    clb: int = 0
    dsp: int = 0
    bram: int = 0

    def __post_init__(self) -> None:
        for name in ("clb", "dsp", "bram"):
            value = getattr(self, name)
            if not isinstance(value, int):
                raise TypeError(f"{name} must be an int, got {type(value).__name__}")
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    # -- conversions ------------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[ColumnKind | str, int]) -> "ResourceVector":
        """Build from a mapping keyed by :class:`ColumnKind` or kind name."""
        counts = {"clb": 0, "dsp": 0, "bram": 0}
        for key, value in mapping.items():
            kind = ColumnKind(key.upper()) if isinstance(key, str) else key
            if not kind.reconfigurable:
                raise ValueError(f"{kind} is not a PRR resource kind")
            counts[kind.value.lower()] += value
        return cls(**counts)

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view, useful for report rendering."""
        return {"clb": self.clb, "dsp": self.dsp, "bram": self.bram}

    def get(self, kind: ColumnKind) -> int:
        """Count for a single PRR resource kind."""
        if not kind.reconfigurable:
            raise ValueError(f"{kind} is not a PRR resource kind")
        return getattr(self, kind.value.lower())

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.clb + other.clb, self.dsp + other.dsp, self.bram + other.bram
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.clb - other.clb, self.dsp - other.dsp, self.bram - other.bram
        )

    def __mul__(self, factor: int) -> "ResourceVector":
        if not isinstance(factor, int):
            return NotImplemented
        return ResourceVector(self.clb * factor, self.dsp * factor, self.bram * factor)

    __rmul__ = __mul__

    def ceil_div(self, divisor: "ResourceVector") -> "ResourceVector":
        """Elementwise ceiling division; a zero divisor requires a zero count.

        This is the column-count step shared by eqs. (2), (3) and (5) of the
        paper: ``W_x = ceil(x_req / (H * x_col))``.
        """
        out = {}
        for name in ("clb", "dsp", "bram"):
            need = getattr(self, name)
            per = getattr(divisor, name)
            if per == 0:
                if need != 0:
                    raise ZeroDivisionError(
                        f"cannot place {need} {name.upper()}s with zero {name} capacity"
                    )
                out[name] = 0
            else:
                out[name] = math.ceil(need / per)
        return ResourceVector(**out)

    def dominates(self, other: "ResourceVector") -> bool:
        """True when every count is >= the corresponding count of *other*."""
        return (
            self.clb >= other.clb and self.dsp >= other.dsp and self.bram >= other.bram
        )

    def max(self, other: "ResourceVector") -> "ResourceVector":
        """Elementwise maximum — the multi-PRM sharing rule of Section III.B."""
        return ResourceVector(
            max(self.clb, other.clb),
            max(self.dsp, other.dsp),
            max(self.bram, other.bram),
        )

    @classmethod
    def elementwise_max(cls, vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Elementwise maximum over an iterable (empty -> zero vector)."""
        result = cls()
        for vector in vectors:
            result = result.max(vector)
        return result

    # -- misc -------------------------------------------------------------

    @property
    def total(self) -> int:
        """Sum of all counts (e.g. W = W_CLB + W_DSP + W_BRAM, eq. (6))."""
        return self.clb + self.dsp + self.bram

    def is_zero(self) -> bool:
        return self.total == 0

    def __iter__(self) -> Iterator[int]:
        yield self.clb
        yield self.dsp
        yield self.bram

    def __repr__(self) -> str:
        return f"ResourceVector(clb={self.clb}, dsp={self.dsp}, bram={self.bram})"

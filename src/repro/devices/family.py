"""Device-family constants: Tables II and IV of the paper.

A :class:`DeviceFamily` bundles every family-dependent constant used by the
two cost models:

* the *fabric geometry* constants of Table I / Table II — resources per
  column per row (``clb_per_col``/``dsp_per_col``/``bram_per_col``) and
  LUT/FF counts per CLB (``luts_per_clb``/``ffs_per_clb``);
* the *bitstream* constants of Table III / Table IV — configuration frames
  per column kind (``cf_clb``/``cf_dsp``/``cf_bram``), BRAM initialization
  frames per column (``df_bram``), frame size in words (``frame_words``),
  header/trailer word counts (``initial_words``/``final_words``), the
  per-row FAR/FDRI preamble (``far_fdri_words``) and the word width in
  bytes (``bytes_per_word``).

The numeric cells of the paper's Tables II and IV did not survive the
source-text conversion; values here are taken from the public configuration
user guides the paper cites (UG071 for Virtex-4, UG191 for Virtex-5, UG360
for Virtex-6) and cross-checked against the paper's prose ("For Virtex-5
devices ... CLB, DSP, BRAM, IOB, and CLK columns have 36, 28, 30, 54, and 4
configuration frames ... Each BRAM column requires 128 data frames ... a CLB
column has 20 CLBs, a DSP column has 8 DSPs, and a BRAM column has 4
BRAMs").  ``initial_words``/``final_words``/``far_fdri_words`` are fixed to
UG191-consistent packet layouts; the same constants drive both the
analytical model and the bitstream generator, so model-vs-generated
validation is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .resources import ColumnKind, ResourceVector

__all__ = [
    "DeviceFamily",
    "VIRTEX4",
    "VIRTEX5",
    "VIRTEX6",
    "SERIES7",
    "SPARTAN6",
    "FAMILIES",
    "get_family",
]


@dataclass(frozen=True, slots=True)
class DeviceFamily:
    """All family-dependent constants used by the cost models.

    Instances are immutable; the module-level singletons (:data:`VIRTEX5`
    etc.) should normally be used.  Creating a custom instance is the
    paper's "portability" story: port the models to a new family by
    supplying its constants.
    """

    name: str
    # ---- Table II: fabric geometry -----------------------------------
    clb_per_col: int  #: CLB_col — CLBs in a column per fabric row
    dsp_per_col: int  #: DSP_col — DSPs in a column per fabric row
    bram_per_col: int  #: BRAM_col — BRAMs in a column per fabric row
    luts_per_clb: int  #: LUT_CLB — LUTs per CLB
    ffs_per_clb: int  #: FF_CLB — FFs per CLB
    # ---- Table IV: bitstream constants --------------------------------
    cf_clb: int  #: CF_CLB — configuration frames per CLB column
    cf_dsp: int  #: CF_DSP — configuration frames per DSP column
    cf_bram: int  #: CF_BRAM — configuration frames per BRAM column (interconnect)
    df_bram: int  #: DF_BRAM — BRAM content initialization frames per column
    frame_words: int  #: FR_size — configuration frame size in words
    initial_words: int  #: IW — sync/header words at the start of a partial bitstream
    final_words: int  #: FW — desync/trailer words at the end
    far_fdri_words: int  #: FAR_FDRI — per-row FAR + FDRI preamble words
    bytes_per_word: int  #: Bytes_word — 4 for Virtex/7-series, 2 for Spartan-3/6
    # ---- informational -------------------------------------------------
    cf_iob: int = 54  #: configuration frames per IOB column (not in PRRs)
    cf_clk: int = 4  #: configuration frames per CLK column (not in PRRs)
    supports_2d_pr: bool = True  #: family supports two-dimensional PR
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        for attr in (
            "clb_per_col",
            "dsp_per_col",
            "bram_per_col",
            "luts_per_clb",
            "ffs_per_clb",
            "cf_clb",
            "cf_dsp",
            "cf_bram",
            "df_bram",
            "frame_words",
            "initial_words",
            "final_words",
            "far_fdri_words",
            "bytes_per_word",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    # -- geometry helpers --------------------------------------------------

    @property
    def per_column_resources(self) -> ResourceVector:
        """Resources contributed by one column of each kind per fabric row."""
        return ResourceVector(
            clb=self.clb_per_col, dsp=self.dsp_per_col, bram=self.bram_per_col
        )

    def resources_per_column(self, kind: ColumnKind) -> int:
        """Resource count per fabric row for one column of *kind*."""
        table = {
            ColumnKind.CLB: self.clb_per_col,
            ColumnKind.DSP: self.dsp_per_col,
            ColumnKind.BRAM: self.bram_per_col,
        }
        try:
            return table[kind]
        except KeyError:
            raise ValueError(f"{kind} columns carry no PRR resources") from None

    def config_frames(self, kind: ColumnKind) -> int:
        """Configuration (interconnect) frames for one column of *kind*."""
        table = {
            ColumnKind.CLB: self.cf_clb,
            ColumnKind.DSP: self.cf_dsp,
            ColumnKind.BRAM: self.cf_bram,
            ColumnKind.IOB: self.cf_iob,
            ColumnKind.CLK: self.cf_clk,
        }
        return table[kind]

    @property
    def frame_bytes(self) -> int:
        """Size of one configuration frame in bytes."""
        return self.frame_words * self.bytes_per_word

    # -- CLB <-> LUT/FF conversions -----------------------------------------

    def clbs_for_lut_ff_pairs(self, lut_ff_pairs: int) -> int:
        """Eq. (1): ``CLB_req = ceil(LUT_FF_req / LUT_CLB)``."""
        if lut_ff_pairs < 0:
            raise ValueError("lut_ff_pairs must be non-negative")
        return -(-lut_ff_pairs // self.luts_per_clb)

    def luts_in_clbs(self, clbs: int) -> int:
        """Eq. (10): LUTs available in *clbs* CLBs."""
        return clbs * self.luts_per_clb

    def ffs_in_clbs(self, clbs: int) -> int:
        """Eq. (9): FFs available in *clbs* CLBs."""
        return clbs * self.ffs_per_clb


#: Virtex-4 (UG071): 41-word frames; a row spans 16 CLBs; 4-input LUT slices.
VIRTEX4 = DeviceFamily(
    name="virtex4",
    clb_per_col=16,
    dsp_per_col=8,
    bram_per_col=4,
    luts_per_clb=8,
    ffs_per_clb=8,
    cf_clb=22,
    cf_dsp=21,
    cf_bram=20,
    df_bram=64,
    frame_words=41,
    initial_words=16,
    final_words=14,
    far_fdri_words=5,
    bytes_per_word=4,
    cf_iob=30,
    cf_clk=2,
    notes="16 CLBs per column per row; 18Kb BRAMs; DSP48.",
)

#: Virtex-5 (UG191): the paper's primary family.
VIRTEX5 = DeviceFamily(
    name="virtex5",
    clb_per_col=20,
    dsp_per_col=8,
    bram_per_col=4,
    luts_per_clb=8,
    ffs_per_clb=8,
    cf_clb=36,
    cf_dsp=28,
    cf_bram=30,
    df_bram=128,
    frame_words=41,
    initial_words=16,
    final_words=14,
    far_fdri_words=5,
    bytes_per_word=4,
    cf_iob=54,
    cf_clk=4,
    notes="20 CLBs per column per row; 36Kb BRAMs; DSP48E; 41x32-bit frames.",
)

#: Virtex-6 (UG360): taller rows (40 CLBs), 8 FFs per slice (16 per CLB).
VIRTEX6 = DeviceFamily(
    name="virtex6",
    clb_per_col=40,
    dsp_per_col=16,
    bram_per_col=8,
    luts_per_clb=8,
    ffs_per_clb=16,
    cf_clb=36,
    cf_dsp=28,
    cf_bram=28,
    df_bram=128,
    frame_words=81,
    initial_words=16,
    final_words=14,
    far_fdri_words=5,
    bytes_per_word=4,
    cf_iob=44,
    cf_clk=4,
    notes="40 CLBs per column per row; 36Kb BRAMs; DSP48E1; 81x32-bit frames.",
)

#: 7 series / Zynq-7000 (UG470): 50-CLB rows, 101-word frames.
SERIES7 = DeviceFamily(
    name="series7",
    clb_per_col=50,
    dsp_per_col=20,
    bram_per_col=10,
    luts_per_clb=8,
    ffs_per_clb=16,
    cf_clb=36,
    cf_dsp=28,
    cf_bram=28,
    df_bram=128,
    frame_words=101,
    initial_words=16,
    final_words=14,
    far_fdri_words=5,
    bytes_per_word=4,
    cf_iob=42,
    cf_clk=4,
    notes="50 CLBs per column per row; includes Zynq-7000 PL fabric.",
)

#: Spartan-6 (UG380): 16-bit configuration words; PR support is limited
#: (difference-based only) — kept for the Bytes_word portability story.
SPARTAN6 = DeviceFamily(
    name="spartan6",
    clb_per_col=16,
    dsp_per_col=4,
    bram_per_col=4,
    luts_per_clb=8,
    ffs_per_clb=16,
    cf_clb=31,
    cf_dsp=25,
    cf_bram=24,
    df_bram=72,
    frame_words=65,
    initial_words=16,
    final_words=14,
    far_fdri_words=5,
    bytes_per_word=2,
    cf_iob=30,
    cf_clk=2,
    supports_2d_pr=False,
    notes="16-bit configuration words (Bytes_word = 2).",
)

FAMILIES: dict[str, DeviceFamily] = {
    family.name: family
    for family in (VIRTEX4, VIRTEX5, VIRTEX6, SERIES7, SPARTAN6)
}


def get_family(name: str) -> DeviceFamily:
    """Look up a registered family by (case-insensitive) name.

    >>> get_family("Virtex5").clb_per_col
    20
    """
    key = name.lower().replace("-", "").replace("_", "")
    if key not in FAMILIES:
        raise KeyError(
            f"unknown device family {name!r}; known: {sorted(FAMILIES)}"
        )
    return FAMILIES[key]

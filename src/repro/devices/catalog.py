"""Catalog of concrete devices used in the paper and for portability tests.

Column layouts are written as compact strings — one letter per column:
``C`` = CLB, ``D`` = DSP, ``B`` = BRAM, ``I`` = IOB, ``K`` = clock — with an
optional ``*n`` run-length repeat after a letter ("C*8" = eight CLB
columns).

The two evaluation devices reproduce the structural facts the paper relies
on:

* **XC5VLX110T** — 8 fabric rows and *exactly one DSP column* (the paper:
  "since the Virtex-5 LX110T has only one DSP column in the device fabric,
  we use (4) instead of (3)"); 54 CLB columns x 20 CLBs x 8 rows = 8640
  CLBs (17280 slices, the real part's count) and 64 DSP48Es (exact).
* **XC6VLX75T** — 3 fabric rows, multiple DSP columns; 288 DSP48E1s
  (exact) and ~6000 CLBs (real part: 5820 — CLB/BRAM column counts are
  approximate because exact column maps are not in the paper).

Layouts place DSP and BRAM columns inside CLB runs the way real parts do,
so every PRR geometry from the paper's Table V has a feasible contiguous
column window.
"""

from __future__ import annotations

import re

from ..errors import InvalidInput
from .fabric import Device
from .family import (
    DeviceFamily,
    SERIES7,
    SPARTAN6,
    VIRTEX4,
    VIRTEX5,
    VIRTEX6,
)
from .resources import ColumnKind

__all__ = [
    "parse_layout",
    "make_device",
    "synthetic_device",
    "XC5VLX110T",
    "XC6VLX75T",
    "XC5VLX50T",
    "XC4VLX60",
    "XC7Z020",
    "XC6SLX45",
    "DEVICES",
    "UnknownDeviceError",
    "get_device",
]


class UnknownDeviceError(InvalidInput, KeyError):
    """A device name not present in :data:`DEVICES`.

    Both an :class:`~repro.errors.InvalidInput` (typed taxonomy, exit
    code 2, lists the valid choices) and a ``KeyError`` (what
    :func:`get_device` raised before the taxonomy existed).
    """

_LETTER_TO_KIND = {
    "C": ColumnKind.CLB,
    "D": ColumnKind.DSP,
    "B": ColumnKind.BRAM,
    "I": ColumnKind.IOB,
    "K": ColumnKind.CLK,
}

_TOKEN_RE = re.compile(r"([CDBIK])(?:\*(\d+))?")


def parse_layout(spec: str) -> tuple[ColumnKind, ...]:
    """Expand a compact layout spec into a column-kind tuple.

    >>> parse_layout("I C*3 D I")[:2]
    (ColumnKind.IOB, ColumnKind.CLB)
    """
    columns: list[ColumnKind] = []
    cleaned = spec.replace(",", " ")
    pos = 0
    for token in cleaned.split():
        match = _TOKEN_RE.fullmatch(token)
        if not match:
            raise ValueError(f"bad layout token {token!r} in {spec!r}")
        letter, repeat = match.groups()
        columns.extend([_LETTER_TO_KIND[letter]] * (int(repeat) if repeat else 1))
        pos += 1
    if not columns:
        raise ValueError("layout spec expanded to zero columns")
    return tuple(columns)


def make_device(
    name: str,
    family: DeviceFamily,
    rows: int,
    layout: str,
    description: str = "",
) -> Device:
    """Build a :class:`Device` from a compact layout spec."""
    return Device(
        name=name,
        family=family,
        rows=rows,
        columns=parse_layout(layout),
        description=description,
    )


#: Virtex-5 LX110T: 8 rows, single DSP column (evaluation device #1).
XC5VLX110T = make_device(
    "xc5vlx110t",
    VIRTEX5,
    rows=8,
    layout="I C*6 B C*8 B C*6 D C*8 B K C*8 B C*8 B C*10 I",
    description="Virtex-5 LX110T: 8 rows; 54 CLB cols; 1 DSP col; 5 BRAM cols.",
)

#: Virtex-6 LX75T: 3 rows, paired DSP columns (evaluation device #2).
XC6VLX75T = make_device(
    "xc6vlx75t",
    VIRTEX6,
    rows=3,
    layout=(
        "I C*4 B C*6 D D C*6 B C*6 D D C*6 B C*2 K "
        "C*2 B C*6 D D C*6 B C*6 B I"
    ),
    description="Virtex-6 LX75T: 3 rows; 50 CLB cols; 6 DSP cols; 6 BRAM cols.",
)

#: A smaller Virtex-5 part for scaling studies.
XC5VLX50T = make_device(
    "xc5vlx50t",
    VIRTEX5,
    rows=6,
    layout="I C*4 B C*6 B C*6 D C*6 B K C*6 B C*6 I",
    description="Virtex-5 LX50T-like: 6 rows; 28 CLB cols; 1 DSP col.",
)

#: A Virtex-4 part exercising the Table II/IV Virtex-4 constants.
XC4VLX60 = make_device(
    "xc4vlx60",
    VIRTEX4,
    rows=8,
    layout="I C*4 B C*8 B C*7 B D C*8 B K C*8 B C*8 C*3 I",
    description="Virtex-4 LX60-like: 8 rows; 46 CLB cols; 1 DSP col "
    "adjacent to a BRAM col (as on real LX parts).",
)

#: A Zynq-7000 programmable-logic fabric (7-series constants).
XC7Z020 = make_device(
    "xc7z020",
    SERIES7,
    rows=3,
    layout=(
        "I C*5 B C*6 D C*6 B C*6 D C*5 K C*5 D C*6 B C*6 D C*5 B I"
    ),
    description="Zynq-7020 PL-like fabric: 3 rows; 44 CLB cols; 4 DSP cols.",
)

#: A Spartan-6 part exercising the 16-bit-word (Bytes_word = 2) path.
XC6SLX45 = make_device(
    "xc6slx45",
    SPARTAN6,
    rows=4,
    layout="I C*4 B C*6 D D C*6 B K C*6 C*6 B I",
    description="Spartan-6 LX45-like: 4 rows; paired DSP columns; "
    "16-bit configuration words.",
)

DEVICES: dict[str, Device] = {
    device.name: device
    for device in (XC5VLX110T, XC6VLX75T, XC5VLX50T, XC4VLX60, XC7Z020, XC6SLX45)
}


def get_device(name: str) -> Device:
    """Look up a catalog device by (case-insensitive) part name.

    Raises :class:`UnknownDeviceError` (an ``InvalidInput`` *and* a
    ``KeyError``) listing the valid choices for unknown names.
    """
    if not isinstance(name, str):
        raise UnknownDeviceError(
            f"device name must be a string, got {type(name).__name__}"
        )
    key = name.lower()
    if key not in DEVICES:
        raise UnknownDeviceError(
            f"unknown device {name!r}; valid choices: {', '.join(sorted(DEVICES))}"
        )
    return DEVICES[key]


def synthetic_device(
    *,
    rows: int,
    clb_runs: "tuple[int, ...]",
    dsp_positions: "tuple[int, ...]" = (),
    bram_positions: "tuple[int, ...]" = (),
    family: DeviceFamily = VIRTEX5,
    name: str = "synthetic",
) -> Device:
    """Build a synthetic device from CLB run lengths and insert positions.

    The fabric is IOB-bounded with one central CLK column.  ``clb_runs``
    gives the CLB run lengths between special columns; ``dsp_positions``
    and ``bram_positions`` are indices into the run boundaries (0 = after
    the first run) where a DSP/BRAM column is inserted.  Used by property
    tests to exercise the placement flow on arbitrary layouts.
    """
    if rows < 1:
        raise ValueError("rows must be >= 1")
    if not clb_runs or any(run < 1 for run in clb_runs):
        raise ValueError("clb_runs must be non-empty positive lengths")
    boundaries = len(clb_runs) - 1
    for label, positions in (("dsp", dsp_positions), ("bram", bram_positions)):
        for position in positions:
            if not 0 <= position <= max(boundaries - 1, 0):
                raise ValueError(f"{label} position {position} out of range")

    tokens = ["I"]
    for index, run in enumerate(clb_runs):
        tokens.append(f"C*{run}")
        if index < boundaries:
            if index in dsp_positions:
                tokens.append("D")
            if index in bram_positions:
                tokens.append("B")
    middle = len(tokens) // 2 + 1
    tokens.insert(middle, "K")
    tokens.append("I")
    return make_device(name, family, rows=rows, layout=" ".join(tokens))

"""Spartan-class 16-bit bitstream generation and parsing.

Spartan-3/6 devices use a 16-bit configuration bus: "in other devices,
such as Spartan-3/6 devices, words are 16-bit, therefore, Bytes_word must
be adjusted according to the device family" (Section III.C).  This module
provides a 16-bit serialization consistent with the Spartan family
constants so eq. (18) is generator-validated on Bytes_word = 2 families
too.

Format (16-bit words; UG380-flavoured, simplified the same way the 32-bit
generator is):

* **header (IW = 16 half-words)** — dummy, the split sync word
  (0xAA99, 0x5566), IDCODE write (2 half-words of payload), CMD=RCRC,
  NOOP padding;
* **per-row blocks (FAR_FDRI = 5 half-words of preamble)** — type-1 FAR
  write carrying the 32-bit FAR as two half-words, then a two-half-word
  type-2 FDRI header with the 32-bit burst length; data frames are
  ``frame_words`` (= 65 for Spartan-6) half-words each, plus the flush
  frame;
* **trailer (FW = 14 half-words)** — GRESTORE, the CRC check (two
  half-words), DESYNC, NOOP padding.

Packet headers: ``[15:13]`` type (1 or 2), ``[12:11]`` opcode,
``[10:5]`` register, ``[4:0]`` word count (type-1 payload half-words).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.fabric import Device, Region
from ..devices.frames import (
    BLOCK_TYPE_BRAM_CONTENT,
    BLOCK_TYPE_CONFIG,
    FrameAddress,
    frames_in_column,
)
from ..errors import ParseError
from .crc import ConfigCrc
from .words import Command, ConfigRegister

__all__ = [
    "SpartanBitstream",
    "generate_spartan_bitstream",
    "parse_spartan_bitstream",
    "SpartanParseError",
]

SYNC_HI = 0xAA99
SYNC_LO = 0x5566
DUMMY16 = 0xFFFF
NOOP16 = 0x2000  # type-1, opcode NOP

_TYPE_SHIFT = 13
_OP_SHIFT = 11
_REG_SHIFT = 5
_COUNT_MASK = 0x1F

SPARTAN_IDCODE = 0x24001093  # synthetic


class SpartanParseError(ParseError):
    """Malformed 16-bit bitstream."""


def _t1(register: ConfigRegister, count: int, opcode: int = 2) -> int:
    if not 0 <= count <= _COUNT_MASK:
        raise ValueError("type-1 half-word count out of range")
    return (
        (1 << _TYPE_SHIFT)
        | (opcode << _OP_SHIFT)
        | (int(register) << _REG_SHIFT)
        | count
    )


def _t2(opcode: int = 2) -> int:
    """Type-2 header: the 32-bit count follows in two half-words."""
    return (2 << _TYPE_SHIFT) | (opcode << _OP_SHIFT)


def _split32(value: int) -> tuple[int, int]:
    return (value >> 16) & 0xFFFF, value & 0xFFFF


@dataclass(frozen=True)
class SpartanBitstream:
    """A generated 16-bit-word partial bitstream."""

    design_name: str
    device_name: str
    region: Region
    halfwords: tuple[int, ...]

    def to_bytes(self) -> bytes:
        out = bytearray()
        for halfword in self.halfwords:
            out.extend(halfword.to_bytes(2, "big"))
        return bytes(out)

    @property
    def size_bytes(self) -> int:
        return len(self.halfwords) * 2

    def __len__(self) -> int:
        return len(self.halfwords)


def _frame_payload16(seed: int, far_word: int, count: int) -> list[int]:
    state = (seed ^ (far_word * 0x9E37) ^ 0xBEEF) & 0xFFFF
    if state == 0:
        state = 1
    out = []
    for _ in range(count):
        state ^= (state << 7) & 0xFFFF
        state ^= state >> 9
        state ^= (state << 8) & 0xFFFF
        out.append(state)
    return out


def _seed16(name: str) -> int:
    value = 0
    for ch in name:
        value = (value * 31 + ord(ch)) & 0xFFFF
    return value or 0x5EED


def generate_spartan_bitstream(
    device: Device, region: Region, *, design_name: str = "prm"
) -> SpartanBitstream:
    """Generate the 16-bit partial bitstream configuring *region*."""
    family = device.family
    if family.bytes_per_word != 2:
        raise ValueError(
            f"family {family.name!r} uses {family.bytes_per_word}-byte "
            "words; use generate_partial_bitstream for 32-bit families"
        )
    if not device.is_valid_prr(region):
        raise ValueError(f"{region} is not a valid PRR on {device.name}")

    seed = _seed16(design_name)
    crc = ConfigCrc()
    words: list[int] = [DUMMY16, SYNC_HI, SYNC_LO, NOOP16]

    # IDCODE write (2 payload half-words).
    words.append(_t1(ConfigRegister.IDCODE, 2))
    for half in _split32(SPARTAN_IDCODE):
        words.append(half)
        crc.update(ConfigRegister.IDCODE, half)
    # CMD = RCRC.
    words.append(_t1(ConfigRegister.CMD, 1))
    words.append(int(Command.RCRC))
    crc.reset()
    words.extend([NOOP16] * 7)
    assert len(words) == family.initial_words

    for row in region.row_span:
        for block_type in (BLOCK_TYPE_CONFIG, BLOCK_TYPE_BRAM_CONTENT):
            data_frames = sum(
                frames_in_column(device, col, block_type)
                for col in region.col_span
            )
            if block_type == BLOCK_TYPE_BRAM_CONTENT and data_frames == 0:
                continue
            far = FrameAddress(
                block_type=block_type,
                row=row - 1,
                major=region.col - 1,
                minor=0,
            ).encode()
            burst = (data_frames + 1) * family.frame_words
            block = [_t1(ConfigRegister.FAR, 2)]
            for half in _split32(far):
                block.append(half)
                crc.update(ConfigRegister.FAR, half)
            block.append(_t2())
            block.append(burst & 0xFFFF)  # low half of the 32-bit count
            assert len(block) == family.far_fdri_words
            # NOTE: burst counts beyond 65535 half-words would need the
            # high half too; our PRRs stay far below that. Enforce it:
            if burst > 0xFFFF:
                raise ValueError("burst too large for 16-bit count field")
            words.extend(block)
            for col in region.col_span:
                for minor in range(frames_in_column(device, col, block_type)):
                    frame_far = FrameAddress(
                        block_type=block_type,
                        row=row - 1,
                        major=col - 1,
                        minor=minor,
                    ).encode()
                    for half in _frame_payload16(
                        seed, frame_far, family.frame_words
                    ):
                        words.append(half)
                        crc.update(ConfigRegister.FDRI, half)
            for _ in range(family.frame_words):  # flush frame
                words.append(0)
                crc.update(ConfigRegister.FDRI, 0)

    trailer = [_t1(ConfigRegister.CMD, 1)]
    trailer.append(int(Command.GRESTORE))
    crc.update(ConfigRegister.CMD, int(Command.GRESTORE))
    trailer.append(_t1(ConfigRegister.CRC, 2))
    trailer.extend(_split32(crc.value))
    trailer.append(_t1(ConfigRegister.CMD, 1))
    trailer.append(int(Command.DESYNC))
    trailer.extend([NOOP16] * 7)
    assert len(trailer) == family.final_words
    words.extend(trailer)

    return SpartanBitstream(
        design_name=design_name,
        device_name=device.name,
        region=region,
        halfwords=tuple(words),
    )


@dataclass
class ParsedSpartanBitstream:
    """Structural summary of a parsed 16-bit bitstream."""

    total_halfwords: int
    blocks: list[tuple[FrameAddress, int]]  #: (FAR, data half-words)
    crc_ok: bool

    @property
    def size_bytes(self) -> int:
        return self.total_halfwords * 2

    @property
    def rows(self) -> int:
        return sum(1 for far, _ in self.blocks if far.block_type == 0)


def parse_spartan_bitstream(data: bytes) -> ParsedSpartanBitstream:
    """Parse a 16-bit bitstream produced by the generator."""
    if len(data) % 2:
        raise SpartanParseError("not 16-bit aligned")
    words = [
        int.from_bytes(data[i : i + 2], "big") for i in range(0, len(data), 2)
    ]
    try:
        sync = next(
            i
            for i in range(len(words) - 1)
            if words[i] == SYNC_HI and words[i + 1] == SYNC_LO
        )
    except StopIteration:
        raise SpartanParseError("no sync sequence") from None

    crc = ConfigCrc()
    blocks: list[tuple[FrameAddress, int]] = []
    crc_ok = False
    index = sync + 2
    desynced = False
    while index < len(words):
        word = words[index]
        if word == NOOP16:
            index += 1
            continue
        packet_type = (word >> _TYPE_SHIFT) & 0b111
        register_bits = (word >> _REG_SHIFT) & 0x3F
        count = word & _COUNT_MASK
        if packet_type == 1:
            try:
                register = ConfigRegister(register_bits)
            except ValueError:
                raise SpartanParseError(
                    f"unknown register {register_bits}"
                ) from None
            payload = words[index + 1 : index + 1 + count]
            if len(payload) != count:
                raise SpartanParseError("truncated type-1 payload")
            if register is ConfigRegister.FAR:
                if count != 2:
                    raise SpartanParseError("FAR write must carry 2 half-words")
                far_word = (payload[0] << 16) | payload[1]
                current_far = FrameAddress.decode(far_word)
                for half in payload:
                    crc.update(ConfigRegister.FAR, half)
                index += 1 + count
                # Expect the type-2 FDRI burst next.
                t2 = words[index]
                if (t2 >> _TYPE_SHIFT) & 0b111 != 2:
                    raise SpartanParseError("expected type-2 after FAR")
                burst = words[index + 1]
                data_words = words[index + 2 : index + 2 + burst]
                if len(data_words) != burst:
                    raise SpartanParseError("truncated FDRI burst")
                for half in data_words:
                    crc.update(ConfigRegister.FDRI, half)
                blocks.append((current_far, burst))
                index += 2 + burst
                continue
            if register is ConfigRegister.CRC:
                value = (payload[0] << 16) | payload[1]
                crc_ok = value == crc.value
                index += 1 + count
                continue
            if register is ConfigRegister.CMD:
                command = payload[0]
                if command == Command.RCRC:
                    crc.reset()
                else:
                    crc.update(ConfigRegister.CMD, command)
                if command == Command.DESYNC:
                    desynced = True
                    break
                index += 1 + count
                continue
            for half in payload:
                crc.update(register, half)
            index += 1 + count
            continue
        raise SpartanParseError(f"unexpected half-word 0x{word:04X}")

    if not desynced:
        raise SpartanParseError("never desynchronized")
    if not blocks:
        raise SpartanParseError("no FDRI blocks")
    return ParsedSpartanBitstream(
        total_halfwords=len(words), blocks=blocks, crc_ok=crc_ok
    )

"""Bitstream parser / disassembler.

Walks a partial bitstream word by word — sync detection, packet decoding,
register tracking, CRC re-computation — and reconstructs its structure:
per-row configuration and BRAM-initialization blocks with their FARs and
frame counts.  ``section_bytes()`` attributes every byte to the Fig. 2
sections using the exact keys of
:meth:`repro.core.bitstream_model.BitstreamEstimate.breakdown`, which is
how the model-vs-measured validation is performed term by term.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.frames import BLOCK_TYPE_BRAM_CONTENT, FrameAddress
from ..errors import ParseError
from .crc import ConfigCrc
from .words import (
    Command,
    ConfigRegister,
    NOOP,
    Opcode,
    SYNC_WORD,
    decode_header,
)

__all__ = ["BitstreamParseError", "FdriBlock", "ParsedBitstream", "parse_bitstream"]


class BitstreamParseError(ParseError):
    """The byte stream is not a well-formed partial bitstream."""


@dataclass(frozen=True, slots=True)
class FdriBlock:
    """One FDRI burst: the FAR it started at and its word count."""

    far: FrameAddress
    data_words: int  #: including the flush frame
    preamble_words: int  #: FAR/CMD/FDRI-header words before the data

    @property
    def total_words(self) -> int:
        return self.preamble_words + self.data_words

    @property
    def is_bram_content(self) -> bool:
        return self.far.block_type == BLOCK_TYPE_BRAM_CONTENT


@dataclass
class ParsedBitstream:
    """Structural decomposition of a parsed partial bitstream."""

    total_words: int
    initial_words: int
    final_words: int
    blocks: list[FdriBlock] = field(default_factory=list)
    commands: list[Command] = field(default_factory=list)
    crc_checked: bool = False
    crc_ok: bool = False

    @property
    def size_bytes(self) -> int:
        return self.total_words * 4

    @property
    def config_blocks(self) -> list[FdriBlock]:
        return [b for b in self.blocks if not b.is_bram_content]

    @property
    def bram_blocks(self) -> list[FdriBlock]:
        return [b for b in self.blocks if b.is_bram_content]

    @property
    def rows(self) -> int:
        """PRR rows = number of configuration (block-type-0) blocks."""
        return len(self.config_blocks)

    def section_bytes(self) -> dict[str, int]:
        """Byte attribution matching ``BitstreamEstimate.breakdown()``."""
        config = sum(b.total_words for b in self.config_blocks) * 4
        bram = sum(b.total_words for b in self.bram_blocks) * 4
        return {
            "initial": self.initial_words * 4,
            "configuration": config,
            "bram_initialization": bram,
            "final": self.final_words * 4,
            "total": self.size_bytes,
        }


def _words_from_bytes(data: bytes) -> list[int]:
    if len(data) % 4:
        raise BitstreamParseError(
            f"bitstream length {len(data)} is not 32-bit word aligned"
        )
    return [
        int.from_bytes(data[offset : offset + 4], "big")
        for offset in range(0, len(data), 4)
    ]


def parse_bitstream(data: bytes) -> ParsedBitstream:
    """Parse a partial bitstream produced by the generator.

    Raises :class:`BitstreamParseError` on structural violations (missing
    sync word, truncated bursts, FDRI data without a preceding FAR,
    unknown packets or register addresses).  The configuration CRC is
    re-computed and compared against the CRC register write in the
    trailer.
    """
    try:
        return _parse(data)
    except BitstreamParseError:
        raise
    except ValueError as exc:
        # Any decode-level ValueError (unknown register address, malformed
        # FAR, bad command code) is a corruption symptom.
        raise BitstreamParseError(str(exc)) from exc


def _parse(data: bytes) -> ParsedBitstream:
    words = _words_from_bytes(data)
    try:
        sync_index = words.index(SYNC_WORD)
    except ValueError:
        raise BitstreamParseError("no sync word found") from None

    crc = ConfigCrc()
    blocks: list[FdriBlock] = []
    commands: list[Command] = []
    crc_checked = False
    crc_ok = False
    desynced_at: int | None = None

    current_far: FrameAddress | None = None
    preamble_count = 0
    first_block_start: int | None = None

    index = sync_index + 1
    while index < len(words):
        word = words[index]
        if word == NOOP:
            index += 1
            continue
        try:
            header = decode_header(word)
        except ValueError:
            raise BitstreamParseError(
                f"unexpected word 0x{word:08X} at offset {index}"
            ) from None
        if header.packet_type == 2:
            raise BitstreamParseError(
                f"type-2 packet at offset {index} without owning type-1 FDRI"
            )
        if header.opcode is not Opcode.WRITE:
            index += 1 + header.word_count
            continue

        register = header.register
        payload_start = index + 1
        payload_end = payload_start + header.word_count

        if register is ConfigRegister.FDRI:
            raise BitstreamParseError(
                "type-1 FDRI writes are not used by this format"
            )

        if payload_end > len(words):
            raise BitstreamParseError("truncated packet payload")

        if register is ConfigRegister.FAR:
            if header.word_count != 1:
                raise BitstreamParseError("FAR write must carry one word")
            current_far = FrameAddress.decode(words[payload_start])
            crc.update(ConfigRegister.FAR, words[payload_start])
            if first_block_start is None:
                first_block_start = index
            preamble_count = 2
            index = payload_end
            # expect CMD WCFG then the type-2 FDRI burst
            index = _skip_noops(words, index)
            index, wcfg = _read_cmd(words, index, crc)
            if wcfg is not Command.WCFG:
                raise BitstreamParseError(
                    f"expected WCFG after FAR, got {wcfg.name}"
                )
            commands.append(wcfg)
            preamble_count += 2
            index = _skip_noops(words, index)
            t2 = decode_header(words[index])
            if t2.packet_type != 2 or t2.opcode is not Opcode.WRITE:
                raise BitstreamParseError("expected type-2 FDRI burst after WCFG")
            preamble_count += 1
            burst_start = index + 1
            burst_end = burst_start + t2.word_count
            if burst_end > len(words):
                raise BitstreamParseError("truncated FDRI burst")
            for data_word in words[burst_start:burst_end]:
                crc.update(ConfigRegister.FDRI, data_word)
            blocks.append(
                FdriBlock(
                    far=current_far,
                    data_words=t2.word_count,
                    preamble_words=preamble_count,
                )
            )
            index = burst_end
            continue

        if register is ConfigRegister.CMD:
            index, command = _read_cmd(words, index, crc)
            commands.append(command)
            if command is Command.DESYNC:
                desynced_at = index
                break
            continue

        if register is ConfigRegister.CRC:
            if header.word_count != 1:
                raise BitstreamParseError("CRC write must carry one word")
            crc_checked = True
            crc_ok = words[payload_start] == crc.value
            index = payload_end
            continue

        # Other registers (IDCODE, COR, ...): fold into CRC and skip.
        for payload_word in words[payload_start:payload_end]:
            crc.update(register, payload_word)
            if register is ConfigRegister.CMD and payload_word == Command.RCRC:
                crc.reset()
        if register is ConfigRegister.IDCODE or register is ConfigRegister.COR:
            pass
        index = payload_end

    if desynced_at is None:
        raise BitstreamParseError("bitstream never desynchronized")
    if not blocks:
        raise BitstreamParseError("bitstream contains no FDRI blocks")
    assert first_block_start is not None

    # Everything before the first FAR write is "initial"; everything from
    # the first trailer packet after the last burst is "final".
    last_burst_end = _last_burst_end(blocks, first_block_start)
    return ParsedBitstream(
        total_words=len(words),
        initial_words=first_block_start,
        final_words=len(words) - last_burst_end,
        blocks=blocks,
        commands=commands,
        crc_checked=crc_checked,
        crc_ok=crc_ok,
    )


def _skip_noops(words: list[int], index: int) -> int:
    while index < len(words) and words[index] == NOOP:
        index += 1
    if index >= len(words):
        raise BitstreamParseError("ran off the end of the bitstream")
    return index


def _read_cmd(
    words: list[int], index: int, crc: ConfigCrc
) -> tuple[int, Command]:
    header = decode_header(words[index])
    if (
        header.packet_type != 1
        or header.register is not ConfigRegister.CMD
        or header.word_count != 1
    ):
        raise BitstreamParseError(f"expected CMD write at offset {index}")
    if index + 1 >= len(words):
        raise BitstreamParseError("truncated CMD write")
    value = words[index + 1]
    try:
        command = Command(value)
    except ValueError:
        raise BitstreamParseError(f"unknown command code {value}") from None
    if command is Command.RCRC:
        crc.reset()
    else:
        crc.update(ConfigRegister.CMD, value)
    return index + 2, command


def _last_burst_end(blocks: list[FdriBlock], first_block_start: int) -> int:
    total = first_block_start
    for block in blocks:
        total += block.total_words
    return total

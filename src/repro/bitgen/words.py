"""Bitstream word encodings: packets, registers and commands.

Follows the Virtex-5 configuration packet format (UG191 ch. 6):

* **Type-1 packet header** — ``[31:29]=001``, ``[28:27]`` opcode,
  ``[26:13]`` register address, ``[10:0]`` word count;
* **Type-2 packet header** — ``[31:29]=010``, ``[28:27]`` opcode,
  ``[26:0]`` word count (used for the large FDRI data bursts);
* the 0xAA995566 sync word, bus-width detection words and NOOPs.

One deliberate simplification, applied identically in the generator and
the parser: the zero-count type-1 FDRI header that real bitstreams emit
immediately before a type-2 burst is folded away, so each per-row block is
exactly ``FAR_FDRI = 5`` words of preamble (FAR write, CMD=WCFG write,
type-2 FDRI header) followed by the data words — matching the paper's
eq. (19)/(23) structure term for term.
"""

from __future__ import annotations

import enum

__all__ = [
    "DUMMY_WORD",
    "SYNC_WORD",
    "BUS_WIDTH_SYNC",
    "BUS_WIDTH_DETECT",
    "NOOP",
    "Opcode",
    "ConfigRegister",
    "Command",
    "type1_header",
    "type2_header",
    "decode_header",
    "PacketHeader",
]

DUMMY_WORD = 0xFFFFFFFF
SYNC_WORD = 0xAA995566
BUS_WIDTH_SYNC = 0x000000BB
BUS_WIDTH_DETECT = 0x11220044
#: A type-1 NOOP packet (opcode 00, no payload).
NOOP = 0x20000000


class Opcode(enum.IntEnum):
    """Packet opcodes."""

    NOP = 0
    READ = 1
    WRITE = 2


class ConfigRegister(enum.IntEnum):
    """Configuration register addresses (UG191 Table 6-5)."""

    CRC = 0
    FAR = 1
    FDRI = 2
    FDRO = 3
    CMD = 4
    CTL = 5
    MASK = 6
    STAT = 7
    LOUT = 8
    COR = 9
    MFWR = 10
    CBC = 11
    IDCODE = 12
    AXSS = 13


class Command(enum.IntEnum):
    """CMD register command codes (UG191 Table 6-6)."""

    NULL = 0
    WCFG = 1
    MFW = 2
    DGHIGH = 3
    RCFG = 4
    START = 5
    RCAP = 6
    RCRC = 7
    AGHIGH = 8
    SWITCH = 9
    GRESTORE = 10
    SHUTDOWN = 11
    GCAPTURE = 12
    DESYNC = 13


_TYPE_SHIFT = 29
_OPCODE_SHIFT = 27
_REGADDR_SHIFT = 13
_REGADDR_MASK = (1 << 14) - 1
_T1_COUNT_MASK = (1 << 11) - 1
_T2_COUNT_MASK = (1 << 27) - 1


def type1_header(
    opcode: Opcode, register: ConfigRegister, word_count: int
) -> int:
    """Encode a type-1 packet header."""
    if not 0 <= word_count <= _T1_COUNT_MASK:
        raise ValueError(f"type-1 word count {word_count} out of range")
    return (
        (1 << _TYPE_SHIFT)
        | (int(opcode) << _OPCODE_SHIFT)
        | (int(register) << _REGADDR_SHIFT)
        | word_count
    )


def type2_header(opcode: Opcode, word_count: int) -> int:
    """Encode a type-2 packet header (register from the preceding type-1)."""
    if not 0 <= word_count <= _T2_COUNT_MASK:
        raise ValueError(f"type-2 word count {word_count} out of range")
    return (2 << _TYPE_SHIFT) | (int(opcode) << _OPCODE_SHIFT) | word_count


class PacketHeader:
    """A decoded packet header."""

    __slots__ = ("packet_type", "opcode", "register", "word_count")

    def __init__(
        self,
        packet_type: int,
        opcode: Opcode,
        register: ConfigRegister | None,
        word_count: int,
    ) -> None:
        self.packet_type = packet_type
        self.opcode = opcode
        self.register = register
        self.word_count = word_count

    def __repr__(self) -> str:
        reg = self.register.name if self.register is not None else "-"
        return (
            f"PacketHeader(T{self.packet_type}, {self.opcode.name}, {reg}, "
            f"wc={self.word_count})"
        )


def decode_header(word: int) -> PacketHeader:
    """Decode a packet header word; raises on non-packet words."""
    packet_type = (word >> _TYPE_SHIFT) & 0b111
    opcode = Opcode((word >> _OPCODE_SHIFT) & 0b11)
    if packet_type == 1:
        register_bits = (word >> _REGADDR_SHIFT) & _REGADDR_MASK
        register = ConfigRegister(register_bits)
        return PacketHeader(1, opcode, register, word & _T1_COUNT_MASK)
    if packet_type == 2:
        return PacketHeader(2, opcode, None, word & _T2_COUNT_MASK)
    raise ValueError(f"word 0x{word:08X} is not a type-1/type-2 packet header")

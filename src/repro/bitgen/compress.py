"""Bitstream compression — the FaRM mechanism, actually implemented.

Duhem et al.'s FaRM controller (ref. [2]) ships *compressed* bitstreams
and decompresses in hardware ahead of the ICAP.  Partial bitstreams
compress well because configuration frames repeat words (unused LUT
masks, zero flush frames, blank BRAM init).  This module implements the
word-level run-length scheme such controllers use:

* a run token ``(MARKER, count, word)`` replaces ``count`` repeats;
* literals pass through; literal MARKER words are escaped as runs of 1.

``compress``/``decompress`` round-trip exactly; :func:`compression_ratio`
feeds the measured ratio into the FaRM cost model, replacing its assumed
constant.
"""

from __future__ import annotations

from .generator import PartialBitstream

__all__ = ["compress", "decompress", "compression_ratio"]

#: Escape marker: a type-1 packet word shape that never appears in our
#: streams (reserved opcode 3).
RUN_MARKER = 0x38000000

#: Minimum run length worth encoding (3 words break even: marker+count+word).
_MIN_RUN = 4


def _words_of(data: bytes) -> list[int]:
    if len(data) % 4:
        raise ValueError("bitstream must be 32-bit aligned")
    return [
        int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)
    ]


def _bytes_of(words: list[int]) -> bytes:
    out = bytearray()
    for word in words:
        out.extend(word.to_bytes(4, "big"))
    return bytes(out)


def compress(data: bytes) -> bytes:
    """Run-length-compress a word-aligned bitstream."""
    words = _words_of(data)
    out: list[int] = []
    index = 0
    n = len(words)
    while index < n:
        word = words[index]
        run = 1
        while index + run < n and words[index + run] == word:
            run += 1
        if run >= _MIN_RUN or word == RUN_MARKER:
            out.extend((RUN_MARKER, run, word))
            index += run
        else:
            out.extend(words[index : index + run])
            index += run
    return _bytes_of(out)


def decompress(data: bytes) -> bytes:
    """Invert :func:`compress`."""
    words = _words_of(data)
    out: list[int] = []
    index = 0
    while index < len(words):
        word = words[index]
        if word == RUN_MARKER:
            if index + 2 >= len(words):
                raise ValueError("truncated run token")
            count, value = words[index + 1], words[index + 2]
            if count < 1:
                raise ValueError("invalid run length")
            out.extend([value] * count)
            index += 3
        else:
            out.append(word)
            index += 1
    return _bytes_of(out)


def compression_ratio(bitstream: PartialBitstream | bytes) -> float:
    """compressed/original size ratio in (0, 1+] for a bitstream."""
    data = bitstream.to_bytes() if isinstance(bitstream, PartialBitstream) else bitstream
    if not data:
        raise ValueError("empty bitstream")
    return len(compress(data)) / len(data)

"""Configuration CRC.

Virtex-class devices accumulate a CRC over every (register, word) write
and compare it against the value written to the CRC register at the end of
the bitstream.  We model this with a standard CRC-32 (the exact Xilinx
polynomial is CRC-32C over 36-bit units; using zlib-compatible CRC-32 over
the register-tagged byte stream preserves the protocol property that
matters — any corrupted configuration word fails the final check).
"""

from __future__ import annotations

import zlib

__all__ = ["ConfigCrc"]


class ConfigCrc:
    """Accumulates the configuration CRC the way the device would."""

    def __init__(self) -> None:
        self._crc = 0

    def update(self, register: int, word: int) -> None:
        """Fold one register write into the CRC."""
        payload = bytes(
            (
                register & 0xFF,
                (word >> 24) & 0xFF,
                (word >> 16) & 0xFF,
                (word >> 8) & 0xFF,
                word & 0xFF,
            )
        )
        self._crc = zlib.crc32(payload, self._crc)

    @property
    def value(self) -> int:
        """Current 32-bit CRC value."""
        return self._crc & 0xFFFFFFFF

    def reset(self) -> None:
        """The RCRC command."""
        self._crc = 0

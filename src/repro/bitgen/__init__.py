"""Bitstream substrate: word-exact partial bitstream generation and parsing.

:mod:`words` — packet/register/command encodings; :mod:`crc` — the
configuration CRC; :mod:`generator` — Fig.-2-structured partial bitstream
writer; :mod:`parser` — disassembler with per-section byte attribution for
model-vs-measured validation.
"""

from .compress import compress, compression_ratio, decompress
from .crc import ConfigCrc
from .generator import (
    PartialBitstream,
    frame_payload,
    generate_composite_bitstream,
    generate_partial_bitstream,
)
from .spartan import (
    SpartanBitstream,
    SpartanParseError,
    generate_spartan_bitstream,
    parse_spartan_bitstream,
)
from .parser import (
    BitstreamParseError,
    FdriBlock,
    ParsedBitstream,
    parse_bitstream,
)
from .words import (
    BUS_WIDTH_DETECT,
    BUS_WIDTH_SYNC,
    Command,
    ConfigRegister,
    DUMMY_WORD,
    NOOP,
    Opcode,
    PacketHeader,
    SYNC_WORD,
    decode_header,
    type1_header,
    type2_header,
)

__all__ = [
    "ConfigCrc",
    "compress",
    "decompress",
    "compression_ratio",
    "PartialBitstream",
    "generate_partial_bitstream",
    "generate_composite_bitstream",
    "frame_payload",
    "ParsedBitstream",
    "FdriBlock",
    "parse_bitstream",
    "BitstreamParseError",
    "SpartanBitstream",
    "SpartanParseError",
    "generate_spartan_bitstream",
    "parse_spartan_bitstream",
    "Command",
    "ConfigRegister",
    "Opcode",
    "PacketHeader",
    "SYNC_WORD",
    "DUMMY_WORD",
    "NOOP",
    "BUS_WIDTH_SYNC",
    "BUS_WIDTH_DETECT",
    "type1_header",
    "type2_header",
    "decode_header",
]

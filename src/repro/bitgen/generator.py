"""Partial bitstream generator.

Writes a word-exact Virtex-5-style partial bitstream for a placed PRR,
following the Fig. 2 structure: initial (sync/header) words, then per PRR
row a configuration block (FAR + CMD=WCFG + FDRI burst over every covered
column's frames + one pipeline-flush frame) and — when the row covers BRAM
columns — a BRAM initialization block (block-type-1 FAR + FDRI burst over
the content frames + flush frame), then the final (CRC/desync) words.

The layout constants (IW=16, FW=14, FAR_FDRI=5 words) are the same
:class:`~repro.devices.family.DeviceFamily` fields the analytical model
uses, so for every PRR::

    len(generate_partial_bitstream(...).to_bytes())
        == core.bitstream_model.bitstream_size_bytes(geometry)

— the validation the paper could not perform against vendor documentation.
Frame payloads are deterministic pseudo-data seeded by the design name
(a real PRM's LUT masks/FF init values), so regeneration is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..devices.fabric import Device, Region
from ..devices.frames import (
    BLOCK_TYPE_BRAM_CONTENT,
    BLOCK_TYPE_CONFIG,
    FrameAddress,
    frames_in_column,
)
from .crc import ConfigCrc
from .words import (
    BUS_WIDTH_DETECT,
    BUS_WIDTH_SYNC,
    Command,
    ConfigRegister,
    DUMMY_WORD,
    NOOP,
    Opcode,
    SYNC_WORD,
    type1_header,
    type2_header,
)

__all__ = [
    "PartialBitstream",
    "generate_partial_bitstream",
    "generate_composite_bitstream",
    "frame_payload",
]

#: Synthetic IDCODE marking our virtual devices.
VIRTUAL_IDCODE = 0x52EB2015


def frame_payload(seed: int, far_word: int, frame_words: int) -> list[int]:
    """Deterministic pseudo-content for one frame.

    A 32-bit xorshift stream keyed by (seed, FAR) — stable across runs and
    platforms, which keeps bitstream regeneration reproducible.
    """
    state = (seed ^ (far_word * 0x9E3779B1) ^ 0xDEADBEEF) & 0xFFFFFFFF
    if state == 0:
        state = 0x1
    words = []
    for _ in range(frame_words):
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        words.append(state)
    return words


@dataclass(frozen=True)
class PartialBitstream:
    """A generated partial bitstream."""

    design_name: str
    device_name: str
    region: Region
    words: tuple[int, ...]

    def to_bytes(self) -> bytes:
        """Big-endian byte serialization (SelectMAP/ICAP word order)."""
        out = bytearray()
        for word in self.words:
            out.extend(word.to_bytes(4, "big"))
        return bytes(out)

    @property
    def size_bytes(self) -> int:
        return len(self.words) * 4

    def __len__(self) -> int:
        return len(self.words)


def _seed(design_name: str) -> int:
    value = 0
    for ch in design_name:
        value = (value * 131 + ord(ch)) & 0xFFFFFFFF
    return value or 0x5EED


def _header_words(crc: ConfigCrc) -> list[int]:
    """The IW=16 initial words: sync + IDCODE + RCRC + COR."""
    words = [
        DUMMY_WORD,
        BUS_WIDTH_SYNC,
        BUS_WIDTH_DETECT,
        DUMMY_WORD,
        SYNC_WORD,
        NOOP,
    ]
    words.append(type1_header(Opcode.WRITE, ConfigRegister.IDCODE, 1))
    words.append(VIRTUAL_IDCODE)
    crc.update(ConfigRegister.IDCODE, VIRTUAL_IDCODE)
    words.append(type1_header(Opcode.WRITE, ConfigRegister.CMD, 1))
    words.append(int(Command.RCRC))
    crc.reset()
    words.append(NOOP)
    words.append(NOOP)
    words.append(type1_header(Opcode.WRITE, ConfigRegister.COR, 1))
    cor_value = 0x00003FE5
    words.append(cor_value)
    crc.update(ConfigRegister.COR, cor_value)
    words.append(NOOP)
    words.append(NOOP)
    assert len(words) == 16
    return words


def _trailer_words(crc: ConfigCrc) -> list[int]:
    """The FW=14 final words: GRESTORE, DGHIGH, CRC check, DESYNC."""
    words = [type1_header(Opcode.WRITE, ConfigRegister.CMD, 1)]
    words.append(int(Command.GRESTORE))
    crc.update(ConfigRegister.CMD, int(Command.GRESTORE))
    words.append(NOOP)
    words.append(type1_header(Opcode.WRITE, ConfigRegister.CMD, 1))
    words.append(int(Command.DGHIGH))
    crc.update(ConfigRegister.CMD, int(Command.DGHIGH))
    words.append(NOOP)
    words.append(type1_header(Opcode.WRITE, ConfigRegister.CRC, 1))
    words.append(crc.value)
    words.append(type1_header(Opcode.WRITE, ConfigRegister.CMD, 1))
    words.append(int(Command.DESYNC))
    words.extend([NOOP, NOOP, NOOP, NOOP])
    assert len(words) == 14
    return words


#: Maps a (block_type, encoded FAR) to the frame's payload words.
PayloadFn = Callable[[int, int], list[int]]


def _row_block(
    device: Device,
    region: Region,
    row: int,
    block_type: int,
    payload_fn: PayloadFn,
    crc: ConfigCrc,
) -> list[int]:
    """One per-row block: 5-word FAR/FDRI preamble + data + flush frame.

    For ``BLOCK_TYPE_CONFIG`` every covered column contributes its
    configuration frames; for ``BLOCK_TYPE_BRAM_CONTENT`` only BRAM
    columns contribute (their 128 initialization frames each).
    """
    fam = device.family
    data_frames = sum(
        frames_in_column(device, col, block_type) for col in region.col_span
    )
    if block_type == BLOCK_TYPE_BRAM_CONTENT and data_frames == 0:
        return []

    start_far = FrameAddress(
        block_type=block_type, row=row - 1, major=region.col - 1, minor=0
    ).encode()

    burst_words = (data_frames + 1) * fam.frame_words  # +1 = flush frame
    words = [type1_header(Opcode.WRITE, ConfigRegister.FAR, 1), start_far]
    crc.update(ConfigRegister.FAR, start_far)
    words.append(type1_header(Opcode.WRITE, ConfigRegister.CMD, 1))
    words.append(int(Command.WCFG))
    crc.update(ConfigRegister.CMD, int(Command.WCFG))
    words.append(type2_header(Opcode.WRITE, burst_words))
    assert len(words) == fam.far_fdri_words, "preamble must equal FAR_FDRI"

    for col in region.col_span:
        n_frames = frames_in_column(device, col, block_type)
        for minor in range(n_frames):
            far = FrameAddress(
                block_type=block_type, row=row - 1, major=col - 1, minor=minor
            ).encode()
            payload = payload_fn(block_type, far)
            if len(payload) != fam.frame_words:
                raise ValueError(
                    f"payload for FAR 0x{far:08X} has {len(payload)} words, "
                    f"expected {fam.frame_words}"
                )
            for word in payload:
                words.append(word)
                crc.update(ConfigRegister.FDRI, word)
    # Pipeline flush frame (all zeros) — the "+1" of eqs. (19)/(23).
    for _ in range(fam.frame_words):
        words.append(0)
        crc.update(ConfigRegister.FDRI, 0)
    return words


def generate_partial_bitstream(
    device: Device,
    region: Region,
    *,
    design_name: str = "prm",
    payload_fn: PayloadFn | None = None,
) -> PartialBitstream:
    """Generate the partial bitstream configuring *region* on *device*.

    ``payload_fn(block_type, encoded_far) -> words`` supplies each frame's
    content; the default derives deterministic pseudo-content from
    *design_name* (a PRM's LUT masks / FF init values).  Relocation and
    context restore pass captured frames instead
    (:mod:`repro.relocation`).
    """
    if device.family.bytes_per_word != 4:
        raise ValueError(
            "the generator emits 32-bit configuration words; family "
            f"{device.family.name!r} uses {device.family.bytes_per_word}-byte "
            "words"
        )
    if not device.is_valid_prr(region):
        raise ValueError(f"{region} is not a valid PRR on {device.name}")
    if device.family.initial_words != 16 or device.family.final_words != 14:
        raise ValueError(
            "generator header/trailer layouts are built for IW=16/FW=14"
        )

    if payload_fn is None:
        seed = _seed(design_name)
        frame_words = device.family.frame_words

        def payload_fn(block_type: int, far: int, _s=seed, _n=frame_words):
            return frame_payload(_s, far, _n)

    crc = ConfigCrc()
    words = _header_words(crc)
    for row in region.row_span:
        words.extend(
            _row_block(device, region, row, BLOCK_TYPE_CONFIG, payload_fn, crc)
        )
        words.extend(
            _row_block(
                device, region, row, BLOCK_TYPE_BRAM_CONTENT, payload_fn, crc
            )
        )
    words.extend(_trailer_words(crc))
    return PartialBitstream(
        design_name=design_name,
        device_name=device.name,
        region=region,
        words=tuple(words),
    )


def generate_composite_bitstream(
    device: Device,
    regions: "list[Region] | tuple[Region, ...]",
    *,
    design_name: str = "prm",
    payload_fn: PayloadFn | None = None,
) -> PartialBitstream:
    """Generate one partial bitstream configuring several rectangles.

    Used for non-rectangular (L/T-shaped) PRRs: one header and trailer,
    then the per-row configuration/BRAM blocks of each rectangle in turn —
    which is exactly the structure the composite bitstream model
    (:func:`repro.core.shapes.composite_bitstream_bytes`) charges for.
    The returned object's ``region`` field holds the first rectangle;
    ``words`` covers all of them.
    """
    if not regions:
        raise ValueError("at least one region is required")
    if device.family.bytes_per_word != 4:
        raise ValueError("the generator emits 32-bit configuration words")
    for i, a in enumerate(regions):
        if not device.is_valid_prr(a):
            raise ValueError(f"{a} is not a valid PRR on {device.name}")
        for b in list(regions)[i + 1 :]:
            if a.overlaps(b):
                raise ValueError(f"regions {a} and {b} overlap")

    if payload_fn is None:
        seed = _seed(design_name)
        frame_words = device.family.frame_words

        def payload_fn(block_type: int, far: int, _s=seed, _n=frame_words):
            return frame_payload(_s, far, _n)

    crc = ConfigCrc()
    words = _header_words(crc)
    for region in regions:
        for row in region.row_span:
            words.extend(
                _row_block(device, region, row, BLOCK_TYPE_CONFIG, payload_fn, crc)
            )
            words.extend(
                _row_block(
                    device, region, row, BLOCK_TYPE_BRAM_CONTENT, payload_fn, crc
                )
            )
    words.extend(_trailer_words(crc))
    return PartialBitstream(
        design_name=design_name,
        device_name=device.name,
        region=regions[0],
        words=tuple(words),
    )

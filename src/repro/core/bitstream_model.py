"""Partial bitstream size cost model — eqs. (18)–(23) of Section III.C.

"The size of the partial bitstream (S_bitstream) for a PRR with H rows
that contains CLBs, DSPs, and BRAMs is:

    S_bitstream = {IW + H * (NCW_row + NDW_BRAM) + FW} * Bytes_word   (18)

The number of configuration words in a PRR row (NCW_row) is:

    NCW_row = FAR_FDRI + (NCF_CLB + NCF_DSP + NCF_BRAM + 1) * FR_size (19)

where NCF_CLB = W_CLB * CF_CLB (20), NCF_DSP = W_DSP * CF_DSP (21) and
NCF_BRAM = W_BRAM * CF_BRAM (22).  The number of BRAM initialization words
in a PRR row is:

    NDW_BRAM = FAR_FDRI + (W_BRAM * DF_BRAM + 1) * FR_size            (23)
"

The ``+ 1`` inside (19) and (23) is the pipeline-flush frame the FDRI write
emits after the final data frame of each row block; our bitstream generator
(:mod:`repro.bitgen.generator`) writes that frame so parser-measured sizes
match this model word for word.  When the PRR has no BRAM columns, eq. (23)
does not apply and ``NDW_BRAM = 0`` (the formula would otherwise charge a
FAR/FDRI preamble plus flush frame for a nonexistent BRAM block write).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..devices.family import DeviceFamily
from ..devices.resources import ResourceVector
from .prr_model import PRRGeometry

__all__ = [
    "config_frames_per_row",
    "ncw_row",
    "ndw_bram",
    "BitstreamEstimate",
    "estimate_bitstream",
    "bitstream_size_bytes",
    "cached_bitstream_bytes",
    "bitstream_cache_info",
    "clear_bitstream_cache",
    "full_device_bitstream_bytes",
]


def config_frames_per_row(family: DeviceFamily, columns: ResourceVector) -> int:
    """Eqs. (20)–(22): NCF_CLB + NCF_DSP + NCF_BRAM for one PRR row."""
    return (
        columns.clb * family.cf_clb
        + columns.dsp * family.cf_dsp
        + columns.bram * family.cf_bram
    )


def ncw_row(family: DeviceFamily, columns: ResourceVector) -> int:
    """Eq. (19): configuration words in one PRR row."""
    frames = config_frames_per_row(family, columns)
    return family.far_fdri_words + (frames + 1) * family.frame_words


def ndw_bram(family: DeviceFamily, columns: ResourceVector) -> int:
    """Eq. (23): BRAM initialization words in one PRR row (0 if no BRAMs)."""
    if columns.bram == 0:
        return 0
    return (
        family.far_fdri_words
        + (columns.bram * family.df_bram + 1) * family.frame_words
    )


@dataclass(frozen=True, slots=True)
class BitstreamEstimate:
    """Word- and byte-level breakdown of eq. (18) for one PRR.

    All ``*_words`` fields are 32-bit (or family-width) word counts;
    ``total_bytes`` is ``S_bitstream``.
    """

    family_name: str
    rows: int
    columns: ResourceVector
    initial_words: int  #: IW
    final_words: int  #: FW
    config_words_per_row: int  #: NCW_row, eq. (19)
    bram_words_per_row: int  #: NDW_BRAM, eq. (23) (0 without BRAMs)
    bytes_per_word: int  #: Bytes_word

    @property
    def words_per_row(self) -> int:
        return self.config_words_per_row + self.bram_words_per_row

    @property
    def total_words(self) -> int:
        return self.initial_words + self.rows * self.words_per_row + self.final_words

    @property
    def total_bytes(self) -> int:
        """Eq. (18): S_bitstream in bytes."""
        return self.total_words * self.bytes_per_word

    @property
    def header_and_trailer_bytes(self) -> int:
        return (self.initial_words + self.final_words) * self.bytes_per_word

    @property
    def config_bytes(self) -> int:
        return self.rows * self.config_words_per_row * self.bytes_per_word

    @property
    def bram_init_bytes(self) -> int:
        return self.rows * self.bram_words_per_row * self.bytes_per_word

    def breakdown(self) -> dict[str, int]:
        """Per-section byte attribution, used by the Fig. 2 benchmark."""
        return {
            "initial": self.initial_words * self.bytes_per_word,
            "configuration": self.config_bytes,
            "bram_initialization": self.bram_init_bytes,
            "final": self.final_words * self.bytes_per_word,
            "total": self.total_bytes,
        }


def estimate_bitstream(geometry: PRRGeometry) -> BitstreamEstimate:
    """Full eq. (18)–(23) evaluation with per-term breakdown."""
    family = geometry.family
    return BitstreamEstimate(
        family_name=family.name,
        rows=geometry.rows,
        columns=geometry.columns,
        initial_words=family.initial_words,
        final_words=family.final_words,
        config_words_per_row=ncw_row(family, geometry.columns),
        bram_words_per_row=ndw_bram(family, geometry.columns),
        bytes_per_word=family.bytes_per_word,
    )


def bitstream_size_bytes(geometry: PRRGeometry) -> int:
    """Eq. (18): the headline S_bitstream number, in bytes."""
    return estimate_bitstream(geometry).total_bytes


@lru_cache(maxsize=65536)
def cached_bitstream_bytes(geometry: PRRGeometry) -> int:
    """Memoized :func:`bitstream_size_bytes`.

    The search hot paths (objective comparisons in
    :func:`~repro.core.placement_search.find_prr`, the explorer's
    objective tuples and Pareto filtering) re-ask the same geometry's
    byte count thousands of times; geometries are immutable, so the
    answer is cached per geometry instead of rebuilding a
    :class:`BitstreamEstimate` on every comparison.
    """
    return estimate_bitstream(geometry).total_bytes


def bitstream_cache_info():
    """Hit/miss statistics of the per-geometry byte-count cache."""
    return cached_bitstream_bytes.cache_info()


def clear_bitstream_cache() -> None:
    """Drop memoized byte counts (used by equivalence tests)."""
    cached_bitstream_bytes.cache_clear()


def full_device_bitstream_bytes(device) -> int:
    """Size of a *full* device bitstream, for non-PR baselines.

    Extends the eq. (18) structure to every column of the device —
    including the IOB and CLK columns PRRs may not contain — plus the BRAM
    content frames of all BRAM columns.  Used by the multitasking
    simulator's full-reconfiguration baseline (Section I: "full
    reconfiguration ... halts the entire FPGA's execution" and transfers
    the whole configuration memory).
    """
    family = device.family
    config_frames = sum(
        family.config_frames(kind) for kind in device.columns
    )
    bram_cols = sum(1 for kind in device.columns if kind.name == "BRAM")
    words_per_row = family.far_fdri_words + (config_frames + 1) * family.frame_words
    if bram_cols:
        words_per_row += (
            family.far_fdri_words
            + (bram_cols * family.df_bram + 1) * family.frame_words
        )
    total_words = (
        family.initial_words + device.rows * words_per_row + family.final_words
    )
    return total_words * family.bytes_per_word

"""PR partitioning design-space exploration.

Section I: "the PR partitioning design space is exponentially large and
designers can only feasibly evaluate a subset of these designs.  To assist
in early PR partitioning design decisions, system designers need
system/application-level analytical or simulated models".

This module is that assistant: given a set of PRMs and a target device it
enumerates ways to group PRMs into shared PRRs (set partitions), runs the
Fig. 1 flow per group with non-overlap constraints, evaluates each design
with both cost models, and reports the Pareto-efficient designs over
(total PRR area, total bitstream bytes, worst per-PRM reconfiguration
time).

Four search strategies share the evaluation machinery (see
:func:`explore`):

* ``exhaustive`` — every set partition, optionally chunked across a
  process pool;
* ``pruned`` — branch-and-bound over partial partitions with admissible
  area/bitstream lower bounds; returns a subset of the feasible designs
  whose Pareto front is identical to the exhaustive one;
* ``beam`` — bounded-width beam search over partial partitions, the
  graceful-degradation path for PRM counts where Bell-number enumeration
  is intractable;
* ``auto`` — exhaustive up to :data:`MAX_EXHAUSTIVE_PRMS` PRMs, beam
  beyond.

Two resilience layers sit on top (ISSUE 5):

* **anytime search** — ``explore(..., deadline_s=...)`` (or
  ``max_evaluations=...``) bounds the search with a
  :class:`~repro.core.budget.Budget`; the result is an
  :class:`ExploreResult` (a ``list`` subclass) carrying a
  ``degraded``/``exhausted`` status, and ``mode="auto"`` escalates
  exhaustive → pruned → beam when the budget is too tight for complete
  enumeration.  An all-PRMs-share-one-PRR *incumbent* is evaluated first
  so even a severely cut search returns a usable design.
* **worker-crash recovery** — the process-pool path retries chunks whose
  worker died (``BrokenProcessPool``, killed pid, unpicklable result)
  with :class:`~repro.faults.reliable.RetryPolicy` backoff, and a
  circuit breaker trips the remaining chunks to in-process serial
  evaluation after repeated pool breakage.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Literal, Sequence

from ..devices.fabric import Device
from ..errors import BackendBroken, InvalidInput, ReproError
from ..obs import trace as _obs
from .bitstream_model import cached_bitstream_bytes
from .budget import Budget
from .fastpath import (
    PlacementCache,
    RegionOccupancy,
    group_lower_bounds,
)
from .params import PRMRequirements
from .placement_search import (
    PlacedPRR,
    PlacementNotFoundError,
    find_prr,
)
from .reconfig_model import ICAP_VIRTEX5_BYTES_PER_S, estimate_reconfig_time
from .utilization import UtilizationReport, utilization

__all__ = [
    "PRRAssignment",
    "PartitioningDesign",
    "ExploreResult",
    "iter_set_partitions",
    "evaluate_partition",
    "explore",
    "pareto_front",
    "ExploreMode",
    "MAX_EXHAUSTIVE_PRMS",
    "DEFAULT_BEAM_WIDTH",
    "POOL_BREAKER_THRESHOLD",
]

#: Exploring more PRMs than this exhaustively would enumerate > 21k set
#: partitions; ``mode="auto"`` switches to beam search beyond it.
MAX_EXHAUSTIVE_PRMS = 8

#: Partial partitions kept per level by the beam fallback.
DEFAULT_BEAM_WIDTH = 64

#: Process-pool breakages tolerated before the circuit breaker stops
#: recreating pools and finishes the remaining chunks serially.
POOL_BREAKER_THRESHOLD = 2

ExploreMode = Literal["auto", "exhaustive", "pruned", "beam"]

_EXPLORE_MODES = ("auto", "exhaustive", "pruned", "beam")

#: Placement engines the explorer can run on.  ``"batch"`` routes the
#: empty-fabric Fig. 1 searches through the numpy columnar engine
#: (:mod:`repro.core.batch`); results are identical to ``"scalar"``.
_ENGINES = ("scalar", "batch")


def _record_search_metrics(
    *,
    strategy: str,
    evaluated: int,
    pruned: int,
    feasible: int,
    cache: "PlacementCache | None",
) -> None:
    """Publish one strategy run's search statistics (no-op when disabled).

    Counters are created even at zero so every trace document carries the
    full search-telemetry shape (the CI schema smoke relies on that).
    """
    registry = _obs.metrics()
    if registry is None:
        return
    registry.counter("explore.candidates_evaluated").inc(evaluated)
    registry.counter("explore.branches_pruned").inc(pruned)
    registry.counter("explore.designs_feasible").inc(feasible)
    hits = registry.counter("explore.placement_cache_hits")
    misses = registry.counter("explore.placement_cache_misses")
    if cache is not None:
        hits.inc(cache.hits)
        misses.inc(cache.misses)
    span = _obs.current_span()
    if span is not None:
        span.set("strategy", strategy)
        span.set("evaluated", evaluated)
        span.set("pruned", pruned)


def iter_set_partitions(items: Sequence[int]) -> Iterator[list[list[int]]]:
    """Yield all set partitions of *items* (order-insensitive groups).

    Standard recursive construction: the first item starts in its own
    group; each later item either joins an existing group or starts a new
    one.
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in iter_set_partitions(rest):
        for index in range(len(partial)):
            yield partial[:index] + [[first] + partial[index]] + partial[index + 1 :]
        yield [[first]] + partial


@dataclass(frozen=True, slots=True)
class PRRAssignment:
    """One PRR of a design: the PRMs sharing it and its placed geometry."""

    prms: tuple[PRMRequirements, ...]
    placement: PlacedPRR

    @property
    def bitstream_bytes(self) -> int:
        """Every PRM of a shared PRR reconfigures the whole PRR, so all of
        its partial bitstreams have the same eq. (18) size (memoized per
        geometry — ``objectives`` re-asks this on every sort/Pareto
        comparison)."""
        return cached_bitstream_bytes(self.placement.geometry)

    def utilization_of(self, prm: PRMRequirements) -> UtilizationReport:
        return utilization(prm, self.placement.geometry)


@dataclass(frozen=True, slots=True)
class PartitioningDesign:
    """A fully evaluated PR partitioning: one assignment per PRR."""

    device_name: str
    assignments: tuple[PRRAssignment, ...]
    controller_bytes_per_s: float

    @property
    def num_prrs(self) -> int:
        return len(self.assignments)

    @property
    def total_prr_size(self) -> int:
        """Sum of PRR_size over all PRRs (fabric area committed to PR)."""
        return sum(a.placement.size for a in self.assignments)

    @property
    def total_bitstream_bytes(self) -> int:
        """Sum over PRMs of their partial bitstream sizes."""
        return sum(
            a.bitstream_bytes * len(a.prms) for a in self.assignments
        )

    @property
    def worst_reconfig_seconds(self) -> float:
        """Largest single-PRM reconfiguration time in the design."""
        if not self.assignments:
            return 0.0
        worst_bytes = max(a.bitstream_bytes for a in self.assignments)
        return estimate_reconfig_time(
            worst_bytes, controller_bytes_per_s=self.controller_bytes_per_s
        ).seconds

    @property
    def objectives(self) -> tuple[int, int, float]:
        """(area, bitstream bytes, worst reconfig time) minimization tuple."""
        return (
            self.total_prr_size,
            self.total_bitstream_bytes,
            self.worst_reconfig_seconds,
        )

    def summary(self) -> str:
        groups = " | ".join(
            "+".join(prm.name for prm in a.prms)
            + f" -> H={a.placement.geometry.rows},W={a.placement.geometry.width}"
            for a in self.assignments
        )
        return (
            f"{self.num_prrs} PRR(s): {groups} | area={self.total_prr_size} "
            f"bytes={self.total_bitstream_bytes} "
            f"t_max={self.worst_reconfig_seconds * 1e6:.1f}us"
        )


class ExploreResult(list):
    """The designs :func:`explore` found, plus anytime-search metadata.

    A ``list`` subclass, so every pre-existing caller (slicing, equality,
    ``pareto_front(designs)``) keeps working unchanged.  The extra
    attributes only carry information when a budget was supplied:

    * ``status`` — ``"exhausted"`` (the strategy ran to completion) or
      ``"degraded"`` (the budget cut it; the list is the best-so-far);
    * ``mode`` — the strategy actually used after any auto escalation;
    * ``exhausted_reason`` — ``"deadline"`` / ``"evaluations"`` when
      degraded, else ``None``;
    * ``elapsed_s`` / ``evaluations`` — search cost actually spent;
    * ``deadline_s`` — the wall-clock budget that applied, if any.
    """

    __slots__ = (
        "status",
        "mode",
        "exhausted_reason",
        "elapsed_s",
        "evaluations",
        "deadline_s",
    )

    def __init__(
        self,
        designs: Sequence[PartitioningDesign] = (),
        *,
        mode: str = "exhaustive",
        status: str = "exhausted",
        exhausted_reason: str | None = None,
        elapsed_s: float = 0.0,
        evaluations: int = 0,
        deadline_s: float | None = None,
    ) -> None:
        super().__init__(designs)
        self.mode = mode
        self.status = status
        self.exhausted_reason = exhausted_reason
        self.elapsed_s = elapsed_s
        self.evaluations = evaluations
        self.deadline_s = deadline_s

    @property
    def degraded(self) -> bool:
        """True when the budget cut the search before completion."""
        return self.status == "degraded"

    @property
    def front(self) -> "list[PartitioningDesign]":
        """Pareto front of the designs found so far."""
        return pareto_front(self)


def evaluate_partition(
    device: Device,
    groups: Sequence[Sequence[PRMRequirements]],
    *,
    controller_bytes_per_s: float = ICAP_VIRTEX5_BYTES_PER_S,
    placement_cache: PlacementCache | None = None,
    engine: str = "scalar",
) -> PartitioningDesign | None:
    """Place one PRR per group (non-overlapping); ``None`` if infeasible.

    Groups are placed largest-first (by merged column demand) so big PRRs
    get first pick of contiguous windows, then re-checked pairwise.  An
    optional :class:`~repro.core.fastpath.PlacementCache` memoizes the
    per-group Fig. 1 searches across repeated calls (the explorer shares
    one cache over every partition it evaluates); the cache's own engine
    wins when one is supplied, otherwise ``engine="batch"`` answers the
    empty-fabric first placement with one vectorized
    :func:`~repro.core.batch.find_prr_batch` call.
    """
    ordered = sorted(
        (list(group) for group in groups),
        key=lambda group: -max(prm.lut_ff_pairs for prm in group),
    )
    placed: list[PRRAssignment] = []
    occupied = RegionOccupancy()
    for group in ordered:
        try:
            if placement_cache is not None:
                placement = placement_cache.find_prr(
                    device, group, forbidden=occupied
                )
            elif engine == "batch" and len(occupied) == 0:
                from .batch import find_prr_batch

                placement = find_prr_batch(device, group)
            else:
                placement = find_prr(device, group, forbidden=occupied)
        except PlacementNotFoundError:
            return None
        placed.append(PRRAssignment(prms=tuple(group), placement=placement))
        occupied.add(placement.region)
    return PartitioningDesign(
        device_name=device.name,
        assignments=tuple(placed),
        controller_bytes_per_s=controller_bytes_per_s,
    )


def explore(
    device: Device,
    prms: Sequence[PRMRequirements],
    *,
    controller_bytes_per_s: float = ICAP_VIRTEX5_BYTES_PER_S,
    max_prrs: int | None = None,
    mode: ExploreMode = "auto",
    beam_width: int = DEFAULT_BEAM_WIDTH,
    workers: int | None = None,
    deadline_s: float | None = None,
    max_evaluations: int | None = None,
    engine: str = "scalar",
) -> ExploreResult:
    """Search PRM-to-PRR set partitions; return feasible designs.

    Designs come back sorted by the objective tuple (best first), as an
    :class:`ExploreResult` (a ``list`` subclass).

    ``mode`` selects the strategy:

    * ``"auto"`` (default) — exhaustive enumeration up to
      :data:`MAX_EXHAUSTIVE_PRMS` PRMs; beyond that it degrades
      gracefully to beam search (bounded width ``beam_width``) instead of
      raising, so >8-PRM workloads return a good — not provably complete
      — design set.  With a budget (below), auto additionally escalates
      exhaustive → pruned → beam when the budget looks too tight for the
      cheaper-to-pick strategy.
    * ``"exhaustive"`` — every set partition; raises
      :class:`~repro.errors.InvalidInput` above
      :data:`MAX_EXHAUSTIVE_PRMS` PRMs.  With ``workers`` > 1 the
      partition candidates are chunked across a process pool (with
      worker-crash recovery — see :func:`_explore_parallel`).
    * ``"pruned"`` — branch-and-bound: partial partitions whose
      admissible lower bound is already strictly dominated by a completed
      design are abandoned.  Returns a subset of the exhaustive design
      list whose Pareto front is identical (asserted by tests).
    * ``"beam"`` — beam search at any PRM count.

    ``deadline_s`` / ``max_evaluations`` make the search *anytime*: the
    all-PRMs-in-one-PRR incumbent is evaluated first, then the selected
    strategy runs until it completes or the budget expires, and the
    result reports ``status="degraded"`` with the best designs found so
    far instead of raising.  Without a budget the search behaves — and
    its outputs are byte-identical to — the pre-anytime code path.

    ``workers`` only applies to the exhaustive path; the other modes are
    sequential (their search order is the point).

    ``engine`` selects the placement backend: ``"scalar"`` (default) is
    the per-candidate Fig. 1 loop, ``"batch"`` answers every
    empty-fabric group search with one numpy array call
    (:mod:`repro.core.batch`).  The two produce identical designs and
    Pareto fronts; ``"batch"`` raises
    :class:`~repro.errors.MissingDependency` when numpy is absent.
    """
    if mode not in _EXPLORE_MODES:
        raise InvalidInput(
            f"unknown explore mode {mode!r}; valid: {', '.join(_EXPLORE_MODES)}"
        )
    if engine not in _ENGINES:
        raise InvalidInput(
            f"unknown placement engine {engine!r}; valid: {', '.join(_ENGINES)}"
        )
    if engine == "batch":
        from .batch import require_numpy

        require_numpy()
    n = len(prms)
    budget = (
        Budget(deadline_s=deadline_s, max_evaluations=max_evaluations)
        if deadline_s is not None or max_evaluations is not None
        else None
    )
    if mode == "auto" and budget is None:
        mode = "exhaustive" if n <= MAX_EXHAUSTIVE_PRMS else "beam"
    with _obs.trace_span(
        "explore", mode=mode, prms=n, device=device.name, engine=engine
    ) as span:
        window_before = (
            device.window_index.stats() if _obs.enabled else None
        )
        if budget is None:
            designs = _explore_dispatch(
                device,
                prms,
                mode=mode,
                controller_bytes_per_s=controller_bytes_per_s,
                max_prrs=max_prrs,
                beam_width=beam_width,
                workers=workers,
                engine=engine,
            )
            result = ExploreResult(designs, mode=mode, status="exhausted")
        else:
            result = _explore_anytime(
                device,
                prms,
                mode=mode,
                budget=budget,
                controller_bytes_per_s=controller_bytes_per_s,
                max_prrs=max_prrs,
                beam_width=beam_width,
                workers=workers,
                engine=engine,
            )
        if window_before is not None:
            registry = _obs.metrics()
            if registry is not None:
                after = device.window_index.stats()
                for key in ("queries", "mix_builds"):
                    registry.counter(f"window_index.{key}").inc(
                        after[key] - window_before[key]
                    )
            span.set("designs", len(result))
            if budget is not None:
                span.set("status", result.status)
                span.set("anytime_mode", result.mode)
    return result


def _explore_anytime(
    device: Device,
    prms: Sequence[PRMRequirements],
    *,
    mode: str,
    budget: Budget,
    controller_bytes_per_s: float,
    max_prrs: int | None,
    beam_width: int,
    workers: int | None,
    engine: str = "scalar",
) -> ExploreResult:
    """Budgeted search: incumbent first, then the (escalated) strategy.

    The incumbent — every PRM sharing one PRR — is the cheapest complete
    design and doubles as the timing probe for deadline-driven mode
    escalation.  When that grouping is infeasible (one PRM's demands
    blow the shared PRR past the fabric) the opposite endpoint — one PRR
    per PRM — is probed instead.  The incumbent is merged into the final
    design list if the cut-off strategy did not reach that grouping
    itself, so a degraded result is non-empty whenever either endpoint
    grouping is feasible.
    """
    incumbent: PartitioningDesign | None = None
    probe_s = 0.0
    if prms and (max_prrs is None or max_prrs >= 1):
        probe_start = time.perf_counter()
        incumbent = evaluate_partition(
            device,
            [list(prms)],
            controller_bytes_per_s=controller_bytes_per_s,
            engine=engine,
        )
        probe_s = time.perf_counter() - probe_start
        budget.charge()
        if (
            incumbent is None
            and len(prms) > 1
            and (max_prrs is None or max_prrs >= len(prms))
        ):
            incumbent = evaluate_partition(
                device,
                [[prm] for prm in prms],
                controller_bytes_per_s=controller_bytes_per_s,
                engine=engine,
            )
            budget.charge()
    if mode == "auto":
        mode = _escalate_mode(len(prms), budget, probe_s)
    designs: list[PartitioningDesign] = []
    if not budget.expired:
        designs = _explore_dispatch(
            device,
            prms,
            mode=mode,
            controller_bytes_per_s=controller_bytes_per_s,
            max_prrs=max_prrs,
            beam_width=beam_width,
            workers=workers,
            budget=budget,
            engine=engine,
        )
    if incumbent is not None and not any(
        _same_grouping(d, incumbent) for d in designs
    ):
        designs = sorted([*designs, incumbent], key=lambda d: d.objectives)
    status = "degraded" if budget.exhausted_reason is not None else "exhausted"
    if _obs.enabled and status == "degraded":
        registry = _obs.metrics()
        if registry is not None:
            registry.counter("explore.budget_cutoffs").inc()
    return ExploreResult(
        designs,
        mode=mode,
        status=status,
        exhausted_reason=budget.exhausted_reason,
        elapsed_s=budget.elapsed_s,
        evaluations=budget.evaluations,
        deadline_s=budget.deadline_s,
    )


def _bell_number(n: int) -> int:
    """Number of set partitions of *n* items (exhaustive candidate count)."""
    row = [1]
    for _ in range(n):
        nxt = [row[-1]]
        for value in row:
            nxt.append(nxt[-1] + value)
        row = nxt
    return row[0]


def _escalate_mode(n: int, budget: Budget, probe_s: float) -> str:
    """Pick the strongest strategy the budget can plausibly afford.

    Exhaustive enumerates Bell(n) candidates; the incumbent evaluation
    time is the per-candidate cost estimate (an overestimate once the
    placement cache warms up, which biases toward completing in budget).
    Pruned typically evaluates a small fraction of Bell(n) but has no
    useful a-priori bound, so it gets a generous multiplier; beam is the
    always-bounded fallback.
    """
    candidates = _bell_number(n)
    if budget.max_evaluations is not None:
        allowed = budget.max_evaluations - budget.evaluations
        if n <= MAX_EXHAUSTIVE_PRMS and candidates <= allowed:
            pass  # exhaustive still in play; deadline check below
        elif n <= MAX_EXHAUSTIVE_PRMS:
            return "pruned"
        else:
            return "beam"
    if n > MAX_EXHAUSTIVE_PRMS:
        return "beam"
    remaining = budget.remaining_s
    if remaining is None:
        return "exhaustive"
    projected = candidates * max(probe_s, 1e-6)
    if projected <= 0.5 * remaining:
        return "exhaustive"
    if projected <= 4.0 * remaining:
        return "pruned"
    return "beam"


def _explore_dispatch(
    device: Device,
    prms: Sequence[PRMRequirements],
    *,
    mode: str,
    controller_bytes_per_s: float,
    max_prrs: int | None,
    beam_width: int,
    workers: int | None,
    budget: Budget | None = None,
    engine: str = "scalar",
) -> list[PartitioningDesign]:
    n = len(prms)
    if mode == "exhaustive":
        if n > MAX_EXHAUSTIVE_PRMS:
            raise InvalidInput(
                f"exhaustive exploration capped at {MAX_EXHAUSTIVE_PRMS} PRMs; "
                f"got {n} — use mode='beam'/'pruned' (or mode='auto', which "
                f"falls back to beam search automatically)"
            )
        if workers is not None and workers > 1:
            return _explore_parallel(
                device,
                prms,
                controller_bytes_per_s=controller_bytes_per_s,
                max_prrs=max_prrs,
                workers=workers,
                budget=budget,
                engine=engine,
            )
        return _explore_exhaustive(
            device,
            prms,
            controller_bytes_per_s=controller_bytes_per_s,
            max_prrs=max_prrs,
            budget=budget,
            engine=engine,
        )
    if mode == "pruned":
        return _explore_pruned(
            device,
            prms,
            controller_bytes_per_s=controller_bytes_per_s,
            max_prrs=max_prrs,
            budget=budget,
            engine=engine,
        )
    if mode == "beam":
        return _explore_beam(
            device,
            prms,
            controller_bytes_per_s=controller_bytes_per_s,
            max_prrs=max_prrs,
            beam_width=beam_width,
            budget=budget,
            engine=engine,
        )
    raise InvalidInput(f"unknown explore mode {mode!r}")


def _explore_exhaustive(
    device: Device,
    prms: Sequence[PRMRequirements],
    *,
    controller_bytes_per_s: float,
    max_prrs: int | None,
    budget: Budget | None = None,
    engine: str = "scalar",
) -> list[PartitioningDesign]:
    cache = PlacementCache(engine=engine)
    designs: list[PartitioningDesign] = []
    evaluated = 0
    for partition in iter_set_partitions(range(len(prms))):
        if budget is not None and budget.expired:
            break
        if max_prrs is not None and len(partition) > max_prrs:
            continue
        groups = [[prms[i] for i in group] for group in partition]
        evaluated += 1
        design = evaluate_partition(
            device,
            groups,
            controller_bytes_per_s=controller_bytes_per_s,
            placement_cache=cache,
        )
        if budget is not None:
            budget.charge()
        if design is not None:
            designs.append(design)
    designs.sort(key=lambda d: d.objectives)
    if _obs.enabled:
        _record_search_metrics(
            strategy="exhaustive",
            evaluated=evaluated,
            pruned=0,
            feasible=len(designs),
            cache=cache,
        )
    return designs


# -- parallel evaluation ------------------------------------------------------


def _evaluate_partition_chunk(
    device: Device,
    prms: Sequence[PRMRequirements],
    partitions: Sequence[Sequence[Sequence[int]]],
    controller_bytes_per_s: float,
    engine: str = "scalar",
) -> list[PartitioningDesign]:
    """Worker entry point: evaluate a chunk of index partitions."""
    cache = PlacementCache(engine=engine)
    designs: list[PartitioningDesign] = []
    for partition in partitions:
        groups = [[prms[i] for i in group] for group in partition]
        design = evaluate_partition(
            device,
            groups,
            controller_bytes_per_s=controller_bytes_per_s,
            placement_cache=cache,
        )
        if design is not None:
            designs.append(design)
    return designs


#: The function worker processes run per chunk.  Module-level so tests and
#: the soak benchmark can swap in fault-injecting evaluators (the crash
#: path is otherwise unreachable on a healthy machine).
_CHUNK_EVALUATOR = _evaluate_partition_chunk


def _record_recovery_metrics(
    *,
    crashes: int,
    retry_rounds: int,
    circuit_tripped: bool,
    serial_chunks: int,
) -> None:
    """Publish the worker-crash recovery counters (no-op when disabled)."""
    registry = _obs.metrics()
    if registry is None:
        return
    registry.counter("explore.worker_crashes").inc(crashes)
    registry.counter("explore.pool_retry_rounds").inc(retry_rounds)
    registry.counter("explore.pool_circuit_tripped").inc(
        1 if circuit_tripped else 0
    )
    registry.counter("explore.chunks_serial_fallback").inc(serial_chunks)


def _explore_parallel(
    device: Device,
    prms: Sequence[PRMRequirements],
    *,
    controller_bytes_per_s: float,
    max_prrs: int | None,
    workers: int,
    budget: Budget | None = None,
    engine: str = "scalar",
) -> list[PartitioningDesign]:
    """Chunked evaluation on a process pool, with worker-crash recovery.

    Failure handling (ISSUE 5): any chunk whose future raises — a worker
    killed mid-chunk (``BrokenProcessPool``), an unpicklable result, an
    exception escaping the chunk evaluator — is retried on a fresh pool
    with :class:`~repro.faults.reliable.RetryPolicy` exponential backoff.
    After :data:`POOL_BREAKER_THRESHOLD` pool breakages (or once retries
    are exhausted) the circuit breaker stops paying pool-restart costs
    and the remaining chunks run serially in-process, so a deterministic
    crasher cannot take the search down; a chunk that fails even serially
    raises :class:`~repro.errors.BackendBroken`.  Chunk results are
    reassembled in submission order, so the pre-sort design order — and
    therefore the final output — is identical to the sequential path.
    """
    from ..faults.reliable import RetryPolicy

    partitions = [
        [tuple(group) for group in partition]
        for partition in iter_set_partitions(range(len(prms)))
        if max_prrs is None or len(partition) <= max_prrs
    ]
    chunk_count = min(len(partitions), workers * 4) or 1
    chunk_size = -(-len(partitions) // chunk_count)
    chunks = [
        partitions[i : i + chunk_size]
        for i in range(0, len(partitions), chunk_size)
    ]
    chunk_fn = _CHUNK_EVALUATOR
    # Swapped-in evaluators (fault injection, soak tests) keep the
    # historical 4-positional signature, so the engine travels as an
    # extra argument only when it differs from the scalar default.
    extra_args = () if engine == "scalar" else (engine,)
    policy = RetryPolicy(
        max_attempts=3, backoff_base_s=0.05, backoff_factor=2.0, backoff_cap_s=0.5
    )
    results: dict[int, list[PartitioningDesign]] = {}
    pending = list(range(len(chunks)))
    crashes = 0
    pool_breaks = 0
    retry_rounds = 0
    deadline_cut = False
    for round_no in range(1, policy.max_attempts + 1):
        if not pending or pool_breaks >= POOL_BREAKER_THRESHOLD:
            break
        if round_no > 1:
            retry_rounds += 1
            time.sleep(policy.backoff_seconds(round_no - 1))
        failed: list[int] = []
        pool_broke = False
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                index: pool.submit(
                    chunk_fn,
                    device,
                    list(prms),
                    chunks[index],
                    controller_bytes_per_s,
                    *extra_args,
                )
                for index in pending
            }
            # Collect in submission order so the pre-sort design order
            # matches the sequential path exactly.
            for index in pending:
                if budget is not None and budget.expired:
                    deadline_cut = True
                    for future in futures.values():
                        future.cancel()
                    break
                try:
                    results[index] = futures[index].result()
                    if budget is not None:
                        budget.charge(len(chunks[index]))
                except Exception as exc:
                    crashes += 1
                    failed.append(index)
                    if isinstance(exc, BrokenExecutor):
                        pool_broke = True
        if pool_broke:
            pool_breaks += 1
        pending = failed
        if deadline_cut:
            pending = []
            break
    circuit_tripped = pool_breaks >= POOL_BREAKER_THRESHOLD
    serial_chunks = len(pending)
    for index in pending:
        # Retries/circuit breaker exhausted the pool path: finish the
        # chunk in-process, where there is no worker to lose.
        try:
            results[index] = chunk_fn(
                device,
                list(prms),
                chunks[index],
                controller_bytes_per_s,
                *extra_args,
            )
            if budget is not None:
                budget.charge(len(chunks[index]))
        except ReproError:
            raise
        except Exception as exc:
            raise BackendBroken(
                f"partition chunk {index} failed even in serial fallback "
                f"after {crashes} worker crash(es)",
                cause=repr(exc),
            ) from exc
    designs = [
        design for index in sorted(results) for design in results[index]
    ]
    designs.sort(key=lambda d: d.objectives)
    if _obs.enabled:
        # Worker-local placement caches cannot report back; candidate and
        # feasibility counts still can.
        _record_search_metrics(
            strategy="parallel",
            evaluated=len(partitions),
            pruned=0,
            feasible=len(designs),
            cache=None,
        )
        _record_recovery_metrics(
            crashes=crashes,
            retry_rounds=retry_rounds,
            circuit_tripped=circuit_tripped,
            serial_chunks=serial_chunks,
        )
    return designs


# -- branch-and-bound / beam ---------------------------------------------------


def _partial_lower_bound(
    device: Device,
    prms: Sequence[PRMRequirements],
    groups: Sequence[Sequence[int]],
    next_index: int,
    controller_bytes_per_s: float,
) -> tuple[int, int, float] | None:
    """Admissible objective lower bound for every completion of a partial.

    ``groups`` partitions PRMs ``0..next_index-1``; the rest are
    unassigned.  Area: each existing group costs at least its geometry
    minimum, and an unassigned PRM may join an existing group for free.
    Bitstream: each PRM pays at least the minimum bytes of its current
    group (merged requirements only grow as members join), unassigned
    PRMs at least their solo minimum.  Worst reconfig time follows from
    the largest of those per-group byte minima.  Returns ``None`` when a
    group (and therefore every superset) has no feasible geometry.
    """
    area = 0
    total_bytes = 0
    worst_bytes = 0
    for group in groups:
        bounds = group_lower_bounds(device, [prms[i] for i in group])
        if bounds is None:
            return None
        area += bounds.min_size
        total_bytes += bounds.min_bytes * len(group)
        worst_bytes = max(worst_bytes, bounds.min_bytes)
    for index in range(next_index, len(prms)):
        bounds = group_lower_bounds(device, [prms[index]])
        if bounds is None:
            return None
        total_bytes += bounds.min_bytes
        worst_bytes = max(worst_bytes, bounds.min_bytes)
    worst_seconds = (
        estimate_reconfig_time(
            worst_bytes, controller_bytes_per_s=controller_bytes_per_s
        ).seconds
        if worst_bytes
        else 0.0
    )
    return (area, total_bytes, worst_seconds)


def _strictly_dominates(a: tuple, b: tuple) -> bool:
    """True when *a* is <= *b* elementwise and < in some coordinate."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


class _BudgetExhausted(Exception):
    """Internal unwind signal for the recursive pruned search."""


def _explore_pruned(
    device: Device,
    prms: Sequence[PRMRequirements],
    *,
    controller_bytes_per_s: float,
    max_prrs: int | None,
    budget: Budget | None = None,
    engine: str = "scalar",
) -> list[PartitioningDesign]:
    """Branch-and-bound enumeration with an exact Pareto front.

    A partial partition is abandoned only when its admissible lower bound
    is *strictly* dominated by a completed design — every completion of
    such a partial is itself strictly dominated, so dropping it cannot
    change the Pareto front (ties are deliberately kept).

    With a budget, expiry unwinds the recursion and the designs completed
    so far are returned; because the descent visits join-existing-group
    branches first, the early designs are the heavily shared (small-area)
    ones, which keeps a cut-off front useful.
    """
    n = len(prms)
    cache = PlacementCache(engine=engine)
    designs: list[PartitioningDesign] = []
    archived: list[tuple[int, int, float]] = []
    groups: list[list[int]] = []
    evaluated = 0
    pruned = 0

    def viable(next_index: int) -> bool:
        nonlocal pruned
        bound = _partial_lower_bound(
            device, prms, groups, next_index, controller_bytes_per_s
        )
        if bound is None:
            pruned += 1
            return False
        if any(_strictly_dominates(done, bound) for done in archived):
            pruned += 1
            return False
        return True

    def descend(index: int) -> None:
        nonlocal evaluated
        if budget is not None and budget.expired:
            raise _BudgetExhausted
        if index == n:
            evaluated += 1
            design = evaluate_partition(
                device,
                [[prms[i] for i in group] for group in groups],
                controller_bytes_per_s=controller_bytes_per_s,
                placement_cache=cache,
            )
            if budget is not None:
                budget.charge()
            if design is not None:
                designs.append(design)
                archived.append(design.objectives)
            return
        # Join-existing-group branches first: the all-shared design is the
        # first leaf reached and usually seeds a tight area bound.
        for group in groups:
            group.append(index)
            if viable(index + 1):
                descend(index + 1)
            group.pop()
        if max_prrs is None or len(groups) < max_prrs:
            groups.append([index])
            if viable(index + 1):
                descend(index + 1)
            groups.pop()

    if n == 0:
        return []
    try:
        if viable(0):
            descend(0)
    except _BudgetExhausted:
        pass
    designs.sort(key=lambda d: d.objectives)
    if _obs.enabled:
        _record_search_metrics(
            strategy="pruned",
            evaluated=evaluated,
            pruned=pruned,
            feasible=len(designs),
            cache=cache,
        )
    return designs


def _explore_beam(
    device: Device,
    prms: Sequence[PRMRequirements],
    *,
    controller_bytes_per_s: float,
    max_prrs: int | None,
    beam_width: int,
    budget: Budget | None = None,
    engine: str = "scalar",
) -> list[PartitioningDesign]:
    """Bounded-width beam search over partial partitions.

    Level ``k`` holds at most ``beam_width`` partitions of the first ``k``
    PRMs, ranked by the same admissible lower bound the pruned path uses;
    survivors of the final level are evaluated exactly.  Completes in
    O(n x beam_width x n) partial expansions regardless of PRM count.

    Budget expiry stops the level expansion; completed designs seen so
    far (only the final level produces any) are returned, and the
    anytime wrapper's incumbent guarantees a non-empty overall result.
    """
    if beam_width < 1:
        raise InvalidInput("beam_width must be >= 1")
    n = len(prms)
    if n == 0:
        return []
    cache = PlacementCache(engine=engine)
    evaluated = 0
    pruned = 0
    cut = False

    def partial_score(
        candidate: tuple[tuple[int, ...], ...], next_index: int
    ) -> tuple[tuple[int, int, float], PartitioningDesign] | None:
        """Score a placeable partial: actual partial objectives plus the
        admissible remaining-PRM bitstream contribution.  ``None`` prunes
        unplaceable partials — unlike the exact pruned path, beam search
        may discard completions a different grouping would have saved,
        which is the accepted trade-off of the fallback."""
        design = evaluate_partition(
            device,
            [[prms[i] for i in group] for group in candidate],
            controller_bytes_per_s=controller_bytes_per_s,
            placement_cache=cache,
        )
        if design is None:
            return None
        remaining_bytes = 0
        worst_bytes = 0
        for index in range(next_index, n):
            bounds = group_lower_bounds(device, [prms[index]])
            if bounds is None:
                return None
            remaining_bytes += bounds.min_bytes
            worst_bytes = max(worst_bytes, bounds.min_bytes)
        area, total_bytes, worst_seconds = design.objectives
        if worst_bytes:
            worst_seconds = max(
                worst_seconds,
                estimate_reconfig_time(
                    worst_bytes, controller_bytes_per_s=controller_bytes_per_s
                ).seconds,
            )
        return (area, total_bytes + remaining_bytes, worst_seconds), design

    beam: list[tuple[tuple[int, ...], ...]] = [()]
    final: dict[tuple[tuple[int, ...], ...], PartitioningDesign] = {}
    for index in range(n):
        scored: list[tuple[tuple[int, int, float], tuple[tuple[int, ...], ...]]] = []
        seen: set[tuple[tuple[int, ...], ...]] = set()
        for partial in beam:
            expansions = [
                partial[:gi] + (partial[gi] + (index,),) + partial[gi + 1 :]
                for gi in range(len(partial))
            ]
            if max_prrs is None or len(partial) < max_prrs:
                expansions.append(partial + ((index,),))
            for candidate in expansions:
                if budget is not None and budget.expired:
                    cut = True
                    break
                canonical = tuple(sorted(candidate))
                if canonical in seen:
                    continue
                seen.add(canonical)
                evaluated += 1
                result = partial_score(candidate, index + 1)
                if budget is not None:
                    budget.charge()
                if result is None:
                    pruned += 1
                    continue
                score, design = result
                scored.append((score, candidate))
                if index + 1 == n:
                    final[candidate] = design
            if cut:
                break
        scored.sort(key=lambda item: item[0])
        pruned += max(0, len(scored) - beam_width)
        beam = [candidate for _, candidate in scored[:beam_width]]
        if cut or not beam:
            break
    designs = [final[candidate] for candidate in beam if candidate in final]
    if cut and not designs:
        # The budget expired before the last level: salvage any exactly
        # evaluated complete designs (there are none unless n was reached,
        # so this usually stays empty and the incumbent covers the result).
        designs = list(final.values())
    designs.sort(key=lambda d: d.objectives)
    if _obs.enabled:
        _record_search_metrics(
            strategy="beam",
            evaluated=evaluated,
            pruned=pruned,
            feasible=len(designs),
            cache=cache,
        )
    return designs


def pareto_front(designs: Sequence[PartitioningDesign]) -> list[PartitioningDesign]:
    """Designs not dominated on (area, bitstream, worst reconfig time)."""
    front: list[PartitioningDesign] = []
    for candidate in designs:
        c = candidate.objectives
        dominated = False
        for other in designs:
            if other is candidate:
                continue
            o = other.objectives
            if all(x <= y for x, y in zip(o, c)) and o != c:
                dominated = True
                break
        if not dominated and not any(
            f.objectives == c and _same_grouping(f, candidate) for f in front
        ):
            front.append(candidate)
    return front


def _same_grouping(a: PartitioningDesign, b: PartitioningDesign) -> bool:
    names_a = sorted(tuple(sorted(p.name for p in x.prms)) for x in a.assignments)
    names_b = sorted(tuple(sorted(p.name for p in x.prms)) for x in b.assignments)
    return names_a == names_b

"""PR partitioning design-space exploration.

Section I: "the PR partitioning design space is exponentially large and
designers can only feasibly evaluate a subset of these designs.  To assist
in early PR partitioning design decisions, system designers need
system/application-level analytical or simulated models".

This module is that assistant: given a set of PRMs and a target device it
enumerates ways to group PRMs into shared PRRs (set partitions), runs the
Fig. 1 flow per group with non-overlap constraints, evaluates each design
with both cost models, and reports the Pareto-efficient designs over
(total PRR area, total bitstream bytes, worst per-PRM reconfiguration
time).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..devices.fabric import Device, Region
from .bitstream_model import bitstream_size_bytes
from .params import PRMRequirements
from .placement_search import (
    PlacedPRR,
    PlacementNotFoundError,
    find_prr,
)
from .reconfig_model import ICAP_VIRTEX5_BYTES_PER_S, estimate_reconfig_time
from .utilization import UtilizationReport, utilization

__all__ = [
    "PRRAssignment",
    "PartitioningDesign",
    "iter_set_partitions",
    "evaluate_partition",
    "explore",
    "pareto_front",
]

#: Exploring more PRMs than this would enumerate > 21k set partitions.
MAX_EXHAUSTIVE_PRMS = 8


def iter_set_partitions(items: Sequence[int]) -> Iterator[list[list[int]]]:
    """Yield all set partitions of *items* (order-insensitive groups).

    Standard recursive construction: the first item starts in its own
    group; each later item either joins an existing group or starts a new
    one.
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in iter_set_partitions(rest):
        for index in range(len(partial)):
            yield partial[:index] + [[first] + partial[index]] + partial[index + 1 :]
        yield [[first]] + partial


@dataclass(frozen=True, slots=True)
class PRRAssignment:
    """One PRR of a design: the PRMs sharing it and its placed geometry."""

    prms: tuple[PRMRequirements, ...]
    placement: PlacedPRR

    @property
    def bitstream_bytes(self) -> int:
        """Every PRM of a shared PRR reconfigures the whole PRR, so all of
        its partial bitstreams have the same eq. (18) size."""
        return bitstream_size_bytes(self.placement.geometry)

    def utilization_of(self, prm: PRMRequirements) -> UtilizationReport:
        return utilization(prm, self.placement.geometry)


@dataclass(frozen=True, slots=True)
class PartitioningDesign:
    """A fully evaluated PR partitioning: one assignment per PRR."""

    device_name: str
    assignments: tuple[PRRAssignment, ...]
    controller_bytes_per_s: float

    @property
    def num_prrs(self) -> int:
        return len(self.assignments)

    @property
    def total_prr_size(self) -> int:
        """Sum of PRR_size over all PRRs (fabric area committed to PR)."""
        return sum(a.placement.size for a in self.assignments)

    @property
    def total_bitstream_bytes(self) -> int:
        """Sum over PRMs of their partial bitstream sizes."""
        return sum(
            a.bitstream_bytes * len(a.prms) for a in self.assignments
        )

    @property
    def worst_reconfig_seconds(self) -> float:
        """Largest single-PRM reconfiguration time in the design."""
        if not self.assignments:
            return 0.0
        worst_bytes = max(a.bitstream_bytes for a in self.assignments)
        return estimate_reconfig_time(
            worst_bytes, controller_bytes_per_s=self.controller_bytes_per_s
        ).seconds

    @property
    def objectives(self) -> tuple[int, int, float]:
        """(area, bitstream bytes, worst reconfig time) minimization tuple."""
        return (
            self.total_prr_size,
            self.total_bitstream_bytes,
            self.worst_reconfig_seconds,
        )

    def summary(self) -> str:
        groups = " | ".join(
            "+".join(prm.name for prm in a.prms)
            + f" -> H={a.placement.geometry.rows},W={a.placement.geometry.width}"
            for a in self.assignments
        )
        return (
            f"{self.num_prrs} PRR(s): {groups} | area={self.total_prr_size} "
            f"bytes={self.total_bitstream_bytes} "
            f"t_max={self.worst_reconfig_seconds * 1e6:.1f}us"
        )


def evaluate_partition(
    device: Device,
    groups: Sequence[Sequence[PRMRequirements]],
    *,
    controller_bytes_per_s: float = ICAP_VIRTEX5_BYTES_PER_S,
) -> PartitioningDesign | None:
    """Place one PRR per group (non-overlapping); ``None`` if infeasible.

    Groups are placed largest-first (by merged column demand) so big PRRs
    get first pick of contiguous windows, then re-checked pairwise.
    """
    ordered = sorted(
        (list(group) for group in groups),
        key=lambda group: -max(prm.lut_ff_pairs for prm in group),
    )
    placed: list[PRRAssignment] = []
    occupied: list[Region] = []
    for group in ordered:
        try:
            placement = find_prr(device, group, forbidden=occupied)
        except PlacementNotFoundError:
            return None
        placed.append(PRRAssignment(prms=tuple(group), placement=placement))
        occupied.append(placement.region)
    return PartitioningDesign(
        device_name=device.name,
        assignments=tuple(placed),
        controller_bytes_per_s=controller_bytes_per_s,
    )


def explore(
    device: Device,
    prms: Sequence[PRMRequirements],
    *,
    controller_bytes_per_s: float = ICAP_VIRTEX5_BYTES_PER_S,
    max_prrs: int | None = None,
) -> list[PartitioningDesign]:
    """Evaluate every PRM-to-PRR set partition; return feasible designs.

    Designs come back sorted by the objective tuple (best first).
    """
    if len(prms) > MAX_EXHAUSTIVE_PRMS:
        raise ValueError(
            f"exhaustive exploration capped at {MAX_EXHAUSTIVE_PRMS} PRMs; "
            f"got {len(prms)} — pre-group or shard the PRM set"
        )
    designs: list[PartitioningDesign] = []
    for partition in iter_set_partitions(range(len(prms))):
        if max_prrs is not None and len(partition) > max_prrs:
            continue
        groups = [[prms[i] for i in group] for group in partition]
        design = evaluate_partition(
            device, groups, controller_bytes_per_s=controller_bytes_per_s
        )
        if design is not None:
            designs.append(design)
    designs.sort(key=lambda d: d.objectives)
    return designs


def pareto_front(designs: Sequence[PartitioningDesign]) -> list[PartitioningDesign]:
    """Designs not dominated on (area, bitstream, worst reconfig time)."""
    front: list[PartitioningDesign] = []
    for candidate in designs:
        c = candidate.objectives
        dominated = False
        for other in designs:
            if other is candidate:
                continue
            o = other.objectives
            if all(x <= y for x, y in zip(o, c)) and o != c:
                dominated = True
                break
        if not dominated and not any(
            f.objectives == c and _same_grouping(f, candidate) for f in front
        ):
            front.append(candidate)
    return front


def _same_grouping(a: PartitioningDesign, b: PartitioningDesign) -> bool:
    names_a = sorted(tuple(sorted(p.name for p in x.prms)) for x in a.assignments)
    names_b = sorted(tuple(sorted(p.name for p in x.prms)) for x in b.assignments)
    return names_a == names_b

"""PRR size/organization cost model — eqs. (1)–(12) of Section III.B.

Given a PRM's synthesis-report requirements and a row count ``H``, the
model computes how many CLB, DSP and BRAM columns the PRR needs:

* eq. (1):  ``CLB_req = ceil(LUT_FF_req / LUT_CLB)``
* eq. (2):  ``W_CLB  = ceil(CLB_req / (H * CLB_col))``
* eq. (3):  ``W_DSP  = ceil(DSP_req / (H * DSP_col))`` — multi-DSP-column
  fabrics
* eq. (4):  ``H_DSP  = ceil(DSP_req / (W_DSP * DSP_col))`` with
  ``W_DSP = 1`` — single-DSP-column fabrics, where the one column's height
  must cover the requirement, constraining ``H >= H_DSP``
* eq. (5):  ``W_BRAM = ceil(BRAM_req / (H * BRAM_col))``
* eq. (6):  ``W = W_CLB + W_DSP + W_BRAM``
* eq. (7):  ``PRR_size = H * W``
* eqs. (8)–(12): available CLB/FF/LUT/DSP/BRAM counts of the resulting
  geometry.

For multiple PRMs sharing one PRR, "the largest W_CLB, W_DSP, and W_BRAM
across all of the PRR's associated PRMs dictates the number of CLB, DSP,
and BRAM columns" — :func:`merge_geometries` / the ``requirements``
sequence accepted by :func:`prr_geometry_for_rows`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from ..devices.family import DeviceFamily
from ..errors import InfeasiblePlacement
from ..devices.resources import ResourceVector
from .params import PRMRequirements

__all__ = [
    "clb_requirement",
    "min_rows_for_dsps",
    "PRRGeometry",
    "prr_geometry_for_rows",
    "merge_geometries",
    "InfeasibleGeometryError",
    "geometry_cache_info",
    "clear_geometry_cache",
]


class InfeasibleGeometryError(InfeasiblePlacement, ValueError):
    """Raised when no PRR geometry can satisfy a requirement.

    The canonical case: a single-DSP-column fabric where
    ``H * DSP_col < DSP_req`` for the requested ``H`` (the lone DSP column
    cannot be made wider, eq. (4)).
    """


def clb_requirement(requirements: PRMRequirements, family: DeviceFamily) -> int:
    """Eq. (1): CLBs needed for the PRM's LUT–FF pairs.

    "Since LUT_FF_req / LUT_CLB may be a non-integer, we take the ceiling
    of this value to ensure sufficient CLB resources."
    """
    return family.clbs_for_lut_ff_pairs(requirements.lut_ff_pairs)


def min_rows_for_dsps(
    requirements: PRMRequirements,
    family: DeviceFamily,
    *,
    single_dsp_column: bool,
) -> int:
    """Minimum ``H`` imposed by the DSP requirement.

    On single-DSP-column fabrics eq. (4) fixes ``W_DSP = 1`` so
    ``H >= ceil(DSP_req / DSP_col)``; otherwise any ``H >= 1`` works
    because width can grow instead.
    """
    if requirements.dsps == 0 or not single_dsp_column:
        return 1
    return math.ceil(requirements.dsps / family.dsp_per_col)


@dataclass(frozen=True, slots=True)
class PRRGeometry:
    """A PRR shape: ``rows`` fabric rows by per-kind column counts.

    ``columns`` holds (W_CLB, W_DSP, W_BRAM); all availability formulas
    (eqs. (8)–(12)) derive from it and the family constants.
    """

    family: DeviceFamily
    rows: int  #: H
    columns: ResourceVector  #: (W_CLB, W_DSP, W_BRAM)

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError("a PRR needs at least one row")
        if self.columns.is_zero():
            raise ValueError("a PRR needs at least one column")

    # -- eqs. (6), (7) ------------------------------------------------------

    @property
    def width(self) -> int:
        """Eq. (6): ``W = W_CLB + W_DSP + W_BRAM``."""
        return self.columns.total

    @property
    def size(self) -> int:
        """Eq. (7): ``PRR_size = H * W``."""
        return self.rows * self.width

    # -- eqs. (8)-(12) ------------------------------------------------------

    @property
    def available(self) -> ResourceVector:
        """Eqs. (8), (11), (12): CLB/DSP/BRAM capacity of the PRR."""
        fam = self.family
        return ResourceVector(
            clb=self.rows * self.columns.clb * fam.clb_per_col,
            dsp=self.rows * self.columns.dsp * fam.dsp_per_col,
            bram=self.rows * self.columns.bram * fam.bram_per_col,
        )

    @property
    def ffs_available(self) -> int:
        """Eq. (9): ``FF_avail = CLB_avail * FF_CLB``."""
        return self.family.ffs_in_clbs(self.available.clb)

    @property
    def luts_available(self) -> int:
        """Eq. (10): ``LUT_avail = CLB_avail * LUT_CLB``."""
        return self.family.luts_in_clbs(self.available.clb)

    def fits(self, requirements: PRMRequirements) -> bool:
        """Whether the geometry accommodates *requirements* (all five)."""
        clb_req = clb_requirement(requirements, self.family)
        avail = self.available
        return (
            avail.clb >= clb_req
            and avail.dsp >= requirements.dsps
            and avail.bram >= requirements.brams
            and self.luts_available >= requirements.luts
            and self.ffs_available >= requirements.ffs
        )

    def __repr__(self) -> str:
        return (
            f"PRRGeometry(H={self.rows}, W_CLB={self.columns.clb}, "
            f"W_DSP={self.columns.dsp}, W_BRAM={self.columns.bram}, "
            f"family={self.family.name})"
        )


def prr_geometry_for_rows(
    requirements: PRMRequirements | Sequence[PRMRequirements],
    family: DeviceFamily,
    rows: int,
    *,
    single_dsp_column: bool = False,
) -> PRRGeometry:
    """Compute the eqs. (1)–(6) geometry for a fixed row count ``H``.

    Accepts one requirement bundle, or several for a shared PRR (the
    elementwise-max rule of Section III.B is applied per column kind).

    Raises :class:`InfeasibleGeometryError` when the single-DSP-column rule
    makes the requested ``H`` insufficient.

    Results (including infeasible verdicts) are memoized on the normalized
    ``(requirements, family, H, single_dsp_column)`` key: the explorer
    asks for the same group geometry once per set partition it appears in,
    and the Fig. 1 H-loop re-asks per candidate placement.
    """
    if isinstance(requirements, PRMRequirements):
        key = (requirements,)
    else:
        if not requirements:
            raise ValueError("at least one PRM requirement is needed")
        # The elementwise-max merge is order-insensitive, so a canonical
        # order lets permutations of one group share a cache entry.
        key = tuple(
            sorted(
                requirements,
                key=lambda p: (p.name, p.lut_ff_pairs, p.luts, p.ffs, p.dsps, p.brams),
            )
        )
    if rows < 1:
        raise ValueError("rows (H) must be >= 1")
    result = _cached_geometry(key, family, rows, single_dsp_column)
    if isinstance(result, InfeasibleGeometryError):
        raise result
    return result


@lru_cache(maxsize=65536)
def _cached_geometry(
    requirements: tuple[PRMRequirements, ...],
    family: DeviceFamily,
    rows: int,
    single_dsp_column: bool,
) -> PRRGeometry | InfeasibleGeometryError:
    # lru_cache does not cache raised exceptions, and the infeasible rows of
    # the Fig. 1 H-loop are exactly the hot repeats — so store the error
    # instance as a value and let the caller raise it.
    try:
        merged = ResourceVector()
        for prm in requirements:
            merged = merged.max(
                _columns_for_prm(prm, family, rows, single_dsp_column)
            )
        return PRRGeometry(family=family, rows=rows, columns=merged)
    except InfeasibleGeometryError as error:
        return error


def geometry_cache_info():
    """Hit/miss statistics of the geometry memoization cache."""
    return _cached_geometry.cache_info()


def clear_geometry_cache() -> None:
    """Drop all memoized geometries (used by equivalence tests)."""
    _cached_geometry.cache_clear()


def _columns_for_prm(
    prm: PRMRequirements,
    family: DeviceFamily,
    rows: int,
    single_dsp_column: bool,
) -> ResourceVector:
    """Per-PRM (W_CLB, W_DSP, W_BRAM) for a fixed H."""
    clb_req = clb_requirement(prm, family)
    w_clb = math.ceil(clb_req / (rows * family.clb_per_col)) if clb_req else 0

    if prm.dsps == 0:
        w_dsp = 0
    elif single_dsp_column:
        # Eq. (4): W_DSP = 1; the column's height must cover the demand.
        h_dsp = math.ceil(prm.dsps / family.dsp_per_col)
        if h_dsp > rows:
            raise InfeasibleGeometryError(
                f"{prm.name}: needs H >= {h_dsp} rows for {prm.dsps} DSPs on a "
                f"single-DSP-column fabric, but H = {rows}"
            )
        w_dsp = 1
    else:
        # Eq. (3).
        w_dsp = math.ceil(prm.dsps / (rows * family.dsp_per_col))

    w_bram = (
        math.ceil(prm.brams / (rows * family.bram_per_col)) if prm.brams else 0
    )
    return ResourceVector(clb=w_clb, dsp=w_dsp, bram=w_bram)


def merge_geometries(geometries: Sequence[PRRGeometry]) -> PRRGeometry:
    """Merge same-``H`` geometries into a shared-PRR geometry.

    Implements "the largest W_CLB, W_DSP, and W_BRAM across all of the
    PRR's associated PRMs dictates the number of CLB, DSP, and BRAM columns
    in the PRR".
    """
    if not geometries:
        raise ValueError("nothing to merge")
    first = geometries[0]
    for geometry in geometries[1:]:
        if geometry.rows != first.rows:
            raise ValueError(
                "shared-PRR merge requires a common H "
                f"(got {first.rows} and {geometry.rows})"
            )
        if geometry.family is not first.family:
            raise ValueError("shared-PRR merge requires a common device family")
    return PRRGeometry(
        family=first.family,
        rows=first.rows,
        columns=ResourceVector.elementwise_max(g.columns for g in geometries),
    )

"""The paper's contribution: PRR size/organization and bitstream cost models.

* :mod:`~repro.core.params` — model inputs (:class:`PRMRequirements`) and
  the Table I / Table III parameter glossaries.
* :mod:`~repro.core.prr_model` — eqs. (1)–(12): requirements → geometry.
* :mod:`~repro.core.utilization` — eqs. (13)–(17): RU / fragmentation.
* :mod:`~repro.core.placement_search` — the Fig. 1 flow on a real fabric.
* :mod:`~repro.core.bitstream_model` — eqs. (18)–(23): geometry → bytes.
* :mod:`~repro.core.reconfig_model` — bytes → reconfiguration time.
* :mod:`~repro.core.explorer` — PRM→PRR partitioning design-space search.
* :mod:`~repro.core.fastpath` — occupancy structure, placement caches and
  pruning bounds shared by the search fast paths.
* :mod:`~repro.core.batch` — numpy columnar engine: whole PRM batches
  evaluated against the (geometry × device) grid as array ops.
* :mod:`~repro.core.api` — one-call convenience wrappers (scalar and
  batch).
"""

from .advisor import Advice, Finding, Severity, advise
from .api import (
    BatchCostResult,
    CostModelResult,
    batch_evaluate,
    evaluate_prm,
    evaluate_shared_prr,
)
from .batch import (
    BatchSelection,
    DeviceColumns,
    GeometryGrid,
    batch_bitstream_bytes,
    batch_prr_geometry,
    batch_reconfig_time,
    batch_select,
    batch_window_placement,
    device_columns,
    find_prr_batch,
    numpy_available,
    requirement_columns,
)
from .calibration import FittedConstants, SizeSample, fit_family_constants
from .floorplanner import (
    Floorplan,
    FloorplanError,
    floorplan,
    render_floorplan,
)
from .shapes import CompositePRR, composite_bitstream_bytes, find_lshape_prr
from .bitstream_model import (
    BitstreamEstimate,
    bitstream_size_bytes,
    config_frames_per_row,
    estimate_bitstream,
    full_device_bitstream_bytes,
    ncw_row,
    ndw_bram,
)
from .budget import Budget
from .explorer import (
    DEFAULT_BEAM_WIDTH,
    MAX_EXHAUSTIVE_PRMS,
    ExploreResult,
    PartitioningDesign,
    PRRAssignment,
    evaluate_partition,
    explore,
    iter_set_partitions,
    pareto_front,
)
from .fastpath import (
    GroupBounds,
    PlacementCache,
    RegionOccupancy,
    group_lower_bounds,
)
from .params import PRMRequirements, TABLE1_PARAMETERS, TABLE3_PARAMETERS
from .placement_search import (
    PlacedPRR,
    PlacementNotFoundError,
    SearchTrace,
    find_prr,
    iter_feasible_placements,
    search_with_trace,
)
from .prr_model import (
    InfeasibleGeometryError,
    PRRGeometry,
    clb_requirement,
    merge_geometries,
    min_rows_for_dsps,
    prr_geometry_for_rows,
)
from .reconfig_model import (
    ICAP_VIRTEX5_BYTES_PER_S,
    ReconfigEstimate,
    estimate_reconfig_time,
)
from .utilization import UtilizationReport, utilization

__all__ = [
    "PRMRequirements",
    "TABLE1_PARAMETERS",
    "TABLE3_PARAMETERS",
    "clb_requirement",
    "min_rows_for_dsps",
    "PRRGeometry",
    "prr_geometry_for_rows",
    "merge_geometries",
    "InfeasibleGeometryError",
    "UtilizationReport",
    "utilization",
    "PlacedPRR",
    "PlacementNotFoundError",
    "SearchTrace",
    "find_prr",
    "iter_feasible_placements",
    "search_with_trace",
    "BitstreamEstimate",
    "estimate_bitstream",
    "bitstream_size_bytes",
    "full_device_bitstream_bytes",
    "config_frames_per_row",
    "ncw_row",
    "ndw_bram",
    "ReconfigEstimate",
    "estimate_reconfig_time",
    "ICAP_VIRTEX5_BYTES_PER_S",
    "PRRAssignment",
    "PartitioningDesign",
    "iter_set_partitions",
    "evaluate_partition",
    "explore",
    "pareto_front",
    "ExploreResult",
    "Budget",
    "MAX_EXHAUSTIVE_PRMS",
    "DEFAULT_BEAM_WIDTH",
    "RegionOccupancy",
    "PlacementCache",
    "GroupBounds",
    "group_lower_bounds",
    "CostModelResult",
    "Advice",
    "Finding",
    "Severity",
    "advise",
    "SizeSample",
    "FittedConstants",
    "fit_family_constants",
    "evaluate_prm",
    "evaluate_shared_prr",
    "BatchCostResult",
    "batch_evaluate",
    "BatchSelection",
    "DeviceColumns",
    "GeometryGrid",
    "batch_bitstream_bytes",
    "batch_prr_geometry",
    "batch_reconfig_time",
    "batch_select",
    "batch_window_placement",
    "device_columns",
    "find_prr_batch",
    "numpy_available",
    "requirement_columns",
    "Floorplan",
    "FloorplanError",
    "floorplan",
    "render_floorplan",
    "CompositePRR",
    "composite_bitstream_bytes",
    "find_lshape_prr",
]

"""Reconfiguration-time estimation from partial bitstream size.

The paper motivates the bitstream-size model by its downstream effect:
"the PRR size/organization's impact on partial bitstream size,
reconfiguration time, and overall PR system performance".  This module
provides the simple analytical step from bytes to seconds:

    t_reconfig = S_bitstream / min(throughput_controller, throughput_media)

optionally degraded by a *busy factor* in [0, 1) modelling shared-ICAP
contention (Claus et al., Section II).  Detailed controller/media dynamics
(prefetching, DMA bursts, overlap) live in :mod:`repro.icap`; prior-work
model variants live in :mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ICAP_VIRTEX5_BYTES_PER_S",
    "ReconfigEstimate",
    "estimate_reconfig_time",
]

#: Theoretical ICAP throughput for Virtex-4/5/6: 32 bits @ 100 MHz.
ICAP_VIRTEX5_BYTES_PER_S: float = 400e6


@dataclass(frozen=True, slots=True)
class ReconfigEstimate:
    """Reconfiguration-time estimate for one partial bitstream."""

    bitstream_bytes: int
    effective_bytes_per_s: float  #: bottleneck throughput after busy factor
    seconds: float

    @property
    def microseconds(self) -> float:
        return self.seconds * 1e6

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


def estimate_reconfig_time(
    bitstream_bytes: int,
    *,
    controller_bytes_per_s: float = ICAP_VIRTEX5_BYTES_PER_S,
    media_bytes_per_s: float | None = None,
    busy_factor: float = 0.0,
) -> ReconfigEstimate:
    """Estimate PRR reconfiguration time.

    Parameters
    ----------
    bitstream_bytes:
        Partial bitstream size (eq. (18) output, or a measured size).
    controller_bytes_per_s:
        Configuration-port throughput (default: Virtex-5 ICAP peak).
    media_bytes_per_s:
        Bitstream storage read throughput; ``None`` means the media is not
        the bottleneck (bitstream preloaded on chip).
    busy_factor:
        Fraction of ICAP cycles lost to contention, in ``[0, 1)`` — the
        Claus et al. shared-resource model.  0 means a dedicated port.
    """
    if bitstream_bytes < 0:
        raise ValueError("bitstream_bytes must be non-negative")
    if controller_bytes_per_s <= 0:
        raise ValueError("controller throughput must be positive")
    if media_bytes_per_s is not None and media_bytes_per_s <= 0:
        raise ValueError("media throughput must be positive")
    if not 0.0 <= busy_factor < 1.0:
        raise ValueError("busy_factor must be in [0, 1)")

    effective_controller = controller_bytes_per_s * (1.0 - busy_factor)
    bottleneck = (
        effective_controller
        if media_bytes_per_s is None
        else min(effective_controller, media_bytes_per_s)
    )
    return ReconfigEstimate(
        bitstream_bytes=bitstream_bytes,
        effective_bytes_per_s=bottleneck,
        seconds=bitstream_bytes / bottleneck,
    )

"""Design advisor: every model's verdict on one PRM, with recommendations.

The paper's goal is designer productivity during early PR partitioning.
This module is the productized version: given a PRM's requirements and a
target device it composes the PRR model, the Fig. 1 placement, the
utilization/fragmentation analysis, the L-shape search, the bitstream and
reconfiguration models, the routability check and the timing model into
one :class:`Advice` object with human-readable findings, each tagged by
severity:

* ``info`` — a fact worth knowing;
* ``suggestion`` — a concrete improvement (e.g. an L-shape saving area);
* ``warning`` — a risk (dense packing near the routing capacity, heavy
  fragmentation, reconfiguration dominating short task periods).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..devices.fabric import Device
from ..par.router import DEFAULT_ROUTING_CAPACITY, ROUTING_CAPACITY
from .api import CostModelResult, evaluate_prm
from .params import PRMRequirements
from .reconfig_model import ICAP_VIRTEX5_BYTES_PER_S
from .shapes import CompositePRR, composite_bitstream_bytes, find_lshape_prr

__all__ = ["Severity", "Finding", "Advice", "advise"]


class Severity(enum.Enum):
    INFO = "info"
    SUGGESTION = "suggestion"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Finding:
    severity: Severity
    topic: str
    message: str

    def render(self) -> str:
        return f"[{self.severity.value:10}] {self.topic}: {self.message}"


@dataclass
class Advice:
    """The advisor's full output for one PRM on one device."""

    result: CostModelResult
    lshape: CompositePRR | None
    findings: list[Finding] = field(default_factory=list)

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def suggestions(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.SUGGESTION]

    def render(self) -> str:
        lines = [self.result.summary()]
        lines.extend(finding.render() for finding in self.findings)
        return "\n".join(lines)


#: RU below which a resource is called out as heavily fragmented.
_FRAGMENTATION_THRESHOLD = 0.40
#: Pair-utilization margin under the routing capacity that earns a warning.
_ROUTING_MARGIN = 0.05


def advise(
    prm: PRMRequirements,
    device: Device,
    *,
    task_period_seconds: float | None = None,
    controller_bytes_per_s: float = ICAP_VIRTEX5_BYTES_PER_S,
) -> Advice:
    """Run every model and compile findings.

    ``task_period_seconds`` (how often the PRM is expected to be swapped)
    enables the reconfiguration-overhead warning.
    """
    result = evaluate_prm(
        prm, device, controller_bytes_per_s=controller_bytes_per_s
    )
    findings: list[Finding] = []
    geometry = result.placement.geometry

    # -- geometry facts ------------------------------------------------------
    findings.append(
        Finding(
            Severity.INFO,
            "geometry",
            f"smallest PRR is H={geometry.rows} x W={geometry.width} "
            f"(W_CLB={geometry.columns.clb}, W_DSP={geometry.columns.dsp}, "
            f"W_BRAM={geometry.columns.bram}), placed at row "
            f"{result.placement.region.row}, column "
            f"{result.placement.region.col}",
        )
    )

    # -- fragmentation --------------------------------------------------------
    ru = result.utilization
    for name, value, demanded in (
        ("CLB", ru.clb, True),
        ("FF", ru.ff, prm.ffs > 0),
        ("LUT", ru.lut, prm.luts > 0),
        ("DSP", ru.dsp, prm.dsps > 0),
        ("BRAM", ru.bram, prm.brams > 0),
    ):
        if demanded and value < _FRAGMENTATION_THRESHOLD:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "fragmentation",
                    f"RU_{name} is only {value:.0%} — "
                    f"{1 - value:.0%} of the PRR's {name}s are wasted "
                    "(column-granularity internal fragmentation)",
                )
            )

    # -- L-shape opportunity ----------------------------------------------------
    lshape: CompositePRR | None = None
    rect, candidate = find_lshape_prr(device, prm)
    if not candidate.is_rectangular and candidate.size < rect.size:
        lshape = candidate
        saved_bytes = composite_bitstream_bytes(rect) - composite_bitstream_bytes(
            candidate
        )
        findings.append(
            Finding(
                Severity.SUGGESTION,
                "shape",
                f"an L-shaped PRR ({rect.size} -> {candidate.size} cells) "
                f"raises RU_CLB to {candidate.utilization(prm).clb:.0%} and "
                f"saves {saved_bytes} bitstream bytes — at increased "
                "routing risk (Section IV caveat)",
            )
        )

    # -- routability margin -------------------------------------------------------
    capacity = ROUTING_CAPACITY.get(
        device.family.name, DEFAULT_ROUTING_CAPACITY
    )
    pair_sites = geometry.available.clb * device.family.luts_per_clb
    pair_utilization = prm.lut_ff_pairs / pair_sites if pair_sites else 0.0
    if pair_utilization > capacity:
        findings.append(
            Finding(
                Severity.WARNING,
                "routing",
                f"pair utilization {pair_utilization:.0%} exceeds the "
                f"{device.family.name} routing capacity ({capacity:.0%}) — "
                "expect place-and-route failure; widen the PRR",
            )
        )
    elif pair_utilization > capacity - _ROUTING_MARGIN:
        findings.append(
            Finding(
                Severity.WARNING,
                "routing",
                f"pair utilization {pair_utilization:.0%} is within "
                f"{_ROUTING_MARGIN:.0%} of the routing capacity "
                f"({capacity:.0%}) — densely packed PRRs may fail routing",
            )
        )

    # -- reconfiguration budget -----------------------------------------------------
    findings.append(
        Finding(
            Severity.INFO,
            "reconfiguration",
            f"partial bitstream {result.bitstream.total_bytes} bytes; "
            f"{result.reconfig.microseconds:.0f} us at the configured port",
        )
    )
    if task_period_seconds is not None:
        overhead = result.reconfig.seconds / task_period_seconds
        if overhead > 0.10:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "reconfiguration",
                    f"reconfiguration costs {overhead:.0%} of the "
                    f"{task_period_seconds * 1e3:.1f} ms task period — PR "
                    "may underperform a static design at this swap rate",
                )
            )
        else:
            findings.append(
                Finding(
                    Severity.INFO,
                    "reconfiguration",
                    f"reconfiguration is {overhead:.1%} of the task period",
                )
            )

    return Advice(result=result, lshape=lshape, findings=findings)

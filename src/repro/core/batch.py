"""Vectorized batch cost-model core: numpy columnar evaluation.

The scalar models in :mod:`~repro.core.prr_model`,
:mod:`~repro.core.bitstream_model` and :mod:`~repro.core.reconfig_model`
answer one (PRM, geometry, device) question per call.  Every layer above
them — the Fig. 1 search, the explorer's partition enumeration, the
serving tier — pays that per-call Python cost once per candidate.  This
module evaluates *batches* instead, treating the PRM requirement vectors
and the candidate-H grid as numpy columns (the way bitstream tooling
treats whole bitstreams as frame arrays):

* :class:`DeviceColumns` — a struct-of-arrays view of one device: the
  per-kind column prefix sums already computed by
  :class:`~repro.devices.window_index.ColumnWindowIndex`, lifted into
  ``np.ndarray`` form, plus every family constant the models read.
  Built once per device and cached on the instance.
* :func:`batch_prr_geometry` — eqs. (1)–(7) broadcast over an
  ``(N_prm, H)`` grid with a feasibility mask (the eq. (4)
  single-DSP-column rule, zero-width geometries).
* :func:`batch_window_placement` — the Fig. 1 window question ("does a
  contiguous column window with exactly this mix exist, and where is the
  left-most one?") answered for every grid cell at once from the prefix
  sums, deduplicated by distinct column mix.
* :func:`batch_bitstream_bytes` — eqs. (18)–(23) as array ops.
* :func:`batch_reconfig_time` — bytes → seconds, broadcasting over
  per-request controller/media throughputs.
* :func:`batch_select` — the full Fig. 1 selection (best feasible
  ``(size, H)`` — or ``(bytes, H)`` — candidate per PRM) in one pass;
  :func:`find_prr_batch` wraps it for one (possibly shared) PRM group
  and returns the same :class:`~repro.core.placement_search.PlacedPRR`
  the scalar :func:`~repro.core.placement_search.find_prr` would.

Equivalence contract: on an empty fabric every function here is
bit-for-bit equal to its scalar counterpart (asserted by the
differential suites in ``tests/differential/test_batch_vs_scalar.py``).
Infeasible inputs are *masked*, not raised — a 10k-PRM batch with three
impossible members still returns 9 997 answers.

numpy is a hard dependency of this module only; importing it without
numpy raises a typed :class:`~repro.errors.MissingDependency` with an
install hint instead of a bare ``ImportError``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..devices.fabric import Device, Region
from ..devices.resources import ResourceVector
from ..errors import InvalidInput, MissingDependency
from ..obs import trace as _obs
from .params import PRMRequirements

try:  # soft import: everything else in repro.core works without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised via _raise_missing tests
    np = None  # type: ignore[assignment]

__all__ = [
    "numpy_available",
    "require_numpy",
    "DeviceColumns",
    "device_columns",
    "GeometryGrid",
    "requirement_columns",
    "batch_prr_geometry",
    "batch_window_placement",
    "batch_bitstream_bytes",
    "batch_reconfig_time",
    "BatchSelection",
    "batch_select",
    "find_prr_batch",
    "BATCH_SIZE_BUCKETS",
]

#: Fixed histogram boundaries for batch-size observations (PRMs per call).
BATCH_SIZE_BUCKETS: tuple[float, ...] = (1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0)


def numpy_available() -> bool:
    """Whether the batch engine can run in this interpreter."""
    return np is not None


def require_numpy():
    """Return the ``numpy`` module or raise a typed error.

    Raises :class:`~repro.errors.MissingDependency` (``ReproError`` *and*
    ``ImportError``) so the CLI/serving layers report a one-line
    ``missing_dependency:`` message instead of a traceback.
    """
    if np is None:
        raise MissingDependency(
            "the batch cost-model engine requires numpy, which is not "
            "importable in this environment; install it with "
            "`pip install numpy` (or `pip install repro`, which depends "
            "on it) or use the scalar API instead",
            dependency="numpy",
        )
    return np


def _record_batch_metrics(n_prms: int, n_cells: int, infeasible: int) -> None:
    """Publish one batch call's vectorization statistics (no-op when off).

    ``batch.vectorization_ratio`` is the running average of PRMs
    evaluated per Python-level engine call — the factor by which array
    ops replaced scalar calls in this capture.
    """
    registry = _obs.metrics()
    if registry is None:
        return
    calls = registry.counter("batch.calls")
    prms = registry.counter("batch.prms_evaluated")
    calls.inc()
    prms.inc(n_prms)
    registry.counter("batch.cells_evaluated").inc(n_cells)
    registry.counter("batch.infeasible_prms").inc(infeasible)
    registry.histogram("batch.size", BATCH_SIZE_BUCKETS).observe(n_prms)
    if calls.value:
        registry.gauge("batch.vectorization_ratio").set(
            prms.value / calls.value
        )


# -- device columns ----------------------------------------------------------


@dataclass(frozen=True)
class DeviceColumns:
    """Struct-of-arrays view of one device for columnar evaluation.

    The four prefix-sum arrays have length ``num_columns + 1``;
    ``clb[i]`` counts CLB columns among the first ``i`` fabric columns
    (likewise ``dsp``/``bram``, and ``blocked`` for IOB/CLK columns).
    They are the exact sequences the scalar
    :class:`~repro.devices.window_index.ColumnWindowIndex` computed, so
    the two engines can never disagree about the fabric.
    """

    device_name: str
    rows: int
    num_columns: int
    single_dsp_column: bool
    clb_prefix: "np.ndarray"
    dsp_prefix: "np.ndarray"
    bram_prefix: "np.ndarray"
    blocked_prefix: "np.ndarray"
    # -- family constants (Tables II and IV) ---------------------------
    clb_per_col: int
    dsp_per_col: int
    bram_per_col: int
    luts_per_clb: int
    cf_clb: int
    cf_dsp: int
    cf_bram: int
    df_bram: int
    frame_words: int
    initial_words: int
    final_words: int
    far_fdri_words: int
    bytes_per_word: int

    @classmethod
    def from_device(cls, device: Device) -> "DeviceColumns":
        """Lift a device's window-index prefix sums into numpy columns."""
        require_numpy()
        prefixes = device.window_index.prefix_sums()
        family = device.family
        return cls(
            device_name=device.name,
            rows=device.rows,
            num_columns=device.num_columns,
            single_dsp_column=device.has_single_dsp_column,
            clb_prefix=np.asarray(prefixes["clb"], dtype=np.int64),
            dsp_prefix=np.asarray(prefixes["dsp"], dtype=np.int64),
            bram_prefix=np.asarray(prefixes["bram"], dtype=np.int64),
            blocked_prefix=np.asarray(prefixes["blocked"], dtype=np.int64),
            clb_per_col=family.clb_per_col,
            dsp_per_col=family.dsp_per_col,
            bram_per_col=family.bram_per_col,
            luts_per_clb=family.luts_per_clb,
            cf_clb=family.cf_clb,
            cf_dsp=family.cf_dsp,
            cf_bram=family.cf_bram,
            df_bram=family.df_bram,
            frame_words=family.frame_words,
            initial_words=family.initial_words,
            final_words=family.final_words,
            far_fdri_words=family.far_fdri_words,
            bytes_per_word=family.bytes_per_word,
        )


def device_columns(device: Device) -> DeviceColumns:
    """The cached :class:`DeviceColumns` of *device* (built once).

    Like :attr:`~repro.devices.fabric.Device.window_index`, the columnar
    view derives purely from the immutable layout and family constants,
    so it is computed on first use and stored on the instance.
    """
    cached = device.__dict__.get("_device_columns")
    if cached is None:
        cached = DeviceColumns.from_device(device)
        object.__setattr__(device, "_device_columns", cached)
    return cached


# -- geometry grid (eqs. (1)-(7)) --------------------------------------------


@dataclass(frozen=True)
class GeometryGrid:
    """Eqs. (1)–(7) evaluated on an ``(N_prm, H)`` grid.

    Row ``i``, column ``j`` describes PRM ``i`` at ``H = j + 1``.
    ``feasible`` is the *geometry-level* mask: ``False`` where the
    eq. (4) single-DSP-column rule rejects the H, or where the merged
    column count is zero (a PRR needs at least one column).  Whether a
    contiguous fabric window exists is a separate question answered by
    :func:`batch_window_placement`.
    """

    device_name: str
    heights: "np.ndarray"  #: (R,) the H axis, 1..R
    clb_req: "np.ndarray"  #: (N,) eq. (1)
    feasible: "np.ndarray"  #: (N, R) bool
    w_clb: "np.ndarray"  #: (N, R)
    w_dsp: "np.ndarray"  #: (N, R)
    w_bram: "np.ndarray"  #: (N, R)
    width: "np.ndarray"  #: (N, R) eq. (6)
    size: "np.ndarray"  #: (N, R) eq. (7)

    @property
    def n_prms(self) -> int:
        return self.w_clb.shape[0]

    @property
    def n_heights(self) -> int:
        return self.w_clb.shape[1]


def _ceil_div(numerator, denominator):
    """Elementwise ``ceil(a / b)`` for non-negative integer arrays."""
    return -(-numerator // denominator)


def requirement_columns(
    prms: Sequence[PRMRequirements],
) -> tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
    """Columnarize the three geometry-relevant requirement scalars.

    Returns ``(lut_ff_pairs, dsps, brams)`` as int64 arrays — the input
    shape :func:`batch_prr_geometry` and :func:`batch_select` take.
    """
    pairs = np.fromiter(
        (p.lut_ff_pairs for p in prms), dtype=np.int64, count=len(prms)
    )
    dsps = np.fromiter((p.dsps for p in prms), dtype=np.int64, count=len(prms))
    brams = np.fromiter((p.brams for p in prms), dtype=np.int64, count=len(prms))
    return pairs, dsps, brams


def batch_prr_geometry(
    device: Device | DeviceColumns,
    lut_ff_pairs,
    dsps,
    brams,
) -> GeometryGrid:
    """Vectorized eqs. (1)–(7) over every (PRM, H) pair.

    ``lut_ff_pairs``/``dsps``/``brams`` are length-N integer arrays (or
    sequences).  Returns the full ``(N, device.rows)`` candidate grid —
    the batch analogue of calling
    :func:`~repro.core.prr_model.prr_geometry_for_rows` in the Fig. 1
    H-loop for each PRM.
    """
    require_numpy()
    cols = device if isinstance(device, DeviceColumns) else device_columns(device)
    pairs = np.asarray(lut_ff_pairs, dtype=np.int64)
    dsp_req = np.asarray(dsps, dtype=np.int64)
    bram_req = np.asarray(brams, dtype=np.int64)
    if not (pairs.shape == dsp_req.shape == bram_req.shape) or pairs.ndim != 1:
        raise InvalidInput(
            "lut_ff_pairs, dsps and brams must be 1-D arrays of equal length"
        )
    if pairs.size and (
        int(pairs.min()) < 0 or int(dsp_req.min()) < 0 or int(bram_req.min()) < 0
    ):
        raise InvalidInput("requirement scalars must be non-negative")

    heights = np.arange(1, cols.rows + 1, dtype=np.int64)  # (R,)
    clb_req = _ceil_div(pairs, cols.luts_per_clb)  # (N,) eq. (1)

    # Eq. (2): W_CLB = ceil(CLB_req / (H * CLB_col)); ceil(0/x) = 0.
    w_clb = _ceil_div(clb_req[:, None], heights[None, :] * cols.clb_per_col)
    # Eq. (5).
    w_bram = _ceil_div(bram_req[:, None], heights[None, :] * cols.bram_per_col)

    has_dsp = dsp_req[:, None] > 0
    if cols.single_dsp_column:
        # Eq. (4): W_DSP = 1 and the lone column's height must cover the
        # demand — H >= ceil(DSP_req / DSP_col) or the cell is infeasible.
        h_dsp = _ceil_div(dsp_req, cols.dsp_per_col)  # (N,)
        w_dsp = np.where(has_dsp, np.int64(1), np.int64(0)) * np.ones_like(
            w_clb
        )
        feasible = ~(has_dsp & (h_dsp[:, None] > heights[None, :]))
    else:
        # Eq. (3).
        w_dsp = _ceil_div(dsp_req[:, None], heights[None, :] * cols.dsp_per_col)
        feasible = np.ones_like(w_clb, dtype=bool)

    width = w_clb + w_dsp + w_bram  # eq. (6)
    feasible = feasible & (width >= 1)  # a PRR needs at least one column
    size = heights[None, :] * width  # eq. (7)
    return GeometryGrid(
        device_name=cols.device_name,
        heights=heights,
        clb_req=clb_req,
        feasible=feasible,
        w_clb=w_clb,
        w_dsp=w_dsp,
        w_bram=w_bram,
        width=width,
        size=size,
    )


# -- contiguous window placement ---------------------------------------------


def batch_window_placement(
    device: Device | DeviceColumns,
    w_clb,
    w_dsp,
    w_bram,
    mask=None,
) -> tuple["np.ndarray", "np.ndarray"]:
    """Left-most contiguous window per column mix, for a whole grid.

    For every cell of the ``w_*`` arrays (any common shape), answers the
    Fig. 1 window question on an empty fabric: is there a start column
    whose ``width``-wide window holds exactly this (CLB, DSP, BRAM) mix
    and no IOB/CLK column?  Returns ``(has_window, first_col)`` — bool
    and 1-based int arrays of the same shape (``first_col`` is 0 where
    no window exists).

    Distinct mixes are deduplicated first (a 10k-PRM grid typically
    contains only tens of distinct mixes), then all (mix, start) pairs
    are checked in one prefix-sum subtraction per kind — no per-start
    Python loop.  ``mask`` limits the work to cells that are
    geometry-feasible.
    """
    require_numpy()
    cols = device if isinstance(device, DeviceColumns) else device_columns(device)
    w_clb = np.asarray(w_clb, dtype=np.int64)
    w_dsp = np.asarray(w_dsp, dtype=np.int64)
    w_bram = np.asarray(w_bram, dtype=np.int64)
    width = w_clb + w_dsp + w_bram
    n = cols.num_columns
    has = np.zeros(width.shape, dtype=bool)
    first = np.zeros(width.shape, dtype=np.int64)
    live = (width >= 1) & (width <= n)
    if mask is not None:
        live = live & np.asarray(mask, dtype=bool)
    if not live.any():
        return has, first

    # Encode each live mix as one integer; components are <= width <= n.
    base = np.int64(n + 1)
    keys = (w_clb[live] * base + w_dsp[live]) * base + w_bram[live]
    uniq, inverse = np.unique(keys, return_inverse=True)
    u_bram = uniq % base
    u_dsp = (uniq // base) % base
    u_clb = uniq // (base * base)
    u_width = u_clb + u_dsp + u_bram  # (U,)

    lo = np.arange(n, dtype=np.int64)  # (n,) 0-based window starts
    hi = lo[None, :] + u_width[:, None]  # (U, n) exclusive ends
    in_bounds = hi <= n
    hi = np.minimum(hi, n)
    ok = (
        in_bounds
        & (cols.blocked_prefix[hi] - cols.blocked_prefix[lo[None, :]] == 0)
        & (cols.clb_prefix[hi] - cols.clb_prefix[lo[None, :]] == u_clb[:, None])
        & (cols.dsp_prefix[hi] - cols.dsp_prefix[lo[None, :]] == u_dsp[:, None])
        & (
            cols.bram_prefix[hi] - cols.bram_prefix[lo[None, :]]
            == u_bram[:, None]
        )
    )
    u_has = ok.any(axis=1)
    u_first = np.where(u_has, ok.argmax(axis=1) + 1, 0)  # 1-based
    has[live] = u_has[inverse]
    first[live] = u_first[inverse]
    return has, first


# -- bitstream + reconfiguration (eqs. (18)-(23)) ----------------------------


def batch_bitstream_bytes(
    device: Device | DeviceColumns,
    rows,
    w_clb,
    w_dsp,
    w_bram,
) -> "np.ndarray":
    """Vectorized eqs. (18)–(23): S_bitstream for every grid cell.

    Mirrors :func:`~repro.core.bitstream_model.estimate_bitstream` —
    including the pipeline-flush ``+ 1`` frames and the no-BRAM special
    case of eq. (23) — as five array expressions.
    """
    require_numpy()
    cols = device if isinstance(device, DeviceColumns) else device_columns(device)
    rows = np.asarray(rows, dtype=np.int64)
    w_clb = np.asarray(w_clb, dtype=np.int64)
    w_dsp = np.asarray(w_dsp, dtype=np.int64)
    w_bram = np.asarray(w_bram, dtype=np.int64)
    # Eqs. (20)-(22) then (19).
    frames = w_clb * cols.cf_clb + w_dsp * cols.cf_dsp + w_bram * cols.cf_bram
    ncw_row = cols.far_fdri_words + (frames + 1) * cols.frame_words
    # Eq. (23); NDW_BRAM = 0 when the PRR has no BRAM columns.
    ndw_bram = np.where(
        w_bram > 0,
        cols.far_fdri_words + (w_bram * cols.df_bram + 1) * cols.frame_words,
        np.int64(0),
    )
    # Eq. (18).
    total_words = (
        cols.initial_words + rows * (ncw_row + ndw_bram) + cols.final_words
    )
    return total_words * cols.bytes_per_word


def batch_reconfig_time(
    bitstream_bytes,
    *,
    controller_bytes_per_s=None,
    media_bytes_per_s=None,
    busy_factor: float = 0.0,
) -> "np.ndarray":
    """Vectorized bytes → seconds, broadcasting over throughputs.

    Mirrors :func:`~repro.core.reconfig_model.estimate_reconfig_time`;
    ``controller_bytes_per_s`` and ``media_bytes_per_s`` may be scalars
    or per-element arrays (a serving batch can carry one rate per
    request).
    """
    require_numpy()
    from .reconfig_model import ICAP_VIRTEX5_BYTES_PER_S

    sizes = np.asarray(bitstream_bytes, dtype=np.float64)
    if sizes.size and float(sizes.min()) < 0:
        raise InvalidInput("bitstream_bytes must be non-negative")
    if controller_bytes_per_s is None:
        controller_bytes_per_s = ICAP_VIRTEX5_BYTES_PER_S
    controller = np.asarray(controller_bytes_per_s, dtype=np.float64)
    if controller.size and float(controller.min()) <= 0:
        raise InvalidInput("controller throughput must be positive")
    if not 0.0 <= busy_factor < 1.0:
        raise InvalidInput("busy_factor must be in [0, 1)")
    bottleneck = controller * (1.0 - busy_factor)
    if media_bytes_per_s is not None:
        media = np.asarray(media_bytes_per_s, dtype=np.float64)
        if media.size and float(media.min()) <= 0:
            raise InvalidInput("media throughput must be positive")
        bottleneck = np.minimum(bottleneck, media)
    return sizes / bottleneck


# -- selection (the Fig. 1 flow, batched) ------------------------------------


@dataclass(frozen=True)
class BatchSelection:
    """Per-PRM Fig. 1 winners, columnar.

    All arrays have length N (the batch size).  Where ``feasible`` is
    ``False`` — no H produced both a valid geometry and a contiguous
    window — the other columns hold zeros rather than raising, so one
    impossible PRM never poisons a batch.
    """

    device_name: str
    objective: str
    clb_req: "np.ndarray"  #: (N,) eq. (1)
    feasible: "np.ndarray"  #: (N,) bool
    rows: "np.ndarray"  #: (N,) selected H
    w_clb: "np.ndarray"
    w_dsp: "np.ndarray"
    w_bram: "np.ndarray"
    width: "np.ndarray"
    size: "np.ndarray"
    start_col: "np.ndarray"  #: (N,) 1-based left-most feasible column
    bitstream_bytes: "np.ndarray"  #: (N,) eq. (18)

    def __len__(self) -> int:
        return int(self.feasible.shape[0])

    @property
    def n_feasible(self) -> int:
        return int(self.feasible.sum())


_OBJECTIVES = ("size", "bitstream")


def batch_select(
    device: Device,
    lut_ff_pairs,
    dsps,
    brams,
    *,
    objective: str = "size",
) -> BatchSelection:
    """Run the whole Fig. 1 flow for N PRMs in one array pass.

    Per PRM: evaluate every H (geometry grid), mask H values without a
    contiguous window, compute eq. (18) bytes, then pick the candidate
    minimizing ``(PRR_size, H)`` (objective ``"size"``, the default) or
    ``(S_bitstream, H)`` (objective ``"bitstream"``) — the same
    lexicographic key :func:`~repro.core.placement_search.find_prr`
    applies on an empty fabric, where the bottom-most row is always 1
    and the left-most start column is unique per H.
    """
    require_numpy()
    if objective not in _OBJECTIVES:
        raise InvalidInput(
            f"unknown objective {objective!r}; valid: {', '.join(_OBJECTIVES)}"
        )
    cols = device_columns(device)
    grid = batch_prr_geometry(cols, lut_ff_pairs, dsps, brams)
    has_window, first_col = batch_window_placement(
        cols, grid.w_clb, grid.w_dsp, grid.w_bram, mask=grid.feasible
    )
    candidate = grid.feasible & has_window  # (N, R)
    bytes_grid = batch_bitstream_bytes(
        cols, grid.heights[None, :], grid.w_clb, grid.w_dsp, grid.w_bram
    )

    primary = grid.size if objective == "size" else bytes_grid
    # Lexicographic (primary, H) argmin: H strictly increases along the
    # axis, so masking losers to +inf and taking the *first* minimum
    # breaks primary ties toward the smaller H, exactly like the scalar
    # search (row is always 1 and the column is unique per H on an empty
    # fabric, so the remaining scalar tie-breaks never fire).
    big = np.iinfo(np.int64).max
    masked = np.where(candidate, primary, big)
    pick = masked.argmin(axis=1)  # (N,)
    feasible = candidate.any(axis=1)

    def take(grid_array):
        taken = np.take_along_axis(grid_array, pick[:, None], axis=1)[:, 0]
        return np.where(feasible, taken, 0)

    selection = BatchSelection(
        device_name=device.name,
        objective=objective,
        clb_req=grid.clb_req,
        feasible=feasible,
        rows=np.where(feasible, grid.heights[pick], 0),
        w_clb=take(grid.w_clb),
        w_dsp=take(grid.w_dsp),
        w_bram=take(grid.w_bram),
        width=take(grid.width),
        size=take(grid.size),
        start_col=take(first_col),
        bitstream_bytes=take(bytes_grid),
    )
    if _obs.enabled:
        _record_batch_metrics(
            n_prms=len(selection),
            n_cells=grid.n_prms * grid.n_heights,
            infeasible=len(selection) - selection.n_feasible,
        )
    return selection


def find_prr_batch(
    device: Device,
    requirements: PRMRequirements | Sequence[PRMRequirements],
    *,
    objective: str = "size",
):
    """Vectorized :func:`~repro.core.placement_search.find_prr` on an
    empty fabric.

    Accepts one PRM or a shared-PRR group (the Section III.B
    elementwise-max merge becomes a per-column ``max`` over the group's
    grids).  Scores all candidate H values in one array call and returns
    the identical :class:`~repro.core.placement_search.PlacedPRR` the
    scalar Fig. 1 loop selects; raises the same
    :class:`~repro.core.placement_search.PlacementNotFoundError` when no
    feasible placement exists.  Occupied fabrics (non-empty
    ``forbidden``) stay on the scalar path — the explorer only routes
    empty-fabric searches here.
    """
    require_numpy()
    from .placement_search import PlacedPRR, PlacementNotFoundError
    from .prr_model import PRRGeometry

    if isinstance(requirements, PRMRequirements):
        group: Sequence[PRMRequirements] = (requirements,)
    else:
        group = tuple(requirements)
        if not group:
            raise InvalidInput("at least one PRM requirement is needed")
    cols = device_columns(device)
    pairs, dsp_req, bram_req = requirement_columns(group)
    grid = batch_prr_geometry(cols, pairs, dsp_req, bram_req)
    # Section III.B shared-PRR merge: the largest W_CLB/W_DSP/W_BRAM
    # across members dictates the column counts; a member the eq. (4)
    # rule rejects at some H rejects the merged geometry at that H too.
    # A zero-demand member (width 0 at every H) only trips the
    # one-column floor, which applies to the *merged* width below — the
    # scalar merge in ``prr_geometry_for_rows`` forgives it the same way.
    member_ok = grid.feasible | (grid.width == 0)
    feasible = member_ok.all(axis=0)  # (R,)
    w_clb = grid.w_clb.max(axis=0)
    w_dsp = grid.w_dsp.max(axis=0)
    w_bram = grid.w_bram.max(axis=0)
    width = w_clb + w_dsp + w_bram
    feasible = feasible & (width >= 1)
    has_window, first_col = batch_window_placement(
        cols, w_clb, w_dsp, w_bram, mask=feasible
    )
    candidate = feasible & has_window
    if not candidate.any():
        names = "+".join(prm.name for prm in group)
        raise PlacementNotFoundError(
            f"no feasible PRR on {device.name} for {names} "
            f"(objective={objective})"
        )
    size = grid.heights * width
    if objective == "size":
        primary = size
    elif objective == "bitstream":
        primary = batch_bitstream_bytes(cols, grid.heights, w_clb, w_dsp, w_bram)
    else:
        raise InvalidInput(
            f"unknown objective {objective!r}; valid: {', '.join(_OBJECTIVES)}"
        )
    masked = np.where(candidate, primary, np.iinfo(np.int64).max)
    pick = int(masked.argmin())
    geometry = PRRGeometry(
        family=device.family,
        rows=int(grid.heights[pick]),
        columns=ResourceVector(
            clb=int(w_clb[pick]), dsp=int(w_dsp[pick]), bram=int(w_bram[pick])
        ),
    )
    region = Region(
        row=1,
        col=int(first_col[pick]),
        height=geometry.rows,
        width=geometry.width,
    )
    return PlacedPRR(device=device, geometry=geometry, region=region)

"""Shared fast-path machinery for the placement search and the explorer.

Three performance primitives used by :mod:`~repro.core.placement_search`
and :mod:`~repro.core.explorer`:

* :class:`RegionOccupancy` — occupied fabric regions kept sorted by start
  column, so the "does this candidate window overlap anything?" check can
  bisect to the overlap-candidate range and bail out early instead of
  scanning every forbidden region (the old O(n^2) pairwise loop).
* :class:`PlacementCache` — memoized :func:`~repro.core.placement_search.
  find_prr` results keyed on ``(device, group, forbidden set,
  objective)``.  The explorer re-places identical PRM groups across many
  set partitions (the first-placed group sees the same empty fabric in
  every partition that contains it), so the cache turns the inner Fig. 1
  searches of a Bell-number enumeration into dictionary hits.
* :func:`group_lower_bounds` — per-group optimistic (area, bitstream)
  bounds over all feasible H, ignoring window availability.  These are
  admissible lower bounds on what any placement of the group can achieve
  and drive the branch-and-bound pruning and beam scoring in
  :func:`~repro.core.explorer.explore`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Sequence

from ..devices.fabric import Device, Region
from ..errors import InvalidInput
from .bitstream_model import cached_bitstream_bytes
from .params import PRMRequirements
from .prr_model import InfeasibleGeometryError, prr_geometry_for_rows

__all__ = [
    "RegionOccupancy",
    "PlacementCache",
    "GroupBounds",
    "group_lower_bounds",
    "group_key",
    "clear_bounds_cache",
]


def group_key(group: Sequence[PRMRequirements]) -> tuple[PRMRequirements, ...]:
    """Canonical (order-insensitive) cache key for a PRM group."""
    return tuple(
        sorted(
            group,
            key=lambda p: (p.name, p.lut_ff_pairs, p.luts, p.ffs, p.dsps, p.brams),
        )
    )


class RegionOccupancy:
    """Occupied regions with a sorted-by-column overlap query.

    Regions are kept ordered by start column; a candidate's overlap check
    bisects to the last region starting left of the candidate's right
    edge, then walks left only while regions could still reach the
    candidate (bounded by the widest region seen), checking row spans as
    it goes.  For the small forbidden sets of a single design this is a
    constant-factor win; for crowded fabrics it is asymptotically better
    than the pairwise scan.
    """

    __slots__ = ("_regions", "_cols", "_max_width")

    def __init__(self, regions: Iterable[Region] = ()) -> None:
        self._regions: list[Region] = sorted(regions, key=lambda r: (r.col, r.row))
        self._cols: list[int] = [r.col for r in self._regions]
        self._max_width: int = max((r.width for r in self._regions), default=0)

    def add(self, region: Region) -> None:
        """Insert *region*, keeping the column order."""
        index = bisect_right(self._cols, region.col)
        self._regions.insert(index, region)
        self._cols.insert(index, region.col)
        if region.width > self._max_width:
            self._max_width = region.width

    def overlaps(self, candidate: Region) -> bool:
        """True when *candidate* shares a cell with any stored region."""
        # Regions starting at or right of the candidate's right edge cannot
        # overlap; regions ending at or left of its left edge cannot either,
        # and every stored region spans at most _max_width columns, so the
        # walk stops once start columns fall below col - max_width + 1.
        hi = bisect_right(self._cols, candidate.col + candidate.width - 1)
        lowest_reaching = candidate.col - self._max_width + 1
        row_lo = candidate.row
        row_hi = candidate.row + candidate.height
        for index in range(hi - 1, -1, -1):
            region = self._regions[index]
            if region.col < lowest_reaching:
                break
            if region.col + region.width <= candidate.col:
                continue
            if region.row < row_hi and row_lo < region.row + region.height:
                return True
        return False

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions)

    def key(self) -> frozenset[Region]:
        """Order-insensitive identity of the occupied set (for caching)."""
        return frozenset(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)


class PlacementCache:
    """Memoized ``find_prr`` results for one explorer run.

    The cache stores either the found :class:`~repro.core.
    placement_search.PlacedPRR` or the raised
    :class:`~repro.core.placement_search.PlacementNotFoundError`, so
    infeasible groups — the common case deep in a partition enumeration —
    are as cheap to re-ask as feasible ones.

    ``engine`` selects how misses are computed: ``"scalar"`` (default)
    runs the Fig. 1 loop in :func:`~repro.core.placement_search.
    find_prr`; ``"batch"`` answers empty-fabric misses — the bulk of an
    explorer run, since the first-placed group of every partition sees
    an empty fabric — with one vectorized
    :func:`~repro.core.batch.find_prr_batch` call.  Occupied-fabric
    misses always use the scalar path, so results are identical either
    way (the differential suite asserts it).
    """

    __slots__ = ("_entries", "hits", "misses", "engine")

    def __init__(self, engine: str = "scalar") -> None:
        if engine not in ("scalar", "batch"):
            raise InvalidInput(
                f"unknown placement engine {engine!r}; valid: scalar, batch"
            )
        self._entries: dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self.engine = engine

    def find_prr(
        self,
        device: Device,
        group: Sequence[PRMRequirements],
        *,
        forbidden: RegionOccupancy,
        objective: str = "size",
    ):
        """Cached :func:`~repro.core.placement_search.find_prr`."""
        from .placement_search import PlacementNotFoundError, find_prr

        key = (device.name, group_key(group), forbidden.key(), objective)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            if isinstance(cached, PlacementNotFoundError):
                raise cached
            return cached
        self.misses += 1
        try:
            if self.engine == "batch" and len(forbidden) == 0:
                from .batch import find_prr_batch

                placed = find_prr_batch(device, list(group), objective=objective)
            else:
                placed = find_prr(
                    device, list(group), objective=objective, forbidden=forbidden
                )
        except PlacementNotFoundError as error:
            self._entries[key] = error
            raise
        self._entries[key] = placed
        return placed


@dataclass(frozen=True, slots=True)
class GroupBounds:
    """Optimistic per-group bounds over all geometry-feasible H.

    ``min_size`` / ``min_bytes`` are each the minimum over H of the
    eq. (7) area and eq. (18) bitstream size of the group's merged
    geometry — ignoring whether a contiguous window actually exists, so
    any *placed* PRR for the group costs at least this much.  The two
    minima may occur at different H.
    """

    min_size: int
    min_bytes: int


def group_lower_bounds(
    device: Device, group: Sequence[PRMRequirements]
) -> GroupBounds | None:
    """Admissible (area, bitstream) lower bounds for a shared-PRR group.

    Returns ``None`` when no H in ``1..rows`` yields a feasible geometry
    (only the single-DSP-column rule can cause that).  Merged requirements
    dominate each member's, so a ``None`` verdict also rules out every
    superset of the group — the explorer prunes such branches outright.
    """
    return _cached_bounds(device, group_key(group))


@lru_cache(maxsize=65536)
def _cached_bounds(
    device: Device, key: tuple[PRMRequirements, ...]
) -> GroupBounds | None:
    min_size: int | None = None
    min_bytes: int | None = None
    for rows in range(1, device.rows + 1):
        try:
            geometry = prr_geometry_for_rows(
                key,
                device.family,
                rows,
                single_dsp_column=device.has_single_dsp_column,
            )
        except InfeasibleGeometryError:
            continue
        size = geometry.size
        by = cached_bitstream_bytes(geometry)
        if min_size is None or size < min_size:
            min_size = size
        if min_bytes is None or by < min_bytes:
            min_bytes = by
    if min_size is None or min_bytes is None:
        return None
    return GroupBounds(min_size=min_size, min_bytes=min_bytes)


def clear_bounds_cache() -> None:
    """Drop memoized group bounds (used by equivalence tests)."""
    _cached_bounds.cache_clear()

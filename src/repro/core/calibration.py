"""Regression calibration: fit family constants from measured bitstreams.

The paper derives Table IV constants from vendor documentation.  For a
family without such documentation, the eq. (18) model is *linear* in the
PRR geometry, so its constants can be recovered from a handful of
measured partial bitstream sizes by least squares:

    words = c0 + c1*H + c2*(H*W_CLB) + c3*(H*W_DSP) + c4*(H*W_BRAM)
                 + c5*(H*[W_BRAM > 0])

with

    c0 = IW + FW                     c1 = FAR_FDRI + FR_size
    c2 = CF_CLB * FR_size            c3 = CF_DSP * FR_size
    c4 = (CF_BRAM + DF_BRAM) * FR_size
    c5 = FAR_FDRI + FR_size          (the BRAM block's preamble + flush)

**Identifiability**: total sizes only determine ``CF_BRAM + DF_BRAM`` —
the interconnect and content frames of a BRAM column are inseparable
without looking *inside* the bitstream.  Supplying per-section
measurements (the parser's configuration/BRAM-init split) separates them.
``FR_size`` and ``Bytes_word`` are physical constants observable from any
single frame readback, so the fit takes them as givens.

The Ablation P benchmark recovers the Virtex-5 constants exactly from
generated bitstreams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

try:  # soft import: the fit is the only numpy consumer in this module
    import numpy as np
except ImportError:  # pragma: no cover - exercised via the batch gate tests
    np = None  # type: ignore[assignment]

from ..devices.resources import ResourceVector
from ..errors import MissingDependency

__all__ = ["SizeSample", "FittedConstants", "fit_family_constants"]


@dataclass(frozen=True, slots=True)
class SizeSample:
    """One measured partial bitstream.

    ``bram_init_bytes`` is optional: when provided (from the parser's
    section attribution or a vendor tool's report) it separates CF_BRAM
    from DF_BRAM.
    """

    rows: int
    columns: ResourceVector
    total_bytes: int
    bram_init_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise ValueError("rows must be >= 1")
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")


@dataclass(frozen=True, slots=True)
class FittedConstants:
    """Recovered family constants and fit quality."""

    header_trailer_words: int  #: IW + FW
    far_fdri_words: int  #: FAR_FDRI
    cf_clb: int
    cf_dsp: int
    cf_bram_plus_df: int  #: CF_BRAM + DF_BRAM (always identifiable)
    cf_bram: int | None  #: separated only with section samples
    df_bram: int | None
    max_residual_words: float  #: worst absolute fit error, in words

    @property
    def exact(self) -> bool:
        """True when the linear model explains every sample to < 0.5 word."""
        return self.max_residual_words < 0.5


def _require_rank(matrix: np.ndarray, needed: int, what: str) -> None:
    rank = np.linalg.matrix_rank(matrix)
    if rank < needed:
        raise ValueError(
            f"samples do not span the model ({what}): need geometries "
            f"varying independently in H, W_CLB, W_DSP, W_BRAM and "
            f"BRAM-presence (rank {rank} < {needed})"
        )


def fit_family_constants(
    samples: Sequence[SizeSample],
    *,
    frame_words: int,
    bytes_per_word: int,
) -> FittedConstants:
    """Least-squares recovery of the eq. (18) constants from samples.

    Requires geometrically diverse samples (the design matrix must have
    full column rank); raises :class:`ValueError` otherwise.
    """
    if np is None:  # pragma: no cover - numpy ships with the package
        raise MissingDependency(
            "fit_family_constants solves a least-squares system with "
            "numpy, which is not importable in this environment",
            dependency="numpy",
        )
    if len(samples) < 6:
        raise ValueError("need at least 6 samples to identify 6 coefficients")
    if frame_words <= 0 or bytes_per_word <= 0:
        raise ValueError("frame_words and bytes_per_word must be positive")

    rows_list = []
    targets = []
    for sample in samples:
        h = sample.rows
        c = sample.columns
        rows_list.append(
            [1.0, h, h * c.clb, h * c.dsp, h * c.bram, h * (1.0 if c.bram else 0.0)]
        )
        targets.append(sample.total_bytes / bytes_per_word)
    design = np.asarray(rows_list, dtype=float)
    target = np.asarray(targets, dtype=float)
    _require_rank(design, 6, "total sizes")

    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    residuals = design @ coef - target
    max_residual = float(np.max(np.abs(residuals)))

    c0, c1, c2, c3, c4, c5 = coef
    header_trailer = round(c0)
    far_fdri = round(c1) - frame_words
    cf_clb = round(c2 / frame_words)
    cf_dsp = round(c3 / frame_words)
    cf_bram_plus_df = round(c4 / frame_words)

    cf_bram = df_bram = None
    section_samples = [s for s in samples if s.bram_init_bytes is not None]
    if section_samples:
        # bram_init_words = H * (FAR_FDRI + (W_BRAM * DF + 1) * FR)
        #                 = H*(FAR_FDRI + FR) + (H*W_BRAM)*(DF*FR)
        rows2 = []
        target2 = []
        for sample in section_samples:
            if sample.columns.bram == 0:
                continue
            rows2.append([sample.rows, sample.rows * sample.columns.bram])
            target2.append(sample.bram_init_bytes / bytes_per_word)
        if len(rows2) >= 2:
            design2 = np.asarray(rows2, dtype=float)
            _require_rank(design2, 2, "BRAM sections")
            coef2, *_ = np.linalg.lstsq(
                design2, np.asarray(target2, dtype=float), rcond=None
            )
            df_bram = round(coef2[1] / frame_words)
            cf_bram = cf_bram_plus_df - df_bram

    return FittedConstants(
        header_trailer_words=header_trailer,
        far_fdri_words=far_fdri,
        cf_clb=cf_clb,
        cf_dsp=cf_dsp,
        cf_bram_plus_df=cf_bram_plus_df,
        cf_bram=cf_bram,
        df_bram=df_bram,
        max_residual_words=max_residual,
    )
